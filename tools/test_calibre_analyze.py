#!/usr/bin/env python3
"""Unit tests for the tools/calibre_analyze package itself (the lint.cli
ctest entry): CLI exit codes, the --format json schema, suppression
rejection, fact-cache invalidation, and raw-string-literal stripping.

These test the analyzer as a program; the rule *semantics* are covered by
the fixture self-test under tests/lint_fixtures/ (lint.calibre etc.)."""

import contextlib
import io
import json
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from calibre_analyze import cpputil, driver  # noqa: E402

CLEAN_CC = "int answer() { return 42; }\n"
# A thread-funnel violation (std::thread outside common/thread_pool.*).
VIOLATION_CC = "#include <thread>\nvoid f() { std::thread t([] {}); }\n"


def run_cli(*argv):
    """Runs the CLI in-process; returns (exit_code, stdout_text)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        try:
            code = driver.main(list(argv))
        except SystemExit as e:  # argparse errors
            code = e.code
    return code, out.getvalue()


class TempTree(unittest.TestCase):
    """A scratch repo root; files go under src/common/ (a declared module,
    so the layering pass has nothing to say about the tree's shape)."""

    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="calibre_analyze_test_")
        self.addCleanup(shutil.rmtree, self.root, ignore_errors=True)

    def write(self, rel, content, mtime=None):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        if mtime is not None:
            os.utime(path, (mtime, mtime))
        return path

    def analyze(self, *extra):
        return run_cli("--repo-root", self.root, "--no-self-test", *extra)


class ExitCodeTest(TempTree):
    def test_clean_tree_exits_zero(self):
        self.write("src/common/ok.cc", CLEAN_CC)
        code, out = self.analyze()
        self.assertEqual(code, 0)
        self.assertIn("clean", out)

    def test_findings_exit_one(self):
        self.write("src/common/bad.cc", VIOLATION_CC)
        code, out = self.analyze()
        self.assertEqual(code, 1)
        self.assertIn("thread-funnel", out)

    def test_unknown_pass_exits_two(self):
        with contextlib.redirect_stderr(io.StringIO()):
            code, _ = self.analyze("--passes", "nonsense")
        self.assertEqual(code, 2)

    def test_findings_outside_active_passes_do_not_fail(self):
        self.write("src/common/bad.cc", VIOLATION_CC)
        code, _ = self.analyze("--passes", "layering")
        self.assertEqual(code, 0)


class JsonFormatTest(TempTree):
    def test_schema(self):
        self.write("src/common/bad.cc", VIOLATION_CC)
        code, out = self.analyze("--format", "json")
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertEqual(doc["version"], 1)
        self.assertEqual(doc["root"], self.root)
        self.assertEqual(doc["active_passes"],
                         ["patterns", "layering", "locks", "determinism"])
        for entry in doc["passes"]:
            self.assertIsInstance(entry["name"], str)
            self.assertIsInstance(entry["seconds"], float)
        self.assertEqual(doc["counts"]["files"], 1)
        self.assertEqual(doc["counts"]["findings"], len(doc["findings"]))
        self.assertEqual(doc["counts"]["suppressed"], 0)
        self.assertEqual(set(doc["cache"]), {"hits", "misses"})
        finding = doc["findings"][0]
        self.assertEqual(set(finding),
                         {"path", "line", "rule", "pass", "message"})
        self.assertEqual(finding["path"], "src/common/bad.cc")
        self.assertEqual(finding["line"], 2)
        self.assertEqual(finding["rule"], "thread-funnel")
        self.assertEqual(finding["pass"], "patterns")

    def test_clean_json_exits_zero(self):
        self.write("src/common/ok.cc", CLEAN_CC)
        code, out = self.analyze("--format", "json")
        self.assertEqual(code, 0)
        self.assertEqual(json.loads(out)["findings"], [])


class SuppressionTest(TempTree):
    def test_valid_suppression_mutes(self):
        self.write("src/common/bad.cc",
                   "#include <thread>\n"
                   "// lint-allow: thread-funnel watchdog predates the pool\n"
                   "void f() { std::thread t([] {}); }\n")
        code, out = self.analyze("--format", "json")
        self.assertEqual(code, 0)
        self.assertEqual(json.loads(out)["counts"]["suppressed"], 1)

    def test_missing_reason_rejected(self):
        self.write("src/common/bad.cc",
                   "#include <thread>\n"
                   "// lint-allow: thread-funnel\n"
                   "void f() { std::thread t([] {}); }\n")
        code, out = self.analyze("--format", "json")
        self.assertEqual(code, 1)
        rules = {f["rule"] for f in json.loads(out)["findings"]}
        # The mute does nothing AND is itself a finding.
        self.assertEqual(rules, {"bad-suppression", "thread-funnel"})

    def test_one_word_reason_rejected(self):
        self.write("src/common/bad.cc",
                   "#include <thread>\n"
                   "// lint-allow: thread-funnel legacy\n"
                   "void f() { std::thread t([] {}); }\n")
        code, out = self.analyze("--format", "json")
        self.assertEqual(code, 1)
        rules = {f["rule"] for f in json.loads(out)["findings"]}
        self.assertEqual(rules, {"bad-suppression", "thread-funnel"})

    def test_unknown_rule_rejected(self):
        self.write("src/common/ok.cc",
                   "// lint-allow: no-such-rule speculative future mute\n"
                   + CLEAN_CC)
        code, out = self.analyze("--format", "json")
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertEqual([f["rule"] for f in doc["findings"]],
                         ["bad-suppression"])


class CacheTest(TempTree):
    def cache_path(self):
        return os.path.join(self.root, "lint_cache.json")

    def test_warm_run_hits_every_file(self):
        self.write("src/common/ok.cc", CLEAN_CC)
        self.write("src/common/more.cc", CLEAN_CC.replace("answer", "more"))
        code, out = self.analyze("--format", "json", "--cache",
                                 self.cache_path())
        self.assertEqual(code, 0)
        self.assertEqual(json.loads(out)["cache"], {"hits": 0, "misses": 2})
        code, out = self.analyze("--format", "json", "--cache",
                                 self.cache_path())
        self.assertEqual(code, 0)
        self.assertEqual(json.loads(out)["cache"], {"hits": 2, "misses": 0})

    def test_edit_invalidates_only_that_file(self):
        self.write("src/common/ok.cc", CLEAN_CC, mtime=1000)
        self.write("src/common/bad.cc", CLEAN_CC.replace("answer", "other"),
                   mtime=1000)
        code, _ = self.analyze("--cache", self.cache_path())
        self.assertEqual(code, 0)
        # Introduce a violation; same mtime but different size still misses.
        self.write("src/common/bad.cc", VIOLATION_CC, mtime=1000)
        code, out = self.analyze("--format", "json", "--cache",
                                 self.cache_path())
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertEqual(doc["cache"], {"hits": 1, "misses": 1})
        self.assertEqual([f["rule"] for f in doc["findings"]],
                         ["thread-funnel"])
        # And fixing it (new mtime) flips back to clean — no stale facts.
        self.write("src/common/bad.cc", CLEAN_CC.replace("answer", "other"),
                   mtime=2000)
        code, _ = self.analyze("--cache", self.cache_path())
        self.assertEqual(code, 0)


class RawStringStripTest(unittest.TestCase):
    def strip(self, text):
        return cpputil.strip_comments_and_strings(text)

    def test_plain_raw_string_blanked_as_a_unit(self):
        s = self.strip('auto s = R"(quote " std::thread t; )";\nint x;\n')
        self.assertNotIn("std::thread", s)
        self.assertIn("int x;", s)

    def test_custom_delimiter(self):
        s = self.strip('auto s = R"xy(malloc(4) )" still text)xy"; int y;')
        self.assertNotIn("malloc", s)
        self.assertIn("int y;", s)

    def test_prefixed_raw_strings(self):
        for prefix in ("u8", "u", "U", "L"):
            s = self.strip(f'auto s = {prefix}R"(assert(false))"; int z;')
            self.assertNotIn("assert", s, msg=prefix)
            self.assertIn("int z;", s, msg=prefix)

    def test_identifier_ending_in_r_is_not_a_raw_prefix(self):
        # FOLDER"(text)" — the quote follows the identifier FOLDER, not a
        # raw-string prefix; it opens a plain string that ends at the next
        # quote, and code after it stays code.
        s = self.strip('auto s = FOLDER"(rand())"; std::thread t;')
        self.assertIn("std::thread", s)
        self.assertNotIn("rand()", s)

    def test_newlines_preserved_for_line_numbers(self):
        text = 'auto s = R"(\nline2\nline3\n)";\nint tail;\n'
        s = self.strip(text)
        self.assertEqual(s.count("\n"), text.count("\n"))
        self.assertNotIn("line2", s)

    def test_unterminated_raw_string_keeps_line_count(self):
        text = 'auto s = R"(never closed\nmore\n'
        s = self.strip(text)
        self.assertEqual(s.count("\n"), 2)

    def test_line_comment_inside_raw_string_is_text(self):
        s = self.strip('auto s = R"(// not a comment)"; int kept;')
        self.assertIn("int kept;", s)


if __name__ == "__main__":
    unittest.main()
