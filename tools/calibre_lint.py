#!/usr/bin/env python3
"""Calibre contract linter: enforces the repo-specific invariants that no
generic static analyzer knows about. Registered as the `lint.calibre` ctest
entry; stdlib-only by design (no pip deps).

Rules (each protects a contract established by an earlier PR — the table in
DESIGN.md §9 maps rule -> contract -> PR):

  determinism-rng    src/ outside tensor/rng.cc must not call rand()/srand(),
                     std::random_device, time(), clock(), gettimeofday or
                     std::chrono::system_clock. All randomness flows through
                     the seeded splittable RNG; wall-clock reads would break
                     the run-to-run bitwise-determinism contract.
  pool-bypass        Raw float-buffer management (new float[], malloc/free,
                     ::operator new, std::vector<float, Alloc>,
                     PoolAllocator) is only legal in tensor/pool.* and
                     tensor/tensor.*. Everything else must hold tensors, so
                     storage stays pooled, 64B-aligned and leak-accounted.
  thread-funnel      std::thread / std::jthread / std::async / pthread_create
                     are only legal in common/thread_pool.*. All parallelism
                     funnels through ThreadPool so the TSan lane's coverage
                     and the deterministic partitioning hold everywhere.
  check-not-assert   Library code (src/) must use CALIBRE_CHECK*, never
                     assert(): asserts vanish in release builds, and a
                     silently-corrupted experiment is worse than a crash.
  blocking-sleep     sleep_for/sleep_until/usleep/nanosleep are only legal
                     in common/timer_queue.*. A sleep on a ThreadPool worker
                     serializes every dispatch queued behind it (the injected
                     fault-latency bug); deferred work must go through the
                     TimerQueue so workers stay free.
  streaming-fold     src/fl/runner.cc and src/fl/shard_fold.cc must stream
                     updates through make_aggregator()->fold(): no decoded
                     ClientUpdate buffering, no batch aggregate(), and no
                     finish() on a shard-local partial — shard partials may
                     only merge() into the round root, or the sharded fold
                     stops being bit-identical to the flat fold.
  residual-in-store  Error-feedback residuals (and any per-client float
                     state) in src/fl/ live in an algos::ClientStore inside
                     fl/update_codec.* — never in the runner or other fl
                     files, whose per-round containers die with the round
                     while a residual must survive arbitrary client
                     re-selection gaps. Hand-rolled map<int, vector<float>>
                     client state is flagged for the same reason.
  serde-count-guard  In src/comm/, a count obtained from Reader::read_u*()
                     must pass through a CALIBRE_CHECK* that mentions it
                     before it sizes an allocation (vector/string ctor,
                     resize/reserve, new[]). Untrusted wire counts must be
                     validated against remaining() before memory is
                     committed (the wraparound-proof guard shape from the
                     serde/codec PRs).
  pragma-once        Every header under src/, apps/, bench/ carries
                     #pragma once.

Self-test: fixtures under tests/lint_fixtures/ are a miniature repo tree of
seeded violations, each annotated with `// expect-lint: <rule-id>` lines.
The self-test asserts that linting the fixture tree fires exactly the
annotated rules on each file and that every rule is exercised by at least
one fixture — a linter that cannot catch its own fixtures is dead code.
"""

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Tuple

SCANNED_DIRS = ("src", "apps", "bench")
SOURCE_EXTS = (".h", ".cc", ".cpp")


class Finding(NamedTuple):
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str


def strip_comments_and_strings(text: str) -> str:
    """Returns `text` with comments removed and string/char literal contents
    blanked, preserving every newline so line numbers survive. Keeps
    preprocessor lines intact (minus comments)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
            elif c == '"':
                out.append(c)
                state = "string"
                i += 1
            elif c == "'":
                out.append(c)
                state = "char"
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                out.append(c)
                state = "code"
            i += 1
        elif state == "block_comment":
            if c == "\n":
                out.append(c)
                i += 1
            elif c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2  # skip the escaped character
            elif c == quote:
                out.append(c)
                state = "code"
                i += 1
            else:
                if c == "\n":
                    out.append(c)  # unterminated literal: keep line count
                    state = "code"
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Pattern rules: (rule-id, scope predicate, [(regex, message)]).


def _in_src(rel: str) -> bool:
    return rel.startswith("src/")


def _src_except(*allowed: str):
    def pred(rel: str) -> bool:
        return _in_src(rel) and rel not in allowed

    return pred


def _only(*files: str):
    def pred(rel: str) -> bool:
        return rel in files

    return pred


DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w:.>])s?rand\s*\("),
     "libc rand()/srand() breaks run-to-run determinism; use the seeded "
     "RNG in tensor/rng.cc"),
    (re.compile(r"std::random_device"),
     "std::random_device is nondeterministic entropy; derive streams from "
     "the experiment seed via tensor/rng.cc"),
    (re.compile(r"(?<![\w:.>])time\s*\("),
     "wall-clock time() in library code breaks bitwise reproducibility; "
     "seed-derived randomness only"),
    (re.compile(r"(?<![\w:.>])clock\s*\("),
     "clock() in library code breaks bitwise reproducibility"),
    (re.compile(r"gettimeofday"),
     "gettimeofday in library code breaks bitwise reproducibility"),
    (re.compile(r"system_clock"),
     "std::chrono::system_clock is wall-clock time; use steady_clock for "
     "durations, never for values that feed computation"),
]

POOL_PATTERNS = [
    (re.compile(r"new\s+(?:float|double)\s*\["),
     "raw float-array new[] bypasses the tensor pool; allocate a Tensor "
     "(or extend tensor/pool.*)"),
    (re.compile(r"(?<![\w:.>])(?:malloc|calloc|realloc|free)\s*\("),
     "malloc/free bypasses the pooled, aligned, leak-accounted tensor "
     "storage"),
    (re.compile(r"::operator\s+(?:new|delete)"),
     "::operator new/delete is reserved to the pool's raw_alloc/raw_free"),
    (re.compile(r"std::vector<\s*float\s*,"),
     "std::vector<float, Alloc> is hand-rolled tensor storage; only "
     "tensor/tensor.* may bind storage to PoolAllocator"),
    (re.compile(r"PoolAllocator"),
     "PoolAllocator must not leak outside tensor/{pool,tensor}.*"),
    (re.compile(r"(?<![\w:.>])aligned_alloc\s*\("),
     "aligned_alloc bypasses the pool; use Tensor storage"),
]

SLEEP_PATTERNS = [
    (re.compile(r"sleep_for\s*\("),
     "sleep_for on a pool worker serializes every queued dispatch behind "
     "the nap; schedule a deferred callback through common/timer_queue.* "
     "instead"),
    (re.compile(r"sleep_until\s*\("),
     "sleep_until blocks a pool worker; use common/timer_queue.*"),
    (re.compile(r"(?<![\w:.>])(?:usleep|nanosleep)\s*\("),
     "libc sleeps block a pool worker; use common/timer_queue.*"),
]

THREAD_PATTERNS = [
    (re.compile(r"std::thread\b"),
     "raw std::thread escapes the ThreadPool; TSan-lane coverage and "
     "deterministic partitioning only hold for pool workers"),
    (re.compile(r"std::jthread\b"),
     "raw std::jthread escapes the ThreadPool"),
    (re.compile(r"std::async\b"),
     "std::async spawns unpooled threads; submit to ThreadPool instead"),
    (re.compile(r"pthread_create"),
     "pthread_create escapes the ThreadPool"),
]

ASSERT_PATTERNS = [
    (re.compile(r"\bassert\s*\("),
     "assert() compiles out in release builds; library invariants must use "
     "CALIBRE_CHECK* so corrupted state can never produce results"),
    (re.compile(r"#\s*include\s*<(?:cassert|assert\.h)>"),
     "<cassert> has no place in library code; use common/check.h"),
]

STREAMING_PATTERNS = [
    (re.compile(r"std::vector<\s*(?:fl::)?ClientUpdate\b"),
     "the runner must fold arriving updates through "
     "Algorithm::make_aggregator; buffering decoded ClientUpdates "
     "reintroduces O(cohort * model) server memory at scale"),
    (re.compile(r"(?:\.|->)aggregate\s*\("),
     "the runner may not call batch aggregate(); use "
     "make_aggregator()->fold()/finish() so memory stays O(model) — batch "
     "semantics are preserved by the BatchAggregatorAdapter default"),
    (re.compile(r"\b[Ss]hard\w*(?:\[[^\]]*\])?\s*"
                r"(?:(?:\.|->)\s*\w+\s*(?:\[[^\]]*\])?\s*)*"
                r"(?:\.|->)\s*finish\s*\("),
     "a shard-local aggregator must merge() into the round root before any "
     "finish(); finishing a shard partial commits a partial average and "
     "silently breaks the sharded-fold bit-identity contract"),
]

RESIDUAL_PATTERNS = [
    (re.compile(r"\b\w*residual\w*", re.IGNORECASE),
     "error-feedback residual state is per-client and must survive client "
     "re-selection gaps; it lives in the algos::ClientStore inside "
     "fl/update_codec.*, never in the runner's per-round containers"),
    (re.compile(
        r"std::(?:unordered_)?map<\s*int\s*,\s*std::vector<\s*float\b"),
     "hand-rolled per-client float state; per-client state goes through "
     "algos::ClientStore so sharded locking and re-selection survival stay "
     "uniform"),
]


def _fl_except_update_codec(rel: str) -> bool:
    return rel.startswith("src/fl/") and rel not in (
        "src/fl/update_codec.h", "src/fl/update_codec.cc")


PATTERN_RULES = [
    ("streaming-fold", _only("src/fl/runner.cc", "src/fl/shard_fold.cc"),
     STREAMING_PATTERNS),
    ("residual-in-store", _fl_except_update_codec, RESIDUAL_PATTERNS),
    ("determinism-rng",
     _src_except("src/tensor/rng.cc", "src/tensor/rng.h"),
     DETERMINISM_PATTERNS),
    ("pool-bypass",
     _src_except("src/tensor/pool.h", "src/tensor/pool.cc",
                 "src/tensor/tensor.h", "src/tensor/tensor.cc"),
     POOL_PATTERNS),
    ("thread-funnel",
     _src_except("src/common/thread_pool.h", "src/common/thread_pool.cc"),
     THREAD_PATTERNS),
    ("blocking-sleep",
     _src_except("src/common/timer_queue.h", "src/common/timer_queue.cc"),
     SLEEP_PATTERNS),
    ("check-not-assert", _in_src, ASSERT_PATTERNS),
]

# serde-count-guard ---------------------------------------------------------

READ_COUNT_RE = re.compile(
    r"\b(\w+)\s*=\s*(?:\w+(?:\.|->))?read_u(?:8|16|32|64)\s*\(\s*\)")


def _alloc_use_re(var: str) -> re.Pattern:
    v = re.escape(var)
    return re.compile(
        r"(?:"
        rf"\.\s*(?:resize|reserve)\s*\(\s*{v}\b"       # x.resize(count ...
        rf"|(?:std::)?(?:vector|string)\s*<[^;()]*>\s*\w*\s*[({{]\s*{v}\b"
        rf"|(?:std::)?string\s+\w+\s*[({{]\s*{v}\b"    # std::string s(count
        rf"|new\b[^;]*\[\s*{v}\s*\]"                   # new T[count]
        r")")


def check_serde_count_guard(rel: str, lines: List[str]) -> List[Finding]:
    if not rel.startswith("src/comm/"):
        return []
    findings = []
    for idx, line in enumerate(lines):
        m = READ_COUNT_RE.search(line)
        if not m:
            continue
        var = m.group(1)
        use_re = _alloc_use_re(var)
        guarded = False
        # Scan forward to the end of the enclosing scope (approximated by a
        # fixed window; count-decode-allocate sequences are local by style).
        for j in range(idx + 1, min(idx + 40, len(lines))):
            if "CALIBRE_CHECK" in lines[j] and re.search(
                    rf"\b{re.escape(var)}\b", lines[j]):
                guarded = True
            if use_re.search(lines[j]):
                if not guarded:
                    findings.append(Finding(
                        rel, j + 1, "serde-count-guard",
                        f"allocation sized by untrusted wire count '{var}' "
                        f"(read at line {idx + 1}) without a CALIBRE_CHECK* "
                        "validating it against the remaining bytes first"))
                break
    return findings


def check_pragma_once(rel: str, raw_text: str) -> List[Finding]:
    if not rel.endswith(".h"):
        return []
    if "#pragma once" in raw_text:
        return []
    return [Finding(rel, 1, "pragma-once",
                    "header is missing #pragma once")]


ALL_RULE_IDS = [rid for rid, _, _ in PATTERN_RULES] + [
    "serde-count-guard", "pragma-once"]


# ---------------------------------------------------------------------------


def lint_file(root: str, rel: str) -> List[Finding]:
    path = os.path.join(root, rel)
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        raw = fh.read()
    stripped = strip_comments_and_strings(raw)
    lines = stripped.split("\n")

    findings: List[Finding] = []
    for rule_id, scope, patterns in PATTERN_RULES:
        if not scope(rel):
            continue
        for regex, message in patterns:
            for idx, line in enumerate(lines):
                if regex.search(line):
                    findings.append(Finding(rel, idx + 1, rule_id, message))
    findings.extend(check_serde_count_guard(rel, lines))
    findings.extend(check_pragma_once(rel, raw))
    return findings


def collect_files(root: str) -> List[str]:
    rels = []
    for top in SCANNED_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, dirnames, filenames in os.walk(top_path):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    rels.append(os.path.relpath(full, root).replace(
                        os.sep, "/"))
    return rels


def lint_tree(root: str) -> List[Finding]:
    findings: List[Finding] = []
    for rel in collect_files(root):
        findings.extend(lint_file(root, rel))
    return findings


# ---------------------------------------------------------------------------
# Self-test against the seeded fixtures.

EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([\w-]+)")


def run_self_test(fixture_root: str) -> bool:
    if not os.path.isdir(fixture_root):
        print(f"calibre_lint self-test: fixture dir {fixture_root} missing",
              file=sys.stderr)
        return False

    expected: Dict[str, set] = {}
    for rel in collect_files(fixture_root):
        with open(os.path.join(fixture_root, rel), encoding="utf-8") as fh:
            expected[rel] = set(EXPECT_RE.findall(fh.read()))

    fired: Dict[str, set] = {rel: set() for rel in expected}
    for f in lint_tree(fixture_root):
        fired.setdefault(f.path, set()).add(f.rule)

    ok = True
    for rel in sorted(expected):
        want, got = expected[rel], fired.get(rel, set())
        if want != got:
            ok = False
            print(f"calibre_lint self-test FAILED for {rel}: expected rules "
                  f"{sorted(want) or '(none)'}, fired "
                  f"{sorted(got) or '(none)'}", file=sys.stderr)

    exercised = set().union(*expected.values()) if expected else set()
    for rule_id in ALL_RULE_IDS:
        if rule_id not in exercised:
            ok = False
            print(f"calibre_lint self-test FAILED: rule '{rule_id}' has no "
                  "fixture proving it fires (add one under "
                  "tests/lint_fixtures/)", file=sys.stderr)

    if ok:
        print(f"calibre_lint self-test: {len(ALL_RULE_IDS)} rules verified "
              f"against {len(expected)} fixtures")
    return ok


# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--repo-root", default=default_root)
    parser.add_argument("--no-self-test", action="store_true",
                        help="skip the fixture self-test")
    parser.add_argument("--fixtures-only", action="store_true",
                        help="run only the fixture self-test")
    args = parser.parse_args()

    root = os.path.abspath(args.repo_root)
    fixture_root = os.path.join(root, "tests", "lint_fixtures")

    if not args.no_self_test:
        if not run_self_test(fixture_root):
            return 1
    if args.fixtures_only:
        return 0

    findings = lint_tree(root)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"calibre_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"calibre_lint: clean ({len(collect_files(root))} files, "
          f"{len(ALL_RULE_IDS)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
