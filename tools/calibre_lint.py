#!/usr/bin/env python3
"""Entry-point shim for the Calibre static analyzer.

The original single-file linter grew into the tools/calibre_analyze/
package (patterns, layering, locks, determinism passes). This shim keeps
the historical invocation — `python3 tools/calibre_lint.py` — and every
flag working; see `--help` or DESIGN.md §9 for the rule catalogue.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from calibre_analyze import driver  # noqa: E402

if __name__ == "__main__":
    sys.exit(driver.main())
