#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit in
# compile_commands.json (src/ apps/ bench/ — tests and nested sanitizer
# trees excluded) and diffs the findings against the checked-in empty
# baseline tools/tidy_baseline.txt. Any new finding fails the run.
#
# Registered as the `lint.tidy` ctest entry with SKIP_RETURN_CODE 77: when
# clang-tidy is not installed the script exits 77 and ctest reports the test
# as skipped, keeping tier-1 green on minimal machines.
#
# Usage: tools/run_tidy.sh [build-dir]   (default: ./build)
set -u

BUILD_DIR="${1:-build}"
SRC_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE="$SRC_ROOT/tools/tidy_baseline.txt"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
              clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 \
              clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "lint.tidy: clang-tidy not found on PATH; skipping" \
       "(install clang-tidy or set CLANG_TIDY to enable this lane)"
  exit 77
fi

CDB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$CDB" ]; then
  echo "lint.tidy: $CDB missing — configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default for this tree)"
  exit 1
fi

# First-party TUs only: the nested {t,a,ub}san-lane trees re-list the same
# files and tests/ are gtest macro soup that drowns the signal.
FILES="$(python3 - "$CDB" <<'EOF'
import json, sys

entries = json.load(open(sys.argv[1]))
seen = []
for entry in entries:
    path = entry["file"]
    if any(f"/{d}/" in path for d in ("src", "apps", "bench")) and \
       "-lane/" not in path and path not in seen:
        seen.append(path)
print("\n".join(seen))
EOF
)"
if [ -z "$FILES" ]; then
  echo "lint.tidy: no first-party files found in $CDB"
  exit 1
fi

FINDINGS="$(mktemp)"
trap 'rm -f "$FINDINGS"' EXIT

status=0
for f in $FILES; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" 2>/dev/null || status=$?
done | grep -E ':[0-9]+:[0-9]+: (warning|error):' | sort -u >"$FINDINGS"

if ! diff -u "$BASELINE" "$FINDINGS"; then
  count="$(wc -l <"$FINDINGS")"
  echo
  echo "lint.tidy: $count finding(s) not in the baseline ($BASELINE)."
  echo "Fix them (preferred) — the baseline stays empty by policy."
  exit 1
fi

echo "lint.tidy: clean ($TIDY, $(echo "$FILES" | wc -l) files)"
exit 0
