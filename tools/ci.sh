#!/usr/bin/env bash
# Single CI entry point: tier-1 configure/build/test, then every sanitizer
# lane (tsan/asan/ubsan) and both lint targets, with a summary table and a
# nonzero exit if anything failed. This is the one command a CI job or a
# reviewer runs:
#
#   tools/ci.sh [build-dir]      (default: ./build-ci)
#
# Each sanitizer lane is a nested configure+build+run driven by ctest (see
# tests/CMakeLists.txt), so this script stays a thin sequencer. lint.tidy
# reports SKIP when clang-tidy is absent; that counts as success here.
set -u

SRC_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$SRC_ROOT/build-ci}"
NPROC="$(nproc 2>/dev/null || echo 2)"

declare -a STEP_NAMES=()
declare -a STEP_RESULTS=()
overall=0

run_step() {
  local name="$1"
  shift
  echo
  echo "==== $name: $* ===="
  "$@"
  local rc=$?
  STEP_NAMES+=("$name")
  if [ $rc -eq 0 ]; then
    STEP_RESULTS+=("PASS")
  else
    STEP_RESULTS+=("FAIL (exit $rc)")
    overall=1
  fi
  return $rc
}

run_step "configure" cmake -S "$SRC_ROOT" -B "$BUILD_DIR" \
  && run_step "build" cmake --build "$BUILD_DIR" --parallel "$NPROC"
if [ $overall -ne 0 ]; then
  echo "ci: configure/build failed; skipping test lanes"
else
  # Tier-1: everything except the nested sanitizer lanes and lint entries.
  run_step "tier1.ctest" ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$NPROC" -E '^(tsan|asan|ubsan|lint)\.'
  # Scalability gate, surfaced as its own summary row: streaming rounds over
  # a virtual FedDataset must keep peak RSS flat as the population grows
  # (bench_scale exits nonzero on a superlinear blow-up).
  run_step "bench.scale" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^bench\.scale_smoke$'
  # Async-aggregation gate: the buffered async loop and the sync barrier
  # loop both run under one availability trace, and the async fold budget
  # must land exactly (bench_async exits nonzero on a mismatch).
  run_step "bench.async" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^bench\.async_smoke$'
  # Sharded-fold gate: every shard count and the two-level topology must
  # hash bit-identical to the flat fold (bench_hierarchy exits nonzero on
  # any mismatch — the fixed-point merge algebra is what it proves).
  run_step "bench.hierarchy" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^bench\.hierarchy_smoke$'
  # Compression gate: every update codec runs the fixed-seed workbench;
  # bench_codec exits nonzero if the f32 hash moves, topk16/int8a miss
  # their ratio floors, a lossy codec drifts past half a probe point, or
  # the auto chooser stops being thread-count deterministic.
  run_step "bench.codec" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^bench\.codec_smoke$'
  for lane in tsan asan ubsan; do
    run_step "lane.$lane" ctest --test-dir "$BUILD_DIR" \
      --output-on-failure -R "^$lane\."
  done
  run_step "lint.calibre" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^lint\.calibre$'
  run_step "lint.tidy" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^lint\.tidy$'
fi

echo
echo "==== ci summary ===="
printf '%-14s %s\n' "step" "result"
printf '%-14s %s\n' "----" "------"
for i in "${!STEP_NAMES[@]}"; do
  printf '%-14s %s\n' "${STEP_NAMES[$i]}" "${STEP_RESULTS[$i]}"
done
if [ $overall -eq 0 ]; then
  echo "ci: all steps passed"
else
  echo "ci: FAILURES above"
fi
exit $overall
