#!/usr/bin/env bash
# Single CI entry point: tier-1 configure/build/test, then every sanitizer
# lane (tsan/asan/ubsan) and both lint targets, with a summary table and a
# nonzero exit if anything failed. This is the one command a CI job or a
# reviewer runs:
#
#   tools/ci.sh [build-dir]      (default: ./build-ci)
#
# Each sanitizer lane is a nested configure+build+run driven by ctest (see
# tests/CMakeLists.txt), so this script stays a thin sequencer. lint.tidy
# reports SKIP when clang-tidy is absent; that counts as success here.
set -u

SRC_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$SRC_ROOT/build-ci}"
NPROC="$(nproc 2>/dev/null || echo 2)"

declare -a STEP_NAMES=()
declare -a STEP_RESULTS=()
overall=0

declare -a STEP_SECONDS=()

run_step() {
  local name="$1"
  shift
  echo
  echo "==== $name: $* ===="
  local t0=$SECONDS
  "$@"
  local rc=$?
  STEP_NAMES+=("$name")
  STEP_SECONDS+=("$((SECONDS - t0))")
  if [ $rc -eq 0 ]; then
    STEP_RESULTS+=("PASS")
  else
    STEP_RESULTS+=("FAIL (exit $rc)")
    overall=1
  fi
  return $rc
}

run_step "configure" cmake -S "$SRC_ROOT" -B "$BUILD_DIR" \
  && run_step "build" cmake --build "$BUILD_DIR" --parallel "$NPROC"
if [ $overall -ne 0 ]; then
  echo "ci: configure/build failed; skipping test lanes"
else
  # Tier-1: everything except the nested sanitizer lanes and lint entries.
  run_step "tier1.ctest" ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$NPROC" -E '^(tsan|asan|ubsan|lint)\.'
  # Scalability gate, surfaced as its own summary row: streaming rounds over
  # a virtual FedDataset must keep peak RSS flat as the population grows
  # (bench_scale exits nonzero on a superlinear blow-up).
  run_step "bench.scale" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^bench\.scale_smoke$'
  # Async-aggregation gate: the buffered async loop and the sync barrier
  # loop both run under one availability trace, and the async fold budget
  # must land exactly (bench_async exits nonzero on a mismatch).
  run_step "bench.async" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^bench\.async_smoke$'
  # Sharded-fold gate: every shard count and the two-level topology must
  # hash bit-identical to the flat fold (bench_hierarchy exits nonzero on
  # any mismatch — the fixed-point merge algebra is what it proves).
  run_step "bench.hierarchy" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^bench\.hierarchy_smoke$'
  # Compression gate: every update codec runs the fixed-seed workbench;
  # bench_codec exits nonzero if the f32 hash moves, topk16/int8a miss
  # their ratio floors, a lossy codec drifts past half a probe point, or
  # the auto chooser stops being thread-count deterministic.
  run_step "bench.codec" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^bench\.codec_smoke$'
  for lane in tsan asan ubsan; do
    run_step "lane.$lane" ctest --test-dir "$BUILD_DIR" \
      --output-on-failure -R "^$lane\."
  done
  # Lint lane: the calibre_analyze passes (full run + one entry per
  # whole-program pass, each printing per-pass timing via ctest -V on the
  # full run), the analyzer's own unit tests, then clang-tidy. Every python
  # entry runs under `python3 -W error` (tests/CMakeLists.txt): any Python
  # warning fails the lane.
  for lint_step in calibre layering locks determinism cli; do
    run_step "lint.$lint_step" ctest --test-dir "$BUILD_DIR" \
      --output-on-failure -R "^lint\.$lint_step\$"
  done
  run_step "lint.tidy" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R '^lint\.tidy$'
fi

echo
echo "==== ci summary ===="
printf '%-18s %-8s %s\n' "step" "seconds" "result"
printf '%-18s %-8s %s\n' "----" "-------" "------"
for i in "${!STEP_NAMES[@]}"; do
  printf '%-18s %-8s %s\n' "${STEP_NAMES[$i]}" "${STEP_SECONDS[$i]}" \
    "${STEP_RESULTS[$i]}"
done
if [ $overall -eq 0 ]; then
  echo "ci: all steps passed"
else
  echo "ci: FAILURES above"
fi
exit $overall
