"""Per-file mtime/size fact cache. Keeps the CI lint lane fast: a warm run
re-parses only files whose (mtime_ns, size) changed; the whole-program
passes (layering, locks) then run over cached facts, which is cheap.

The cache is a single JSON file, versioned by ANALYZER_VERSION — bumping
the version (any rule/pass change that alters facts) invalidates every
entry at once."""

import json
import os
from typing import Dict, Optional

from . import ANALYZER_VERSION


class FactCache:
    def __init__(self, path: Optional[str]):
        self.path = path
        self.entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path and os.path.isfile(path):
            try:
                with open(path, encoding="utf-8") as fh:
                    data = json.load(fh)
                if data.get("version") == ANALYZER_VERSION:
                    self.entries = data.get("files", {})
            except (OSError, ValueError):
                self.entries = {}

    def lookup(self, rel: str, full_path: str) -> Optional[Dict]:
        if self.path is None:
            return None
        try:
            st = os.stat(full_path)
        except OSError:
            return None
        entry = self.entries.get(rel)
        if entry and entry["mtime_ns"] == st.st_mtime_ns and \
                entry["size"] == st.st_size:
            self.hits += 1
            return entry["facts"]
        self.misses += 1
        return None

    def store(self, rel: str, full_path: str, facts: Dict) -> None:
        if self.path is None:
            return
        try:
            st = os.stat(full_path)
        except OSError:
            return
        self.entries[rel] = {
            "mtime_ns": st.st_mtime_ns,
            "size": st.st_size,
            "facts": facts,
        }
        self._dirty = True

    def prune(self, live_rels) -> None:
        dead = set(self.entries) - set(live_rels)
        for rel in dead:
            del self.entries[rel]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"version": ANALYZER_VERSION,
                           "files": self.entries}, fh)
            os.replace(tmp, self.path)
        except OSError:
            pass  # a cache that cannot be written is just a cold cache
