"""Lock-discipline pass (rules: lock-raw, lock-notify-unheld, lock-order).

Indexes every std::mutex / std::condition_variable member per class across
headers AND sources (the class that declares `idle_mu_` in its header is the
one whose destructor notifies in the .cc), then checks three contracts:

  lock-raw            .lock()/.unlock()/.try_lock() called directly on a
                      mutex instead of through an RAII guard
                      (lock_guard/unique_lock/scoped_lock). An early return
                      or a throw between the pair leaves the mutex held
                      forever. Calling .lock()/.unlock() on a *guard object*
                      (std::unique_lock) is fine — that is still RAII-owned.
  lock-notify-unheld  notify_one/notify_all on a condvar in a function that
                      never constructs a guard on the condvar's mutex (the
                      mutex waiters pair it with via cv.wait(lock)). The
                      exact ~ShardedFolder bug class TSan caught in PR 8: a
                      notify racing a waiter's predicate re-check +
                      destruction. Notify-after-unlock (guard constructed,
                      explicitly released before the notify) is the
                      documented hand-off optimization and passes.
  lock-order          two functions acquire the same pair of mutexes in
                      opposite nesting orders — the classic ABBA deadlock.
                      Only *nested* acquisitions count (guard B constructed
                      inside guard A's scope); sequential scopes do not
                      constrain each other.

Member references are resolved to Class::member via the method's class (for
Class::method definitions), the lexically enclosing class (for in-header
bodies), or — when the member name is globally unique — the one class that
declares it. Unresolvable receivers are skipped rather than guessed."""

import re
from typing import Dict, List, Optional, Tuple

from . import cpputil

Finding = Tuple[str, int, str, str]  # (path, line, rule, message)

RULES = ("lock-raw", "lock-notify-unheld", "lock-order")

_MUTEX_DECL_RE = re.compile(
    r"(?:mutable\s+)?std::(?:shared_|recursive_|timed_)*mutex\s+"
    r"(\w+)\s*;")
_CV_DECL_RE = re.compile(
    r"(?:mutable\s+)?std::condition_variable(?:_any)?\s+(\w+)\s*;")
_GUARD_RE = re.compile(
    r"std::(lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^;{}()]*>)?\s+(\w+)\s*[({]")
_LOCKCALL_RE = re.compile(
    r"(?<![\w.>])((?:\w+(?:\.|->))*\w+)\s*(?:\.|->)\s*"
    r"(lock|unlock|try_lock)\s*\(\s*\)")
_NOTIFY_RE = re.compile(
    r"(?<![\w.>])((?:\w+(?:\.|->))*\w+)\s*(?:\.|->)\s*"
    r"notify_(?:one|all)\s*\(")
_WAIT_RE = re.compile(
    r"(?<![\w.>])((?:\w+(?:\.|->))*\w+)\s*(?:\.|->)\s*"
    r"wait(?:_for|_until)?\s*\(\s*(\w+)")


def _last_component(expr: str) -> str:
    return re.split(r"\.|->", expr)[-1].strip()


def _split_args(argtext: str) -> List[str]:
    args, depth, cur = [], 0, []
    for ch in argtext:
        if ch in "(<[":
            depth += 1
        elif ch in ")>]":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        args.append("".join(cur).strip())
    return args


def extract_file_facts(stripped: str) -> Dict:
    """Per-file lock facts: class members, and per-function events (guard
    constructions with scope extents, raw lock calls, notifies, waits,
    function-local mutex declarations). All names unresolved; resolution is
    whole-program."""
    scopes = cpputil.scan_scopes(stripped)

    members: Dict[str, Dict[str, List[str]]] = {}
    for m in list(_MUTEX_DECL_RE.finditer(stripped)) + \
            list(_CV_DECL_RE.finditer(stripped)):
        is_cv = "condition_variable" in m.group(0)
        cls_scope = cpputil.enclosing_class(scopes, m.start())
        fn_scope = cpputil.enclosing_function(scopes, m.start())
        if fn_scope is not None and (
                cls_scope is None or fn_scope.start > cls_scope.start):
            continue  # function-local: recorded below per function
        cls = cls_scope.name if cls_scope is not None else ""
        slot = members.setdefault(cls, {"mutexes": [], "condvars": []})
        slot["condvars" if is_cv else "mutexes"].append(m.group(1))

    functions: List[Dict] = []
    for fn in scopes:
        if fn.kind != "function":
            continue
        # Skip functions nested inside another function's extent (lambdas
        # misclassified etc. — the outer function already covers the text).
        body = stripped[fn.start:fn.end]
        base = fn.start

        local_mutexes = [m.group(1)
                         for m in _MUTEX_DECL_RE.finditer(body)]

        guards = []  # {var, mutexes:[expr], offset, line, scope_end}
        for m in _GUARD_RE.finditer(body):
            open_ch = m.group(0)[-1]
            if open_ch == "(":
                close = cpputil.match_paren(body, m.end() - 1)
            else:
                close = cpputil.match_brace(body, m.end() - 1)
            argtext = body[m.end():close - 1]
            args = _split_args(argtext)
            mutex_args = [a for a in args
                          if a and not a.startswith("std::")
                          and re.fullmatch(r"[\w.\->]+", a)]
            # Innermost block containing the construction = guard lifetime.
            scope_end = fn.end
            for s in scopes:
                if s.start <= base + m.start() < s.end and \
                        s.start > fn.start and s.end < scope_end:
                    scope_end = s.end
            guards.append({
                "var": m.group(2),
                "mutexes": mutex_args,
                "offset": base + m.start(),
                "line": cpputil.line_of_offset(stripped, base + m.start()),
                "scope_end": scope_end,
            })

        raw_calls = []
        for m in _LOCKCALL_RE.finditer(body):
            raw_calls.append({
                "expr": m.group(1),
                "op": m.group(2),
                "offset": base + m.start(),
                "line": cpputil.line_of_offset(stripped, base + m.start()),
            })

        notifies = []
        for m in _NOTIFY_RE.finditer(body):
            notifies.append({
                "expr": m.group(1),
                "offset": base + m.start(),
                "line": cpputil.line_of_offset(stripped, base + m.start()),
            })

        waits = []
        for m in _WAIT_RE.finditer(body):
            waits.append({"cv": m.group(1), "guard": m.group(2)})

        if guards or raw_calls or notifies or waits or local_mutexes:
            functions.append({
                "name": fn.name,
                "cls": fn.cls,
                "line": fn.line,
                "local_mutexes": local_mutexes,
                "guards": guards,
                "raw_calls": raw_calls,
                "notifies": notifies,
                "waits": waits,
            })
    return {"members": members, "functions": functions}


class _Index:
    def __init__(self, per_file: Dict[str, Dict]):
        self.mutex_classes: Dict[str, List[str]] = {}
        self.cv_classes: Dict[str, List[str]] = {}
        for facts in per_file.values():
            for cls, slot in facts["members"].items():
                for name in slot["mutexes"]:
                    self.mutex_classes.setdefault(name, []).append(cls)
                for name in slot["condvars"]:
                    self.cv_classes.setdefault(name, []).append(cls)
        self.class_mutexes: Dict[str, set] = {}
        self.class_cvs: Dict[str, set] = {}
        for facts in per_file.values():
            for cls, slot in facts["members"].items():
                self.class_mutexes.setdefault(cls, set()).update(
                    slot["mutexes"])
                self.class_cvs.setdefault(cls, set()).update(
                    slot["condvars"])

    def _resolve(self, expr: str, cls: str, table: Dict[str, List[str]],
                 class_table: Dict[str, set]) -> Optional[str]:
        name = _last_component(expr)
        if name not in table:
            return None
        if cls and name in class_table.get(cls, ()):  # method's own class
            return f"{cls}::{name}"
        owners = sorted(set(table[name]))
        if len(owners) == 1:
            return f"{owners[0]}::{name}"
        return f"?::{name}"  # ambiguous: known mutex/cv, unknown class

    def resolve_mutex(self, expr: str, cls: str) -> Optional[str]:
        return self._resolve(expr, cls, self.mutex_classes,
                             self.class_mutexes)

    def resolve_cv(self, expr: str, cls: str) -> Optional[str]:
        return self._resolve(expr, cls, self.cv_classes, self.class_cvs)


def check(per_file: Dict[str, Dict]) -> List[Finding]:
    """per_file: rel path -> extract_file_facts() result."""
    index = _Index(per_file)
    findings: List[Finding] = []

    # cv -> mutexes it is waited on with (whole-program association).
    cv_mutex: Dict[str, set] = {}
    for rel, facts in per_file.items():
        for fn in facts["functions"]:
            guard_mutex = {}
            for g in fn["guards"]:
                if g["mutexes"]:
                    guard_mutex[g["var"]] = g["mutexes"][0]
            for w in fn["waits"]:
                cv_q = index.resolve_cv(w["cv"], fn["cls"])
                mexpr = guard_mutex.get(w["guard"])
                if cv_q is None or mexpr is None:
                    continue
                m_q = index.resolve_mutex(mexpr, fn["cls"])
                if m_q is not None:
                    cv_mutex.setdefault(cv_q, set()).add(m_q)

    # Pairwise nested acquisition order, collected across all functions:
    # (A, B) -> [(rel, function, line)] where B was acquired inside A.
    pair_sites: Dict[Tuple[str, str], List[Tuple[str, str, int]]] = {}

    for rel in sorted(per_file):
        facts = per_file[rel]
        for fn in facts["functions"]:
            guard_vars = {g["var"] for g in fn["guards"]}
            local_mutexes = set(fn["local_mutexes"])

            # --- lock-raw ------------------------------------------------
            for call in fn["raw_calls"]:
                expr = call["expr"]
                last = _last_component(expr)
                if last in guard_vars:
                    continue  # unique_lock::lock()/unlock() — RAII-owned
                resolved = index.resolve_mutex(expr, fn["cls"])
                if resolved is None and last not in local_mutexes:
                    continue  # not provably a mutex (e.g. a parameter)
                findings.append(
                    (rel, call["line"], "lock-raw",
                     f"raw .{call['op']}() on mutex '{expr}' in "
                     f"{fn['cls'] or '<free>'}::{fn['name']} — an early "
                     "return or exception between lock and unlock leaves it "
                     "held forever; use std::lock_guard / std::unique_lock"))

            # --- lock-notify-unheld --------------------------------------
            held_mutexes = set()
            for g in fn["guards"]:
                for mexpr in g["mutexes"]:
                    m_q = index.resolve_mutex(mexpr, fn["cls"])
                    if m_q is not None:
                        held_mutexes.add(m_q)
            for call in fn["notifies"]:
                cv_q = index.resolve_cv(call["expr"], fn["cls"])
                if cv_q is None:
                    continue
                wanted = cv_mutex.get(cv_q)
                if wanted:
                    ok = bool(wanted & held_mutexes) or \
                        any(w.startswith("?::") or h.startswith("?::")
                            for w in wanted for h in held_mutexes)
                else:
                    ok = bool(held_mutexes)
                if not ok:
                    pair = sorted(wanted)[0] if wanted else "its mutex"
                    findings.append(
                        (rel, call["line"], "lock-notify-unheld",
                         f"notify on condvar '{call['expr']}' in "
                         f"{fn['cls'] or '<free>'}::{fn['name']} without "
                         f"ever holding {pair} in this function — a waiter "
                         "can observe the predicate, decide to sleep, and "
                         "miss this wake (or the condvar can be destroyed "
                         "mid-notify: the ~ShardedFolder race TSan caught "
                         "in PR 8); take the guard before notifying"))

            # --- nested acquisition pairs --------------------------------
            resolved_guards = []
            for g in fn["guards"]:
                quals = []
                for mexpr in g["mutexes"]:
                    m_q = index.resolve_mutex(mexpr, fn["cls"])
                    if m_q is not None and not m_q.startswith("?::"):
                        quals.append(m_q)
                resolved_guards.append((g, quals))
            for i, (ga, quals_a) in enumerate(resolved_guards):
                for gb, quals_b in resolved_guards[i + 1:]:
                    if not (ga["offset"] < gb["offset"] < ga["scope_end"]):
                        continue  # not nested: sequential scopes are free
                    for a in quals_a:
                        for b in quals_b:
                            if a != b:
                                pair_sites.setdefault((a, b), []).append(
                                    (rel, f"{fn['cls'] or '<free>'}::"
                                          f"{fn['name']}", gb["line"]))

    for (a, b), sites in sorted(pair_sites.items()):
        if (b, a) not in pair_sites or (a, b) > (b, a):
            continue  # report each conflicting pair once, from one side
        other = pair_sites[(b, a)]
        for rel, fname, line in sites:
            o_rel, o_fname, o_line = other[0]
            findings.append(
                (rel, line, "lock-order",
                 f"inconsistent lock order: {fname} nests {b} inside {a}, "
                 f"but {o_fname} ({o_rel}:{o_line}) nests {a} inside {b} — "
                 "two threads taking the pair in opposite orders deadlock; "
                 "pick one global order"))
        for rel, fname, line in other:
            s_rel, s_fname, s_line = sites[0]
            findings.append(
                (rel, line, "lock-order",
                 f"inconsistent lock order: {fname} nests {a} inside {b}, "
                 f"but {s_fname} ({s_rel}:{s_line}) nests {b} inside {a} — "
                 "two threads taking the pair in opposite orders deadlock; "
                 "pick one global order"))
    return findings
