"""Per-file fact extraction. Everything a pass needs from a single file is
computed here once and is JSON-serializable, so the driver can cache it per
(mtime, size) and whole-program passes stay fast on warm runs."""

import re
from typing import Dict, List, Tuple

from . import cpputil, determinism, locks, patterns

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)

# Inline suppression: `// lint-allow: <rule-id> <reason>` (raw text — the
# stripper removes comments). The reason is mandatory and must carry actual
# words: a bare rule id is an unreviewable mute.
LINT_ALLOW_RE = re.compile(r"//\s*lint-allow:\s*([\w-]+)[ \t]*([^\n]*)")

MIN_REASON_WORDS = 2


def extract(rel: str, raw_text: str) -> Dict:
    stripped = cpputil.strip_comments_and_strings(raw_text)
    lines = stripped.split("\n")

    # Includes come from the RAW text: the stripper blanks string-literal
    # contents, which would erase the include target. The ^\s*# anchor keeps
    # `// #include "..."` from matching.
    includes: List[Tuple[int, str]] = []
    for m in INCLUDE_RE.finditer(raw_text):
        line = raw_text.count("\n", 0, m.start()) + 1
        includes.append((line, m.group(1)))

    suppressions = []  # (line, rule, reason_ok)
    for idx, raw_line in enumerate(raw_text.split("\n")):
        m = LINT_ALLOW_RE.search(raw_line)
        if m:
            reason = m.group(2).strip()
            reason_ok = len(reason.split()) >= MIN_REASON_WORDS
            suppressions.append((idx + 1, m.group(1), reason_ok))

    per_file_findings = []  # (line, rule, message) from per-file passes
    per_file_findings.extend(patterns.run_on_file(rel, raw_text, lines))
    per_file_findings.extend(determinism.run_on_file(rel, stripped))

    return {
        "includes": includes,
        "suppressions": suppressions,
        "per_file_findings": per_file_findings,
        "locks": locks.extract_file_facts(stripped),
    }
