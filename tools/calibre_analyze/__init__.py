"""calibre_analyze: whole-program static-analysis framework for the Calibre
tree (stdlib-only by design — no pip deps).

Grown out of tools/calibre_lint.py (nine per-file pattern rules) into four
passes that together machine-check the invariants every results-bearing PR
rests on:

  patterns      the original per-file contract rules (determinism-rng,
                pool-bypass, thread-funnel, check-not-assert, blocking-sleep,
                streaming-fold, residual-in-store, serde-count-guard,
                pragma-once)
  layering      parses every #include edge under src/ and checks it against
                the declared module DAG; fails on upward edges, on modules
                missing from the declaration, and on file-level include
                cycles
  locks         indexes mutex/condvar members per class across headers and
                sources, then flags raw .lock()/.unlock() outside RAII
                guards, notify_one/notify_all on a condvar whose guarding
                mutex is never held in the enclosing function, and
                inconsistent pairwise mutex acquisition order across
                functions
  determinism   flags traversal of unordered_map/unordered_set in src/fl/,
                src/algos/ and src/comm/ whenever the loop body feeds an
                accumulator, a serializer, or RoundStats — hash-table
                iteration order is nondeterministic and would silently break
                the frozen f32 final-state hash

Inline suppressions: `// lint-allow: <rule-id> <reason>` on the finding's
line (or the line directly above) suppresses that rule there. The reason
string is mandatory; a lint-allow without one is itself a finding
(bad-suppression) and suppresses nothing.

Entry point: tools/calibre_lint.py (kept as the ctest-facing CLI shim).
"""

ANALYZER_VERSION = 2  # bump to invalidate on-disk fact caches
