"""The original per-file contract rules (pass name: "patterns"). Each rule
protects a contract established by an earlier PR — the table in DESIGN.md §9.1
maps rule -> pass -> contract -> PR."""

import re
from typing import List, Tuple

Finding = Tuple[int, str, str]  # (line, rule, message)


def _in_src(rel: str) -> bool:
    return rel.startswith("src/")


def _src_except(*allowed: str):
    def pred(rel: str) -> bool:
        return _in_src(rel) and rel not in allowed

    return pred


def _only(*files: str):
    def pred(rel: str) -> bool:
        return rel in files

    return pred


DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w:.>])s?rand\s*\("),
     "libc rand()/srand() breaks run-to-run determinism; use the seeded "
     "RNG in tensor/rng.cc"),
    (re.compile(r"std::random_device"),
     "std::random_device is nondeterministic entropy; derive streams from "
     "the experiment seed via tensor/rng.cc"),
    (re.compile(r"(?<![\w:.>])time\s*\("),
     "wall-clock time() in library code breaks bitwise reproducibility; "
     "seed-derived randomness only"),
    (re.compile(r"(?<![\w:.>])clock\s*\("),
     "clock() in library code breaks bitwise reproducibility"),
    (re.compile(r"gettimeofday"),
     "gettimeofday in library code breaks bitwise reproducibility"),
    (re.compile(r"system_clock"),
     "std::chrono::system_clock is wall-clock time; use steady_clock for "
     "durations, never for values that feed computation"),
]

POOL_PATTERNS = [
    (re.compile(r"new\s+(?:float|double)\s*\["),
     "raw float-array new[] bypasses the tensor pool; allocate a Tensor "
     "(or extend tensor/pool.*)"),
    (re.compile(r"(?<![\w:.>])(?:malloc|calloc|realloc|free)\s*\("),
     "malloc/free bypasses the pooled, aligned, leak-accounted tensor "
     "storage"),
    (re.compile(r"::operator\s+(?:new|delete)"),
     "::operator new/delete is reserved to the pool's raw_alloc/raw_free"),
    (re.compile(r"std::vector<\s*float\s*,"),
     "std::vector<float, Alloc> is hand-rolled tensor storage; only "
     "tensor/tensor.* may bind storage to PoolAllocator"),
    (re.compile(r"PoolAllocator"),
     "PoolAllocator must not leak outside tensor/{pool,tensor}.*"),
    (re.compile(r"(?<![\w:.>])aligned_alloc\s*\("),
     "aligned_alloc bypasses the pool; use Tensor storage"),
]

SLEEP_PATTERNS = [
    (re.compile(r"sleep_for\s*\("),
     "sleep_for on a pool worker serializes every queued dispatch behind "
     "the nap; schedule a deferred callback through common/timer_queue.* "
     "instead"),
    (re.compile(r"sleep_until\s*\("),
     "sleep_until blocks a pool worker; use common/timer_queue.*"),
    (re.compile(r"(?<![\w:.>])(?:usleep|nanosleep)\s*\("),
     "libc sleeps block a pool worker; use common/timer_queue.*"),
]

THREAD_PATTERNS = [
    (re.compile(r"std::thread\b"),
     "raw std::thread escapes the ThreadPool; TSan-lane coverage and "
     "deterministic partitioning only hold for pool workers"),
    (re.compile(r"std::jthread\b"),
     "raw std::jthread escapes the ThreadPool"),
    (re.compile(r"std::async\b"),
     "std::async spawns unpooled threads; submit to ThreadPool instead"),
    (re.compile(r"pthread_create"),
     "pthread_create escapes the ThreadPool"),
]

ASSERT_PATTERNS = [
    (re.compile(r"\bassert\s*\("),
     "assert() compiles out in release builds; library invariants must use "
     "CALIBRE_CHECK* so corrupted state can never produce results"),
    (re.compile(r"#\s*include\s*<(?:cassert|assert\.h)>"),
     "<cassert> has no place in library code; use common/check.h"),
]

STREAMING_PATTERNS = [
    (re.compile(r"std::vector<\s*(?:fl::)?ClientUpdate\b"),
     "the runner must fold arriving updates through "
     "Algorithm::make_aggregator; buffering decoded ClientUpdates "
     "reintroduces O(cohort * model) server memory at scale"),
    (re.compile(r"(?:\.|->)aggregate\s*\("),
     "the runner may not call batch aggregate(); use "
     "make_aggregator()->fold()/finish() so memory stays O(model) — batch "
     "semantics are preserved by the BatchAggregatorAdapter default"),
    (re.compile(r"\b[Ss]hard\w*(?:\[[^\]]*\])?\s*"
                r"(?:(?:\.|->)\s*\w+\s*(?:\[[^\]]*\])?\s*)*"
                r"(?:\.|->)\s*finish\s*\("),
     "a shard-local aggregator must merge() into the round root before any "
     "finish(); finishing a shard partial commits a partial average and "
     "silently breaks the sharded-fold bit-identity contract"),
]

RESIDUAL_PATTERNS = [
    (re.compile(r"\b\w*residual\w*", re.IGNORECASE),
     "error-feedback residual state is per-client and must survive client "
     "re-selection gaps; it lives in the algos::ClientStore inside "
     "fl/update_codec.*, never in the runner's per-round containers"),
    (re.compile(
        r"std::(?:unordered_)?map<\s*int\s*,\s*std::vector<\s*float\b"),
     "hand-rolled per-client float state; per-client state goes through "
     "algos::ClientStore so sharded locking and re-selection survival stay "
     "uniform"),
]


def _fl_except_update_codec(rel: str) -> bool:
    return rel.startswith("src/fl/") and rel not in (
        "src/fl/update_codec.h", "src/fl/update_codec.cc")


PATTERN_RULES = [
    ("streaming-fold", _only("src/fl/runner.cc", "src/fl/shard_fold.cc"),
     STREAMING_PATTERNS),
    ("residual-in-store", _fl_except_update_codec, RESIDUAL_PATTERNS),
    ("determinism-rng",
     _src_except("src/tensor/rng.cc", "src/tensor/rng.h"),
     DETERMINISM_PATTERNS),
    ("pool-bypass",
     _src_except("src/tensor/pool.h", "src/tensor/pool.cc",
                 "src/tensor/tensor.h", "src/tensor/tensor.cc"),
     POOL_PATTERNS),
    ("thread-funnel",
     _src_except("src/common/thread_pool.h", "src/common/thread_pool.cc"),
     THREAD_PATTERNS),
    ("blocking-sleep",
     _src_except("src/common/timer_queue.h", "src/common/timer_queue.cc"),
     SLEEP_PATTERNS),
    ("check-not-assert", _in_src, ASSERT_PATTERNS),
]

# serde-count-guard ---------------------------------------------------------

READ_COUNT_RE = re.compile(
    r"\b(\w+)\s*=\s*(?:\w+(?:\.|->))?read_u(?:8|16|32|64)\s*\(\s*\)")


def _alloc_use_re(var: str) -> re.Pattern:
    v = re.escape(var)
    return re.compile(
        r"(?:"
        rf"\.\s*(?:resize|reserve)\s*\(\s*{v}\b"       # x.resize(count ...
        rf"|(?:std::)?(?:vector|string)\s*<[^;()]*>\s*\w*\s*[({{]\s*{v}\b"
        rf"|(?:std::)?string\s+\w+\s*[({{]\s*{v}\b"    # std::string s(count
        rf"|new\b[^;]*\[\s*{v}\s*\]"                   # new T[count]
        r")")


def check_serde_count_guard(rel: str, lines: List[str]) -> List[Finding]:
    if not rel.startswith("src/comm/"):
        return []
    findings = []
    for idx, line in enumerate(lines):
        m = READ_COUNT_RE.search(line)
        if not m:
            continue
        var = m.group(1)
        use_re = _alloc_use_re(var)
        guarded = False
        # Scan forward to the end of the enclosing scope (approximated by a
        # fixed window; count-decode-allocate sequences are local by style).
        for j in range(idx + 1, min(idx + 40, len(lines))):
            if "CALIBRE_CHECK" in lines[j] and re.search(
                    rf"\b{re.escape(var)}\b", lines[j]):
                guarded = True
            if use_re.search(lines[j]):
                if not guarded:
                    findings.append(
                        (j + 1, "serde-count-guard",
                         f"allocation sized by untrusted wire count '{var}' "
                         f"(read at line {idx + 1}) without a CALIBRE_CHECK* "
                         "validating it against the remaining bytes first"))
                break
    return findings


def check_pragma_once(rel: str, raw_text: str) -> List[Finding]:
    if not rel.endswith(".h"):
        return []
    if "#pragma once" in raw_text:
        return []
    return [(1, "pragma-once", "header is missing #pragma once")]


PASS_RULE_IDS = [rid for rid, _, _ in PATTERN_RULES] + [
    "serde-count-guard", "pragma-once"]


def run_on_file(rel: str, raw_text: str, lines: List[str]) -> List[Finding]:
    """All per-file pattern findings for one file. `lines` is the stripped
    text split on newlines."""
    findings: List[Finding] = []
    for rule_id, scope, pats in PATTERN_RULES:
        if not scope(rel):
            continue
        for regex, message in pats:
            for idx, line in enumerate(lines):
                if regex.search(line):
                    findings.append((idx + 1, rule_id, message))
    findings.extend(check_serde_count_guard(rel, lines))
    findings.extend(check_pragma_once(rel, raw_text))
    return findings
