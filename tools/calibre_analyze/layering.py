"""Include-graph layering pass (rules: layering-dag, layering-cycle).

Parses every `#include "..."` edge under src/ and checks it against the
declared module DAG. A module is the first path component under src/
(src/fl/runner.cc -> fl). Two failure modes:

  layering-dag    an edge to a module that is not in the including module's
                  declared dependency set (an upward or sideways include),
                  or a module that is missing from the declaration entirely
  layering-cycle  a file-level #include cycle (pragma once hides these at
                  compile time; they still mean the layering is lying)

The declared DAG mirrors DESIGN.md §5 / §9.1:

    common -> tensor -> autograd -> nn -> ssl/cluster -> algos -> fl

with `data` beside tensor, `flapi` (the algorithm-interface layer, namespace
calibre::fl) between nn and core/algos, `core` (the Calibre method) between
ssl and algos, and `comm` / `metrics` as side-layers that must NEVER include
fl — the transport and the reporting layer cannot depend on the
orchestration loop they serve."""

from typing import Dict, List, Set, Tuple

Finding = Tuple[str, int, str, str]  # (path, line, rule, message)

# module -> modules it may include. Absence of an edge here is a contract:
# adding one is a design decision that belongs in DESIGN.md, not a lint fix.
MODULE_DEPS: Dict[str, Set[str]] = {
    "common":   set(),
    "tensor":   {"common"},
    "data":     {"common", "tensor"},
    "autograd": {"common", "tensor"},
    "comm":     {"common"},
    "nn":       {"common", "tensor", "autograd", "comm"},
    "cluster":  {"common", "tensor"},
    "ssl":      {"common", "tensor", "autograd", "nn", "cluster"},
    "flapi":    {"common", "tensor", "data", "autograd", "comm", "nn"},
    "metrics":  {"common", "tensor", "comm"},
    "core":     {"common", "tensor", "data", "autograd", "nn", "ssl",
                 "cluster", "flapi"},
    "algos":    {"common", "tensor", "data", "autograd", "nn", "ssl",
                 "cluster", "core", "flapi"},
    "fl":       {"common", "tensor", "data", "autograd", "comm", "nn",
                 "cluster", "ssl", "core", "algos", "flapi"},
}

RULES = ("layering-dag", "layering-cycle")


def _module_of(rel: str):
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def check(file_includes: Dict[str, List[Tuple[int, str]]],
          module_deps: Dict[str, Set[str]] = None) -> List[Finding]:
    """file_includes: rel path -> [(line, include target)] for every scanned
    file; targets are repo-src-relative ("fl/runner.h"). Only src/ files and
    edges that resolve to src/ files participate."""
    deps = MODULE_DEPS if module_deps is None else module_deps
    findings: List[Finding] = []
    src_files = {rel for rel in file_includes if rel.startswith("src/")}

    # --- declared-DAG check ------------------------------------------------
    for rel in sorted(src_files):
        mod = _module_of(rel)
        if mod is None:
            continue
        if mod not in deps:
            findings.append(
                (rel, 1, "layering-dag",
                 f"module '{mod}' is not declared in the module DAG "
                 "(tools/calibre_analyze/layering.py MODULE_DEPS); a new "
                 "top-level src/ module must declare its place in the "
                 "layering before it can ship"))
            continue
        for line, target in file_includes[rel]:
            tmod = target.split("/")[0]
            # The module contract applies whenever the first path component
            # names a declared module, even if the exact file is not in the
            # scanned set; everything else (system, third-party, same-dir
            # relative includes) is out of scope.
            if tmod not in deps and "src/" + target not in src_files:
                continue
            if tmod == mod or tmod in deps[mod]:
                continue
            if tmod not in deps:
                reason = f"undeclared module '{tmod}'"
            elif mod in deps.get(tmod, set()):
                reason = (f"upward edge: '{tmod}' sits ABOVE '{mod}' in the "
                          "declared DAG")
            else:
                reason = (f"'{tmod}' is not in '{mod}''s declared "
                          "dependency set")
            findings.append(
                (rel, line, "layering-dag",
                 f"#include \"{target}\" violates the module DAG — {reason}"
                 f" (declared deps of '{mod}': "
                 f"{sorted(deps[mod]) or 'none'})"))

    # --- file-level include-cycle check ------------------------------------
    graph: Dict[str, List[Tuple[str, int]]] = {}
    for rel in src_files:
        edges = []
        for line, target in file_includes[rel]:
            dst = "src/" + target
            if dst in src_files:
                edges.append((dst, line))
        graph[rel] = edges

    color: Dict[str, int] = {}  # 0 absent, 1 in-stack, 2 done
    reported_cycles = set()

    def visit(node: str, stack: List[Tuple[str, int]]):
        color[node] = 1
        for dst, line in graph.get(node, ()):
            if color.get(dst, 0) == 1:
                in_stack = [i for i, (n, _) in enumerate(stack) if n == dst]
                cycle_start = in_stack[0] if in_stack else len(stack)
                cycle = stack[cycle_start:] + [(node, line)]
                members = tuple(sorted(n for n, _ in cycle))
                if members in reported_cycles:
                    continue
                reported_cycles.add(members)
                chain = " -> ".join([n for n, _ in cycle] + [dst])
                # Report on every file in the cycle, at its outgoing edge:
                # any of them is a legitimate place to break it.
                edge_lines = {}
                for idx, (n, _) in enumerate(cycle):
                    nxt = cycle[idx + 1][0] if idx + 1 < len(cycle) else dst
                    for d2, l2 in graph.get(n, ()):
                        if d2 == nxt:
                            edge_lines[n] = l2
                            break
                for n, _ in cycle:
                    findings.append(
                        (n, edge_lines.get(n, 1), "layering-cycle",
                         f"#include cycle: {chain} (#pragma once hides this "
                         "at compile time; break the cycle with a forward "
                         "declaration or an interface split)"))
            elif color.get(dst, 0) == 0:
                visit(dst, stack + [(node, line)])
        color[node] = 2

    for rel in sorted(src_files):
        if color.get(rel, 0) == 0:
            visit(rel, [])

    return findings
