"""Determinism-hazard pass (rule: unordered-iteration).

unordered_map / unordered_set iteration order is a function of the hash
seed, the insertion history and the bucket count — three things no test
pins. Traversing one is fine when the body's effect is order-independent
(marking flags, filling keyed slots); it silently breaks the frozen f32
final-state hash the moment the body *accumulates* (float sums are not
associative), *serializes* (wire bytes become scheduling-dependent), or
feeds RoundStats (the history table the experiments print). This pass flags
exactly those traversals, in the modules where the hash contract lives:
src/fl/, src/algos/ and src/comm/."""

import re
from typing import List, Tuple

from . import cpputil

Finding = Tuple[int, str, str]

SCOPE_PREFIXES = ("src/fl/", "src/algos/", "src/comm/")

RULE = "unordered-iteration"

_DECL_RE = re.compile(r"std::unordered_(?:map|set)\s*<")
_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;()]*?:\s*([\w.\->]+)\s*\)\s*")
_ITER_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;]*=\s*([\w.\->]+)\s*(?:\.|->)\s*(?:c?begin)\s*\(")

# Sinks: what makes hash-order traversal a correctness hazard.
_SINK_RES = [
    (re.compile(r"[-+*/|&^]="), "accumulates into order-sensitive state"),
    (re.compile(r"\.\s*(?:push_back|emplace_back|emplace|insert|append)"
                r"\s*\("),
     "appends to a container in hash-table order"),
    (re.compile(r"\bwrite_\w+\s*\(|\bWriter\b|\bserializ", re.IGNORECASE),
     "serializes in hash-table order"),
    (re.compile(r"\bRoundStats\b|\bround_stats\b|\w+_stats\b|\bstats\s*"
                r"(?:\.|->)"),
     "feeds RoundStats / statistics counters"),
]
_INCDEC_RE = re.compile(r"(?:\+\+|--)\s*(\w+)|(\w+)\s*(?:\+\+|--)")


def _unordered_vars(stripped: str) -> set:
    """Names declared (member, local, or parameter) with an unordered
    container type in this file."""
    names = set()
    for m in _DECL_RE.finditer(stripped):
        open_angle = m.end() - 1
        depth = 0
        i, n = open_angle, len(stripped)
        while i < n:
            if stripped[i] == "<":
                depth += 1
            elif stripped[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            elif stripped[i] in ";{}":
                break  # unbalanced (macro soup): give up on this decl
            i += 1
        if i >= n or stripped[i] != ">":
            continue
        tail = stripped[i + 1:i + 120]
        dm = re.match(r"\s*[&*]*\s*(\w+)\s*(?:[;={(,)]|\[)", tail)
        if dm and dm.group(1) not in ("const", "constexpr"):
            names.add(dm.group(1))
    return names


def _loop_body(stripped: str, after: int) -> Tuple[str, int]:
    """Returns (body_text, end_offset) for the statement following a for(..)
    header ending at `after`: a brace block, or a single statement up to the
    next ';'."""
    i, n = after, len(stripped)
    while i < n and stripped[i] in " \t\n":
        i += 1
    if i < n and stripped[i] == "{":
        end = cpputil.match_brace(stripped, i)
        return stripped[i:end], end
    end = stripped.find(";", i)
    if end == -1:
        end = n
    return stripped[i:end + 1], end + 1


def _loop_header_names(header: str) -> set:
    return set(re.findall(r"\b\w+\b", header))


def _body_sink(body: str, header: str):
    for regex, why in _SINK_RES:
        if regex.search(body):
            return why
    declared = _loop_header_names(header)
    for m in _INCDEC_RE.finditer(body):
        name = m.group(1) or m.group(2)
        if name and name not in declared:
            return f"increments accumulator '{name}' per element"
    return None


def run_on_file(rel: str, stripped: str) -> List[Finding]:
    if not rel.startswith(SCOPE_PREFIXES):
        return []
    unordered = _unordered_vars(stripped)
    if not unordered:
        return []
    findings: List[Finding] = []
    seen_offsets = set()
    for regex in (_RANGE_FOR_RE, _ITER_FOR_RE):
        for m in regex.finditer(stripped):
            target = m.group(1)
            last = re.split(r"\.|->", target)[-1]
            if last not in unordered:
                continue
            # Find the true end of the for-header parens (the regex stops at
            # the first ')', fine for range-for; redo properly for iterators).
            open_paren = stripped.find("(", m.start())
            header_end = cpputil.match_paren(stripped, open_paren)
            body, _ = _loop_body(stripped, header_end)
            header = stripped[m.start():header_end]
            why = _body_sink(body, header)
            if why is None:
                continue
            if m.start() in seen_offsets:
                continue
            seen_offsets.add(m.start())
            line = cpputil.line_of_offset(stripped, m.start())
            findings.append(
                (line, RULE,
                 f"traversal of unordered container '{last}' {why}: "
                 "hash-table iteration order is nondeterministic and would "
                 "silently break the frozen f32 final-state hash — iterate "
                 "a sorted key list or an order-preserving container "
                 "instead"))
    return findings
