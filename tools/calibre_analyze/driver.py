"""Driver: file collection, fact caching, pass orchestration, suppression
handling, fixture self-test, and the CLI (text/JSON output, per-pass
timing). tools/calibre_lint.py is the thin entry-point shim."""

import argparse
import json
import os
import sys
import time
from typing import Dict, List, NamedTuple, Optional, Set

from . import cache as cache_mod
from . import facts as facts_mod
from . import determinism, layering, locks, patterns

SCANNED_DIRS = ("src", "apps", "bench")
SOURCE_EXTS = (".h", ".cc", ".cpp")

PASS_NAMES = ("patterns", "layering", "locks", "determinism")

PASS_RULES: Dict[str, List[str]] = {
    "patterns": list(patterns.PASS_RULE_IDS),
    "layering": list(layering.RULES),
    "locks": list(locks.RULES),
    "determinism": [determinism.RULE],
}
# bad-suppression is pass-independent: it fires whenever any pass runs.
META_RULES = ["bad-suppression"]

ALL_RULE_IDS = [r for p in PASS_NAMES for r in PASS_RULES[p]] + META_RULES

RULE_TO_PASS = {r: p for p, rules in PASS_RULES.items() for r in rules}
RULE_TO_PASS["bad-suppression"] = "suppressions"


class Finding(NamedTuple):
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str

    @property
    def pass_name(self) -> str:
        return RULE_TO_PASS.get(self.rule, "?")


def collect_files(root: str) -> List[str]:
    rels = []
    for top in SCANNED_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, dirnames, filenames in os.walk(top_path):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    rels.append(os.path.relpath(full, root).replace(
                        os.sep, "/"))
    return rels


class AnalysisResult(NamedTuple):
    findings: List[Finding]
    suppressed: int
    files: int
    timings: List  # [(phase, seconds)]
    cache_hits: int
    cache_misses: int


def _apply_suppressions(findings: List[Finding],
                        per_file_facts: Dict[str, Dict],
                        active_rules: Set[str]):
    """Returns (kept findings + bad-suppression findings, suppressed count).
    A `// lint-allow: <rule> <reason>` on the finding's line or the line
    directly above suppresses that rule there — but only with a real reason
    (>= 2 words) and a known rule id; otherwise the lint-allow itself is a
    bad-suppression finding and mutes nothing."""
    allow: Dict[tuple, bool] = {}
    out: List[Finding] = []
    for rel, facts in per_file_facts.items():
        for line, rule, reason_ok in facts["suppressions"]:
            known = rule in ALL_RULE_IDS
            if not known or not reason_ok:
                why = ("unknown rule id" if not known
                       else "missing or too-short reason")
                out.append(Finding(
                    rel, line, "bad-suppression",
                    f"lint-allow for '{rule}' rejected ({why}): write "
                    "`// lint-allow: <rule-id> <reason>` with a reason a "
                    "reviewer can audit"))
                continue
            allow[(rel, line, rule)] = True
            allow[(rel, line + 1, rule)] = True
    suppressed = 0
    for f in findings:
        if allow.get((f.path, f.line, f.rule)):
            suppressed += 1
        else:
            out.append(f)
    out = [f for f in out if f.rule in active_rules]
    return out, suppressed


def analyze_tree(root: str, active_passes: List[str],
                 cache_path: Optional[str] = None,
                 module_deps=None) -> AnalysisResult:
    timings = []
    t0 = time.monotonic()
    rels = collect_files(root)
    fact_cache = cache_mod.FactCache(cache_path)
    per_file_facts: Dict[str, Dict] = {}
    for rel in rels:
        full = os.path.join(root, rel)
        facts = fact_cache.lookup(rel, full)
        if facts is None:
            with open(full, "r", encoding="utf-8", errors="replace") as fh:
                raw = fh.read()
            facts = facts_mod.extract(rel, raw)
            fact_cache.store(rel, full, facts)
        per_file_facts[rel] = facts
    fact_cache.prune(rels)
    fact_cache.save()
    timings.append(("parse", time.monotonic() - t0))

    findings: List[Finding] = []
    active_rules: Set[str] = set(META_RULES)
    for p in active_passes:
        active_rules.update(PASS_RULES[p])

    per_file_pass_names = [p for p in ("patterns", "determinism")
                           if p in active_passes]
    if per_file_pass_names:
        t0 = time.monotonic()
        wanted = set()
        for p in per_file_pass_names:
            wanted.update(PASS_RULES[p])
        for rel, facts in per_file_facts.items():
            for line, rule, message in facts["per_file_findings"]:
                if rule in wanted:
                    findings.append(Finding(rel, line, rule, message))
        timings.append(("+".join(per_file_pass_names),
                        time.monotonic() - t0))

    if "layering" in active_passes:
        t0 = time.monotonic()
        file_includes = {
            rel: [tuple(e) for e in facts["includes"]]
            for rel, facts in per_file_facts.items()
            if rel.startswith("src/")}
        for path, line, rule, message in layering.check(
                file_includes, module_deps):
            findings.append(Finding(path, line, rule, message))
        timings.append(("layering", time.monotonic() - t0))

    if "locks" in active_passes:
        t0 = time.monotonic()
        lock_facts = {rel: facts["locks"]
                      for rel, facts in per_file_facts.items()
                      if rel.startswith("src/")}
        for path, line, rule, message in locks.check(lock_facts):
            findings.append(Finding(path, line, rule, message))
        timings.append(("locks", time.monotonic() - t0))

    findings, suppressed = _apply_suppressions(
        findings, per_file_facts, active_rules)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return AnalysisResult(findings, suppressed, len(rels), timings,
                          fact_cache.hits, fact_cache.misses)


# ---------------------------------------------------------------------------
# Self-test against the seeded fixtures.

import re

EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([\w-]+)")

# The fixture tree re-uses the real module names plus a scratch module `foo`
# that hosts the per-file-rule fixtures; it must be declared or every foo/
# fixture would drown in layering-dag noise.
FIXTURE_MODULE_DEPS = dict(layering.MODULE_DEPS)
FIXTURE_MODULE_DEPS["foo"] = {"common"}


def run_self_test(fixture_root: str, active_passes: List[str]) -> bool:
    if not os.path.isdir(fixture_root):
        print(f"calibre_lint self-test: fixture dir {fixture_root} missing",
              file=sys.stderr)
        return False

    active_rules: Set[str] = set(META_RULES)
    for p in active_passes:
        active_rules.update(PASS_RULES[p])

    expected: Dict[str, set] = {}
    for rel in collect_files(fixture_root):
        with open(os.path.join(fixture_root, rel), encoding="utf-8") as fh:
            annotated = set(EXPECT_RE.findall(fh.read()))
        expected[rel] = annotated & active_rules

    result = analyze_tree(fixture_root, active_passes,
                          module_deps=FIXTURE_MODULE_DEPS)
    fired: Dict[str, set] = {rel: set() for rel in expected}
    for f in result.findings:
        fired.setdefault(f.path, set()).add(f.rule)

    ok = True
    for rel in sorted(expected):
        want, got = expected[rel], fired.get(rel, set())
        if want != got:
            ok = False
            print(f"calibre_lint self-test FAILED for {rel}: expected rules "
                  f"{sorted(want) or '(none)'}, fired "
                  f"{sorted(got) or '(none)'}", file=sys.stderr)

    exercised = set().union(*expected.values()) if expected else set()
    for rule_id in sorted(active_rules):
        if rule_id not in exercised:
            ok = False
            print(f"calibre_lint self-test FAILED: rule '{rule_id}' has no "
                  "fixture proving it fires (add one under "
                  "tests/lint_fixtures/)", file=sys.stderr)

    if ok:
        print(f"calibre_lint self-test: {len(active_rules)} rules verified "
              f"against {len(expected)} fixtures")
    return ok


# ---------------------------------------------------------------------------


def _emit_text(result: AnalysisResult, show_timings: bool) -> None:
    for f in result.findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if show_timings:
        for phase, seconds in result.timings:
            print(f"calibre_lint timing: {phase:<22s} {seconds * 1e3:8.1f} ms")
        print(f"calibre_lint cache: {result.cache_hits} hit(s), "
              f"{result.cache_misses} miss(es)")


def _emit_json(result: AnalysisResult, root: str,
               active_passes: List[str]) -> None:
    doc = {
        "version": 1,
        "root": root,
        "passes": [{"name": phase, "seconds": round(seconds, 6)}
                   for phase, seconds in result.timings],
        "findings": [{"path": f.path, "line": f.line, "rule": f.rule,
                      "pass": f.pass_name, "message": f.message}
                     for f in result.findings],
        "counts": {"files": result.files,
                   "findings": len(result.findings),
                   "suppressed": result.suppressed},
        "cache": {"hits": result.cache_hits,
                  "misses": result.cache_misses},
        "active_passes": list(active_passes),
    }
    json.dump(doc, sys.stdout, indent=2)
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Calibre whole-program contract analyzer")
    default_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parser.add_argument("--repo-root", default=default_root)
    parser.add_argument("--no-self-test", action="store_true",
                        help="skip the fixture self-test")
    parser.add_argument("--fixtures-only", action="store_true",
                        help="run only the fixture self-test")
    parser.add_argument("--passes", default=",".join(PASS_NAMES),
                        help="comma-separated subset of: "
                             + ",".join(PASS_NAMES))
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="per-file fact cache (JSON); invalidated per "
                             "file on mtime/size change")
    parser.add_argument("--timings", action="store_true",
                        help="print per-pass wall-clock timing")
    args = parser.parse_args(argv)

    active_passes = [p.strip() for p in args.passes.split(",") if p.strip()]
    for p in active_passes:
        if p not in PASS_NAMES:
            parser.error(f"unknown pass '{p}' (choose from "
                         f"{', '.join(PASS_NAMES)})")

    root = os.path.abspath(args.repo_root)
    fixture_root = os.path.join(root, "tests", "lint_fixtures")

    if not args.no_self_test:
        if not run_self_test(fixture_root, active_passes):
            return 1
    if args.fixtures_only:
        return 0

    result = analyze_tree(root, active_passes, cache_path=args.cache)
    if args.format == "json":
        _emit_json(result, root, active_passes)
    else:
        _emit_text(result, args.timings)
    if result.findings:
        if args.format == "text":
            print(f"calibre_lint: {len(result.findings)} finding(s)",
                  file=sys.stderr)
        return 1
    if args.format == "text":
        rules = sorted(r for p in active_passes for r in PASS_RULES[p])
        print(f"calibre_lint: clean ({result.files} files, "
              f"{len(rules)} rules, passes: {','.join(active_passes)}"
              f"{', ' + str(result.suppressed) + ' suppressed' if result.suppressed else ''})")
    return 0
