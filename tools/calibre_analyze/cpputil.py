"""C++ text utilities shared by every pass: comment/string stripping (raw-
string-literal aware) and a lightweight scope scanner that attributes brace
blocks to namespaces, classes and functions without a real parser."""

import re
from typing import List, NamedTuple, Optional

_RAW_PREFIX_RE = re.compile(r"(?:u8|[uUL])?R$")


def _raw_string_starts_at(text: str, i: int) -> bool:
    """True when text[i] == '"' opens a raw string literal: the quote is
    directly preceded by an R / uR / u8R / UR / LR prefix that is itself a
    standalone token (not the tail of an identifier like FOLDER)."""
    m = _RAW_PREFIX_RE.search(text, max(0, i - 3), i)
    if not m or m.end() != i:
        return False
    before = m.start() - 1
    return before < 0 or not (text[before].isalnum() or text[before] == "_")


def strip_comments_and_strings(text: str) -> str:
    """Returns `text` with comments removed and string/char literal contents
    blanked, preserving every newline so line numbers survive. Keeps
    preprocessor lines intact (minus comments). Raw string literals
    (R"delim(...)delim", any prefix) are handled as a unit: a `//` or `"`
    inside one cannot corrupt the scan for the rest of the file."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
            elif c == '"' and _raw_string_starts_at(text, i):
                # R"delim( ... )delim"  — find the delimiter, then the
                # terminator; nothing inside is code, but newlines survive.
                j = i + 1
                while j < n and text[j] not in "(\n" and j - i <= 17:
                    j += 1
                if j >= n or text[j] != "(":
                    out.append(c)  # malformed raw literal: treat as plain
                    state = "string"
                    i += 1
                    continue
                delim = text[i + 1:j]
                terminator = ")" + delim + '"'
                end = text.find(terminator, j + 1)
                if end == -1:
                    out.append("".join(ch for ch in text[i:] if ch == "\n"))
                    i = n
                else:
                    out.append('""')
                    out.append("".join(
                        ch for ch in text[i:end] if ch == "\n"))
                    i = end + len(terminator)
            elif c == '"':
                out.append(c)
                state = "string"
                i += 1
            elif c == "'":
                out.append(c)
                state = "char"
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                out.append(c)
                state = "code"
            i += 1
        elif state == "block_comment":
            if c == "\n":
                out.append(c)
                i += 1
            elif c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2  # skip the escaped character
            elif c == quote:
                out.append(c)
                state = "code"
                i += 1
            else:
                if c == "\n":
                    out.append(c)  # unterminated literal: keep line count
                    state = "code"
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Scope scanning: attribute every top-level brace block to a namespace, a
# class/struct, or a function. Good enough for lock/member indexing; not a
# parser — lambdas and control-flow blocks stay inside their enclosing
# function scope on purpose (a notify inside a lambda still happens "in" the
# function that owns the lambda for lock-discipline purposes).


class Scope(NamedTuple):
    kind: str            # "namespace" | "class" | "function" | "block"
    name: str            # class/function name ("" for plain blocks)
    cls: str             # owning class ("" when free)
    start: int           # offset of the opening brace
    end: int             # offset just past the closing brace
    line: int            # 1-based line of the opening brace


_CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?(\w+)"
    r"(?:\s*(?:final)?\s*:\s*[^;{]*)?\s*$")
_NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\s*([\w:]+)?\s*$")
_ENUM_HEAD_RE = re.compile(r"\benum\b[^;{]*$")
_CONTROL_KEYWORDS = frozenset(
    ("if", "for", "while", "switch", "catch", "else", "do", "try",
     "constexpr", "return", "sizeof", "alignof", "decltype"))
_FUNC_NAME_RE = re.compile(r"([\w:~]+)\s*$")


def _classify_block(text: str, brace: int):
    """Classifies the brace at `text[brace]` from the non-blank context
    before it. Returns (kind, name) where kind is one of namespace/class/
    function/block."""
    # Walk back to the previous ; { } or # line start — the block header.
    j = brace - 1
    while j >= 0 and text[j] not in ";{}":
        j -= 1
    head = text[j + 1:brace].strip()
    # Strip trailing qualifiers that sit between ')' and '{'.
    stripped = re.sub(
        r"(?:\s*(?:const|noexcept(?:\s*\([^)]*\))?|override|final|mutable"
        r"|->\s*[\w:<>,&*\s]+|\btry\b))*\s*$", "", head)
    if _NAMESPACE_HEAD_RE.search(head):
        m = _NAMESPACE_HEAD_RE.search(head)
        return "namespace", (m.group(1) or "")
    if _ENUM_HEAD_RE.search(head) and "(" not in head:
        return "block", ""
    m = _CLASS_HEAD_RE.search(head)
    if m and "(" not in head.split("class")[-1].split("struct")[-1]:
        return "class", m.group(1)
    # Constructor with a member-init list: "Cls::Cls(args) : a_(x), b_(y) {".
    # Cut the head back to the parameter list's ')' so the name extraction
    # below sees the constructor, not the last initializer.
    init = re.search(r"\)\s*:(?!:)", stripped)
    if init:
        stripped = stripped[:init.start() + 1]
    if stripped.endswith(")"):
        # Function definition or control statement: find the identifier that
        # owns the parameter list.
        depth = 0
        k = len(stripped) - 1
        while k >= 0:
            if stripped[k] == ")":
                depth += 1
            elif stripped[k] == "(":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        if k <= 0:
            return "block", ""
        name_part = stripped[:k].rstrip()
        if name_part.endswith("]"):  # lambda introducer
            return "block", ""
        nm = _FUNC_NAME_RE.search(name_part)
        if not nm:
            return "block", ""
        name = nm.group(1)
        base = name.split("::")[-1].lstrip("~")
        if base in _CONTROL_KEYWORDS or name in _CONTROL_KEYWORDS:
            return "block", ""
        return "function", name
    if head in ("else", "do", "try") or head == "":
        return "block", ""
    if head.endswith("="):  # brace-init / lambda assigned to a variable
        return "block", ""
    return "block", ""


def scan_scopes(stripped: str) -> List[Scope]:
    """Returns every namespace/class/function scope in the file (plus plain
    blocks only when they are top-level), with byte offsets and the owning
    class resolved from lexical nesting or a Class::method qualifier."""
    scopes: List[Scope] = []
    stack = []  # (kind, name, cls, start, line)
    line = 1
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "\n":
            line += 1
        elif c == "{":
            kind, name = _classify_block(stripped, i)
            cls = ""
            if kind == "function":
                if "::" in name:
                    cls = name.rsplit("::", 1)[0].split("::")[-1]
                    name = name.rsplit("::", 1)[1]
                else:
                    for k, nme, _c, _s, _l in reversed(stack):
                        if k == "class":
                            cls = nme
                            break
            elif kind == "class":
                pass
            stack.append((kind, name, cls, i, line))
        elif c == "}":
            if stack:
                kind, name, cls, start, sline = stack.pop()
                scopes.append(Scope(kind, name, cls, start, i + 1, sline))
        i += 1
    # Unterminated scopes (truncated file): close them at EOF.
    while stack:
        kind, name, cls, start, sline = stack.pop()
        scopes.append(Scope(kind, name, cls, start, n, sline))
    scopes.sort(key=lambda s: s.start)
    return scopes


def enclosing_class(scopes: List[Scope], offset: int) -> Optional[Scope]:
    best = None
    for s in scopes:
        if s.kind == "class" and s.start <= offset < s.end:
            if best is None or s.start > best.start:
                best = s
    return best


def enclosing_function(scopes: List[Scope], offset: int) -> Optional[Scope]:
    best = None
    for s in scopes:
        if s.kind == "function" and s.start <= offset < s.end:
            if best is None or s.start > best.start:
                best = s
    return best


def line_of_offset(stripped: str, offset: int) -> int:
    return stripped.count("\n", 0, offset) + 1


def match_brace(text: str, open_idx: int) -> int:
    """Given text[open_idx] == '{', returns the offset just past the matching
    '}', or len(text) when unbalanced."""
    depth = 0
    i, n = open_idx, len(text)
    while i < n:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def match_paren(text: str, open_idx: int) -> int:
    depth = 0
    i, n = open_idx, len(text)
    while i < n:
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n
