// Representation analysis workflow (paper Figs. 1/2/5-8).
//
// Trains pFL-SimCLR and Calibre (SimCLR) on a non-IID federation, extracts
// encoder features for pooled client samples, reports cluster-quality
// metrics, and exports 2-D t-SNE embeddings as CSV files that can be
// plotted with any tool (e.g. `python -c "import pandas, matplotlib..."`).
#include <iostream>

#include "algos/registry.h"
#include "cluster/kmeans.h"
#include "cluster/quality.h"
#include "common/env.h"
#include "core/pfl_ssl.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"
#include "metrics/report.h"
#include "metrics/tsne.h"

using namespace calibre;

int main() {
  data::SyntheticConfig dataset_config = data::cifar10_like();
  dataset_config.train_samples = 4000;
  dataset_config.test_samples = 2000;
  const data::SyntheticDataset synth = data::make_synthetic(dataset_config);

  const int train_clients = env::get_int("CALIBRE_TRAIN_CLIENTS", 15);
  data::PartitionConfig partition_config;
  partition_config.num_clients = train_clients;
  partition_config.samples_per_client = 100;
  partition_config.test_samples_per_client = 50;
  rng::Generator partition_gen(41);
  const data::Partition partition = data::partition_dirichlet(
      synth.train, synth.test, partition_config, 0.3, partition_gen);
  rng::Generator fed_gen(42);
  const fl::FedDataset fed =
      fl::build_fed_dataset(synth, partition, train_clients, fed_gen);

  fl::FlConfig config;
  config.encoder.input_dim = synth.train.input_dim();
  config.num_classes = synth.train.num_classes;
  config.rounds = env::get_int("CALIBRE_ROUNDS", 30);
  config.clients_per_round = 5;
  config.num_train_clients = train_clients;

  // Pool a few clients' test samples (with client ids for per-client color).
  std::vector<tensor::Tensor> parts;
  std::vector<int> labels;
  std::vector<int> clients;
  for (int c = 0; c < 6; ++c) {
    const data::Dataset& shard = fed.test[static_cast<std::size_t>(c)];
    parts.push_back(shard.x);
    labels.insert(labels.end(), shard.labels.begin(), shard.labels.end());
    clients.insert(clients.end(), shard.labels.size(), c);
  }
  const tensor::Tensor pooled = tensor::concat_rows(parts);

  for (const std::string& name :
       {std::string("pFL-SimCLR"), std::string("Calibre (SimCLR)")}) {
    const auto algorithm = algos::make_algorithm(name, config);
    auto* pfl = dynamic_cast<core::PflSsl*>(algorithm.get());
    const fl::RunResult result = fl::run_federated(*algorithm, fed, false);
    const tensor::Tensor features =
        pfl->extract_features(result.final_state, pooled);

    // Quantitative boundary quality.
    const double silhouette = cluster::silhouette_score(features, labels);
    rng::Generator gen(43);
    cluster::KMeansConfig kmeans_config;
    kmeans_config.k = synth.train.num_classes;
    const auto clustering = cluster::kmeans(features, kmeans_config, gen);
    std::cout << name << ": silhouette " << silhouette << ", KMeans purity "
              << cluster::cluster_purity(clustering.assignments, labels)
              << "\n";

    // 2-D embedding export.
    const metrics::TsneResult embedding =
        metrics::tsne(features, metrics::TsneConfig{}, gen);
    std::string file = "embedding_" + name + ".csv";
    for (char& c : file) {
      if (c == ' ' || c == '(' || c == ')') c = '_';
    }
    metrics::write_embedding_csv(file, embedding.embedding, labels, clients);
    std::cout << "  wrote " << file << " (t-SNE KL " << embedding.final_kl
              << ")\n";
  }
  return 0;
}
