// Hyperparameter sweep playground: every knob of the synthetic data
// generator, the federation, and Calibre is exposed as an environment
// variable so design-space questions ("does alpha=0.6 help under Dirichlet
// skew?") are one shell line away. See the README's "Exploring the design
// space" section for the knob list.
//
//   W / SEP / NOISE / NU / FREQ / DIM / VJIT / LAT  — data generator
//   TC / SPC / TSPC / PART / R / CPR / LE           — federation
//   SSL_LR / SSL_MOM / AUG_NOISE / AUG_MASK / AUG_JIT — optimisation
//   ALPHA / K / TAU / DW / DW_PROP / LN_PAPER / LOCAL_PROTO — Calibre
//   SKIP_SSL / SKIP_SUP                             — row selection
#include <cstdio>
#include <iostream>

#include "algos/registry.h"
#include "common/env.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"
#include "metrics/stats.h"

using namespace calibre;

int main() {
  data::SyntheticConfig dc = data::cifar10_like();
  dc.train_samples = 4000;
  dc.test_samples = 2000;
  dc.within_class_stddev = (float)env::get_double("W", 1.0);
  dc.class_separation = (float)env::get_double("SEP", 4.0);
  dc.observation_noise = (float)env::get_double("NOISE", 0.05);
  dc.nuisance_stddev = (float)env::get_double("NU", 3.0);
  dc.render_frequency = (float)env::get_double("FREQ", 1.0);
  dc.input_dim = env::get_int("DIM", 48);
  dc.view_latent_jitter = (float)env::get_double("VJIT", 0.7);
  dc.latent_dim = env::get_int("LAT", 16);
  const auto synth = data::make_synthetic(dc);

  const int train_clients = env::get_int("TC", 20);
  const int novel_clients = 5;
  data::PartitionConfig pc;
  pc.num_clients = train_clients + novel_clients;
  pc.samples_per_client = env::get_int("SPC", 100);
  pc.test_samples_per_client = env::get_int("TSPC", 60);
  rng::Generator pg(7);
  const auto part = env::get_string("PART", "dir") == "dir"
      ? data::partition_dirichlet(synth.train, synth.test, pc, 0.3, pg)
      : data::partition_quantity(synth.train, synth.test, pc, 2, pg);
  rng::Generator fg(11);
  const auto fed = fl::build_fed_dataset(synth, part, train_clients, fg);

  fl::FlConfig cfg;
  cfg.encoder.input_dim = synth.train.input_dim();
  cfg.num_classes = synth.train.num_classes;
  cfg.rounds = env::get_int("R", 30);
  cfg.clients_per_round = env::get_int("CPR", 5);
  cfg.num_train_clients = train_clients;
  cfg.ssl_opt.learning_rate = (float)env::get_double("SSL_LR", 0.10);
  cfg.ssl_opt.momentum = (float)env::get_double("SSL_MOM", 0.9);
  cfg.local_epochs = env::get_int("LE", 3);
  cfg.augment.noise_std = (float)env::get_double("AUG_NOISE", 0.10);
  cfg.augment.mask_fraction = (float)env::get_double("AUG_MASK", 0.25);
  cfg.augment.scale_jitter = (float)env::get_double("AUG_JIT", 0.20);

  core::CalibreConfig cc;
  cc.alpha = (float)env::get_double("ALPHA", 0.3);
  cc.prototype.num_prototypes = env::get_int("K", 10);
  cc.prototype.temperature = (float)env::get_double("TAU", 0.5);
  cc.divergence_weighted_aggregation = env::get_int("DW", 1) != 0;
  cc.divergence_mode = env::get_int("DW_PROP", 0) != 0
                           ? core::DivergenceMode::kProportional
                           : core::DivergenceMode::kInverse;
  cc.prototype.scope = env::get_int("LOCAL_PROTO", 0) != 0
                           ? core::PrototypeScope::kLocalDataset
                           : core::PrototypeScope::kBatch;
  cc.prototype.ln_form = env::get_int("LN_PAPER", 0) != 0
                             ? core::LnForm::kPaper
                             : core::LnForm::kProtoNce;

  auto run = [&](const std::string& label, fl::Algorithm& a, bool novel) {
    auto res = fl::run_federated(a, fed, novel);
    auto s = metrics::compute_stats(res.train_accuracies);
    auto nv = metrics::compute_stats(res.novel_accuracies);
    std::printf("%-22s mean %5.2f std %5.2f | novel %5.2f | %4.1fs\n",
                label.c_str(), s.mean * 100, s.stddev * 100, nv.mean * 100,
                res.wall_seconds);
    std::fflush(stdout);
  };

  if (!env::get_flag("SKIP_SSL")) {
    auto algo = algos::make_algorithm("pFL-SimCLR", cfg);
    run("pFL-SimCLR", *algo, false);
  }
  if (!env::get_flag("SKIP_SUP")) {
    auto algo = algos::make_algorithm("FedAvg-FT", cfg);
    run("FedAvg-FT", *algo, false);
  }
  {
    auto cal = algos::make_calibre(ssl::Kind::kSimClr, cfg, cc);
    run("Calibre(SimCLR)", *cal, false);
  }
  return 0;
}
