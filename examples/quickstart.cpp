// Quickstart: train Calibre (SimCLR) on a non-IID synthetic CIFAR-10-like
// federation and compare it against plain pFL-SimCLR and FedAvg-FT.
//
// Walks through the whole public API surface:
//   1. generate a dataset            (data::make_synthetic)
//   2. partition it non-IID          (data::partition_dirichlet)
//   3. build the federated view      (fl::build_fed_dataset)
//   4. construct algorithms          (algos::make_algorithm)
//   5. run training + personalization (fl::run_federated)
//   6. report fairness & accuracy    (metrics::compute_stats)
#include <iostream>

#include "algos/registry.h"
#include "common/env.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"
#include "metrics/report.h"

using namespace calibre;

int main() {
  // 1. A CIFAR-10-like synthetic dataset (see DESIGN.md for the substitution
  //    rationale), scaled down so this example runs in seconds.
  data::SyntheticConfig dataset_config = data::cifar10_like();
  dataset_config.train_samples = 4000;
  dataset_config.test_samples = 2000;
  const data::SyntheticDataset synth = data::make_synthetic(dataset_config);

  // 2. Distribution-based label non-IID: Dirichlet(0.3), the paper's
  //    D-non-i.i.d. setting.
  const int train_clients = env::get_int("CALIBRE_TRAIN_CLIENTS", 20);
  const int novel_clients = env::get_int("CALIBRE_NOVEL_CLIENTS", 5);
  data::PartitionConfig partition_config;
  partition_config.num_clients = train_clients + novel_clients;
  partition_config.samples_per_client = 100;
  partition_config.test_samples_per_client = 60;
  rng::Generator partition_gen(7);
  const data::Partition partition = data::partition_dirichlet(
      synth.train, synth.test, partition_config, 0.3, partition_gen);

  // 3. Materialise per-client shards (participating + novel clients).
  rng::Generator fed_gen(11);
  const fl::FedDataset fed =
      fl::build_fed_dataset(synth, partition, train_clients, fed_gen);

  // 4/5. Run three methods through the same runner.
  fl::FlConfig config;
  config.encoder.input_dim = synth.train.input_dim();
  config.num_classes = synth.train.num_classes;
  config.rounds = env::get_int("CALIBRE_ROUNDS", 15);
  config.clients_per_round = 5;
  config.num_train_clients = train_clients;

  std::vector<metrics::ResultRow> rows;
  for (const std::string name :
       {"Calibre (SimCLR)", "pFL-SimCLR", "FedAvg-FT"}) {
    const auto algorithm = algos::make_algorithm(name, config);
    const fl::RunResult result = fl::run_federated(*algorithm, fed);
    metrics::ResultRow row;
    row.method = name;
    row.stats = metrics::compute_stats(result.train_accuracies);
    const auto novel = metrics::compute_stats(result.novel_accuracies);
    char note[128];
    std::snprintf(note, sizeof(note),
                  "novel %5.2f±%5.2f | %.1fs | %.1f MB traffic",
                  novel.mean * 100, novel.stddev * 100, result.wall_seconds,
                  static_cast<double>(result.traffic.logical_bytes) / 1e6);
    row.note = note;
    rows.push_back(row);
    std::cout << name << " done\n";
  }

  // 6. Fairness = low accuracy variance; performance = high mean.
  metrics::print_result_table(std::cout, "Quickstart: Dirichlet(0.3) CIFAR-10-like",
                              rows);
  return 0;
}
