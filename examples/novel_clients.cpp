// Novel-client personalization (paper §V-D, Fig. 4 right column).
//
// Scenario: a hospital network trains a federated encoder across 20 member
// institutions; later, institutions that never participated want personalized
// models without joining a new training round. With Calibre they download
// the trained encoder once and fit a linear head on their own data.
//
// This example trains Calibre (SimCLR) and FedBABU, then personalizes both
// participating and novel clients, showing that the SSL-calibrated encoder
// generalizes to unseen data distributions.
#include <iostream>

#include "algos/registry.h"
#include "common/env.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"
#include "metrics/report.h"

using namespace calibre;

int main() {
  const int train_clients = env::get_int("CALIBRE_TRAIN_CLIENTS", 20);
  const int novel_clients = env::get_int("CALIBRE_NOVEL_CLIENTS", 10);

  data::SyntheticConfig dataset_config = data::cifar10_like();
  dataset_config.train_samples = 6000;
  dataset_config.test_samples = 3000;
  const data::SyntheticDataset synth = data::make_synthetic(dataset_config);

  data::PartitionConfig partition_config;
  partition_config.num_clients = train_clients + novel_clients;
  partition_config.samples_per_client = 100;
  partition_config.test_samples_per_client = 80;
  rng::Generator partition_gen(21);
  const data::Partition partition = data::partition_dirichlet(
      synth.train, synth.test, partition_config, 0.3, partition_gen);
  rng::Generator fed_gen(22);
  const fl::FedDataset fed =
      fl::build_fed_dataset(synth, partition, train_clients, fed_gen);

  fl::FlConfig config;
  config.encoder.input_dim = synth.train.input_dim();
  config.num_classes = synth.train.num_classes;
  config.rounds = env::get_int("CALIBRE_ROUNDS", 30);
  config.clients_per_round = 5;
  config.num_train_clients = train_clients;

  std::cout << "Training with " << train_clients << " clients; "
            << novel_clients << " novel clients join only for "
            << "personalization.\n";

  for (const std::string& name :
       {std::string("Calibre (SimCLR)"), std::string("FedBABU")}) {
    const auto algorithm = algos::make_algorithm(name, config);
    const fl::RunResult result =
        fl::run_federated(*algorithm, fed, /*personalize_novel=*/true);
    const auto participating = metrics::compute_stats(result.train_accuracies);
    const auto novel = metrics::compute_stats(result.novel_accuracies);
    std::cout << "\n" << name << ":\n"
              << "  participating clients: "
              << metrics::format_mean_std(participating) << "\n"
              << "  novel clients:         "
              << metrics::format_mean_std(novel) << "\n"
              << "  generalization gap:    "
              << (participating.mean - novel.mean) * 100 << " points\n";
  }
  std::cout << "\nA small gap means the encoder learned client-agnostic "
               "representations (the paper's novel-client claim).\n";
  return 0;
}
