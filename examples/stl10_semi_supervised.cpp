// Semi-supervised federation on the STL-10-like dataset (paper §V-B).
//
// Scenario: edge devices hold mostly *unlabeled* data (sensor captures,
// unannotated photos) plus a small labeled subset. Supervised FL can only
// use the labels; SSL-based methods train the encoder on everything. This
// example quantifies that advantage: Calibre (SimCLR) and pFL-SimCLR consume
// each client's unlabeled pool, FedAvg-FT and FedBABU cannot.
#include <iostream>

#include "algos/registry.h"
#include "common/env.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"
#include "metrics/report.h"

using namespace calibre;

int main() {
  data::SyntheticConfig dataset_config = data::stl10_like();
  dataset_config.train_samples = 2000;      // few labels...
  dataset_config.unlabeled_samples = 8000;  // ...lots of unlabeled samples
  dataset_config.test_samples = 3000;
  const data::SyntheticDataset synth = data::make_synthetic(dataset_config);

  const int train_clients = env::get_int("CALIBRE_TRAIN_CLIENTS", 20);
  data::PartitionConfig partition_config;
  partition_config.num_clients = train_clients;
  partition_config.samples_per_client = 60;  // small labeled shards
  partition_config.test_samples_per_client = 80;
  rng::Generator partition_gen(31);
  const data::Partition partition = data::partition_quantity(
      synth.train, synth.test, partition_config, 2, partition_gen);
  rng::Generator fed_gen(32);
  const fl::FedDataset fed =
      fl::build_fed_dataset(synth, partition, train_clients, fed_gen);

  std::cout << "Each client: 60 labeled samples + "
            << fed.ssl_pool.front().rows() - 60
            << " unlabeled samples (SSL-only pool)\n";

  fl::FlConfig config;
  config.encoder.input_dim = synth.train.input_dim();
  config.num_classes = synth.train.num_classes;
  config.rounds = env::get_int("CALIBRE_ROUNDS", 30);
  config.clients_per_round = 5;
  config.num_train_clients = train_clients;

  std::vector<metrics::ResultRow> rows;
  for (const std::string& name :
       {std::string("Calibre (SimCLR)"), std::string("pFL-SimCLR"),
        std::string("FedAvg-FT"), std::string("FedBABU")}) {
    const auto algorithm = algos::make_algorithm(name, config);
    const fl::RunResult result = fl::run_federated(*algorithm, fed, false);
    rows.push_back([&] {
      metrics::ResultRow row;
      row.method = name;
      row.stats = metrics::compute_stats(result.train_accuracies);
      row.note = name.find("F") == 0 ? "labels only" : "labels + unlabeled";
      return row;
    }());
    std::cout << name << " done\n";
  }
  metrics::print_result_table(
      std::cout, "STL-10-like: value of unlabeled data under label scarcity",
      rows);
  std::cout << "Expected shape: the SSL rows dominate when labels are "
               "scarce but unlabeled data is plentiful (paper Fig. 3, "
               "STL-10 row).\n";
  return 0;
}
