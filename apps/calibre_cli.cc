// calibre_cli — run any experiment of the library from the command line.
//
//   calibre_cli --method "Calibre (SimCLR)" --dataset cifar10
//               --partition dirichlet --alpha 0.3 --clients 20 --novel 5
//               --rounds 30 --samples 100 --save encoder.bin
//
// Flags (defaults in parentheses):
//   --method            algorithm name from the registry ("Calibre (SimCLR)")
//   --list-methods      print all registered algorithm names and exit
//   --dataset           cifar10 | cifar100 | stl10            (cifar10)
//   --partition         dirichlet | quantity | iid            (dirichlet)
//   --alpha             Dirichlet concentration                (0.3)
//   --classes-per-client  S for quantity non-IID               (2)
//   --clients           participating clients                  (20)
//   --novel             novel clients                          (5)
//   --samples           train samples per client               (100)
//   --test-samples      test samples per client                (80)
//   --rounds            federated rounds                       (30)
//   --clients-per-round sampled clients per round              (5)
//   --local-epochs      local epochs per round                 (3)
//   --dropout           per-round client dropout probability   (0)
//   --round-deadline-ms per-round deadline; 0 waits for all    (0)
//   --min-participants  quorum of updates before the deadline
//                       may cut stragglers loose               (1)
//   --retries           per-round retries of a failed client   (0)
//   --fault-rate        injected handler-failure probability   (0)
//   --fault-latency-ms  injected per-dispatch latency cap      (0)
//   --device-classes    heterogeneous fault profiles, one per class:
//                       "name:fault_rate:latency_ms:duty[:period],..."
//                       (client c belongs to class c % num_classes; duty < 1
//                       takes the device offline for part of every `period`
//                       rounds, staggered per client; overrides --fault-rate
//                       / --fault-latency-ms)
//   --async             buffered asynchronous aggregation: no round barrier;
//                       folds replies as they arrive (deterministically, in
//                       dispatch order) and commits a new global version
//                       every --buffer-size folds; --rounds counts commits
//   --buffer-size       folds per async commit                  (8)
//   --staleness-alpha   staleness discount w(s)=1/(1+s)^alpha   (0.5)
//   --wire-codec        model payload codec: auto | f32 | f16 | delta16 |
//                       topk16 | int8a; `auto` picks the cheapest codec per
//                       update that keeps reconstruction error within
//                       --codec-error-budget                    (f32)
//   --topk-rate         fraction of coordinates kept by topk16
//                       sparsification, in (0, 1]               (0.0625)
//   --codec-error-budget  relative L2 reconstruction error budget for the
//                       `auto` chooser, in (0, 1]               (0.01)
//   --agg-shards        parallel fold shards for aggregation: replies
//                       decode+fold on this many shard workers, merged in
//                       shard order at commit — bit-identical to the flat
//                       fold; must be <= --clients-per-round and divide
//                       --buffer-size in async mode               (1)
//   --virtual-clients   force virtual-client mode: shards materialise on
//                       demand, memory stays O(dataset) at any --clients
//   --eager-clients     force eager per-client shard materialisation
//                       (default: virtual at >= 1000 total clients; the two
//                       modes are bit-identical)
//   --personalize-cap   personalize a seeded sample of this many clients
//                       instead of the full population; 0 = all (0)
//   --seed              experiment seed                        (42)
//   --threads           device worker threads (0 = auto)       (0)
//   --save              write the trained global state to a file
//   --load              skip training; load a state and only personalize
//   --history           print per-round progress
#include <array>
#include <iostream>
#include <sstream>

#include "algos/registry.h"
#include "comm/codec.h"
#include "common/flags.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"
#include "metrics/fairness.h"
#include "metrics/report.h"
#include "nn/checkpoint.h"

using namespace calibre;

// Parses "--device-classes name:fault_rate:latency_ms:duty[:period],..."
// into DeviceClass entries. Returns false (with a message on stderr) on a
// malformed spec; range validation happens in fl::validate().
static bool parse_device_classes(const std::string& spec,
                                 std::vector<fl::DeviceClass>& out) {
  std::istringstream entries(spec);
  std::string entry;
  while (std::getline(entries, entry, ',')) {
    std::istringstream fields(entry);
    std::string field;
    std::vector<std::string> parts;
    while (std::getline(fields, field, ':')) parts.push_back(field);
    if (parts.size() < 4 || parts.size() > 5 || parts[0].empty()) {
      std::cerr << "bad --device-classes entry '" << entry
                << "' (expected name:fault_rate:latency_ms:duty[:period])\n";
      return false;
    }
    fl::DeviceClass device;
    device.name = parts[0];
    try {
      device.fault_rate = std::stof(parts[1]);
      device.fault_latency_ms = std::stoi(parts[2]);
      device.duty_cycle = std::stof(parts[3]);
      if (parts.size() == 5) device.period_rounds = std::stoi(parts[4]);
    } catch (const std::exception&) {
      std::cerr << "bad --device-classes entry '" << entry
                << "' (non-numeric field)\n";
      return false;
    }
    out.push_back(std::move(device));
  }
  if (out.empty()) {
    std::cerr << "--device-classes given but no classes parsed\n";
    return false;
  }
  return true;
}

// Label for the codec(s) a round's folded updates actually used: a single
// name when uniform ("topk16"), "name*count" terms joined with '+' when the
// adaptive chooser mixed codecs within one round ("topk16*4+f32*1"). Slot 0
// (the config-only `auto` tag) never appears on the wire.
static std::string codec_summary(const std::array<std::uint32_t, 6>& counts) {
  std::vector<std::pair<std::string, std::uint32_t>> used;
  for (std::size_t tag = 1; tag < counts.size(); ++tag) {
    if (counts[tag] == 0) continue;
    used.emplace_back(comm::codec_name(static_cast<comm::Codec>(tag)),
                      counts[tag]);
  }
  if (used.empty()) return "-";
  if (used.size() == 1) return used.front().first;
  std::string out;
  for (const auto& [name, count] : used) {
    if (!out.empty()) out += "+";
    out += name + "*" + std::to_string(count);
  }
  return out;
}

// Compression ratio of a round's folded updates (encoded wire bytes over
// their f32-layout size); 1.0 when the round folded nothing.
static double compression_ratio(const fl::RoundStats& r) {
  if (r.update_bytes_f32 == 0) return 1.0;
  return static_cast<double>(r.update_bytes_wire) /
         static_cast<double>(r.update_bytes_f32);
}

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  if (args.has("list-methods")) {
    for (const auto& name : algos::registered_algorithms()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  const std::string method = args.get("method", "Calibre (SimCLR)");
  const std::string dataset = args.get("dataset", "cifar10");
  const std::string partition_kind = args.get("partition", "dirichlet");
  const int train_clients = args.get_int("clients", 20);
  const int novel_clients = args.get_int("novel", 5);

  const data::SyntheticDataset synth =
      data::make_synthetic(data::preset_by_name(dataset));

  data::PartitionConfig partition_config;
  partition_config.num_clients = train_clients + novel_clients;
  partition_config.samples_per_client = args.get_int("samples", 100);
  partition_config.test_samples_per_client = args.get_int("test-samples", 80);
  rng::Generator partition_gen(
      static_cast<std::uint64_t>(args.get_int("seed", 42)) ^ 0xFACE);
  data::Partition partition;
  if (partition_kind == "dirichlet") {
    partition = data::partition_dirichlet(synth.train, synth.test,
                                          partition_config,
                                          args.get_double("alpha", 0.3),
                                          partition_gen);
  } else if (partition_kind == "quantity") {
    partition = data::partition_quantity(
        synth.train, synth.test, partition_config,
        args.get_int("classes-per-client", 2), partition_gen);
  } else if (partition_kind == "iid") {
    partition = data::partition_iid(synth.train, synth.test, partition_config,
                                    partition_gen);
  } else {
    std::cerr << "unknown --partition: " << partition_kind << "\n";
    return 2;
  }
  rng::Generator fed_gen(
      static_cast<std::uint64_t>(args.get_int("seed", 42)) ^ 0xFEED);
  // Virtual clients keep memory O(dataset + indices) regardless of the
  // population; both builds yield bit-identical shards, so auto-switching at
  // scale never changes results.
  const bool use_virtual =
      args.has("virtual-clients") ||
      (!args.has("eager-clients") && train_clients + novel_clients >= 1000);
  const fl::FedDataset fed =
      use_virtual
          ? fl::build_virtual_fed_dataset(synth, partition, train_clients,
                                          fed_gen)
          : fl::build_fed_dataset(synth, partition, train_clients, fed_gen);

  fl::FlConfig config;
  config.encoder.input_dim = synth.train.input_dim();
  config.num_classes = synth.train.num_classes;
  config.rounds = args.get_int("rounds", 30);
  config.clients_per_round = args.get_int("clients-per-round", 5);
  config.local_epochs = args.get_int("local-epochs", 3);
  config.client_dropout_rate =
      static_cast<float>(args.get_double("dropout", 0.0));
  config.round_deadline_ms = args.get_int("round-deadline-ms", 0);
  config.min_participants = args.get_int("min-participants", 1);
  config.max_client_retries = args.get_int("retries", 0);
  config.fault_rate = static_cast<float>(args.get_double("fault-rate", 0.0));
  config.fault_latency_ms = args.get_int("fault-latency-ms", 0);
  const std::string device_classes = args.get("device-classes", "");
  if (!device_classes.empty() &&
      !parse_device_classes(device_classes, config.device_classes)) {
    return 2;
  }
  config.async_mode = args.has("async");
  config.async_buffer_size = args.get_int("buffer-size", 8);
  config.staleness_alpha =
      static_cast<float>(args.get_double("staleness-alpha", 0.5));
  const std::string wire_codec = args.get("wire-codec", "f32");
  try {
    config.wire_codec = comm::codec_from_name(wire_codec);
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }
  config.topk_rate = static_cast<float>(args.get_double("topk-rate", 0.0625));
  config.codec_error_budget =
      static_cast<float>(args.get_double("codec-error-budget", 0.01));
  config.agg_shards = args.get_int("agg-shards", 1);
  config.personalize_cap = args.get_int("personalize-cap", 0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.threads = args.get_int("threads", 0);
  config.num_train_clients = train_clients;
  if (method.rfind("Script-", 0) == 0) config.rounds = 0;

  const std::string save_path = args.get("save", "");
  const std::string load_path = args.get("load", "");
  const bool print_history = args.has("history");
  for (const auto& name : args.unused()) {
    std::cerr << "warning: unknown flag --" << name << "\n";
  }

  // Fail fast on impossible configurations (e.g. --min-participants above
  // --clients-per-round, sync-only knobs combined with --async) instead of
  // silently reinterpreting them mid-run.
  try {
    fl::validate(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }

  const auto algorithm = algos::make_algorithm(method, config);

  fl::RunResult result;
  if (!load_path.empty()) {
    // Personalization-only mode on a previously trained state.
    const nn::ModelState state = nn::load_state(load_path);
    fl::FlConfig no_training = config;
    no_training.rounds = 0;
    const auto fresh = algos::make_algorithm(method, no_training);
    // run_federated with 0 rounds personalizes on the *initialized* state,
    // so personalize directly against the loaded one instead.
    result.algorithm = fresh->name();
    for (int c = 0; c < fed.num_train_clients(); ++c) {
      data::Dataset train_scratch;
      data::Dataset test_scratch;
      fl::PersonalizationContext ctx;
      ctx.client_id = c;
      ctx.train = &fed.train_shard(c, train_scratch);
      ctx.test = &fed.test_shard(c, test_scratch);
      ctx.seed = fl::derive_seed(config.seed, 0xA11, static_cast<std::uint64_t>(c));
      result.train_accuracies.push_back(fresh->personalize(state, ctx));
    }
  } else {
    result = fl::run_federated(*algorithm, fed, novel_clients > 0);
    if (!save_path.empty()) {
      nn::save_state(save_path, result.final_state);
      std::cout << "saved global state (" << result.final_state.size()
                << " params) to " << save_path << "\n";
    }
  }

  if (print_history) {
    if (config.async_mode) {
      // Async history: one entry per buffer commit; staleness columns show
      // how far behind the committed version the folded updates trained.
      std::cout << "commit  version  folds  failed  retried  late"
                   "  stale_mean  stale_max  bcast_kB  coll_kB"
                   "  mean_divergence  update_norm  ratio  codec\n";
      for (const fl::RoundStats& r : result.history) {
        std::printf(
            "%6d  %7d  %5d  %6d  %7d  %4d  %10.2f  %9d  %8.1f  %7.1f"
            "  %15.4f  %11.3f  %5.3f  %s\n",
            r.round, r.committed_version, r.participants, r.failures,
            r.retries, r.late_dropped, r.staleness_mean, r.staleness_max,
            static_cast<double>(r.bytes_broadcast) / 1e3,
            static_cast<double>(r.bytes_collected) / 1e3, r.mean_divergence,
            r.mean_update_norm, compression_ratio(r),
            codec_summary(r.codec_counts).c_str());
      }
    } else {
      std::cout << "round  participants  dropped  failed  retried  timed_out"
                   "  late  bcast_kB  coll_kB  ser  mean_divergence"
                   "  update_norm  ratio  codec\n";
      for (const fl::RoundStats& r : result.history) {
        std::printf(
            "%5d  %12d  %7d  %6d  %7d  %9d  %4d  %8.1f  %7.1f  %3llu"
            "  %15.4f  %11.3f  %5.3f  %s\n",
            r.round, r.participants, r.dropped, r.failures, r.retries,
            r.timeouts, r.late_dropped,
            static_cast<double>(r.bytes_broadcast) / 1e3,
            static_cast<double>(r.bytes_collected) / 1e3,
            static_cast<unsigned long long>(r.serializations),
            r.mean_divergence, r.mean_update_norm, compression_ratio(r),
            codec_summary(r.codec_counts).c_str());
      }
    }
  }

  const auto stats = metrics::compute_stats(result.train_accuracies);
  const auto fairness = metrics::compute_fairness(result.train_accuracies);
  std::cout << "\n" << result.algorithm << " on " << dataset << " ("
            << partition_kind << ")\n"
            << "  participating accuracy: " << metrics::format_mean_std(stats)
            << "  (variance " << fairness.variance << ")\n"
            << "  fairness: jain " << fairness.jain_index << ", gini "
            << fairness.gini << ", worst-10% "
            << fairness.worst_decile_mean * 100 << "%\n";
  if (!result.novel_accuracies.empty()) {
    const auto novel = metrics::compute_stats(result.novel_accuracies);
    std::cout << "  novel-client accuracy:  "
              << metrics::format_mean_std(novel) << "\n";
  }
  if (result.traffic.messages > 0) {
    std::cout << "  wire codec: " << wire_codec << "\n  ";
    std::vector<metrics::RoundTraffic> round_traffic;
    if (print_history) {
      round_traffic.reserve(result.history.size());
      for (const fl::RoundStats& r : result.history) {
        round_traffic.push_back({r.round, r.bytes_broadcast, r.bytes_collected,
                                 r.serializations, r.update_bytes_wire,
                                 r.update_bytes_f32,
                                 codec_summary(r.codec_counts)});
      }
    }
    metrics::print_traffic_report(std::cout, result.traffic, round_traffic);
  }
  long total_failures = 0, total_retries = 0, total_timeouts = 0,
       total_late = 0;
  for (const fl::RoundStats& r : result.history) {
    total_failures += r.failures;
    total_retries += r.retries;
    total_timeouts += r.timeouts;
    total_late += r.late_dropped;
  }
  if (total_failures + total_retries + total_timeouts + total_late > 0) {
    std::cout << "  faults: " << total_failures << " failed updates, "
              << total_retries << " retried, " << total_timeouts
              << " timed out, " << total_late << " late replies dropped\n";
  }
  return 0;
}
