// Tests for the algorithm zoo: a parameterized end-to-end federation for
// every registered method, plus algorithm-specific behavioural checks.
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algos/client_store.h"
#include "algos/fedbabu.h"
#include "algos/lg_fedavg.h"
#include "algos/registry.h"
#include "algos/scaffold.h"
#include "common/check.h"
#include "fl/fed_data.h"
#include "fl/runner.h"

namespace calibre::algos {
namespace {

// Tiny shared workbench so the parameterized suite stays fast.
struct TinyWorld {
  data::SyntheticDataset synth;
  fl::FedDataset fed;
  fl::FlConfig config;
};

const TinyWorld& tiny_world() {
  static const TinyWorld* world = [] {
    auto* w = new TinyWorld();
    data::SyntheticConfig dataset_config;
    dataset_config.num_classes = 4;
    dataset_config.input_dim = 16;
    dataset_config.latent_dim = 6;
    dataset_config.train_samples = 400;
    dataset_config.test_samples = 200;
    dataset_config.unlabeled_samples = 80;
    dataset_config.seed = 77;
    w->synth = data::make_synthetic(dataset_config);
    data::PartitionConfig partition_config;
    partition_config.num_clients = 5;  // 4 train + 1 novel
    partition_config.samples_per_client = 40;
    partition_config.test_samples_per_client = 16;
    rng::Generator partition_gen(78);
    const data::Partition partition = data::partition_dirichlet(
        w->synth.train, w->synth.test, partition_config, 0.3, partition_gen);
    rng::Generator fed_gen(79);
    w->fed = fl::build_fed_dataset(w->synth, partition, 4, fed_gen);

    w->config.encoder.input_dim = 16;
    w->config.encoder.hidden_dims = {16};
    w->config.encoder.feature_dim = 8;
    w->config.num_classes = 4;
    w->config.rounds = 2;
    w->config.clients_per_round = 2;
    w->config.local_epochs = 1;
    w->config.num_train_clients = 4;
    w->config.threads = 2;
    return w;
  }();
  return *world;
}

class AlgorithmSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(AlgorithmSuite, EndToEndFederationProducesValidAccuracies) {
  const TinyWorld& world = tiny_world();
  fl::FlConfig config = world.config;
  if (GetParam().rfind("Script-", 0) == 0) config.rounds = 0;
  const auto algorithm = make_algorithm(GetParam(), config);
  EXPECT_EQ(algorithm->name(), GetParam());
  const fl::RunResult result =
      fl::run_federated(*algorithm, world.fed, /*personalize_novel=*/true);
  EXPECT_EQ(result.algorithm, GetParam());
  ASSERT_EQ(result.train_accuracies.size(), 4u);
  ASSERT_EQ(result.novel_accuracies.size(), 1u);
  for (const double accuracy : result.train_accuracies) {
    EXPECT_GE(accuracy, 0.0);
    EXPECT_LE(accuracy, 1.0);
  }
  if (config.rounds > 0) {
    // Two rounds x two clients, one request + one response each.
    EXPECT_EQ(result.traffic.messages, 8u);
    EXPECT_GT(result.traffic.logical_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, AlgorithmSuite,
    ::testing::ValuesIn(registered_algorithms()),
    [](const auto& suite_info) {
      std::string name = suite_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("NoSuchMethod", tiny_world().config),
               CheckError);
  EXPECT_THROW(make_algorithm("pFL-NoSuchSsl", tiny_world().config),
               CheckError);
  EXPECT_THROW(make_algorithm("Calibre (NoSuchSsl)", tiny_world().config),
               CheckError);
}

TEST(Registry, ListsAllFamilies) {
  const auto names = registered_algorithms();
  EXPECT_GE(names.size(), 26u);
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.count("FedAvg"));
  EXPECT_TRUE(set.count("Calibre (SimCLR)"));
  EXPECT_TRUE(set.count("pFL-SMoG"));
  // Every registered name constructs.
  for (const auto& name : names) {
    EXPECT_NE(make_algorithm(name, tiny_world().config), nullptr) << name;
  }
}

TEST(FedBabuBehaviour, HeadStaysAtSharedRandomInit) {
  // FedBABU's federated state is encoder-only; its size proves the head is
  // not part of what clients exchange or train.
  const TinyWorld& world = tiny_world();
  FedBabu fedbabu(world.config);
  const fl::EncoderHeadModel reference =
      fl::make_encoder_head(world.config, world.config.seed);
  const std::size_t encoder_size =
      nn::ModelState::from_parameters(reference.encoder_parameters()).size();
  EXPECT_EQ(fedbabu.initialize().size(), encoder_size);
}

TEST(ScaffoldBehaviour, StatePacksModelAndControl) {
  const TinyWorld& world = tiny_world();
  Scaffold scaffold(world.config, false);
  const fl::EncoderHeadModel reference =
      fl::make_encoder_head(world.config, world.config.seed);
  const std::size_t model_size =
      nn::ModelState::from_parameters(reference.all_parameters()).size();
  const nn::ModelState initial = scaffold.initialize();
  EXPECT_EQ(initial.size(), 2 * model_size);
  // Control starts at zero.
  for (std::size_t i = model_size; i < initial.size(); ++i) {
    EXPECT_FLOAT_EQ(initial.values()[i], 0.0f);
  }
}

TEST(ScaffoldBehaviour, LocalUpdateReturnsModelAndControlDelta) {
  const TinyWorld& world = tiny_world();
  Scaffold scaffold(world.config, false);
  const nn::ModelState global = scaffold.initialize();
  fl::ClientContext ctx;
  ctx.client_id = 0;
  ctx.train = &world.fed.train[0];
  ctx.ssl_pool = &world.fed.ssl_pool[0];
  ctx.seed = 5;
  const fl::ClientUpdate update = scaffold.local_update(global, ctx);
  EXPECT_EQ(update.state.size(), global.size());
  // Aggregation accepts the update and moves the control variate.
  const nn::ModelState next = scaffold.aggregate(global, {update}, 0);
  EXPECT_EQ(next.size(), global.size());
}

// Merge algebra for the native aggregators behind real algorithms: a
// disjoint shard split merged in shard order must reproduce the flat fold
// bit for bit, for the weight-fn family (q-FedAvg's loss^q, Calibre's
// divergence weights) and for SCAFFOLD's two-accumulator state. Separate
// algorithm instances serve the flat and sharded folds because finish()
// may advance server-side state in place (SCAFFOLD's control variate).
TEST(MergeableAggregators, ShardMergeMatchesFlatFoldBitwise) {
  const TinyWorld& world = tiny_world();
  for (const char* name : {"q-FedAvg", "Calibre (SimCLR)", "SCAFFOLD"}) {
    const auto flat_algo = make_algorithm(name, world.config);
    const auto shard_algo = make_algorithm(name, world.config);
    const nn::ModelState global = flat_algo->initialize();

    rng::Generator gen(91);
    std::vector<fl::ClientUpdate> updates;
    for (int k = 0; k < 6; ++k) {
      fl::ClientUpdate update;
      std::vector<float> values = global.values();
      for (float& v : values) {
        v += 0.05f * static_cast<float>(gen.normal());
      }
      update.state = nn::ModelState(std::move(values));
      update.weight = static_cast<float>(10 + 3 * k);
      update.scalars["loss"] = 0.3f + 0.2f * static_cast<float>(k % 3);
      update.scalars["divergence"] = 0.1f + 0.05f * static_cast<float>(k);
      updates.push_back(std::move(update));
    }

    auto flat = flat_algo->make_aggregator(global, /*round=*/0);
    ASSERT_TRUE(flat->mergeable()) << name;
    for (const fl::ClientUpdate& update : updates) flat->fold(update);
    const nn::ModelState reference = flat->finish();

    const int shards = 3;
    std::vector<std::unique_ptr<fl::StreamingAggregator>> partials;
    for (int s = 0; s < shards; ++s) {
      partials.push_back(shard_algo->make_aggregator(global, /*round=*/0));
    }
    for (std::size_t k = 0; k < updates.size(); ++k) {
      partials[k % shards]->fold(updates[k]);
    }
    auto root = std::move(partials.front());
    for (int s = 1; s < shards; ++s) {
      root->merge(std::move(*partials[static_cast<std::size_t>(s)]));
    }
    EXPECT_EQ(root->folded(), static_cast<int>(updates.size())) << name;
    EXPECT_EQ(root->finish().values(), reference.values()) << name;
  }
}

// Regrouping the same partials must not change a single bit (integer
// accumulators make the merge exactly associative) — checked on SCAFFOLD,
// whose two-accumulator state is the most intricate merge.
TEST(MergeableAggregators, ScaffoldMergeIsAssociative) {
  const TinyWorld& world = tiny_world();
  auto build = [&](const nn::ModelState& global, Scaffold& scaffold,
                   const std::vector<fl::ClientUpdate>& updates) {
    std::vector<std::unique_ptr<fl::StreamingAggregator>> partials;
    for (int s = 0; s < 3; ++s) {
      partials.push_back(scaffold.make_aggregator(global, 0));
    }
    for (std::size_t k = 0; k < updates.size(); ++k) {
      partials[k % 3]->fold(updates[k]);
    }
    return partials;
  };
  Scaffold left_algo(world.config, false);
  Scaffold right_algo(world.config, false);
  const nn::ModelState global = left_algo.initialize();
  rng::Generator gen(92);
  std::vector<fl::ClientUpdate> updates;
  for (int k = 0; k < 7; ++k) {
    fl::ClientUpdate update;
    std::vector<float> values = global.values();
    for (float& v : values) v += 0.02f * static_cast<float>(gen.normal());
    update.state = nn::ModelState(std::move(values));
    update.weight = static_cast<float>(5 + k);
    updates.push_back(std::move(update));
  }
  auto left = build(global, left_algo, updates);    // (a + b) + c
  left[0]->merge(std::move(*left[1]));
  left[0]->merge(std::move(*left[2]));
  auto right = build(global, right_algo, updates);  // a + (b + c)
  right[1]->merge(std::move(*right[2]));
  right[0]->merge(std::move(*right[1]));
  EXPECT_EQ(left[0]->finish().values(), right[0]->finish().values());
}

TEST(LgFedAvgBehaviour, GlobalStateIsHeadOnly) {
  const TinyWorld& world = tiny_world();
  LgFedAvg lg(world.config);
  const fl::EncoderHeadModel reference =
      fl::make_encoder_head(world.config, world.config.seed);
  EXPECT_EQ(lg.initialize().size(),
            nn::ModelState::from_parameters(reference.head_parameters())
                .size());
}

TEST(LgFedAvgBehaviour, ClientFeaturesUseLocalEncoder) {
  const TinyWorld& world = tiny_world();
  LgFedAvg lg(world.config);
  const nn::ModelState global = lg.initialize();
  fl::ClientContext ctx;
  ctx.client_id = 0;
  ctx.train = &world.fed.train[0];
  ctx.ssl_pool = &world.fed.ssl_pool[0];
  ctx.seed = 6;
  (void)lg.local_update(global, ctx);
  // Client 0 trained its encoder; client 3 never did. Their features on the
  // same inputs must differ.
  const tensor::Tensor x = world.fed.train[0].x;
  EXPECT_FALSE(tensor::allclose(lg.client_features(0, x),
                                lg.client_features(3, x), 1e-5f));
}

TEST(PersistentState, FedPerKeepsPerClientHeads) {
  // A second local update for the same client must start from its stored
  // head: running two updates for client 0 and one for client 1 leaves their
  // personalized accuracies both valid but their stored heads distinct.
  const TinyWorld& world = tiny_world();
  const auto algorithm = make_algorithm("FedPer", world.config);
  const nn::ModelState global = algorithm->initialize();
  fl::ClientContext ctx0;
  ctx0.client_id = 0;
  ctx0.train = &world.fed.train[0];
  ctx0.seed = 7;
  fl::ClientContext ctx1;
  ctx1.client_id = 1;
  ctx1.train = &world.fed.train[1];
  ctx1.seed = 8;
  const fl::ClientUpdate u0 = algorithm->local_update(global, ctx0);
  const fl::ClientUpdate u1 = algorithm->local_update(global, ctx1);
  // Encoder states differ because local data differs.
  EXPECT_GT(u0.state.l2_distance(u1.state), 0.0f);
}

TEST(LocalOnly, TrainingStageIsForbidden) {
  const TinyWorld& world = tiny_world();
  const auto script = make_algorithm("Script-Fair", world.config);
  fl::ClientContext ctx;
  EXPECT_THROW(script->local_update(nn::ModelState(), ctx), CheckError);
}

TEST(Determinism, SameSeedSameResult) {
  const TinyWorld& world = tiny_world();
  auto run_once = [&] {
    const auto algorithm = make_algorithm("FedAvg-FT", world.config);
    return fl::run_federated(*algorithm, world.fed, false).train_accuracies;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, CalibreSameSeedSameResult) {
  const TinyWorld& world = tiny_world();
  auto run_once = [&] {
    const auto algorithm = make_algorithm("Calibre (SimCLR)", world.config);
    return fl::run_federated(*algorithm, world.fed, false).train_accuracies;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- client store ------------------------------------------------------------

TEST(ClientStoreTest, VisitBorrowsWithoutCopyAndMutateEditsInPlace) {
  ClientStore<std::vector<float>> store;
  EXPECT_FALSE(store.contains(3));
  EXPECT_FALSE(store.visit(3, [](const std::vector<float>&) { FAIL(); }));
  EXPECT_FALSE(store.mutate(3, [](std::vector<float>&) { FAIL(); }));

  store.put(3, std::vector<float>{1.0f, 2.0f});
  const float* stored_data = nullptr;
  ASSERT_TRUE(store.visit(3, [&](const std::vector<float>& v) {
    stored_data = v.data();
    EXPECT_EQ(v, (std::vector<float>{1.0f, 2.0f}));
  }));
  // Same buffer on a second visit: the store lends the value, not a copy.
  ASSERT_TRUE(store.visit(3, [&](const std::vector<float>& v) {
    EXPECT_EQ(v.data(), stored_data);
  }));

  ASSERT_TRUE(store.mutate(3, [](std::vector<float>& v) { v[0] = 9.0f; }));
  const auto copy = store.get(3);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ((*copy)[0], 9.0f);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ClientStoreTest, ShardedStoreSurvivesConcurrentClients) {
  // Simulates the handler pattern at fan-out: many clients, distinct ids,
  // read-modify-write their own state concurrently. Ids are spread across
  // every shard (id & 15), so this also catches cross-shard aliasing.
  ClientStore<int> store;
  constexpr int kClients = 64;
  constexpr int kRounds = 50;
  std::vector<std::thread> workers;
  workers.reserve(8);
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&store, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int id = w; id < kClients; id += 8) {
          if (!store.mutate(id, [](int& value) { ++value; })) {
            store.put(id, 1);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kClients));
  for (int id = 0; id < kClients; ++id) {
    int value = 0;
    ASSERT_TRUE(store.visit(id, [&](const int& v) { value = v; }));
    EXPECT_EQ(value, kRounds) << "client " << id;
  }
}

}  // namespace
}  // namespace calibre::algos
