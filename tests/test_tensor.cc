// Unit tests for the tensor library: construction, elementwise ops with
// broadcasting, linear algebra, reductions, structural ops and error paths.
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace calibre::tensor {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rows(), 0);
  EXPECT_EQ(t.cols(), 0);
  EXPECT_EQ(t.size(), 0);
}

TEST(Tensor, ZerosOnesFullEye) {
  EXPECT_FLOAT_EQ(Tensor::zeros(2, 3).sum(), 0.0f);
  EXPECT_FLOAT_EQ(Tensor::ones(2, 3).sum(), 6.0f);
  EXPECT_FLOAT_EQ(Tensor::full(2, 2, 2.5f).sum(), 10.0f);
  const Tensor eye = Tensor::eye(3);
  EXPECT_FLOAT_EQ(eye.sum(), 3.0f);
  EXPECT_FLOAT_EQ(eye(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(eye(0, 1), 0.0f);
}

TEST(Tensor, RowFactoryAndAccess) {
  const Tensor r = Tensor::row({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 3);
  EXPECT_FLOAT_EQ(r(0, 2), 3.0f);
}

TEST(Tensor, ConstructorValidatesDataSize) {
  EXPECT_THROW(Tensor(2, 3, std::vector<float>(5)), CheckError);
}

TEST(Tensor, OutOfBoundsAccessThrows) {
  const Tensor t(2, 2);
  EXPECT_THROW(t(2, 0), CheckError);
  EXPECT_THROW(t(0, -1), CheckError);
}

TEST(Tensor, InPlaceOps) {
  Tensor a = Tensor::full(2, 2, 1.0f);
  a.add_(Tensor::full(2, 2, 2.0f));
  EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
  a.axpy_(0.5f, Tensor::full(2, 2, 4.0f));
  EXPECT_FLOAT_EQ(a(1, 1), 5.0f);
  a.scale_(2.0f);
  EXPECT_FLOAT_EQ(a(0, 1), 10.0f);
  EXPECT_THROW(a.add_(Tensor(3, 2)), CheckError);
}

TEST(Tensor, Reductions) {
  const Tensor t(2, 3, {1, -2, 3, 4, 5, -6});
  EXPECT_FLOAT_EQ(t.sum(), 5.0f);
  EXPECT_FLOAT_EQ(t.mean(), 5.0f / 6.0f);
  EXPECT_FLOAT_EQ(t.min(), -6.0f);
  EXPECT_FLOAT_EQ(t.max(), 5.0f);
  EXPECT_FLOAT_EQ(t.squared_norm(), 1 + 4 + 9 + 16 + 25 + 36);
  EXPECT_EQ(t.argmax_row(0), 2);
  EXPECT_EQ(t.argmax_row(1), 1);
}

TEST(Tensor, RowCopy) {
  const Tensor t(2, 2, {1, 2, 3, 4});
  const Tensor r = t.row_copy(1);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_FLOAT_EQ(r(0, 0), 3.0f);
}

// --- broadcasting -----------------------------------------------------------

TEST(TensorBroadcast, SameShape) {
  const Tensor a(2, 2, {1, 2, 3, 4});
  const Tensor b(2, 2, {10, 20, 30, 40});
  EXPECT_TRUE(allclose(add(a, b), Tensor(2, 2, {11, 22, 33, 44})));
  EXPECT_TRUE(allclose(sub(b, a), Tensor(2, 2, {9, 18, 27, 36})));
  EXPECT_TRUE(allclose(mul(a, a), Tensor(2, 2, {1, 4, 9, 16})));
  EXPECT_TRUE(allclose(div(b, a), Tensor(2, 2, {10, 10, 10, 10})));
}

TEST(TensorBroadcast, RowVector) {
  const Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor row = Tensor::row({10, 20, 30});
  EXPECT_TRUE(
      allclose(add(a, row), Tensor(2, 3, {11, 22, 33, 14, 25, 36})));
}

TEST(TensorBroadcast, ColVector) {
  const Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor col(2, 1, {10, 100});
  EXPECT_TRUE(
      allclose(mul(a, col), Tensor(2, 3, {10, 20, 30, 400, 500, 600})));
}

TEST(TensorBroadcast, OuterProductShapes) {
  const Tensor col(3, 1, {1, 2, 3});
  const Tensor row = Tensor::row({10, 20});
  const Tensor out = add(col, row);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 2);
  EXPECT_FLOAT_EQ(out(2, 1), 23.0f);
}

TEST(TensorBroadcast, MismatchThrows) {
  EXPECT_THROW(add(Tensor(2, 3), Tensor(3, 3)), CheckError);
  EXPECT_THROW(mul(Tensor(2, 3), Tensor(2, 4)), CheckError);
}

TEST(TensorBroadcast, ReduceToShape) {
  const Tensor grad(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor to_row = reduce_to_shape(grad, 1, 3);
  EXPECT_TRUE(allclose(to_row, Tensor::row({5, 7, 9})));
  const Tensor to_col = reduce_to_shape(grad, 2, 1);
  EXPECT_TRUE(allclose(to_col, Tensor(2, 1, {6, 15})));
  const Tensor to_scalar = reduce_to_shape(grad, 1, 1);
  EXPECT_FLOAT_EQ(to_scalar(0, 0), 21.0f);
  EXPECT_THROW(reduce_to_shape(grad, 3, 3), CheckError);
}

// --- linear algebra ----------------------------------------------------------

TEST(TensorLinalg, Matmul) {
  const Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(allclose(c, Tensor(2, 2, {58, 64, 139, 154})));
  EXPECT_THROW(matmul(a, a), CheckError);
}

TEST(TensorLinalg, MatmulIdentity) {
  rng::Generator gen(3);
  const Tensor a = Tensor::randn(4, 4, gen);
  EXPECT_TRUE(allclose(matmul(a, Tensor::eye(4)), a));
  EXPECT_TRUE(allclose(matmul(Tensor::eye(4), a), a));
}

TEST(TensorLinalg, Transpose) {
  const Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor at = transpose(a);
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at.cols(), 2);
  EXPECT_FLOAT_EQ(at(2, 1), 6.0f);
  EXPECT_TRUE(allclose(transpose(at), a));
}

// --- reductions to tensors ----------------------------------------------------

TEST(TensorReduce, RowColSumMax) {
  const Tensor a(2, 3, {1, 5, 3, 4, 2, 6});
  EXPECT_TRUE(allclose(row_sum(a), Tensor(2, 1, {9, 12})));
  EXPECT_TRUE(allclose(col_sum(a), Tensor::row({5, 7, 9})));
  EXPECT_FLOAT_EQ(sum_all(a)(0, 0), 21.0f);
  EXPECT_TRUE(allclose(row_max(a), Tensor(2, 1, {5, 6})));
}

// --- structural ----------------------------------------------------------------

TEST(TensorStructural, ConcatRowsCols) {
  const Tensor a(1, 2, {1, 2});
  const Tensor b(2, 2, {3, 4, 5, 6});
  const Tensor rows = concat_rows({a, b});
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_FLOAT_EQ(rows(2, 1), 6.0f);
  const Tensor c(2, 1, {7, 8});
  const Tensor cols = concat_cols({b, c});
  EXPECT_EQ(cols.cols(), 3);
  EXPECT_FLOAT_EQ(cols(1, 2), 8.0f);
  EXPECT_THROW(concat_rows({a, Tensor(2, 3)}), CheckError);
  EXPECT_THROW(concat_cols({b, Tensor(3, 1)}), CheckError);
}

TEST(TensorStructural, SliceRowsCols) {
  const Tensor a(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_TRUE(allclose(slice_rows(a, 1, 3),
                       Tensor(2, 3, {4, 5, 6, 7, 8, 9})));
  EXPECT_TRUE(allclose(slice_cols(a, 0, 2),
                       Tensor(3, 2, {1, 2, 4, 5, 7, 8})));
  EXPECT_THROW(slice_rows(a, 2, 4), CheckError);
}

TEST(TensorStructural, TakeRowsWithRepetition) {
  const Tensor a(2, 2, {1, 2, 3, 4});
  const Tensor taken = take_rows(a, {1, 1, 0});
  EXPECT_EQ(taken.rows(), 3);
  EXPECT_FLOAT_EQ(taken(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(taken(2, 1), 2.0f);
  EXPECT_THROW(take_rows(a, {2}), CheckError);
}

TEST(TensorStructural, GatherCols) {
  const Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor g = gather_cols(a, {2, 0});
  EXPECT_FLOAT_EQ(g(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(g(1, 0), 4.0f);
  EXPECT_THROW(gather_cols(a, {3, 0}), CheckError);
  EXPECT_THROW(gather_cols(a, {0}), CheckError);
}

// --- numeric helpers -------------------------------------------------------------

TEST(TensorNumeric, SoftmaxRows) {
  const Tensor logits(1, 3, {0.0f, 0.0f, 0.0f});
  const Tensor sm = softmax_rows(logits);
  EXPECT_NEAR(sm(0, 0), 1.0f / 3.0f, 1e-6f);
  // Shift invariance.
  const Tensor shifted(1, 3, {100.0f, 100.0f, 100.0f});
  EXPECT_TRUE(allclose(softmax_rows(shifted), sm, 1e-6f));
  // Rows sum to one.
  rng::Generator gen(5);
  const Tensor r = Tensor::randn(4, 7, gen);
  const Tensor rsm = softmax_rows(r);
  for (std::int64_t i = 0; i < 4; ++i) {
    float total = 0.0f;
    for (std::int64_t j = 0; j < 7; ++j) total += rsm(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(TensorNumeric, LogSoftmaxMatchesSoftmax) {
  rng::Generator gen(6);
  const Tensor r = Tensor::randn(3, 5, gen, 3.0f);
  const Tensor lsm = log_softmax_rows(r);
  const Tensor sm = softmax_rows(r);
  for (std::int64_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(std::exp(lsm.data()[i]), sm.data()[i], 1e-5f);
  }
}

TEST(TensorNumeric, L2NormalizeRows) {
  const Tensor a(2, 2, {3, 4, 0, 0});
  const Tensor n = l2_normalize_rows(a);
  EXPECT_NEAR(n(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(n(0, 1), 0.8f, 1e-6f);
  // Zero rows stay finite.
  EXPECT_FLOAT_EQ(n(1, 0), 0.0f);
}

TEST(TensorNumeric, PairwiseSqDists) {
  const Tensor a(2, 2, {0, 0, 1, 1});
  const Tensor b(1, 2, {3, 4});
  const Tensor d = pairwise_sq_dists(a, b);
  EXPECT_FLOAT_EQ(d(0, 0), 25.0f);
  EXPECT_FLOAT_EQ(d(1, 0), 13.0f);
  // Self-distance diagonal is zero.
  const Tensor self = pairwise_sq_dists(a, a);
  EXPECT_FLOAT_EQ(self(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(self(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(self(0, 1), self(1, 0));
}

TEST(TensorNumeric, AllClose) {
  const Tensor a = Tensor::full(2, 2, 1.0f);
  Tensor b = a;
  EXPECT_TRUE(allclose(a, b));
  b(1, 1) += 1e-3f;
  EXPECT_FALSE(allclose(a, b, 1e-5f));
  EXPECT_TRUE(allclose(a, b, 1e-2f));
  EXPECT_FALSE(allclose(a, Tensor(2, 3)));
}

// --- kernel layer golden tests ----------------------------------------------
//
// The blocked/tiled kernels must agree with the seed's scalar reference
// kernels (kept verbatim in tensor/kernels.cc) on awkward shapes: degenerate
// 1xN / Nx1, shapes that are not multiples of the row tile or column block,
// and one shape large enough to cross the parallel_for flop threshold.
class KernelGolden : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KernelGolden, BlockedMatmulMatchesNaive) {
  const auto [n, k, m] = GetParam();
  rng::Generator gen(static_cast<std::uint64_t>(n * 31 + k * 7 + m));
  const Tensor a = Tensor::randn(n, k, gen);
  const Tensor b = Tensor::randn(k, m, gen);
  EXPECT_TRUE(allclose(matmul(a, b), kernels::matmul_naive(a, b), 1e-4f));
}

TEST_P(KernelGolden, MatmulNTFusesTranspose) {
  const auto [n, k, m] = GetParam();
  rng::Generator gen(static_cast<std::uint64_t>(n * 13 + k * 5 + m));
  const Tensor a = Tensor::randn(n, k, gen);
  const Tensor b = Tensor::randn(m, k, gen);  // matmul_nt contracts over cols
  EXPECT_TRUE(allclose(matmul_nt(a, b),
                       kernels::matmul_naive(a, transpose(b)), 1e-4f));
}

TEST_P(KernelGolden, MatmulTNFusesTranspose) {
  const auto [n, k, m] = GetParam();
  rng::Generator gen(static_cast<std::uint64_t>(n * 17 + k * 3 + m));
  const Tensor a = Tensor::randn(k, n, gen);  // matmul_tn contracts over rows
  const Tensor b = Tensor::randn(k, m, gen);
  EXPECT_TRUE(allclose(matmul_tn(a, b),
                       kernels::matmul_naive(transpose(a), b), 1e-4f));
}

TEST_P(KernelGolden, GemmPairwiseMatchesNaive) {
  const auto [n, k, m] = GetParam();
  rng::Generator gen(static_cast<std::uint64_t>(n * 23 + k * 11 + m));
  const Tensor a = Tensor::randn(n, k, gen);
  const Tensor b = Tensor::randn(m, k, gen);
  EXPECT_TRUE(allclose(pairwise_sq_dists(a, b),
                       kernels::pairwise_sq_dists_naive(a, b), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelGolden,
    ::testing::Values(
        std::make_tuple(1, 1, 1),       // smallest degenerate
        std::make_tuple(1, 33, 5),      // single output row
        std::make_tuple(7, 1, 9),       // K = 1
        std::make_tuple(9, 40, 1),      // single output column
        std::make_tuple(67, 129, 33),   // nothing divides the tile/block sizes
        std::make_tuple(4, 64, 128),    // exact row-tile and column-block fit
        std::make_tuple(130, 70, 131),  // one past the column block
        std::make_tuple(128, 128, 128)  // crosses parallel_flop_threshold()
        ));

TEST(KernelGolden, PairwiseIsNonNegativeOnDuplicateRows) {
  // The GEMM decomposition |a|^2 + |b|^2 - 2ab can go epsilon-negative under
  // float cancellation when a == b; the kernel must clamp to zero. The
  // diagonal is only zero up to cancellation residue, never negative.
  rng::Generator gen(41);
  const Tensor a = Tensor::randn(17, 29, gen, 5.0f);
  const Tensor d = pairwise_sq_dists(a, a);
  for (std::int64_t i = 0; i < d.rows(); ++i) {
    for (std::int64_t j = 0; j < d.cols(); ++j) {
      EXPECT_GE(d(i, j), 0.0f);
    }
    EXPECT_NEAR(d(i, i), 0.0f, 1e-3f);
  }
}

TEST(KernelGolden, MatmulNTShapeChecks) {
  EXPECT_THROW(matmul_nt(Tensor(2, 3), Tensor(4, 5)), CheckError);
  EXPECT_THROW(matmul_tn(Tensor(2, 3), Tensor(4, 3)), CheckError);
}

// Parameterized shape sweep: (A @ B)^T == B^T @ A^T for random shapes.
class MatmulTransposeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulTransposeProperty, TransposeOfProduct) {
  const auto [n, k, m] = GetParam();
  rng::Generator gen(static_cast<std::uint64_t>(n * 10000 + k * 100 + m));
  const Tensor a = Tensor::randn(n, k, gen);
  const Tensor b = Tensor::randn(k, m, gen);
  EXPECT_TRUE(allclose(transpose(matmul(a, b)),
                       matmul(transpose(b), transpose(a)), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulTransposeProperty,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(8, 8, 8),
                      std::make_tuple(1, 16, 3), std::make_tuple(13, 7, 2)));

// Parameterized: reduce_to_shape(broadcast(x)) equals x scaled by fan-out.
class BroadcastRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BroadcastRoundTrip, SumOverBroadcastAxes) {
  const auto [rows, cols] = GetParam();
  rng::Generator gen(11);
  const Tensor small = Tensor::randn(1, cols, gen);
  const Tensor big = Tensor::zeros(rows, cols);
  const Tensor broadcasted = add(big, small);
  const Tensor reduced = reduce_to_shape(broadcasted, 1, cols);
  EXPECT_TRUE(allclose(reduced, mul_scalar(small, static_cast<float>(rows)),
                       1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, BroadcastRoundTrip,
                         ::testing::Values(std::make_pair(1, 4),
                                           std::make_pair(3, 4),
                                           std::make_pair(16, 2),
                                           std::make_pair(7, 9)));

}  // namespace
}  // namespace calibre::tensor
