// Seeded violation: error-feedback residuals are per-client state that must
// survive re-selection gaps (a client may sit out many rounds between
// participations). Keeping them in a runner-local map ties their lifetime to
// the round loop and bypasses the ClientStore's sharded locking — exactly
// the placement the residual-in-store rule forbids.
// expect-lint: residual-in-store
#include <map>
#include <vector>

struct FakeRound {
  // Hand-rolled per-client float state, keyed by client id.
  std::map<int, std::vector<float>> residuals;
};

void carry_forward(FakeRound& round, int client, float mass) {
  round.residuals[client].push_back(mass);
}
