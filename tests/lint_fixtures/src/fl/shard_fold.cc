// Seeded violation: a shard-local aggregator is a *partial* fold. The real
// src/fl/shard_fold.cc must merge() every shard partial into the round root
// (in ascending shard order) and let the runner call finish() exactly once
// on the merged root. Finishing a shard partial divides by the shard's
// weight alone, committing a partial average whose bits can never equal the
// flat fold's — the exact failure the sharded-fold bit-identity tests guard.
// expect-lint: streaming-fold
struct FakeState {};

struct FakeAggregator {
  FakeState finish();
};

struct FakeShard {
  FakeAggregator* agg;
};

FakeState broken_collect(FakeShard& shard) {
  return shard.agg->finish();  // shard partial finished without a merge
}
