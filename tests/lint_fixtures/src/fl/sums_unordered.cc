// Seeded violation: accumulating floats while traversing an unordered_map.
// Hash-table iteration order depends on the hash seed, insertion history and
// bucket count; float addition is not associative, so the sum — and the
// frozen f32 final-state hash downstream of it — becomes run-dependent.
// expect-lint: unordered-iteration
#include <unordered_map>

class WeightTotals {
 public:
  float total() const {
    float sum = 0.0f;
    for (const auto& kv : weights_) {
      sum += kv.second;  // order-sensitive float accumulation
    }
    return sum;
  }

  // False-positive regression: an order-independent body (keyed writes, no
  // accumulator, no serializer) is fine and must not fire.
  void clamp() {
    for (auto& kv : weights_) {
      if (kv.second < 0.0f) kv.second = 0.0f;
    }
  }

 private:
  std::unordered_map<int, float> weights_;
};
