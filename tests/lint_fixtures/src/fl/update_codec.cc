// Clean counterpart: fl/update_codec.* is the ONE place residual state is
// legal — the rule's scope excludes it, so the identifiers below must not
// fire even though they would anywhere else under src/fl/. No expect-lint
// annotations: the self-test asserts zero findings here.

struct FakeClientStore {
  void put(int, float) {}
};

struct FakeEncoder {
  FakeClientStore residuals_;  // legal: ClientStore-backed, in update_codec
  void store_residual(int client, float residual) {
    residuals_.put(client, residual);
  }
};
