// Seeded violation: the real src/fl/runner.cc must stream client updates
// into Algorithm::make_aggregator's fold; collecting decoded updates into a
// vector and calling batch aggregate() is exactly the O(cohort * model)
// server-memory regression the streaming refactor removed.
// expect-lint: streaming-fold
#include <vector>

struct ClientUpdate {};
struct FakeState {};

struct FakeAlgorithm {
  FakeState aggregate(const std::vector<ClientUpdate>& updates);
};

FakeState naive_round(FakeAlgorithm& algorithm) {
  std::vector<ClientUpdate> updates;  // buffers the whole cohort decoded
  updates.push_back(ClientUpdate{});
  return algorithm.aggregate(updates);
}
