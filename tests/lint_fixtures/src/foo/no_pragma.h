// Seeded violation: a header with no include guard of any kind.
// expect-lint: pragma-once
int fixture_header_value();
