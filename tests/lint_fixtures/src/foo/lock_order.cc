// Seeded violation: two functions acquire the same pair of mutexes in
// opposite nesting orders — the classic ABBA deadlock. Only *nested*
// acquisitions constrain; disjoint() shows sequential scopes staying free.
// expect-lint: lock-order
#include <mutex>

class Transfer {
 public:
  void debit_then_credit() {
    std::lock_guard<std::mutex> a(accounts_mu_);
    std::lock_guard<std::mutex> b(journal_mu_);
    balance_ -= 1;
  }

  void credit_then_debit() {
    std::lock_guard<std::mutex> b(journal_mu_);
    std::lock_guard<std::mutex> a(accounts_mu_);
    balance_ += 1;
  }

  // False-positive regression: back-to-back closed scopes never hold both
  // mutexes at once, so they impose no ordering constraint.
  void disjoint() {
    {
      std::lock_guard<std::mutex> a(accounts_mu_);
      balance_ += 2;
    }
    {
      std::lock_guard<std::mutex> b(journal_mu_);
      balance_ -= 2;
    }
  }

 private:
  std::mutex accounts_mu_;
  std::mutex journal_mu_;
  int balance_ = 0;
};
