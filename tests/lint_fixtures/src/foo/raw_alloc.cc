// Seeded violation: raw float-buffer management outside tensor/{pool,tensor}.
// expect-lint: pool-bypass
#include <cstdlib>

float* leaky_scratch(int n) {
  float* p = new float[static_cast<unsigned>(n)];
  void* q = malloc(16);
  free(q);
  return p;
}
