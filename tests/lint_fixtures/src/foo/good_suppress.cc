// False-positive regression for suppressions: a real thread-funnel violation
// muted by a well-formed `// lint-allow: <rule> <reason>` — the self-test
// asserts this file produces zero findings, proving suppression works.
#include <thread>

void run_detached_watchdog() {
  // lint-allow: thread-funnel fixture exercising a valid suppression
  std::thread watchdog([] {});
  watchdog.join();
}
