// Seeded violation: raw .lock()/.unlock() on a mutex member instead of an
// RAII guard — an early return or a throw between the pair leaves the mutex
// held forever. Calling .lock()/.unlock() on a std::unique_lock *guard* is
// fine (see hand_off below) and must not fire.
// expect-lint: lock-raw
#include <mutex>

class Counter {
 public:
  void bump() {
    mu_.lock();
    ++value_;
    mu_.unlock();
  }

  // False-positive regression: unlock-then-relock on the guard object is
  // still RAII-owned and legal (common/timer_queue.cc does exactly this).
  void hand_off() {
    std::unique_lock<std::mutex> lk(mu_);
    ++value_;
    lk.unlock();
    lk.lock();
  }

 private:
  std::mutex mu_;
  int value_ = 0;
};
