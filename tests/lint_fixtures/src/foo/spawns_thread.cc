// Seeded violation: a raw std::thread outside common/thread_pool.*, invisible
// to the TSan lane's ThreadPool coverage.
// expect-lint: thread-funnel
#include <thread>

void fire_and_forget() { std::thread([] {}).detach(); }
