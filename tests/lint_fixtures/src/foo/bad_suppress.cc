// Seeded violation: a lint-allow with no reason is an unreviewable mute and
// is rejected — the bad-suppression finding fires AND the original rule
// still fires (the mute does nothing). A lint-allow naming an unknown rule
// id is rejected the same way.
// expect-lint: bad-suppression
// expect-lint: thread-funnel
#include <thread>

void spawn_unpooled() {
  // lint-allow: thread-funnel
  std::thread worker([] {});
  worker.join();
}

// lint-allow: not-a-real-rule this rule id does not exist
int unrelated() { return 0; }
