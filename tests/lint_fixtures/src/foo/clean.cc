// A clean library file: the self-test asserts zero findings here, including
// that mentions of rand(), malloc(), std::thread or assert( inside comments
// and string literals never fire (the linter strips both before matching).
#include <string>

std::string describe() {
  return "calls like rand() or malloc() in a string are not violations";
}
