// Seeded violation: assert() in library code — compiles out under NDEBUG,
// so the invariant silently stops being checked in release builds.
// expect-lint: check-not-assert
#include <cassert>

void require_square(int rows, int cols) { assert(rows == cols); }
