// Other half of the seeded include cycle with cycle_a.h.
// expect-lint: layering-cycle
#pragma once

#include "foo/cycle_a.h"

struct CycleB {};
