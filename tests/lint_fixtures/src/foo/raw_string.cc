// False-positive regression for raw string literals: everything between
// R"( and )" is literal text, including quotes, // sequences and code-like
// fragments. A stripper that treats the opening quote as a plain string
// start exits early at the first inner quote and leaks the rest of the
// literal into "code", firing thread-funnel / pool-bypass here. The
// self-test asserts zero findings on this file.
#include <string>

const char* kShellSnippet = R"(quote " std::thread worker; malloc(12); " end)";

const char* kMultiLine = R"delim(
first line with a stray quote "
second line calls rand() and assert(false) — still just text
)delim";

std::string describe_raw() { return std::string(kShellSnippet) + kMultiLine; }
