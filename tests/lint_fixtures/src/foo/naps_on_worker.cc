// Seeded violation: a sleep_for outside common/timer_queue.*. On a
// ThreadPool worker this parks the thread and serializes every dispatch
// queued behind it — the injected fault-latency bug.
// expect-lint: blocking-sleep
#include <chrono>
#include <thread>

void simulate_latency() {
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
}
