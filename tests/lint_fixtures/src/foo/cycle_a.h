// Seeded violation: cycle_a.h and cycle_b.h include each other. #pragma once
// hides the cycle at compile time, but it still means the layering is lying;
// the analyzer reports it on every member file so any of them can break it.
// expect-lint: layering-cycle
#pragma once

#include "foo/cycle_b.h"

struct CycleA {};
