// Seeded violation: wall-clock reads (time(), system_clock) feeding library
// state, which breaks run-to-run bitwise determinism.
// expect-lint: determinism-rng
#include <chrono>
#include <ctime>

long clocky_seed() {
  const long t = static_cast<long>(time(nullptr));
  return t + std::chrono::system_clock::now().time_since_epoch().count();
}
