// Seeded violation: libc rand() in library code outside tensor/rng.cc.
// expect-lint: determinism-rng
#include <cstdlib>

int noisy_client_pick(int n) { return rand() % n; }
