// Seeded violation: notify_all on a condvar in a function that never holds
// the mutex waiters pair with it via cv_.wait(lk) — the ~ShardedFolder bug
// class TSan caught in PR 8 (a waiter observes the predicate, decides to
// sleep, and misses the wake; or the condvar is destroyed mid-notify).
// expect-lint: lock-notify-unheld
#include <condition_variable>
#include <mutex>

class Notifier {
 public:
  void wait_ready() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return ready_; });
  }

  // False-positive regression: the documented unlock-then-notify hand-off —
  // the guard IS constructed in this function, so the notify passes.
  void signal() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_ = true;
    }
    cv_.notify_one();
  }

  ~Notifier() {
    done_ = true;
    cv_.notify_all();  // never holds mu_ anywhere in this function
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool ready_ = false;
  bool done_ = false;
};
