// Seeded violation: an untrusted wire count sizes an allocation with no
// CALIBRE_CHECK* validating it against the remaining bytes first.
// expect-lint: serde-count-guard
#include <cstdint>
#include <vector>

struct FakeReader {
  std::uint64_t read_u64();
};

std::vector<int> decode_naive(FakeReader& reader) {
  const std::uint64_t count = reader.read_u64();
  std::vector<int> values(count);  // a corrupt count allocates gigabytes
  return values;
}
