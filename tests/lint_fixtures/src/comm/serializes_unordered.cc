// Seeded violation: serializing while traversing an unordered_map puts the
// wire bytes in hash-table order — the payload then differs run to run even
// when the contents are identical, breaking codec round-trip golden tests.
// expect-lint: unordered-iteration
#include <cstdint>
#include <unordered_map>

struct FakeWriter {
  void write_u32(std::uint32_t v);
};

class TagTable {
 public:
  void encode(FakeWriter& writer) const {
    for (const auto& kv : tags_) {
      writer.write_u32(kv.first);
      writer.write_u32(kv.second);
    }
  }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> tags_;
};
