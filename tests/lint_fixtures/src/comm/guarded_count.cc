// False-positive regression: the same decode shape as unguarded_count.cc but
// with the wraparound-proof guard in place — must produce zero findings.
#include <cstdint>
#include <vector>

struct FakeReader {
  std::uint64_t read_u64();
  std::size_t remaining() const;
};

// Stand-in for common/check.h in this never-compiled fixture tree.
#define CALIBRE_CHECK_LE(a, b) ((void)((a) <= (b)))

std::vector<int> decode_guarded(FakeReader& reader) {
  const std::uint64_t count = reader.read_u64();
  CALIBRE_CHECK_LE(count, reader.remaining() / sizeof(int));
  std::vector<int> values(count);
  return values;
}
