// Seeded violation: tensor is the second-lowest layer; including the FL
// orchestration loop from it is an upward edge the module DAG forbids.
// expect-lint: layering-dag
#pragma once

#include "fl/runner.h"
