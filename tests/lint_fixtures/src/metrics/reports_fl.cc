// Seeded violation: metrics is a side-layer that must NEVER include fl —
// the reporting layer cannot depend on the orchestration loop it serves.
// expect-lint: layering-dag

#include "fl/config.h"

int metrics_peeks_at_round_config() { return 0; }
