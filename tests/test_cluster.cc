// Tests for KMeans and the cluster-quality metrics.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "cluster/quality.h"
#include "common/check.h"

namespace calibre::cluster {
namespace {

using tensor::Tensor;

// Three well-separated Gaussian blobs; returns points + ground truth.
void make_blobs(int per_blob, Tensor& points, std::vector<int>& labels,
                std::uint64_t seed = 5) {
  rng::Generator gen(seed);
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  points = Tensor(3 * per_blob, 2);
  labels.clear();
  for (int blob = 0; blob < 3; ++blob) {
    for (int i = 0; i < per_blob; ++i) {
      const int row = blob * per_blob + i;
      points(row, 0) = centers[blob][0] + static_cast<float>(gen.normal());
      points(row, 1) = centers[blob][1] + static_cast<float>(gen.normal());
      labels.push_back(blob);
    }
  }
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Tensor points;
  std::vector<int> labels;
  make_blobs(30, points, labels);
  rng::Generator gen(1);
  KMeansConfig config;
  config.k = 3;
  const KMeansResult result = kmeans(points, config, gen);
  // Perfect recovery up to relabeling: purity of assignments = 1.
  EXPECT_DOUBLE_EQ(cluster_purity(result.assignments, labels), 1.0);
  EXPECT_NEAR(normalized_mutual_information(result.assignments, labels), 1.0,
              1e-9);
  // Every cluster non-empty, sizes sum to N.
  int total = 0;
  for (const int size : result.cluster_sizes) {
    EXPECT_GT(size, 0);
    total += size;
  }
  EXPECT_EQ(total, 90);
  EXPECT_GT(result.mean_distance, 0.0f);
}

TEST(KMeans, KClampedToSampleCount) {
  rng::Generator gen(2);
  const Tensor points = Tensor::randn(3, 4, gen);
  KMeansConfig config;
  config.k = 10;
  const KMeansResult result = kmeans(points, config, gen);
  EXPECT_EQ(result.centroids.rows(), 3);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  rng::Generator gen(3);
  const Tensor points = Tensor::randn(20, 3, gen);
  KMeansConfig config;
  config.k = 1;
  const KMeansResult result = kmeans(points, config, gen);
  const Tensor mean = tensor::mul_scalar(tensor::col_sum(points), 1.0f / 20);
  EXPECT_TRUE(tensor::allclose(result.centroids, mean, 1e-4f));
}

TEST(KMeans, DeterministicGivenRngState) {
  Tensor points;
  std::vector<int> labels;
  make_blobs(20, points, labels);
  rng::Generator gen_a(4);
  rng::Generator gen_b(4);
  KMeansConfig config;
  config.k = 3;
  const KMeansResult a = kmeans(points, config, gen_a);
  const KMeansResult b = kmeans(points, config, gen_b);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_TRUE(tensor::allclose(a.centroids, b.centroids));
}

TEST(KMeans, EmptyInputThrows) {
  rng::Generator gen(5);
  KMeansConfig config;
  EXPECT_THROW(kmeans(Tensor(0, 3), config, gen), CheckError);
}

TEST(KMeans, AssignToCentroids) {
  const Tensor centroids(2, 1, {0.0f, 10.0f});
  const Tensor points(4, 1, {1.0f, -1.0f, 9.0f, 12.0f});
  float mean_distance = 0.0f;
  const std::vector<int> assignments =
      assign_to_centroids(points, centroids, &mean_distance);
  EXPECT_EQ(assignments, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_NEAR(mean_distance, (1 + 1 + 1 + 2) / 4.0f, 1e-5f);
}

TEST(KMeans, ClusterMeansHandlesEmptyCluster) {
  const Tensor points(2, 2, {1, 1, 3, 3});
  const Tensor means = cluster_means(points, {0, 0}, 2);
  EXPECT_FLOAT_EQ(means(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(means(1, 0), 0.0f);  // empty cluster -> zero row
}

TEST(KMeans, MoreClustersLowerDistance) {
  Tensor points;
  std::vector<int> labels;
  make_blobs(30, points, labels);
  rng::Generator gen(6);
  KMeansConfig c2;
  c2.k = 2;
  KMeansConfig c6;
  c6.k = 6;
  const float d2 = kmeans(points, c2, gen).mean_distance;
  const float d6 = kmeans(points, c6, gen).mean_distance;
  EXPECT_LT(d6, d2);
}

// --- quality metrics ----------------------------------------------------------

TEST(Quality, SilhouetteHighForSeparatedBlobs) {
  Tensor points;
  std::vector<int> labels;
  make_blobs(25, points, labels);
  EXPECT_GT(silhouette_score(points, labels), 0.7);
}

TEST(Quality, SilhouetteNearZeroForRandomLabels) {
  Tensor points;
  std::vector<int> labels;
  make_blobs(25, points, labels, 7);
  rng::Generator gen(8);
  std::vector<int> random_labels(labels.size());
  for (auto& label : random_labels) {
    label = static_cast<int>(gen.uniform_index(3));
  }
  EXPECT_LT(std::abs(silhouette_score(points, random_labels)), 0.15);
}

TEST(Quality, SilhouetteIgnoresUnlabeled) {
  Tensor points;
  std::vector<int> labels;
  make_blobs(10, points, labels);
  std::vector<int> with_unlabeled = labels;
  with_unlabeled[0] = -1;
  const double score = silhouette_score(points, with_unlabeled);
  EXPECT_GT(score, 0.5);
}

TEST(Quality, SilhouetteDegenerateCases) {
  rng::Generator gen(9);
  const Tensor points = Tensor::randn(10, 2, gen);
  // Single cluster: no score.
  EXPECT_DOUBLE_EQ(silhouette_score(points, std::vector<int>(10, 0)), 0.0);
  // All unlabeled.
  EXPECT_DOUBLE_EQ(silhouette_score(points, std::vector<int>(10, -1)), 0.0);
}

TEST(Quality, PurityBounds) {
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(cluster_purity(labels, labels), 1.0);
  const std::vector<int> one_cluster = {0, 0, 0, 0, 0, 0};
  EXPECT_NEAR(cluster_purity(one_cluster, labels), 1.0 / 3.0, 1e-9);
  // Purity is invariant to cluster relabeling.
  const std::vector<int> relabeled = {5, 5, 9, 9, 7, 7};
  EXPECT_DOUBLE_EQ(cluster_purity(relabeled, labels), 1.0);
}

TEST(Quality, NmiProperties) {
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(normalized_mutual_information(labels, labels), 1.0, 1e-9);
  // Relabeling invariance.
  const std::vector<int> relabeled = {2, 2, 0, 0, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(relabeled, labels), 1.0, 1e-9);
  // Constant clustering carries no information.
  const std::vector<int> constant(6, 0);
  EXPECT_NEAR(normalized_mutual_information(constant, labels), 0.0, 1e-9);
  // Symmetry.
  const std::vector<int> other = {0, 1, 0, 1, 2, 2};
  EXPECT_NEAR(normalized_mutual_information(other, labels),
              normalized_mutual_information(labels, other), 1e-12);
}

// Parameterized: purity never decreases when clusters are split further.
class PuritySplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(PuritySplitProperty, SplittingNeverHurtsPurity) {
  const int k = GetParam();
  Tensor points;
  std::vector<int> labels;
  make_blobs(20, points, labels, 10);
  rng::Generator gen(11);
  KMeansConfig coarse;
  coarse.k = k;
  KMeansConfig fine;
  fine.k = k * 2;
  const double coarse_purity =
      cluster_purity(kmeans(points, coarse, gen).assignments, labels);
  const double fine_purity =
      cluster_purity(kmeans(points, fine, gen).assignments, labels);
  EXPECT_GE(fine_purity + 1e-9, coarse_purity);
}

INSTANTIATE_TEST_SUITE_P(Ks, PuritySplitProperty, ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace calibre::cluster
