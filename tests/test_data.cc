// Tests for the data layer: synthetic generation, the view oracle,
// augmentation, batching and the non-IID partitioners.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/augment.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace calibre::data {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig config;
  config.num_classes = 5;
  config.input_dim = 24;
  config.latent_dim = 8;
  config.train_samples = 600;
  config.test_samples = 300;
  config.seed = 99;
  return config;
}

TEST(Synthetic, SplitSizesAndLabels) {
  const SyntheticDataset synth = make_synthetic(small_config());
  EXPECT_EQ(synth.train.size(), 600);
  EXPECT_EQ(synth.test.size(), 300);
  EXPECT_EQ(synth.unlabeled.size(), 0);
  EXPECT_EQ(synth.train.input_dim(), 24);
  EXPECT_EQ(synth.train.num_classes, 5);
  for (const int label : synth.train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
  // Latents are retained for the oracle (class part only).
  EXPECT_EQ(synth.train.latents.rows(), 600);
  EXPECT_EQ(synth.train.latents.cols(), 8);
  EXPECT_TRUE(synth.oracle.valid());
  EXPECT_NE(synth.train.oracle, nullptr);
}

TEST(Synthetic, UnlabeledPoolIsUnlabeled) {
  SyntheticConfig config = small_config();
  config.unlabeled_samples = 100;
  const SyntheticDataset synth = make_synthetic(config);
  EXPECT_EQ(synth.unlabeled.size(), 100);
  for (const int label : synth.unlabeled.labels) {
    EXPECT_EQ(label, -1);
  }
  EXPECT_EQ(synth.unlabeled.labeled_indices().size(), 0u);
  EXPECT_EQ(synth.train.labeled_indices().size(), 600u);
}

TEST(Synthetic, DeterministicForSameSeed) {
  const SyntheticDataset a = make_synthetic(small_config());
  const SyntheticDataset b = make_synthetic(small_config());
  EXPECT_TRUE(tensor::allclose(a.train.x, b.train.x));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedDifferentData) {
  SyntheticConfig other = small_config();
  other.seed = 100;
  const SyntheticDataset a = make_synthetic(small_config());
  const SyntheticDataset b = make_synthetic(other);
  EXPECT_FALSE(tensor::allclose(a.train.x, b.train.x));
}

TEST(Synthetic, ObservationsAreBoundedByCosine) {
  const SyntheticDataset synth = make_synthetic(small_config());
  // cos output plus small noise: everything within [-1.5, 1.5].
  EXPECT_GE(synth.train.x.min(), -1.5f);
  EXPECT_LE(synth.train.x.max(), 1.5f);
}

TEST(ViewOracle, ViewsVaryButPreserveClassLatent) {
  const SyntheticDataset synth = make_synthetic(small_config());
  rng::Generator gen(1);
  std::vector<int> indices = {0, 1, 2, 3};
  const tensor::Tensor latents =
      tensor::take_rows(synth.train.latents, indices);
  const tensor::Tensor view1 = synth.oracle.render_view(latents, gen);
  const tensor::Tensor view2 = synth.oracle.render_view(latents, gen);
  EXPECT_EQ(view1.rows(), 4);
  EXPECT_EQ(view1.cols(), 24);
  // Stochastic nuisance: the two views differ.
  EXPECT_FALSE(tensor::allclose(view1, view2, 1e-3f));
}

TEST(ViewOracle, SameSampleViewsCloserThanCrossClassViews) {
  // The augmentation-graph property SSL relies on: two views of the SAME
  // sample (shared class latent) are closer on average than views of
  // samples from different classes.
  SyntheticConfig config = small_config();
  config.nuisance_stddev = 0.5f;  // mild nuisance so the signal dominates
  config.render_frequency = 0.6f;
  config.view_latent_jitter = 0.1f;
  const SyntheticDataset synth = make_synthetic(config);
  rng::Generator gen(2);
  int a = -1;
  int c = -1;
  for (std::size_t i = 0; i < synth.train.labels.size(); ++i) {
    if (synth.train.labels[i] == 0 && a < 0) a = static_cast<int>(i);
    if (synth.train.labels[i] == 1 && c < 0) c = static_cast<int>(i);
  }
  ASSERT_GE(a, 0);
  ASSERT_GE(c, 0);
  double same = 0.0;
  double cross = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    const auto va1 = synth.oracle.render_view(
        tensor::take_rows(synth.train.latents, {a}), gen);
    const auto va2 = synth.oracle.render_view(
        tensor::take_rows(synth.train.latents, {a}), gen);
    const auto vc = synth.oracle.render_view(
        tensor::take_rows(synth.train.latents, {c}), gen);
    same += tensor::pairwise_sq_dists(va1, va2)(0, 0);
    cross += tensor::pairwise_sq_dists(va1, vc)(0, 0);
  }
  EXPECT_LT(same, cross);
}

TEST(Dataset, SubsetSelectsRowsLabelsLatents) {
  const SyntheticDataset synth = make_synthetic(small_config());
  const Dataset subset = synth.train.subset({5, 5, 10});
  EXPECT_EQ(subset.size(), 3);
  EXPECT_EQ(subset.labels[0], synth.train.labels[5]);
  EXPECT_EQ(subset.labels[1], synth.train.labels[5]);
  EXPECT_EQ(subset.labels[2], synth.train.labels[10]);
  EXPECT_TRUE(tensor::allclose(subset.latents.row_copy(2),
                               synth.train.latents.row_copy(10)));
  EXPECT_EQ(subset.oracle, synth.train.oracle);
  EXPECT_THROW(synth.train.subset({-1}), CheckError);
}

TEST(Dataset, HistogramAndByClass) {
  Dataset dataset;
  dataset.x = tensor::Tensor::zeros(5, 2);
  dataset.labels = {0, 1, 1, 2, -1};
  dataset.num_classes = 3;
  const std::vector<int> histogram = dataset.class_histogram();
  EXPECT_EQ(histogram, (std::vector<int>{1, 2, 1}));
  const auto by_class = dataset.indices_by_class();
  EXPECT_EQ(by_class[1], (std::vector<int>{1, 2}));
}

TEST(Batches, CoverAllIndicesOnce) {
  rng::Generator gen(3);
  const auto batches = make_batches(50, 16, gen);
  std::set<int> seen;
  for (const auto& batch : batches) {
    for (const int index : batch) {
      EXPECT_TRUE(seen.insert(index).second) << "duplicate index";
    }
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(Batches, MinBatchDropsSmallTail) {
  rng::Generator gen(4);
  const auto batches = make_batches(33, 16, gen, /*min_batch=*/4);
  // 16 + 16 + 1: the final 1-element batch is dropped.
  EXPECT_EQ(batches.size(), 2u);
}

TEST(Augment, PreservesShapeAndMasksFeatures) {
  rng::Generator gen(5);
  const tensor::Tensor x = tensor::Tensor::full(4, 20, 1.0f);
  AugmentConfig config;
  config.noise_std = 0.0f;
  config.scale_jitter = 0.0f;
  config.mask_fraction = 0.25f;
  const tensor::Tensor view = augment(x, config, gen);
  EXPECT_EQ(view.rows(), 4);
  EXPECT_EQ(view.cols(), 20);
  // Exactly 5 features per row are zeroed.
  for (std::int64_t r = 0; r < 4; ++r) {
    int zeros = 0;
    for (std::int64_t c = 0; c < 20; ++c) {
      if (view(r, c) == 0.0f) ++zeros;
    }
    EXPECT_EQ(zeros, 5);
  }
}

TEST(Augment, PairProducesDistinctViews) {
  rng::Generator gen(6);
  const tensor::Tensor x = tensor::Tensor::full(2, 10, 1.0f);
  const TwoViews views = augment_pair(x, AugmentConfig{}, gen);
  EXPECT_FALSE(tensor::allclose(views.view1, views.view2, 1e-4f));
}

// --- partitioners -------------------------------------------------------------

struct PartitionCase {
  int num_clients;
  int samples_per_client;
  int classes_per_client;
};

class QuantityPartitionProperty
    : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(QuantityPartitionProperty, ExactClassCountAndSampleCount) {
  const PartitionCase param = GetParam();
  const SyntheticDataset synth = make_synthetic(small_config());
  PartitionConfig config;
  config.num_clients = param.num_clients;
  config.samples_per_client = param.samples_per_client;
  config.test_samples_per_client = 30;
  rng::Generator gen(7);
  const Partition partition =
      partition_quantity(synth.train, synth.test, config,
                         param.classes_per_client, gen);
  ASSERT_EQ(partition.num_clients(), param.num_clients);
  for (int c = 0; c < param.num_clients; ++c) {
    const auto& shard = partition.train_indices[static_cast<std::size_t>(c)];
    EXPECT_EQ(static_cast<int>(shard.size()), param.samples_per_client);
    std::set<int> classes;
    for (const int index : shard) {
      classes.insert(synth.train.labels[static_cast<std::size_t>(index)]);
    }
    EXPECT_EQ(static_cast<int>(classes.size()), param.classes_per_client);
    // Test shard holds only the client's classes.
    for (const int index :
         partition.test_indices[static_cast<std::size_t>(c)]) {
      EXPECT_TRUE(classes.count(
          synth.test.labels[static_cast<std::size_t>(index)]));
    }
    EXPECT_EQ(partition.test_indices[static_cast<std::size_t>(c)].size(),
              30u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QuantityPartitionProperty,
    ::testing::Values(PartitionCase{4, 40, 2}, PartitionCase{10, 25, 1},
                      PartitionCase{7, 60, 3}, PartitionCase{3, 50, 5}));

TEST(QuantityPartition, CoversAllClassesAcrossClients) {
  const SyntheticDataset synth = make_synthetic(small_config());
  PartitionConfig config;
  config.num_clients = 10;
  config.samples_per_client = 20;
  config.test_samples_per_client = 10;
  rng::Generator gen(8);
  const Partition partition =
      partition_quantity(synth.train, synth.test, config, 2, gen);
  std::set<int> all_classes;
  for (const auto& shard : partition.train_indices) {
    for (const int index : shard) {
      all_classes.insert(synth.train.labels[static_cast<std::size_t>(index)]);
    }
  }
  EXPECT_EQ(static_cast<int>(all_classes.size()), synth.train.num_classes);
}

class DirichletPartitionProperty : public ::testing::TestWithParam<double> {};

TEST_P(DirichletPartitionProperty, SampleCountsAndDistributionMatch) {
  const double alpha = GetParam();
  const SyntheticDataset synth = make_synthetic(small_config());
  PartitionConfig config;
  config.num_clients = 8;
  config.samples_per_client = 50;
  config.test_samples_per_client = 25;
  rng::Generator gen(9);
  const Partition partition =
      partition_dirichlet(synth.train, synth.test, config, alpha, gen);
  const auto train_props = class_proportions(synth.train, partition, true);
  const auto test_props = class_proportions(synth.test, partition, false);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(partition.train_indices[static_cast<std::size_t>(c)].size(),
              50u);
    EXPECT_EQ(partition.test_indices[static_cast<std::size_t>(c)].size(),
              25u);
    // Test distribution tracks the train distribution per client.
    for (std::size_t k = 0; k < train_props[static_cast<std::size_t>(c)].size();
         ++k) {
      EXPECT_NEAR(train_props[static_cast<std::size_t>(c)][k],
                  test_props[static_cast<std::size_t>(c)][k], 0.06);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletPartitionProperty,
                         ::testing::Values(0.1, 0.3, 1.0, 10.0));

TEST(DirichletPartition, SmallAlphaIsMoreSkewed) {
  const SyntheticDataset synth = make_synthetic(small_config());
  PartitionConfig config;
  config.num_clients = 12;
  config.samples_per_client = 50;
  config.test_samples_per_client = 20;
  rng::Generator gen1(10);
  rng::Generator gen2(10);
  const Partition skewed =
      partition_dirichlet(synth.train, synth.test, config, 0.1, gen1);
  const Partition flat =
      partition_dirichlet(synth.train, synth.test, config, 100.0, gen2);
  auto mean_max_proportion = [&](const Partition& partition) {
    const auto proportions = class_proportions(synth.train, partition, true);
    double total = 0.0;
    for (const auto& row : proportions) {
      total += *std::max_element(row.begin(), row.end());
    }
    return total / static_cast<double>(proportions.size());
  };
  EXPECT_GT(mean_max_proportion(skewed), mean_max_proportion(flat) + 0.2);
}

TEST(IidPartition, NearUniformClassMix) {
  const SyntheticDataset synth = make_synthetic(small_config());
  PartitionConfig config;
  config.num_clients = 5;
  config.samples_per_client = 100;
  config.test_samples_per_client = 25;
  rng::Generator gen(11);
  const Partition partition =
      partition_iid(synth.train, synth.test, config, gen);
  const auto proportions = class_proportions(synth.train, partition, true);
  for (const auto& row : proportions) {
    for (const double p : row) {
      EXPECT_NEAR(p, 0.2, 0.05);
    }
  }
}

TEST(Partition, InvalidArgumentsThrow) {
  const SyntheticDataset synth = make_synthetic(small_config());
  PartitionConfig config;
  rng::Generator gen(12);
  config.num_clients = 0;
  EXPECT_THROW(partition_iid(synth.train, synth.test, config, gen),
               CheckError);
  config.num_clients = 2;
  EXPECT_THROW(
      partition_quantity(synth.train, synth.test, config, 0, gen),
      CheckError);
  EXPECT_THROW(
      partition_quantity(synth.train, synth.test, config, 99, gen),
      CheckError);
  EXPECT_THROW(
      partition_dirichlet(synth.train, synth.test, config, 0.0, gen),
      CheckError);
}

}  // namespace
}  // namespace calibre::data
