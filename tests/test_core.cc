// Tests for the Calibre core: prototype losses, divergence weighting, and
// the pFL-SSL / Calibre algorithms' state handling.
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/calibre.h"
#include "core/divergence.h"
#include "core/prototype_loss.h"
#include "nn/optim.h"
#include "ssl/simclr.h"

namespace calibre::core {
namespace {

using tensor::Tensor;

nn::EncoderConfig small_encoder() {
  nn::EncoderConfig config;
  config.input_dim = 12;
  config.hidden_dims = {16};
  config.feature_dim = 8;
  return config;
}

ssl::SslConfig small_ssl() {
  ssl::SslConfig config;
  config.proj_hidden = 12;
  config.proj_dim = 6;
  return config;
}

ssl::SslForward make_forward(ssl::SimClr& method, std::uint64_t seed,
                             int n = 16) {
  rng::Generator gen(seed);
  const Tensor v1 = Tensor::randn(n, 12, gen);
  const Tensor v2 = Tensor::randn(n, 12, gen);
  return method.forward(v1, v2);
}

TEST(PrototypeLoss, BothTermsPresentAndFinite) {
  ssl::SimClr method(small_encoder(), small_ssl(), 1);
  const ssl::SslForward fwd = make_forward(method, 2);
  PrototypeLossConfig config;
  rng::Generator gen(3);
  const PrototypeLosses losses = compute_prototype_losses(fwd, config, gen);
  ASSERT_TRUE(losses.l_n);
  ASSERT_TRUE(losses.l_p);
  EXPECT_TRUE(std::isfinite(losses.l_n->value(0, 0)));
  EXPECT_TRUE(std::isfinite(losses.l_p->value(0, 0)));
  EXPECT_GT(losses.batch_divergence, 0.0f);
}

TEST(PrototypeLoss, AblationFlagsHonored) {
  ssl::SimClr method(small_encoder(), small_ssl(), 4);
  const ssl::SslForward fwd = make_forward(method, 5);
  rng::Generator gen(6);
  PrototypeLossConfig no_ln;
  no_ln.use_ln = false;
  const PrototypeLosses only_lp = compute_prototype_losses(fwd, no_ln, gen);
  EXPECT_FALSE(only_lp.l_n);
  EXPECT_TRUE(only_lp.l_p);
  PrototypeLossConfig no_lp;
  no_lp.use_lp = false;
  const PrototypeLosses only_ln = compute_prototype_losses(fwd, no_lp, gen);
  EXPECT_TRUE(only_ln.l_n);
  EXPECT_FALSE(only_ln.l_p);
}

TEST(PrototypeLoss, TinyBatchDegradesGracefully) {
  ssl::SimClr method(small_encoder(), small_ssl(), 7);
  const ssl::SslForward fwd = make_forward(method, 8, /*n=*/3);
  rng::Generator gen(9);
  const PrototypeLosses losses =
      compute_prototype_losses(fwd, PrototypeLossConfig{}, gen);
  EXPECT_FALSE(losses.l_n);
  EXPECT_FALSE(losses.l_p);
}

TEST(PrototypeLoss, BothLnFormsAreFiniteAndDifferentiable) {
  ssl::SimClr method(small_encoder(), small_ssl(), 10);
  for (const LnForm form : {LnForm::kProtoNce, LnForm::kPaper}) {
    const ssl::SslForward fwd = make_forward(method, 11);
    PrototypeLossConfig config;
    config.ln_form = form;
    config.use_lp = false;
    rng::Generator gen(12);
    const PrototypeLosses losses = compute_prototype_losses(fwd, config, gen);
    ASSERT_TRUE(losses.l_n);
    for (const ag::VarPtr& p : method.trainable_parameters()) p->zero_grad();
    ag::backward(losses.l_n);
    // Gradient reaches the encoder.
    double grad_norm = 0.0;
    for (const ag::VarPtr& p : method.encoder().parameters()) {
      grad_norm += p->grad.squared_norm();
    }
    EXPECT_GT(grad_norm, 0.0);
  }
}

TEST(PrototypeLoss, FixedCentroidsPath) {
  ssl::SimClr method(small_encoder(), small_ssl(), 13);
  const ssl::SslForward fwd = make_forward(method, 14);
  rng::Generator gen(15);
  Tensor centroids = Tensor::randn(4, 8, gen);
  const PrototypeLosses losses = compute_prototype_losses(
      fwd, PrototypeLossConfig{}, gen, &centroids);
  ASSERT_TRUE(losses.l_n);
  ASSERT_TRUE(losses.l_p);
  EXPECT_TRUE(std::isfinite(losses.l_n->value(0, 0)));
}

TEST(PrototypeLoss, RegularizersAreMinimizable) {
  // Gradient descent on l_n + l_p alone must reduce the combined objective:
  // the regularizers are trainable signals, not noise. (The euclidean
  // KMeans divergence is not monotone here because the losses act on
  // cosine-normalised features, so the loss value itself is asserted.)
  ssl::SimClr method(small_encoder(), small_ssl(), 16);
  nn::Sgd optimizer(method.trainable_parameters(), {0.05f, 0.9f, 0.0f});
  rng::Generator data_gen(17);
  const Tensor v1 = Tensor::randn(16, 12, data_gen);
  const Tensor v2 = Tensor::randn(16, 12, data_gen);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 25; ++step) {
    rng::Generator gen(18);  // same KMeans stream every step
    optimizer.zero_grad();
    const ssl::SslForward fwd = method.forward(v1, v2);
    const PrototypeLosses losses =
        compute_prototype_losses(fwd, PrototypeLossConfig{}, gen);
    ASSERT_TRUE(losses.l_n && losses.l_p);
    const ag::VarPtr loss = ag::add(losses.l_n, losses.l_p);
    ag::backward(loss);
    optimizer.step();
    if (step == 0) first_loss = loss->value(0, 0);
    last_loss = loss->value(0, 0);
    ASSERT_TRUE(std::isfinite(last_loss));
  }
  EXPECT_LT(last_loss, first_loss);
}

// --- divergence ---------------------------------------------------------------

TEST(Divergence, WeightsNormalisedAndOrdered) {
  const std::vector<float> divergences = {0.1f, 0.4f, 0.2f};
  const std::vector<float> samples = {1.0f, 1.0f, 1.0f};
  const std::vector<float> weights =
      divergence_weights(divergences, samples, DivergenceMode::kInverse);
  double total = 0.0;
  for (const float w : weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Inverse mode: lowest divergence -> highest weight.
  EXPECT_GT(weights[0], weights[2]);
  EXPECT_GT(weights[2], weights[1]);
  // Proportional mode: reversed ordering.
  const std::vector<float> proportional =
      divergence_weights(divergences, samples, DivergenceMode::kProportional);
  EXPECT_LT(proportional[0], proportional[2]);
  EXPECT_LT(proportional[2], proportional[1]);
}

TEST(Divergence, EqualDivergencesReduceToSampleWeights) {
  const std::vector<float> divergences = {0.3f, 0.3f};
  const std::vector<float> samples = {1.0f, 3.0f};
  const std::vector<float> weights =
      divergence_weights(divergences, samples);
  EXPECT_NEAR(weights[0], 0.25f, 1e-5f);
  EXPECT_NEAR(weights[1], 0.75f, 1e-5f);
}

TEST(Divergence, Validation) {
  EXPECT_THROW(divergence_weights({}, {}), CheckError);
  EXPECT_THROW(divergence_weights({0.1f}, {1.0f, 2.0f}), CheckError);
  EXPECT_THROW(divergence_weights({-0.1f}, {1.0f}), CheckError);
}

TEST(Divergence, ClientDivergencePositive) {
  ssl::SimClr method(small_encoder(), small_ssl(), 19);
  rng::Generator gen(20);
  const Tensor inputs = Tensor::randn(30, 12, gen);
  const float divergence = client_divergence(method, inputs, 5, gen);
  EXPECT_GT(divergence, 0.0f);
  // Tighter (duplicated) inputs give smaller divergence.
  Tensor duplicated(30, 12);
  for (std::int64_t r = 0; r < 30; ++r) {
    for (std::int64_t c = 0; c < 12; ++c) {
      duplicated(r, c) = inputs(r % 3, c);
    }
  }
  const float tight = client_divergence(method, duplicated, 5, gen);
  EXPECT_LT(tight, divergence);
}

// --- calibre naming / aggregation ------------------------------------------------

TEST(Calibre, NameReflectsAblation) {
  fl::FlConfig config;
  config.encoder = small_encoder();
  CalibreConfig full;
  EXPECT_EQ(Calibre(config, ssl::Kind::kSimClr, full).name(),
            "Calibre (SimCLR)");
  CalibreConfig ln_only;
  ln_only.prototype.use_lp = false;
  EXPECT_EQ(Calibre(config, ssl::Kind::kSwav, ln_only).name(),
            "Calibre (SwAV) [Ln]");
  CalibreConfig none;
  none.prototype.use_ln = false;
  none.prototype.use_lp = false;
  none.divergence_weighted_aggregation = false;
  EXPECT_EQ(Calibre(config, ssl::Kind::kSmog, none).name(),
            "Calibre (SMoG) [none] [fedavg]");
}

TEST(Calibre, AggregateUsesDivergences) {
  fl::FlConfig config;
  config.encoder = small_encoder();
  Calibre calibre(config, ssl::Kind::kSimClr, CalibreConfig{});
  fl::ClientUpdate tight;
  tight.state = nn::ModelState(std::vector<float>{1.0f});
  tight.weight = 1.0f;
  tight.scalars["divergence"] = 0.01f;
  fl::ClientUpdate loose;
  loose.state = nn::ModelState(std::vector<float>{3.0f});
  loose.weight = 1.0f;
  loose.scalars["divergence"] = 10.0f;
  const nn::ModelState merged =
      calibre.aggregate(nn::ModelState(), {tight, loose}, 0);
  // The tight client dominates: result close to 1, far from the mean 2.
  EXPECT_LT(merged.values()[0], 1.1f);
}

TEST(Calibre, AggregateFallsBackToFedAvgWhenDisabled) {
  fl::FlConfig config;
  config.encoder = small_encoder();
  CalibreConfig calibre_config;
  calibre_config.divergence_weighted_aggregation = false;
  Calibre calibre(config, ssl::Kind::kSimClr, calibre_config);
  fl::ClientUpdate a;
  a.state = nn::ModelState(std::vector<float>{1.0f});
  a.weight = 1.0f;
  a.scalars["divergence"] = 0.01f;
  fl::ClientUpdate b;
  b.state = nn::ModelState(std::vector<float>{3.0f});
  b.weight = 1.0f;
  b.scalars["divergence"] = 10.0f;
  const nn::ModelState merged =
      calibre.aggregate(nn::ModelState(), {a, b}, 0);
  EXPECT_FLOAT_EQ(merged.values()[0], 2.0f);
}

}  // namespace
}  // namespace calibre::core
