// Tests for the bench harness (experiment construction shared by all the
// paper-reproduction benches).
#include <cstdlib>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "flapi/model.h"

namespace calibre::bench {
namespace {

TEST(Harness, SettingLabels) {
  Setting quantity{"cifar10", "quantity", 2, 0.3};
  EXPECT_EQ(quantity.label(), "cifar10 Q-non-iid (S=2)");
  Setting dirichlet{"stl10", "dirichlet", 2, 0.3};
  EXPECT_EQ(dirichlet.label(), "stl10 D-non-iid (alpha=0.3)");
}

TEST(Harness, ScaleEnvOverrides) {
  ::setenv("CALIBRE_TRAIN_CLIENTS", "7", 1);
  ::setenv("CALIBRE_ROUNDS", "3", 1);
  const Scale scale = resolve_scale();
  EXPECT_EQ(scale.train_clients, 7);
  EXPECT_EQ(scale.rounds, 3);
  ::unsetenv("CALIBRE_TRAIN_CLIENTS");
  ::unsetenv("CALIBRE_ROUNDS");
  const Scale defaults = resolve_scale();
  EXPECT_EQ(defaults.train_clients, 20);
  EXPECT_EQ(defaults.rounds, 40);
}

TEST(Harness, FastModeShrinksEverything) {
  ::setenv("CALIBRE_FAST", "1", 1);
  const Scale scale = resolve_scale();
  ::unsetenv("CALIBRE_FAST");
  EXPECT_LE(scale.train_clients, 8);
  EXPECT_LE(scale.rounds, 5);
}

TEST(Harness, WorkbenchIsDeterministic) {
  const Setting setting{"cifar10", "dirichlet", 2, 0.3};
  Scale scale;
  scale.train_clients = 4;
  scale.novel_clients = 2;
  scale.samples_per_client = 30;
  scale.test_samples_per_client = 10;
  const Workbench a = build_workbench(setting, scale);
  const Workbench b = build_workbench(setting, scale);
  ASSERT_EQ(a.fed.num_train_clients(), 4);
  ASSERT_EQ(a.fed.num_novel_clients(), 2);
  EXPECT_TRUE(tensor::allclose(a.fed.train[0].x, b.fed.train[0].x));
  EXPECT_EQ(a.fed.train[2].labels, b.fed.train[2].labels);
}

TEST(Harness, QuantityWorkbenchClampsClasses) {
  // classes_per_client larger than the dataset's class count must clamp.
  const Setting setting{"cifar10", "quantity", 99, 0.3};
  Scale scale;
  scale.train_clients = 3;
  scale.novel_clients = 1;
  scale.samples_per_client = 20;
  scale.test_samples_per_client = 10;
  const Workbench workbench = build_workbench(setting, scale);
  EXPECT_EQ(workbench.fed.num_train_clients(), 3);
}

TEST(Harness, PoolClientSamples) {
  const Setting setting{"cifar10", "dirichlet", 2, 0.3};
  Scale scale;
  scale.train_clients = 5;
  scale.novel_clients = 1;
  scale.samples_per_client = 20;
  scale.test_samples_per_client = 12;
  const Workbench workbench = build_workbench(setting, scale);
  const PooledSamples pooled = pool_client_samples(workbench.fed, 3, 5);
  EXPECT_EQ(pooled.x.rows(), 15);
  EXPECT_EQ(pooled.labels.size(), 15u);
  EXPECT_EQ(pooled.client_ids.size(), 15u);
  EXPECT_EQ(pooled.client_ids.front(), 0);
  EXPECT_EQ(pooled.client_ids.back(), 2);
}

TEST(Harness, SupervisedFeatureLayouts) {
  const Setting setting{"cifar10", "dirichlet", 2, 0.3};
  Scale scale;
  scale.train_clients = 3;
  scale.novel_clients = 1;
  scale.samples_per_client = 20;
  scale.test_samples_per_client = 10;
  const Workbench workbench = build_workbench(setting, scale);
  const tensor::Tensor x = workbench.fed.test[0].x;

  // Full-model layout (FedAvg).
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(workbench.config, workbench.config.seed);
  const nn::ModelState full =
      nn::ModelState::from_parameters(model.all_parameters());
  const tensor::Tensor f1 =
      supervised_features("FedAvg", full, workbench.config, x);
  EXPECT_EQ(f1.rows(), x.rows());
  EXPECT_EQ(f1.cols(), workbench.config.encoder.feature_dim);

  // Encoder-only layout (FedBABU).
  const nn::ModelState encoder_only =
      nn::ModelState::from_parameters(model.encoder_parameters());
  const tensor::Tensor f2 =
      supervised_features("FedBABU", encoder_only, workbench.config, x);
  EXPECT_EQ(f2.cols(), workbench.config.encoder.feature_dim);

  // SCAFFOLD packs [model | control].
  std::vector<float> packed = full.values();
  packed.insert(packed.end(), full.values().begin(), full.values().end());
  const tensor::Tensor f3 = supervised_features(
      "SCAFFOLD", nn::ModelState(packed), workbench.config, x);
  // Control half is ignored: same result as the plain full layout.
  EXPECT_TRUE(tensor::allclose(f1, f3));
}

}  // namespace
}  // namespace calibre::bench
