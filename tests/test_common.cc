// Tests for the common utilities (thread pool, env, logging) and
// hand-computed reference values for the contrastive losses.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/env.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "nn/losses.h"

namespace calibre {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  common::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  common::ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  common::ThreadPool pool(1);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, AtLeastOneWorker) {
  common::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DefaultParallelismPositive) {
  EXPECT_GE(common::ThreadPool::default_parallelism(), 1u);
}

// --- parallel_for ------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  constexpr std::int64_t kRange = 1000;
  std::vector<std::atomic<int>> hits(kRange);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, kRange, /*grain=*/16,
                    [&](std::int64_t begin, std::int64_t end) {
                      for (std::int64_t i = begin; i < end; ++i) {
                        hits[static_cast<std::size_t>(i)].fetch_add(1);
                      }
                    });
  for (std::int64_t i = 0; i < kRange; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NonZeroBeginIsRespected) {
  common::ThreadPool pool(3);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(100, 200, /*grain=*/7,
                    [&](std::int64_t begin, std::int64_t end) {
                      for (std::int64_t i = begin; i < end; ++i) {
                        total.fetch_add(i);
                      }
                    });
  // sum of 100..199
  EXPECT_EQ(total.load(), (100 + 199) * 100 / 2);
}

TEST(ParallelFor, SerialFallbackRunsOnCallingThread) {
  common::ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  std::mutex mutex;
  // Range no larger than grain: must execute inline, no task submission.
  pool.parallel_for(0, 8, /*grain=*/8,
                    [&](std::int64_t begin, std::int64_t end) {
                      std::lock_guard<std::mutex> lock(mutex);
                      seen.emplace_back(std::this_thread::get_id());
                      EXPECT_EQ(begin, 0);
                      EXPECT_EQ(end, 8);
                    });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], caller);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  common::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, /*grain=*/1,
                    [&](std::int64_t, std::int64_t) { ++calls; });
  pool.parallel_for(7, 3, /*grain=*/1,
                    [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesFirstException) {
  common::ThreadPool pool(4);
  std::atomic<int> chunks_run{0};
  EXPECT_THROW(
      pool.parallel_for(0, 1000, /*grain=*/10,
                        [&](std::int64_t begin, std::int64_t) {
                          chunks_run.fetch_add(1);
                          if (begin >= 200) {
                            throw std::runtime_error("parallel boom");
                          }
                        }),
      std::runtime_error);
  // All chunks still ran to completion before the rethrow (no torn state).
  EXPECT_GT(chunks_run.load(), 0);
}

TEST(ParallelFor, SingleWorkerPoolStaysSerial) {
  common::ThreadPool pool(1);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 100, /*grain=*/1,
                    [&](std::int64_t begin, std::int64_t end) {
                      total.fetch_add(end - begin);
                    });
  EXPECT_EQ(total.load(), 100);
}

TEST(Env, IntDoubleStringFlag) {
  ::setenv("CALIBRE_TEST_INT", "17", 1);
  ::setenv("CALIBRE_TEST_DOUBLE", "2.5", 1);
  ::setenv("CALIBRE_TEST_STRING", "hello", 1);
  ::setenv("CALIBRE_TEST_FLAG", "true", 1);
  EXPECT_EQ(env::get_int("CALIBRE_TEST_INT", 0), 17);
  EXPECT_DOUBLE_EQ(env::get_double("CALIBRE_TEST_DOUBLE", 0.0), 2.5);
  EXPECT_EQ(env::get_string("CALIBRE_TEST_STRING", ""), "hello");
  EXPECT_TRUE(env::get_flag("CALIBRE_TEST_FLAG"));
  EXPECT_EQ(env::get_int("CALIBRE_TEST_UNSET_XYZ", 3), 3);
  EXPECT_FALSE(env::get_flag("CALIBRE_TEST_UNSET_XYZ"));
  ::unsetenv("CALIBRE_TEST_INT");
  ::unsetenv("CALIBRE_TEST_DOUBLE");
  ::unsetenv("CALIBRE_TEST_STRING");
  ::unsetenv("CALIBRE_TEST_FLAG");
}

// A *set* variable that does not parse must throw, not silently fall back:
// a typo'd CALIBRE_ROUNDS quietly running the default experiment produces
// results that look right and are not.
TEST(Env, GarbageRejectedInsteadOfDefaulting) {
  ::setenv("CALIBRE_TEST_BAD", "xyz", 1);
  EXPECT_THROW(env::get_int("CALIBRE_TEST_BAD", 9), CheckError);
  EXPECT_THROW(env::get_double("CALIBRE_TEST_BAD", 1.0), CheckError);
  EXPECT_THROW(env::get_flag("CALIBRE_TEST_BAD"), CheckError);

  ::setenv("CALIBRE_TEST_BAD", "12x", 1);  // trailing garbage
  EXPECT_THROW(env::get_int("CALIBRE_TEST_BAD", 9), CheckError);
  ::setenv("CALIBRE_TEST_BAD", "", 1);  // set-but-empty is garbage too
  EXPECT_THROW(env::get_int("CALIBRE_TEST_BAD", 9), CheckError);
  ::setenv("CALIBRE_TEST_BAD", "99999999999999999999", 1);  // out of range
  EXPECT_THROW(env::get_int("CALIBRE_TEST_BAD", 9), CheckError);

  // The thrown message names the variable and the offending value.
  ::setenv("CALIBRE_TEST_BAD", "xyz", 1);
  try {
    env::get_int("CALIBRE_TEST_BAD", 9);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("CALIBRE_TEST_BAD"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("xyz"), std::string::npos);
  }
  ::unsetenv("CALIBRE_TEST_BAD");
}

TEST(Env, FlagSpellingsAndCase) {
  for (const char* truthy : {"1", "true", "yes", "on", "TRUE", "On", "YES"}) {
    ::setenv("CALIBRE_TEST_FLAG2", truthy, 1);
    EXPECT_TRUE(env::get_flag("CALIBRE_TEST_FLAG2")) << truthy;
  }
  for (const char* falsy : {"0", "false", "no", "off", "FALSE", "Off"}) {
    ::setenv("CALIBRE_TEST_FLAG2", falsy, 1);
    EXPECT_FALSE(env::get_flag("CALIBRE_TEST_FLAG2", true)) << falsy;
  }
  ::unsetenv("CALIBRE_TEST_FLAG2");
}

// --- check macros -----------------------------------------------------------

TEST(Check, PlainCheckMessageHasExpressionAndLocation) {
  try {
    CALIBRE_CHECK(1 + 1 == 3);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_common.cc"), std::string::npos) << what;
  }
}

// The typed comparison macros must print *both operand values*: a shape or
// count mismatch without the values is useless for debugging.
TEST(Check, TypedMacrosPrintBothOperands) {
  const std::size_t count = 12345;
  const std::size_t cap = 67;
  try {
    CALIBRE_CHECK_LE(count, cap);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("count <= cap"), std::string::npos) << what;
    EXPECT_NE(what.find("12345"), std::string::npos) << what;
    EXPECT_NE(what.find("67"), std::string::npos) << what;
    EXPECT_NE(what.find("test_common.cc:"), std::string::npos) << what;
  }
}

TEST(Check, TypedMacrosStreamOptionalContext) {
  try {
    CALIBRE_CHECK_EQ(3, 4, "while decoding block " << 7);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("(3 vs 4)"), std::string::npos) << what;
    EXPECT_NE(what.find("while decoding block 7"), std::string::npos) << what;
  }
}

TEST(Check, TypedMacrosPassAndEvaluateOperandsOnce) {
  int evals = 0;
  const auto bump = [&evals] { return ++evals; };
  CALIBRE_CHECK_EQ(bump(), 1);
  EXPECT_EQ(evals, 1);  // operand evaluated exactly once
  CALIBRE_CHECK_NE(2, 3);
  CALIBRE_CHECK_LT(2, 3);
  CALIBRE_CHECK_LE(3, 3);
  CALIBRE_CHECK_GT(3, 2);
  CALIBRE_CHECK_GE(3, 3);
  EXPECT_THROW(CALIBRE_CHECK_NE(5, 5), CheckError);
  EXPECT_THROW(CALIBRE_CHECK_LT(3, 3), CheckError);
  EXPECT_THROW(CALIBRE_CHECK_GT(3, 3), CheckError);
  EXPECT_THROW(CALIBRE_CHECK_GE(2, 3), CheckError);
}

// Byte-sized integers must print as numbers, not characters: a codec tag of
// 2 printing as an unprintable control character would be useless.
TEST(Check, ByteOperandsPrintNumerically) {
  const std::uint8_t tag = 2;
  try {
    CALIBRE_CHECK_EQ(tag, std::uint8_t{0});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("(2 vs 0)"), std::string::npos)
        << e.what();
  }
}

TEST(Check, BoolOperandsPrintAsWords) {
  try {
    CALIBRE_CHECK_EQ(true, false);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("(true vs false)"),
              std::string::npos)
        << e.what();
  }
}

TEST(Log, ThresholdFiltering) {
  const log::Level saved = log::threshold();
  log::set_threshold(log::Level::kError);
  // These must be no-ops (nothing observable to assert beyond not crashing,
  // but the threshold accessor must reflect the setting).
  log::info() << "should be filtered";
  EXPECT_EQ(log::threshold(), log::Level::kError);
  log::set_threshold(saved);
}

// --- hand-computed loss references ------------------------------------------------

TEST(LossValues, NtXentTwoPairsHandComputed) {
  // Embeddings: 2 samples, 2 views, already unit-norm, dimension 2.
  //   view1: e0 = (1,0), e1 = (0,1)
  //   view2: e2 = (1,0), e3 = (0,1)   (positives: 0<->2, 1<->3)
  // With tau = 1, similarities: s(0,2) = 1, s(0,1) = s(0,3) = 0 (masked
  // diagonal). Every row's loss: -log(e^1 / (e^1 + e^0 + e^0)) =
  // log(e + 2) - 1.
  tensor::Tensor h(4, 2);
  h(0, 0) = 1.0f;
  h(1, 1) = 1.0f;
  h(2, 0) = 1.0f;
  h(3, 1) = 1.0f;
  const float loss = nn::ntxent(ag::constant(h), 1.0f)->value(0, 0);
  const float expected = std::log(std::exp(1.0f) + 2.0f) - 1.0f;
  EXPECT_NEAR(loss, expected, 1e-5f);
}

TEST(LossValues, CrossEntropyUniformLogits) {
  // Uniform logits over k classes: CE = log(k) regardless of the label.
  const ag::VarPtr logits = ag::constant(tensor::Tensor::zeros(3, 5));
  const float loss = ag::cross_entropy(logits, {0, 2, 4})->value(0, 0);
  EXPECT_NEAR(loss, std::log(5.0f), 1e-6f);
}

TEST(LossValues, CrossEntropySoftMatchesHardOnOneHot) {
  rng::Generator gen(5);
  const tensor::Tensor logits_t = tensor::Tensor::randn(4, 6, gen);
  const std::vector<int> labels = {1, 3, 0, 5};
  tensor::Tensor one_hot(4, 6);
  for (int i = 0; i < 4; ++i) {
    one_hot(i, labels[static_cast<std::size_t>(i)]) = 1.0f;
  }
  const float hard =
      ag::cross_entropy(ag::constant(logits_t), labels)->value(0, 0);
  const float soft =
      ag::cross_entropy_soft(ag::constant(logits_t), one_hot)->value(0, 0);
  EXPECT_NEAR(hard, soft, 1e-5f);
}

TEST(LossValues, InfoNceUniformNegatives) {
  // q = k = (1,0); negatives orthogonal to q. tau = 1.
  // logits: [1, 0, 0] -> loss = -log(e / (e + 2)).
  tensor::Tensor q(1, 2);
  q(0, 0) = 1.0f;
  tensor::Tensor negatives(2, 2);
  negatives(0, 1) = 1.0f;
  negatives(1, 1) = -1.0f;
  const float loss =
      nn::info_nce(ag::constant(q), ag::constant(q), negatives, 1.0f)
          ->value(0, 0);
  const float expected = -std::log(std::exp(1.0f) / (std::exp(1.0f) + 2.0f));
  EXPECT_NEAR(loss, expected, 1e-5f);
}

}  // namespace
}  // namespace calibre
