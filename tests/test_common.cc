// Tests for the common utilities (thread pool, env, logging) and
// hand-computed reference values for the contrastive losses.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <future>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "nn/losses.h"

namespace calibre {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  common::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  common::ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  common::ThreadPool pool(1);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, AtLeastOneWorker) {
  common::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DefaultParallelismPositive) {
  EXPECT_GE(common::ThreadPool::default_parallelism(), 1u);
}

TEST(Env, IntDoubleStringFlag) {
  ::setenv("CALIBRE_TEST_INT", "17", 1);
  ::setenv("CALIBRE_TEST_DOUBLE", "2.5", 1);
  ::setenv("CALIBRE_TEST_STRING", "hello", 1);
  ::setenv("CALIBRE_TEST_FLAG", "true", 1);
  ::setenv("CALIBRE_TEST_BAD", "xyz", 1);
  EXPECT_EQ(env::get_int("CALIBRE_TEST_INT", 0), 17);
  EXPECT_DOUBLE_EQ(env::get_double("CALIBRE_TEST_DOUBLE", 0.0), 2.5);
  EXPECT_EQ(env::get_string("CALIBRE_TEST_STRING", ""), "hello");
  EXPECT_TRUE(env::get_flag("CALIBRE_TEST_FLAG"));
  EXPECT_EQ(env::get_int("CALIBRE_TEST_BAD", 9), 9);
  EXPECT_EQ(env::get_int("CALIBRE_TEST_UNSET_XYZ", 3), 3);
  EXPECT_FALSE(env::get_flag("CALIBRE_TEST_UNSET_XYZ"));
  ::unsetenv("CALIBRE_TEST_INT");
  ::unsetenv("CALIBRE_TEST_DOUBLE");
  ::unsetenv("CALIBRE_TEST_STRING");
  ::unsetenv("CALIBRE_TEST_FLAG");
  ::unsetenv("CALIBRE_TEST_BAD");
}

TEST(Log, ThresholdFiltering) {
  const log::Level saved = log::threshold();
  log::set_threshold(log::Level::kError);
  // These must be no-ops (nothing observable to assert beyond not crashing,
  // but the threshold accessor must reflect the setting).
  log::info() << "should be filtered";
  EXPECT_EQ(log::threshold(), log::Level::kError);
  log::set_threshold(saved);
}

// --- hand-computed loss references ------------------------------------------------

TEST(LossValues, NtXentTwoPairsHandComputed) {
  // Embeddings: 2 samples, 2 views, already unit-norm, dimension 2.
  //   view1: e0 = (1,0), e1 = (0,1)
  //   view2: e2 = (1,0), e3 = (0,1)   (positives: 0<->2, 1<->3)
  // With tau = 1, similarities: s(0,2) = 1, s(0,1) = s(0,3) = 0 (masked
  // diagonal). Every row's loss: -log(e^1 / (e^1 + e^0 + e^0)) =
  // log(e + 2) - 1.
  tensor::Tensor h(4, 2);
  h(0, 0) = 1.0f;
  h(1, 1) = 1.0f;
  h(2, 0) = 1.0f;
  h(3, 1) = 1.0f;
  const float loss = nn::ntxent(ag::constant(h), 1.0f)->value(0, 0);
  const float expected = std::log(std::exp(1.0f) + 2.0f) - 1.0f;
  EXPECT_NEAR(loss, expected, 1e-5f);
}

TEST(LossValues, CrossEntropyUniformLogits) {
  // Uniform logits over k classes: CE = log(k) regardless of the label.
  const ag::VarPtr logits = ag::constant(tensor::Tensor::zeros(3, 5));
  const float loss = ag::cross_entropy(logits, {0, 2, 4})->value(0, 0);
  EXPECT_NEAR(loss, std::log(5.0f), 1e-6f);
}

TEST(LossValues, CrossEntropySoftMatchesHardOnOneHot) {
  rng::Generator gen(5);
  const tensor::Tensor logits_t = tensor::Tensor::randn(4, 6, gen);
  const std::vector<int> labels = {1, 3, 0, 5};
  tensor::Tensor one_hot(4, 6);
  for (int i = 0; i < 4; ++i) {
    one_hot(i, labels[static_cast<std::size_t>(i)]) = 1.0f;
  }
  const float hard =
      ag::cross_entropy(ag::constant(logits_t), labels)->value(0, 0);
  const float soft =
      ag::cross_entropy_soft(ag::constant(logits_t), one_hot)->value(0, 0);
  EXPECT_NEAR(hard, soft, 1e-5f);
}

TEST(LossValues, InfoNceUniformNegatives) {
  // q = k = (1,0); negatives orthogonal to q. tau = 1.
  // logits: [1, 0, 0] -> loss = -log(e / (e + 2)).
  tensor::Tensor q(1, 2);
  q(0, 0) = 1.0f;
  tensor::Tensor negatives(2, 2);
  negatives(0, 1) = 1.0f;
  negatives(1, 1) = -1.0f;
  const float loss =
      nn::info_nce(ag::constant(q), ag::constant(q), negatives, 1.0f)
          ->value(0, 0);
  const float expected = -std::log(std::exp(1.0f) / (std::exp(1.0f) + 2.0f));
  EXPECT_NEAR(loss, expected, 1e-5f);
}

}  // namespace
}  // namespace calibre
