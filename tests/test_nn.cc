// Tests for the NN layer: modules, networks, losses, optimizer, EMA and the
// serializable model state.
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/losses.h"
#include "nn/networks.h"
#include "nn/optim.h"
#include "nn/state.h"

namespace calibre::nn {
namespace {

using tensor::Tensor;

rng::Generator make_gen(std::uint64_t seed = 42) {
  return rng::Generator(seed);
}

TEST(Linear, ShapesAndBias) {
  auto gen = make_gen();
  Linear layer(4, 3, gen);
  const ag::VarPtr out = layer.forward(ag::constant(Tensor::zeros(5, 4)));
  EXPECT_EQ(out->value.rows(), 5);
  EXPECT_EQ(out->value.cols(), 3);
  // Zero input -> output equals the bias row, repeated.
  for (std::int64_t r = 1; r < 5; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(out->value(r, c), out->value(0, c));
    }
  }
  EXPECT_EQ(layer.parameters().size(), 2u);
  Linear no_bias(4, 3, gen, /*bias=*/false);
  EXPECT_EQ(no_bias.parameters().size(), 1u);
}

TEST(Linear, RejectsWrongInputWidth) {
  auto gen = make_gen();
  Linear layer(4, 2, gen);
  EXPECT_THROW(layer.forward(ag::constant(Tensor::zeros(1, 5))), CheckError);
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm layer_norm(6);
  auto gen = make_gen(7);
  const Tensor x = Tensor::randn(4, 6, gen, 5.0f);
  const ag::VarPtr out = layer_norm.forward(ag::constant(x));
  // With gamma=1, beta=0 each output row has ~zero mean and ~unit variance.
  for (std::int64_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    for (std::int64_t c = 0; c < 6; ++c) mean += out->value(r, c);
    mean /= 6.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    double variance = 0.0;
    for (std::int64_t c = 0; c < 6; ++c) {
      variance += (out->value(r, c) - mean) * (out->value(r, c) - mean);
    }
    EXPECT_NEAR(variance / 6.0, 1.0, 1e-2);
  }
}

TEST(Sequential, ChainsModules) {
  auto gen = make_gen();
  Sequential seq;
  seq.push_back(std::make_shared<Linear>(3, 5, gen));
  seq.push_back(std::make_shared<ReLU>());
  seq.push_back(std::make_shared<Linear>(5, 2, gen));
  const ag::VarPtr out = seq.forward(ag::constant(Tensor::zeros(2, 3)));
  EXPECT_EQ(out->value.cols(), 2);
  EXPECT_EQ(seq.parameters().size(), 4u);
}

TEST(MlpEncoder, ShapeAndParameterCount) {
  EncoderConfig config;
  config.input_dim = 10;
  config.hidden_dims = {16, 8};
  config.feature_dim = 4;
  auto gen = make_gen();
  MlpEncoder encoder(config, gen);
  EXPECT_EQ(encoder.feature_dim(), 4);
  const ag::VarPtr out = encoder.forward(ag::constant(Tensor::zeros(3, 10)));
  EXPECT_EQ(out->value.cols(), 4);
  // linear(10->16)+LN + linear(16->8)+LN + linear(8->4)
  EXPECT_EQ(encoder.parameter_count(),
            (10 * 16 + 16) + 2 * 16 + (16 * 8 + 8) + 2 * 8 + (8 * 4 + 4));
}

TEST(Networks, ProjectionHeadAndClassifier) {
  auto gen = make_gen();
  ProjectionHead head(8, 16, 6, gen);
  EXPECT_EQ(head.forward(ag::constant(Tensor::zeros(2, 8)))->value.cols(), 6);
  LinearClassifier classifier(6, 10, gen);
  EXPECT_EQ(classifier.num_classes(), 10);
  EXPECT_EQ(
      classifier.forward(ag::constant(Tensor::zeros(2, 6)))->value.cols(),
      10);
}

// --- losses -------------------------------------------------------------------

TEST(Losses, NtXentIsShiftAndScaleAware) {
  auto gen = make_gen(3);
  const Tensor h = Tensor::randn(8, 16, gen);
  const float loss = nn::ntxent(ag::constant(h), 0.5f)->value(0, 0);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
  // Perfectly aligned pairs: loss is near its minimum (positives dominate).
  Tensor aligned(8, 4);
  for (int i = 0; i < 4; ++i) {
    aligned(i, i) = 1.0f;       // view 1
    aligned(i + 4, i) = 1.0f;   // view 2 = identical direction
  }
  const float aligned_loss =
      nn::ntxent(ag::constant(aligned), 0.5f)->value(0, 0);
  EXPECT_LT(aligned_loss, loss);
}

TEST(Losses, NtXentRequiresEvenBatch) {
  EXPECT_THROW(nn::ntxent(ag::constant(Tensor::zeros(5, 4)), 0.5f),
               CheckError);
  EXPECT_THROW(nn::ntxent(ag::constant(Tensor::zeros(2, 4)), 0.5f),
               CheckError);
}

TEST(Losses, NegativeCosineBounds) {
  auto gen = make_gen(4);
  const Tensor p = Tensor::randn(5, 8, gen);
  // Identical inputs: cosine = 1 -> loss = -1.
  const float self_loss =
      nn::negative_cosine(ag::constant(p), ag::constant(p))->value(0, 0);
  EXPECT_NEAR(self_loss, -1.0f, 1e-5f);
  // Opposite inputs: loss = +1.
  const float anti_loss = nn::negative_cosine(
      ag::constant(p), ag::constant(tensor::neg(p)))->value(0, 0);
  EXPECT_NEAR(anti_loss, 1.0f, 1e-5f);
}

TEST(Losses, InfoNcePrefersAlignedPositives) {
  auto gen = make_gen(5);
  const Tensor q = Tensor::randn(4, 8, gen);
  const Tensor negatives = Tensor::randn(16, 8, gen);
  const float aligned = nn::info_nce(ag::constant(q), ag::constant(q),
                                     negatives, 0.3f)->value(0, 0);
  const Tensor other = Tensor::randn(4, 8, gen);
  const float misaligned = nn::info_nce(ag::constant(q), ag::constant(other),
                                        negatives, 0.3f)->value(0, 0);
  EXPECT_LT(aligned, misaligned);
}

// --- optimizer -------------------------------------------------------------------

TEST(Sgd, ConvergesOnLeastSquares) {
  auto gen = make_gen(6);
  // Fit y = x W* with a single linear layer.
  const Tensor w_star = Tensor::randn(3, 2, gen);
  const Tensor x = Tensor::randn(64, 3, gen);
  const Tensor y = tensor::matmul(x, w_star);
  Linear layer(3, 2, gen);
  Sgd optimizer(layer.parameters(), {0.1f, 0.0f, 0.0f});
  float last = 1e9f;
  for (int step = 0; step < 200; ++step) {
    optimizer.zero_grad();
    const ag::VarPtr loss = ag::mse(layer.forward(ag::constant(x)), y);
    ag::backward(loss);
    optimizer.step();
    last = loss->value(0, 0);
  }
  EXPECT_LT(last, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesFirstSteps) {
  // One parameter, constant gradient of 1: after two steps plain SGD moves
  // 2*lr, momentum SGD moves lr + lr*(1 + m).
  const float lr = 0.1f;
  const float m = 0.9f;
  auto make_param = [] {
    return ag::parameter(Tensor::zeros(1, 1));
  };
  const ag::VarPtr plain = make_param();
  const ag::VarPtr with_momentum = make_param();
  Sgd plain_opt({plain}, {lr, 0.0f, 0.0f});
  Sgd momentum_opt({with_momentum}, {lr, m, 0.0f});
  for (int step = 0; step < 2; ++step) {
    plain->zero_grad();
    plain->grad.fill(1.0f);
    plain_opt.step();
    with_momentum->zero_grad();
    with_momentum->grad.fill(1.0f);
    momentum_opt.step();
  }
  EXPECT_NEAR(plain->value(0, 0), -2 * lr, 1e-6f);
  EXPECT_NEAR(with_momentum->value(0, 0), -(lr + lr * (1 + m)), 1e-6f);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  const ag::VarPtr p = ag::parameter(Tensor::full(1, 1, 1.0f));
  Sgd optimizer({p}, {0.1f, 0.0f, 0.5f});
  p->zero_grad();  // zero gradient: only decay acts
  optimizer.step();
  EXPECT_NEAR(p->value(0, 0), 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Sgd, SkipsParametersWithoutGradients) {
  const ag::VarPtr p = ag::parameter(Tensor::full(1, 1, 2.0f));
  p->grad = Tensor();  // no gradient buffer at all
  Sgd optimizer({p}, {0.1f, 0.0f, 0.0f});
  optimizer.step();
  EXPECT_FLOAT_EQ(p->value(0, 0), 2.0f);
}

// --- EMA / copy ---------------------------------------------------------------------

TEST(Ema, MovesTargetTowardOnline) {
  const ag::VarPtr target = ag::parameter(Tensor::zeros(2, 2));
  const ag::VarPtr online = ag::parameter(Tensor::full(2, 2, 1.0f));
  ema_update({target}, {online}, 0.9f);
  EXPECT_NEAR(target->value(0, 0), 0.1f, 1e-6f);
  ema_update({target}, {online}, 0.9f);
  EXPECT_NEAR(target->value(0, 0), 0.19f, 1e-6f);
}

TEST(Ema, CopyParameters) {
  const ag::VarPtr dst = ag::parameter(Tensor::zeros(2, 3));
  auto gen = make_gen(8);
  const ag::VarPtr src = ag::parameter(Tensor::randn(2, 3, gen));
  copy_parameters({dst}, {src});
  EXPECT_TRUE(tensor::allclose(dst->value, src->value));
  EXPECT_THROW(copy_parameters({dst}, {ag::parameter(Tensor::zeros(3, 2))}),
               CheckError);
}

// --- model state ------------------------------------------------------------------------

TEST(ModelState, RoundTripThroughParameters) {
  EncoderConfig config;
  config.input_dim = 6;
  config.hidden_dims = {8};
  config.feature_dim = 4;
  auto gen = make_gen(9);
  MlpEncoder a(config, gen);
  MlpEncoder b(config, gen);  // different init
  const ModelState state = ModelState::from_parameters(a.parameters());
  EXPECT_EQ(static_cast<std::int64_t>(state.size()), a.parameter_count());
  state.apply_to(b.parameters());
  const Tensor x = Tensor::randn(3, 6, gen);
  EXPECT_TRUE(tensor::allclose(a.forward(ag::constant(x))->value,
                               b.forward(ag::constant(x))->value));
}

TEST(ModelState, ApplySizeMismatchThrows) {
  auto gen = make_gen(10);
  Linear small(2, 2, gen);
  Linear big(4, 4, gen);
  const ModelState state = ModelState::from_parameters(small.parameters());
  EXPECT_THROW(state.apply_to(big.parameters()), CheckError);
}

TEST(ModelState, Algebra) {
  ModelState a(std::vector<float>{1.0f, 2.0f});
  const ModelState b(std::vector<float>{3.0f, 4.0f});
  a.add_scaled(b, 2.0f);
  EXPECT_FLOAT_EQ(a.values()[0], 7.0f);
  a.scale(0.5f);
  EXPECT_FLOAT_EQ(a.values()[1], 5.0f);
  ModelState c(std::vector<float>{0.0f, 0.0f});
  c.ema_merge(b, 0.25f);  // 0.25*c + 0.75*b
  EXPECT_FLOAT_EQ(c.values()[0], 2.25f);
  EXPECT_FLOAT_EQ(ModelState(std::vector<float>{3.0f, 4.0f}).norm(), 5.0f);
  EXPECT_FLOAT_EQ(
      ModelState(std::vector<float>{0.0f, 0.0f}).l2_distance(b), 5.0f);
}

TEST(ModelState, WireFormatRoundTrip) {
  auto gen = make_gen(11);
  const Tensor values = Tensor::randn(1, 257, gen);
  const ModelState original(values.to_vector());
  const auto bytes = original.to_bytes();
  const ModelState decoded = ModelState::from_bytes(bytes);
  EXPECT_EQ(decoded.values(), original.values());
}

TEST(ModelState, WireFormatRejectsCorruption) {
  const ModelState original(std::vector<float>{1.0f, 2.0f});
  auto bytes = original.to_bytes();
  bytes[0] ^= 0xFF;  // corrupt magic
  EXPECT_THROW(ModelState::from_bytes(bytes), CheckError);
  auto truncated = original.to_bytes();
  truncated.pop_back();
  EXPECT_THROW(ModelState::from_bytes(truncated), CheckError);
  EXPECT_THROW(ModelState::from_bytes({0x01, 0x02}), CheckError);
}

TEST(ModelState, ZerosLike) {
  auto gen = make_gen(12);
  Linear layer(3, 3, gen);
  const ModelState zeros = ModelState::zeros_like(layer.parameters());
  EXPECT_EQ(zeros.size(), 12u);
  EXPECT_FLOAT_EQ(zeros.norm(), 0.0f);
}

}  // namespace
}  // namespace calibre::nn
