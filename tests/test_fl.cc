// Tests for the federated runtime: aggregation math, update serialization,
// federated dataset construction, the linear probe, the runner, and the
// fault-tolerant round loop.
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "comm/codec.h"
#include "comm/message.h"
#include "common/check.h"
#include "flapi/algorithm.h"
#include "fl/update_codec.h"
#include "fl/fed_data.h"
#include "flapi/model.h"
#include "flapi/probe.h"
#include "fl/runner.h"

namespace calibre::fl {
namespace {

using tensor::Tensor;

TEST(Aggregate, WeightedMean) {
  ClientUpdate a;
  a.state = nn::ModelState(std::vector<float>{1.0f, 2.0f});
  a.weight = 1.0f;
  ClientUpdate b;
  b.state = nn::ModelState(std::vector<float>{3.0f, 6.0f});
  b.weight = 3.0f;
  const nn::ModelState merged = fedavg_aggregate({a, b});
  EXPECT_FLOAT_EQ(merged.values()[0], (1.0f + 3 * 3.0f) / 4.0f);
  EXPECT_FLOAT_EQ(merged.values()[1], (2.0f + 3 * 6.0f) / 4.0f);
}

TEST(Aggregate, SingleUpdateIsIdentity) {
  ClientUpdate a;
  a.state = nn::ModelState(std::vector<float>{5.0f, -1.0f});
  a.weight = 2.5f;
  const nn::ModelState merged = fedavg_aggregate({a});
  EXPECT_EQ(merged.values(), a.state.values());
}

TEST(Aggregate, RejectsBadInput) {
  EXPECT_THROW(fedavg_aggregate({}), CheckError);
  ClientUpdate a;
  a.state = nn::ModelState(std::vector<float>{1.0f});
  a.weight = 0.0f;
  EXPECT_THROW(fedavg_aggregate({a}), CheckError);
  ClientUpdate b;
  b.state = nn::ModelState(std::vector<float>{1.0f, 2.0f});
  b.weight = 1.0f;
  ClientUpdate c;
  c.state = nn::ModelState(std::vector<float>{1.0f});
  c.weight = 1.0f;
  EXPECT_THROW(fedavg_aggregate({b, c}), CheckError);
}

TEST(ClientUpdateSerde, RoundTrip) {
  ClientUpdate update;
  update.state = nn::ModelState(std::vector<float>{1.5f, -2.5f, 0.0f});
  update.weight = 42.0f;
  update.scalars = {{"divergence", 0.33f}, {"loss", 1.25f}};
  const auto bytes = serialize_update(update);
  const ClientUpdate decoded = deserialize_update(bytes);
  EXPECT_EQ(decoded.state.values(), update.state.values());
  EXPECT_FLOAT_EQ(decoded.weight, update.weight);
  EXPECT_EQ(decoded.scalars, update.scalars);
}

TEST(ClientUpdateSerde, TrailingBytesRejected) {
  ClientUpdate update;
  update.state = nn::ModelState(std::vector<float>{1.0f});
  auto bytes = serialize_update(update);
  bytes.push_back(0xFF);
  EXPECT_THROW(deserialize_update(bytes), CheckError);
}

// --- fed dataset ------------------------------------------------------------

class FedDataBuilder : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig config;
    config.num_classes = 4;
    config.input_dim = 16;
    config.latent_dim = 6;
    config.train_samples = 400;
    config.test_samples = 200;
    config.unlabeled_samples = 120;
    config.seed = 3;
    synth_ = data::make_synthetic(config);
    data::PartitionConfig partition_config;
    partition_config.num_clients = 6;
    partition_config.samples_per_client = 30;
    partition_config.test_samples_per_client = 12;
    rng::Generator gen(4);
    partition_ = data::partition_dirichlet(synth_.train, synth_.test,
                                           partition_config, 0.3, gen);
  }

  data::SyntheticDataset synth_;
  data::Partition partition_;
};

TEST_F(FedDataBuilder, SplitsTrainAndNovelClients) {
  rng::Generator gen(5);
  const FedDataset fed = build_fed_dataset(synth_, partition_, 4, gen);
  EXPECT_EQ(fed.num_train_clients(), 4);
  EXPECT_EQ(fed.num_novel_clients(), 2);
  EXPECT_EQ(fed.num_classes, 4);
  EXPECT_EQ(fed.input_dim, 16);
  for (const auto& shard : fed.train) EXPECT_EQ(shard.size(), 30);
  for (const auto& shard : fed.test) EXPECT_EQ(shard.size(), 12);
  for (const auto& shard : fed.novel_train) EXPECT_EQ(shard.size(), 30);
}

TEST_F(FedDataBuilder, SslPoolsAreLatentsPlusUnlabeledShare) {
  rng::Generator gen(6);
  const FedDataset fed = build_fed_dataset(synth_, partition_, 4, gen);
  EXPECT_TRUE(fed.pool_is_latent);
  EXPECT_TRUE(fed.oracle.valid());
  // Each pool: 30 labeled latents + 120/4 = 30 unlabeled latents.
  for (const auto& pool : fed.ssl_pool) {
    EXPECT_EQ(pool.rows(), 60);
    EXPECT_EQ(pool.cols(), 6);  // latent dim, not input dim
  }
}

TEST_F(FedDataBuilder, NoUnlabeledPoolFallsBackToLabeledOnly) {
  data::SyntheticConfig config = synth_.config;
  config.unlabeled_samples = 0;
  const data::SyntheticDataset no_pool = data::make_synthetic(config);
  rng::Generator gen(7);
  const FedDataset fed = build_fed_dataset(no_pool, partition_, 4, gen);
  for (const auto& pool : fed.ssl_pool) {
    EXPECT_EQ(pool.rows(), 30);
  }
}

// Virtual mode must be indistinguishable from the eager build through the
// accessor interface: same shards, same SSL pools, bit for bit — that is
// what makes the CLI's auto-switch at scale safe.
TEST_F(FedDataBuilder, VirtualBuildIsBitIdenticalToEager) {
  rng::Generator eager_gen(11);
  rng::Generator virtual_gen(11);
  const FedDataset eager = build_fed_dataset(synth_, partition_, 4, eager_gen);
  const FedDataset lazy =
      build_virtual_fed_dataset(synth_, partition_, 4, virtual_gen);
  EXPECT_FALSE(eager.is_virtual());
  EXPECT_TRUE(lazy.is_virtual());
  ASSERT_EQ(lazy.num_train_clients(), eager.num_train_clients());
  ASSERT_EQ(lazy.num_novel_clients(), eager.num_novel_clients());
  EXPECT_EQ(lazy.pool_is_latent, eager.pool_is_latent);

  auto expect_same_tensor = [](const tensor::Tensor& a,
                               const tensor::Tensor& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::int64_t r = 0; r < a.rows(); ++r) {
      for (std::int64_t c = 0; c < a.cols(); ++c) {
        ASSERT_EQ(a(r, c), b(r, c)) << "element (" << r << ", " << c << ")";
      }
    }
  };
  auto expect_same_dataset = [&](const data::Dataset& a,
                                 const data::Dataset& b) {
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.num_classes, b.num_classes);
    expect_same_tensor(a.x, b.x);
    expect_same_tensor(a.latents, b.latents);
  };

  data::Dataset scratch;
  tensor::Tensor pool_scratch;
  for (int c = 0; c < eager.num_train_clients(); ++c) {
    expect_same_dataset(lazy.train_shard(c, scratch), eager.train[c]);
    expect_same_dataset(lazy.test_shard(c, scratch), eager.test[c]);
    expect_same_tensor(lazy.client_ssl_pool(c, pool_scratch),
                       eager.ssl_pool[c]);
  }
  for (int n = 0; n < eager.num_novel_clients(); ++n) {
    expect_same_dataset(lazy.novel_train_shard(n, scratch),
                        eager.novel_train[n]);
    expect_same_dataset(lazy.novel_test_shard(n, scratch),
                        eager.novel_test[n]);
  }
}

// --- probe ------------------------------------------------------------------

TEST(LinearProbe, SeparableFeaturesReachHighAccuracy) {
  // Two linearly separable blobs in feature space.
  rng::Generator gen(8);
  const int n = 80;
  Tensor train_features(n, 4);
  std::vector<int> train_labels(n);
  Tensor test_features(40, 4);
  std::vector<int> test_labels(40);
  auto fill = [&](Tensor& x, std::vector<int>& y) {
    for (std::int64_t i = 0; i < x.rows(); ++i) {
      const int label = static_cast<int>(i % 2);
      y[static_cast<std::size_t>(i)] = label;
      for (std::int64_t d = 0; d < 4; ++d) {
        x(i, d) = static_cast<float>(gen.normal()) +
                  (label == 0 ? 3.0f : -3.0f);
      }
    }
  };
  fill(train_features, train_labels);
  fill(test_features, test_labels);
  ProbeConfig config;
  const double accuracy =
      linear_probe_accuracy(train_features, train_labels, test_features,
                            test_labels, 2, config, 9);
  EXPECT_GT(accuracy, 0.95);
}

TEST(LinearProbe, RandomFeaturesNearChance) {
  rng::Generator gen(10);
  const Tensor train_features = Tensor::randn(100, 8, gen);
  const Tensor test_features = Tensor::randn(100, 8, gen);
  std::vector<int> train_labels(100);
  std::vector<int> test_labels(100);
  for (int i = 0; i < 100; ++i) {
    train_labels[static_cast<std::size_t>(i)] =
        static_cast<int>(gen.uniform_index(4));
    test_labels[static_cast<std::size_t>(i)] =
        static_cast<int>(gen.uniform_index(4));
  }
  ProbeConfig config;
  const double accuracy =
      linear_probe_accuracy(train_features, train_labels, test_features,
                            test_labels, 4, config, 11);
  EXPECT_LT(accuracy, 0.45);  // 4-way chance = 0.25
}

TEST(LinearProbe, ValidatesInput) {
  ProbeConfig config;
  EXPECT_THROW(linear_probe_accuracy(Tensor(0, 4), {}, Tensor(1, 4), {0}, 2,
                                     config, 1),
               CheckError);
}

// --- model helpers --------------------------------------------------------------

TEST(EncoderHeadModel, TrainSupervisedLearnsLocalData) {
  FlConfig config;
  config.encoder.input_dim = 8;
  config.encoder.hidden_dims = {16};
  config.encoder.feature_dim = 8;
  config.num_classes = 2;
  config.augment.noise_std = 0.02f;
  config.augment.mask_fraction = 0.0f;
  config.augment.scale_jitter = 0.0f;

  rng::Generator gen(12);
  data::Dataset dataset;
  dataset.num_classes = 2;
  dataset.x = Tensor(60, 8);
  dataset.labels.resize(60);
  for (int i = 0; i < 60; ++i) {
    const int label = i % 2;
    dataset.labels[static_cast<std::size_t>(i)] = label;
    for (int d = 0; d < 8; ++d) {
      dataset.x(i, d) = static_cast<float>(gen.normal()) +
                        (label == 0 ? 2.0f : -2.0f);
    }
  }
  EncoderHeadModel model = make_encoder_head(config, 13);
  const double before = evaluate_accuracy(model, dataset);
  rng::Generator train_gen(14);
  train_supervised(model, model.all_parameters(), dataset, config, 20,
                   train_gen);
  const double after = evaluate_accuracy(model, dataset);
  EXPECT_GT(after, 0.95);
  EXPECT_GE(after, before);
}

// --- fault-tolerant round loop ----------------------------------------------

// Minimal algorithm for runner fault-tolerance tests: a trivial
// two-parameter model with a per-update callback for injecting failures,
// latency, or recording which clients actually trained.
class ToyAlgorithm : public Algorithm {
 public:
  using UpdateHook = std::function<void(const ClientContext&)>;
  explicit ToyAlgorithm(const FlConfig& config, UpdateHook hook = nullptr)
      : Algorithm(config), hook_(std::move(hook)) {}
  std::string name() const override { return "Toy"; }
  nn::ModelState initialize() override {
    return nn::ModelState(std::vector<float>{1.0f, -1.0f});
  }
  ClientUpdate local_update(const nn::ModelState& global,
                            const ClientContext& ctx) override {
    if (hook_) hook_(ctx);
    ClientUpdate update;
    std::vector<float> values = global.values();
    for (float& value : values) {
      value += 0.5f + 0.25f * static_cast<float>(ctx.client_id);
    }
    update.state = nn::ModelState(std::move(values));
    return update;
  }
  double personalize(const nn::ModelState&,
                     const PersonalizationContext&) override {
    return 0.5;
  }

 private:
  UpdateHook hook_;
};

FedDataset toy_fed(int clients) {
  FedDataset fed;
  fed.train.resize(static_cast<std::size_t>(clients));
  fed.test.resize(static_cast<std::size_t>(clients));
  fed.ssl_pool.resize(static_cast<std::size_t>(clients));
  fed.num_classes = 2;
  fed.input_dim = 1;
  return fed;
}

FlConfig toy_config(int clients) {
  FlConfig config;
  config.rounds = 2;
  config.clients_per_round = clients;
  config.num_train_clients = clients;
  config.threads = 3;
  config.seed = 21;
  return config;
}

// Regression for the silent client-failure deadlock: a local_update that
// throws used to strand the server in pop() forever. The round must now
// complete with a recorded failure, not a timeout and not a hang (the
// deadline below only bounds the damage if the bug ever resurfaces).
TEST(RunnerFaults, ThrowingClientYieldsFailedRoundNotDeadlock) {
  const int clients = 4;
  FlConfig config = toy_config(clients);
  config.rounds = 3;
  config.round_deadline_ms = 30000;
  ToyAlgorithm algorithm(config, [](const ClientContext& ctx) {
    if (ctx.client_id == 0) throw std::runtime_error("synthetic failure");
  });
  const FedDataset fed = toy_fed(clients);
  const RunResult result = run_federated(algorithm, fed, false);
  ASSERT_EQ(result.history.size(), 3u);
  for (const RoundStats& round : result.history) {
    EXPECT_EQ(round.participants, 3);
    EXPECT_EQ(round.failures, 1);
    EXPECT_EQ(round.timeouts, 0) << "failure was lost instead of replied";
    EXPECT_EQ(round.retries, 0);
  }
}

TEST(RunnerFaults, BoundedRetryRecoversTransientFailure) {
  const int clients = 3;
  FlConfig config = toy_config(clients);
  config.rounds = 1;
  config.max_client_retries = 1;
  std::atomic<int> attempts{0};
  ToyAlgorithm algorithm(config, [&](const ClientContext& ctx) {
    if (ctx.client_id == 1 && attempts.fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
  });
  const FedDataset fed = toy_fed(clients);
  const RunResult result = run_federated(algorithm, fed, false);
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_EQ(result.history[0].participants, 3);
  EXPECT_EQ(result.history[0].failures, 1);
  EXPECT_EQ(result.history[0].retries, 1);
  EXPECT_EQ(result.history[0].timeouts, 0);
}

TEST(RunnerFaults, FullyFailedRoundKeepsGlobalState) {
  const int clients = 3;
  FlConfig config = toy_config(clients);
  config.rounds = 2;
  ToyAlgorithm algorithm(config, [](const ClientContext& ctx) {
    if (ctx.round == 0) throw std::runtime_error("bad round");
  });
  const FedDataset fed = toy_fed(clients);
  const RunResult result = run_federated(algorithm, fed, false);
  ASSERT_EQ(result.history.size(), 2u);
  EXPECT_EQ(result.history[0].participants, 0);
  EXPECT_EQ(result.history[0].failures, 3);
  EXPECT_EQ(result.history[1].participants, 3);
  EXPECT_EQ(result.history[1].failures, 0);
  // Round 1 aggregated on top of the *initial* state, untouched by round 0.
  // Mean client bump: 0.5 + 0.25 * mean(client_id) = 0.75.
  EXPECT_FLOAT_EQ(result.final_state.values()[0], 1.75f);
  EXPECT_FLOAT_EQ(result.final_state.values()[1], -0.25f);
}

TEST(RunnerFaults, DeadlineCutsStragglersAndDiscardsLateReplies) {
  const int clients = 4;
  FlConfig config = toy_config(clients);
  config.rounds = 2;
  config.round_deadline_ms = 800;
  config.min_participants = 3;
  // Round 0: client 0 outlives the deadline, replying mid-round-1.
  // Round 1: client 1 outlives the deadline and the whole run.
  ToyAlgorithm algorithm(config, [](const ClientContext& ctx) {
    if (ctx.round == 0 && ctx.client_id == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    }
    if (ctx.round == 1 && ctx.client_id == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3000));
    }
  });
  const FedDataset fed = toy_fed(clients);
  const RunResult result = run_federated(algorithm, fed, false);
  ASSERT_EQ(result.history.size(), 2u);
  EXPECT_EQ(result.history[0].participants, 3);
  EXPECT_EQ(result.history[0].timeouts, 1);
  EXPECT_EQ(result.history[0].late_dropped, 0);
  EXPECT_EQ(result.history[1].participants, 3);
  EXPECT_EQ(result.history[1].timeouts, 1);
  // Client 0's stale round-0 reply arrived during round 1 and was
  // discarded by round tag instead of corrupting the aggregation.
  EXPECT_EQ(result.history[1].late_dropped, 1);
}

// Cross-round straggler accounting must not depend on worker-thread count:
// a late reply is counted as late_dropped exactly once, never folded into a
// later round, and the aggregate stays bit-identical. (threads == 1 is
// excluded on purpose — a single worker serializes the sleeper and changes
// which clients beat the deadline.)
TEST(RunnerFaults, CrossRoundStragglerAccountingStableAcrossThreadCounts) {
  const int clients = 4;
  const FedDataset fed = toy_fed(clients);
  for (const int threads : {3, 8}) {
    FlConfig config = toy_config(clients);
    config.rounds = 2;
    config.threads = threads;
    config.round_deadline_ms = 800;
    config.min_participants = 3;
    ToyAlgorithm algorithm(config, [](const ClientContext& ctx) {
      if (ctx.round == 0 && ctx.client_id == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
      }
      if (ctx.round == 1 && ctx.client_id == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3000));
      }
    });
    const RunResult result = run_federated(algorithm, fed, false);
    ASSERT_EQ(result.history.size(), 2u);
    EXPECT_EQ(result.history[0].participants, 3) << "threads=" << threads;
    EXPECT_EQ(result.history[0].timeouts, 1) << "threads=" << threads;
    EXPECT_EQ(result.history[0].late_dropped, 0) << "threads=" << threads;
    EXPECT_EQ(result.history[0].failures, 0) << "threads=" << threads;
    EXPECT_EQ(result.history[1].participants, 3) << "threads=" << threads;
    EXPECT_EQ(result.history[1].timeouts, 1) << "threads=" << threads;
    // Client 0's round-0 reply lands mid-round-1: dropped once, not folded.
    EXPECT_EQ(result.history[1].late_dropped, 1) << "threads=" << threads;
    EXPECT_EQ(result.history[1].failures, 0) << "threads=" << threads;
    // Round 0 folds clients {1,2,3}: mean bump (0.5 + 0.25*2) = 1.0 → state
    // {2, 0}. Round 1 folds {0,2,3}: mean bump 0.5 + 0.25 * (5/3) = 11/12
    // over {2+..}: exact means below.
    EXPECT_FLOAT_EQ(result.final_state.values()[0], 8.75f / 3.0f)
        << "threads=" << threads;
    EXPECT_FLOAT_EQ(result.final_state.values()[1], 2.75f / 3.0f)
        << "threads=" << threads;
  }
}

TEST(RunnerFaults, InjectedFaultsAreDeterministicAcrossRuns) {
  const int clients = 5;
  FlConfig config = toy_config(clients);
  config.rounds = 3;
  config.fault_rate = 0.4f;
  config.max_client_retries = 1;
  const FedDataset fed = toy_fed(clients);
  auto run = [&] {
    ToyAlgorithm algorithm(config);
    return run_federated(algorithm, fed, false);
  };
  const RunResult first = run();
  const RunResult second = run();
  ASSERT_EQ(first.history.size(), second.history.size());
  int total_failures = 0;
  for (std::size_t r = 0; r < first.history.size(); ++r) {
    EXPECT_EQ(first.history[r].participants, second.history[r].participants);
    EXPECT_EQ(first.history[r].failures, second.history[r].failures);
    EXPECT_EQ(first.history[r].retries, second.history[r].retries);
    total_failures += first.history[r].failures;
  }
  EXPECT_GT(total_failures, 0);  // p = 0.4 over 15+ dispatches
  EXPECT_EQ(first.final_state.values(), second.final_state.values());
}

// Aggregation must not depend on reply arrival order: float summation is
// order-sensitive, so aggregating whatever the mailbox yields first made
// multi-threaded runs drift with thread scheduling. Clients stamp their id
// into the update's scalar side channel, aggregate() records the order it
// receives them in, and injected per-dispatch latency scrambles arrivals —
// the recorded order must still match the latency-free run's, because the
// runner sorts updates back into selection order before aggregating.
class OrderRecordingAlgorithm : public ToyAlgorithm {
 public:
  using ToyAlgorithm::ToyAlgorithm;
  ClientUpdate local_update(const nn::ModelState& global,
                            const ClientContext& ctx) override {
    ClientUpdate update = ToyAlgorithm::local_update(global, ctx);
    update.scalars["id"] = static_cast<float>(ctx.client_id);
    return update;
  }
  nn::ModelState aggregate(const nn::ModelState& global,
                           const std::vector<ClientUpdate>& updates,
                           int round) override {
    for (const ClientUpdate& update : updates) {
      seen.push_back(static_cast<int>(update.scalars.at("id")));
    }
    return Algorithm::aggregate(global, updates, round);
  }
  std::vector<int> seen;
};

TEST(RunnerFaults, AggregationOrderIndependentOfArrivalOrder) {
  const int clients = 6;
  const FedDataset fed = toy_fed(clients);
  auto run = [&](int latency_ms) {
    FlConfig config = toy_config(clients);
    config.fault_latency_ms = latency_ms;
    OrderRecordingAlgorithm algorithm(config);
    run_federated(algorithm, fed, false);
    return algorithm.seen;
  };
  const std::vector<int> instant = run(0);
  const std::vector<int> delayed = run(40);
  ASSERT_EQ(instant.size(), static_cast<std::size_t>(2 * clients));
  EXPECT_EQ(instant, delayed);
}

TEST(RunnerDropout, DropoutStreamDoesNotPerturbSampling) {
  // Dropout coins must come from their own stream: with a shared stream,
  // merely changing --dropout changed *which clients are sampled* in every
  // later round. The dropped-out run's per-round participants must be a
  // subset of the fault-free run's samples.
  const int clients = 6;
  auto participants_by_round = [&](float dropout) {
    FlConfig config = toy_config(clients);
    config.rounds = 6;
    config.clients_per_round = 3;
    config.client_dropout_rate = dropout;
    std::mutex mutex;
    std::map<int, std::set<int>> by_round;
    ToyAlgorithm algorithm(config, [&](const ClientContext& ctx) {
      std::lock_guard<std::mutex> lock(mutex);
      by_round[ctx.round].insert(ctx.client_id);
    });
    const FedDataset fed = toy_fed(clients);
    run_federated(algorithm, fed, false);
    return by_round;
  };
  const auto full = participants_by_round(0.0f);
  const auto dropped = participants_by_round(0.45f);
  ASSERT_EQ(full.size(), 6u);
  for (const auto& [round, ids] : dropped) {
    const auto& sampled = full.at(round);
    for (const int id : ids) {
      EXPECT_TRUE(sampled.count(id))
          << "round " << round << ": client " << id
          << " trained only because dropout perturbed the sampling stream";
    }
  }
}

// --- zero-copy broadcast + wire codec traffic ------------------------------

TEST(RunnerTraffic, OneBroadcastSerializationPerRoundRegardlessOfClients) {
  for (const int clients : {2, 6}) {
    FlConfig config = toy_config(clients);
    config.rounds = 3;
    ToyAlgorithm algorithm(config);
    const FedDataset fed = toy_fed(clients);
    const RunResult result = run_federated(algorithm, fed, false);
    ASSERT_EQ(result.history.size(), 3u);
    // Toy state is 2 floats: magic(4) + count(8) + 2*f32(8) = 20 payload
    // bytes, shared by every request of the round.
    const std::uint64_t request_wire = 20 + comm::Message::kHeaderBytes;
    for (const RoundStats& round : result.history) {
      EXPECT_EQ(round.serializations, 1u)
          << clients << " clients must share one snapshot";
      EXPECT_EQ(round.bytes_broadcast,
                static_cast<std::uint64_t>(clients) * request_wire);
      EXPECT_GT(round.bytes_collected, 0u);
    }
    EXPECT_EQ(result.traffic.broadcast_serializations,
              static_cast<std::uint64_t>(config.rounds));
    // Dedup is the whole point: physical strictly below logical.
    EXPECT_LT(result.traffic.physical_bytes, result.traffic.logical_bytes);
  }
}

TEST(RunnerTraffic, RetryResendSharesTheRoundSnapshot) {
  const int clients = 3;
  FlConfig config = toy_config(clients);
  config.rounds = 1;
  config.max_client_retries = 1;
  std::atomic<int> attempts{0};
  ToyAlgorithm algorithm(config, [&](const ClientContext& ctx) {
    if (ctx.client_id == 1 && attempts.fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
  });
  const FedDataset fed = toy_fed(clients);
  const RunResult result = run_federated(algorithm, fed, false);
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_EQ(result.history[0].retries, 1);
  // The retry re-send rides the same buffer: still one serialization, and
  // the extra send shows up in the round's logical broadcast bytes.
  EXPECT_EQ(result.history[0].serializations, 1u);
  const std::uint64_t request_wire = 20 + comm::Message::kHeaderBytes;
  EXPECT_EQ(result.history[0].bytes_broadcast,
            static_cast<std::uint64_t>(clients + 1) * request_wire);
}

TEST(RunnerTraffic, CompactCodecsTrackTheLosslessRun) {
  const int clients = 4;
  auto run_with = [&](comm::Codec codec) {
    FlConfig config = toy_config(clients);
    config.rounds = 3;
    config.wire_codec = codec;
    ToyAlgorithm algorithm(config);
    const FedDataset fed = toy_fed(clients);
    return run_federated(algorithm, fed, false);
  };
  const RunResult f32 = run_with(comm::Codec::kF32);
  const RunResult f16 = run_with(comm::Codec::kF16);
  const RunResult delta16 = run_with(comm::Codec::kDelta16);
  ASSERT_EQ(f16.history.size(), 3u);
  ASSERT_EQ(delta16.history.size(), 3u);
  // Toy values are small power-of-two sums, so the quantized runs stay very
  // close to the lossless one; delta16 encodes sub-unit deltas and lands
  // even tighter.
  EXPECT_LT(f16.final_state.l2_distance(f32.final_state), 1e-2f);
  EXPECT_LT(delta16.final_state.l2_distance(f32.final_state), 1e-3f);
  for (const RunResult* compact : {&f16, &delta16}) {
    EXPECT_EQ(compact->history[0].serializations, 1u);
    // Two-byte elements shrink every broadcast payload (20 -> 17 bytes for
    // the 2-float toy state).
    EXPECT_LT(compact->history[0].bytes_broadcast,
              f32.history[0].bytes_broadcast);
  }
}

// --- client-side update encoder: error feedback + adaptive chooser ----------

TEST(UpdateCodecEF, TopK16ErrorFeedbackCarriesDroppedMass) {
  FlConfig config = toy_config(4);
  config.wire_codec = comm::Codec::kTopK16;
  config.topk_rate = 0.5f;  // keep 1 of the 2 coordinates
  UpdateEncoder encoder(config);
  const nn::ModelState base(std::vector<float>{0.0f, 0.0f});
  ClientUpdate update;
  update.state = nn::ModelState(std::vector<float>{1.0f, 0.9f});
  update.weight = 4.0f;

  comm::Codec chosen = comm::Codec::kAuto;
  const auto bytes1 = encoder.encode(update, &base, 7, &chosen);
  EXPECT_EQ(chosen, comm::Codec::kTopK16);
  const ClientUpdate decoded1 = deserialize_update(bytes1, &base);
  // Round 1 transmits only the larger coordinate; the dropped 0.9 becomes
  // the client's residual.
  EXPECT_NEAR(decoded1.state.values()[0], 1.0f, 1e-3f);
  EXPECT_EQ(decoded1.state.values()[1], 0.0f);
  EXPECT_EQ(decoded1.weight, update.weight);
  ASSERT_TRUE(encoder.has_residual(7));
  EXPECT_NEAR(encoder.residual_norm(7), 0.9, 1e-3);

  // Round 2, same raw update: the carried residual makes the previously
  // dropped coordinate dominant (0.9 + 0.9 > 1.0), so it wins the slot.
  const auto bytes2 = encoder.encode(update, &base, 7, &chosen);
  const ClientUpdate decoded2 = deserialize_update(bytes2, &base);
  EXPECT_EQ(decoded2.state.values()[0], 0.0f);
  EXPECT_NEAR(decoded2.state.values()[1], 1.8f, 1e-2f);
  // Conservation: input mass minus transmitted mass sits in the residual.
  EXPECT_NEAR(encoder.residual_norm(7), 1.0, 1e-2);
}

TEST(UpdateCodecEF, ResidualSurvivesReselectionGaps) {
  FlConfig config = toy_config(4);
  config.wire_codec = comm::Codec::kTopK16;
  config.topk_rate = 0.5f;
  UpdateEncoder encoder(config);
  const nn::ModelState base(std::vector<float>{0.0f, 0.0f});
  ClientUpdate update;
  update.state = nn::ModelState(std::vector<float>{1.0f, 0.9f});

  encoder.encode(update, &base, 7);
  EXPECT_NEAR(encoder.residual_norm(7), 0.9, 1e-3);

  // Client 7 sits out while others participate: its residual must neither
  // decay nor leak into other clients' encodings.
  ClientUpdate other;
  other.state = nn::ModelState(std::vector<float>{0.2f, 0.1f});
  encoder.encode(other, &base, 3);
  encoder.encode(other, &base, 5);
  EXPECT_NEAR(encoder.residual_norm(7), 0.9, 1e-3);
  EXPECT_NEAR(encoder.residual_norm(3), 0.1, 1e-3);

  // When client 7 returns, the gap behaves exactly like a consecutive
  // round: the carried coordinate dominates.
  const auto bytes = encoder.encode(update, &base, 7);
  const ClientUpdate decoded = deserialize_update(bytes, &base);
  EXPECT_EQ(decoded.state.values()[0], 0.0f);
  EXPECT_NEAR(decoded.state.values()[1], 1.8f, 1e-2f);
}

TEST(UpdateCodecEF, AutoChooserRespectsBudgetAndShrinksWithIt) {
  // Spiky vector: 1 in 16 coordinates carries a dominant value, so topk16
  // captures most of the mass; the uniform background needs int8a or
  // better. Deterministic fill — no RNG.
  const std::size_t n = 600;
  std::vector<float> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t h = static_cast<std::uint32_t>(i) * 2654435761u;
    values[i] = 0.001f * (static_cast<float>(h % 1000u) - 500.0f);
    if (i % 16 == 0) values[i] += 5.0f;
  }
  const nn::ModelState base(std::vector<float>(n, 0.0f));
  ClientUpdate update;
  update.state = nn::ModelState(values);

  std::size_t previous_size = 0;
  std::vector<comm::Codec> chosen_by_budget;
  for (const float budget : {0.3f, 0.02f, 1e-7f}) {
    FlConfig config = toy_config(4);
    config.wire_codec = comm::Codec::kAuto;
    config.codec_error_budget = budget;
    UpdateEncoder encoder(config);
    comm::Codec chosen = comm::Codec::kAuto;
    const auto bytes = encoder.encode(update, &base, 1, &chosen);
    chosen_by_budget.push_back(chosen);
    const ClientUpdate decoded = deserialize_update(bytes, &base);
    const double error =
        UpdateEncoder::relative_error(values, decoded.state.values());
    EXPECT_LE(error, static_cast<double>(budget) + 1e-9)
        << "budget " << budget << " violated by "
        << comm::codec_name(chosen);
    // A tighter budget can only cost more bytes.
    EXPECT_GE(bytes.size(), previous_size) << "budget " << budget;
    previous_size = bytes.size();
  }
  // Loose -> sparsify, medium -> quantize, impossible -> lossless.
  EXPECT_EQ(chosen_by_budget[0], comm::Codec::kTopK16);
  EXPECT_EQ(chosen_by_budget[1], comm::Codec::kInt8A);
  EXPECT_EQ(chosen_by_budget[2], comm::Codec::kF32);
}

TEST(UpdateCodecEF, EncoderIsDeterministicAcrossInstances) {
  FlConfig config = toy_config(4);
  config.wire_codec = comm::Codec::kAuto;
  config.codec_error_budget = 0.02f;
  const nn::ModelState base(std::vector<float>{0.5f, -0.5f});
  ClientUpdate update;
  update.state = nn::ModelState(std::vector<float>{0.75f, -0.25f});
  UpdateEncoder a(config);
  UpdateEncoder b(config);
  comm::Codec chosen_a = comm::Codec::kAuto;
  comm::Codec chosen_b = comm::Codec::kAuto;
  EXPECT_EQ(a.encode(update, &base, 2, &chosen_a),
            b.encode(update, &base, 2, &chosen_b));
  EXPECT_EQ(chosen_a, chosen_b);
}

TEST(UpdateCodecEF, AutoRunIsBitIdenticalAcrossThreadCounts) {
  // The chooser is a pure function of (update, base, config), EF residuals
  // key on client ids, and the fold is exact fixed-point — so the whole
  // lossy run must stay bit-identical for any thread count, including the
  // per-round codec decision record.
  auto run_with_threads = [&](int threads) {
    const int clients = 4;
    FlConfig config = toy_config(clients);
    config.rounds = 4;
    config.threads = threads;
    config.wire_codec = comm::Codec::kAuto;
    config.codec_error_budget = 0.05f;
    ToyAlgorithm algorithm(config);
    const FedDataset fed = toy_fed(clients);
    return run_federated(algorithm, fed, false);
  };
  const RunResult a = run_with_threads(1);
  const RunResult b = run_with_threads(3);
  EXPECT_EQ(a.final_state.values(), b.final_state.values());
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].codec_counts, b.history[i].codec_counts)
        << "round " << i;
    EXPECT_EQ(a.history[i].update_bytes_wire, b.history[i].update_bytes_wire)
        << "round " << i;
    EXPECT_EQ(a.history[i].update_bytes_f32, b.history[i].update_bytes_f32)
        << "round " << i;
  }
}

TEST(UpdateCodecEF, LossyRunsTrackTheLosslessRunWithCompressionStats) {
  const int clients = 4;
  auto run_with = [&](comm::Codec codec, bool async) {
    FlConfig config = toy_config(clients);
    config.rounds = 3;
    config.wire_codec = codec;
    config.codec_error_budget = 0.05f;
    if (async) {
      config.async_mode = true;
      config.async_buffer_size = 4;
    }
    ToyAlgorithm algorithm(config);
    const FedDataset fed = toy_fed(clients);
    return run_federated(algorithm, fed, false);
  };
  const RunResult f32 = run_with(comm::Codec::kF32, false);
  const RunResult topk = run_with(comm::Codec::kTopK16, false);
  const RunResult auto_run = run_with(comm::Codec::kAuto, false);
  // Error feedback keeps the sparsified run near the lossless trajectory:
  // dropped coordinates are re-sent later, so the worst-case drift is one
  // round's withheld mass, not an accumulating bias.
  EXPECT_LT(topk.final_state.l2_distance(f32.final_state), 2.0f);
  // The auto run meets a 5% per-update budget and lands much closer.
  EXPECT_LT(auto_run.final_state.l2_distance(f32.final_state), 0.1f);
  for (const RoundStats& r : topk.history) {
    EXPECT_GT(r.update_bytes_f32, 0u);
    EXPECT_EQ(r.codec_counts[static_cast<std::size_t>(comm::Codec::kTopK16)],
              static_cast<std::uint32_t>(r.participants));
  }
  for (const RoundStats& r : f32.history) {
    // Lossless baseline: wire bytes equal the f32 layout exactly.
    EXPECT_EQ(r.update_bytes_wire, r.update_bytes_f32);
    EXPECT_EQ(r.codec_counts[static_cast<std::size_t>(comm::Codec::kF32)],
              static_cast<std::uint32_t>(r.participants));
  }
  // Async composes with the encoder too (buffered folds, delta bases).
  const RunResult async_auto = run_with(comm::Codec::kAuto, true);
  for (const RoundStats& r : async_auto.history) {
    EXPECT_GT(r.update_bytes_f32, 0u);
    std::uint32_t folded = 0;
    for (const std::uint32_t c : r.codec_counts) folded += c;
    EXPECT_EQ(folded, static_cast<std::uint32_t>(r.participants));
  }
}

// --- streaming aggregation ---------------------------------------------------

// ToyAlgorithm inherits the BatchAggregatorAdapter default (its aggregate()
// is the batch path); this variant opts into the native O(model) streaming
// fold. The two must be bit-identical by construction.
class StreamingToyAlgorithm : public ToyAlgorithm {
 public:
  using ToyAlgorithm::ToyAlgorithm;
  std::unique_ptr<StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<WeightedStreamingAggregator>();
  }
};

// The equivalence contract of StreamingAggregator, end to end: the native
// fold and the batch adapter must produce bit-identical global states for
// any thread count and any arrival order (injected latency makes replies
// land out of selection order, exercising the reorder buffer).
TEST(StreamingAggregation, NativeFoldMatchesBatchAdapterBitwise) {
  const int clients = 7;
  const FedDataset fed = toy_fed(clients);
  auto run = [&](bool streaming, int threads, int latency_ms) {
    FlConfig config = toy_config(clients);
    config.rounds = 3;
    config.threads = threads;
    config.fault_latency_ms = latency_ms;
    if (streaming) {
      StreamingToyAlgorithm algorithm(config);
      return run_federated(algorithm, fed, false).final_state.values();
    }
    ToyAlgorithm algorithm(config);
    return run_federated(algorithm, fed, false).final_state.values();
  };
  const std::vector<float> reference = run(false, 1, 0);
  ASSERT_EQ(reference.size(), 2u);
  for (const bool streaming : {false, true}) {
    for (const int threads : {1, 3, 8}) {
      for (const int latency_ms : {0, 20}) {
        EXPECT_EQ(run(streaming, threads, latency_ms), reference)
            << (streaming ? "streaming" : "batch") << " threads=" << threads
            << " latency=" << latency_ms;
      }
    }
  }
}

// A permanently failing client leaves a hole at the fold front while
// latency scrambles arrival order: later ranks pile into the reorder buffer
// until the failure resolves their blocker. The round must complete without
// the missing rank (no deadlock), and repeated runs must agree bitwise —
// fold order is selection order, never arrival order.
TEST(StreamingAggregation, ReorderBufferDrainsAroundPermanentFailures) {
  const int clients = 6;
  const FedDataset fed = toy_fed(clients);
  auto run = [&] {
    FlConfig config = toy_config(clients);
    config.rounds = 3;
    config.fault_latency_ms = 30;
    StreamingToyAlgorithm algorithm(config, [](const ClientContext& ctx) {
      if (ctx.client_id == 2) throw std::runtime_error("permanent failure");
    });
    const RunResult result = run_federated(algorithm, fed, false);
    for (const RoundStats& r : result.history) {
      EXPECT_EQ(r.participants, clients - 1) << "round " << r.round;
      EXPECT_EQ(r.failures, 1) << "round " << r.round;
    }
    return result.final_state.values();
  };
  EXPECT_EQ(run(), run());
}

// Deadline + quorum on top of the reorder buffer: stragglers cut at the
// deadline leave multiple unresolved ranks, and the buffer must still
// drain whatever arrived (in selection order) instead of waiting forever.
TEST(StreamingAggregation, DeadlineQuorumStillDrainsReorderBuffer) {
  const int clients = 8;
  const FedDataset fed = toy_fed(clients);
  FlConfig config = toy_config(clients);
  config.rounds = 2;
  config.round_deadline_ms = 150;
  config.min_participants = 3;
  std::atomic<int> dispatched{0};
  StreamingToyAlgorithm algorithm(config, [&](const ClientContext&) {
    // Every third dispatch stalls well past the deadline.
    if (dispatched.fetch_add(1) % 3 == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  });
  const RunResult result = run_federated(algorithm, fed, false);
  ASSERT_EQ(result.history.size(), 2u);
  for (const RoundStats& r : result.history) {
    EXPECT_GE(r.participants, config.min_participants) << "round " << r.round;
    EXPECT_EQ(r.participants + r.timeouts, clients) << "round " << r.round;
  }
}

// --- mergeable fold algebra --------------------------------------------------

ClientUpdate algebra_update(int k) {
  ClientUpdate update;
  // Deliberately non-power-of-two values: any schedule sensitivity in the
  // accumulator would show up as last-ulp differences here.
  update.state = nn::ModelState(std::vector<float>{
      0.1f + 0.7f * static_cast<float>(k), -3.3f * static_cast<float>(k + 1),
      1.0f / static_cast<float>(k + 3)});
  update.weight = 1.0f + 0.9f * static_cast<float>(k % 5);
  update.scalars["loss"] = 0.2f + 0.15f * static_cast<float>(k % 4);
  return update;
}

// merge() must behave exactly as if the shard's updates had been folded
// here: a disjoint split folded into partials and merged lands on the same
// bits as the flat fold, for any grouping (the fixed-point accumulators
// make integer addition carry the associativity proof).
TEST(MergeAlgebra, ShardPartialsMergeToTheFlatFoldBitwise) {
  const int count = 9;
  WeightedStreamingAggregator flat;
  for (int k = 0; k < count; ++k) flat.fold(algebra_update(k));
  const nn::ModelState reference = flat.finish();

  for (const int shards : {2, 3}) {
    std::vector<std::unique_ptr<WeightedStreamingAggregator>> partials;
    for (int s = 0; s < shards; ++s) {
      partials.push_back(std::make_unique<WeightedStreamingAggregator>());
    }
    for (int k = 0; k < count; ++k) {
      partials[static_cast<std::size_t>(k % shards)]->fold(algebra_update(k));
    }
    auto root = std::move(partials.front());
    for (int s = 1; s < shards; ++s) {
      root->merge(std::move(*partials[static_cast<std::size_t>(s)]));
    }
    EXPECT_EQ(root->folded(), count);
    EXPECT_EQ(root->finish().values(), reference.values())
        << shards << " shards";
  }
}

TEST(MergeAlgebra, MergeIsAssociativeAcrossGroupings) {
  auto make_partials = [] {
    std::vector<std::unique_ptr<WeightedStreamingAggregator>> partials;
    for (int s = 0; s < 3; ++s) {
      partials.push_back(std::make_unique<WeightedStreamingAggregator>());
    }
    for (int k = 0; k < 9; ++k) {
      partials[static_cast<std::size_t>(k % 3)]->fold(algebra_update(k));
    }
    return partials;
  };
  // (a + b) + c
  auto left = make_partials();
  left[0]->merge(std::move(*left[1]));
  left[0]->merge(std::move(*left[2]));
  // a + (b + c)
  auto right = make_partials();
  right[1]->merge(std::move(*right[2]));
  right[0]->merge(std::move(*right[1]));
  EXPECT_EQ(left[0]->finish().values(), right[0]->finish().values());
}

TEST(MergeAlgebra, EmptyPartialIsTheMergeIdentity) {
  WeightedStreamingAggregator a;
  a.fold(algebra_update(0));
  a.fold(algebra_update(1));
  // Merging an empty shard changes nothing.
  WeightedStreamingAggregator empty;
  a.merge(std::move(empty));
  EXPECT_EQ(a.folded(), 2);
  // Merging into an empty aggregator adopts the partial wholesale.
  WeightedStreamingAggregator flat;
  flat.fold(algebra_update(0));
  flat.fold(algebra_update(1));
  WeightedStreamingAggregator adopted;
  WeightedStreamingAggregator donor;
  donor.fold(algebra_update(0));
  donor.fold(algebra_update(1));
  adopted.merge(std::move(donor));
  EXPECT_EQ(adopted.folded(), 2);
  EXPECT_EQ(adopted.finish().values(), flat.finish().values());
}

// The q-FedAvg-style custom weight function (loss^q scaling) rides the same
// accumulator, so its partials must merge exactly too.
TEST(MergeAlgebra, CustomWeightFnPartialsMergeExactly) {
  auto weight_of = [](const ClientUpdate& update) {
    const double loss = static_cast<double>(update.scalars.at("loss"));
    return static_cast<double>(update.weight) * std::pow(loss + 1e-3, 2.0);
  };
  WeightedStreamingAggregator flat{WeightedStreamingAggregator::WeightFn(
      weight_of)};
  WeightedStreamingAggregator even{WeightedStreamingAggregator::WeightFn(
      weight_of)};
  WeightedStreamingAggregator odd{WeightedStreamingAggregator::WeightFn(
      weight_of)};
  for (int k = 0; k < 8; ++k) {
    flat.fold(algebra_update(k));
    (k % 2 == 0 ? even : odd).fold(algebra_update(k));
  }
  even.merge(std::move(odd));
  EXPECT_EQ(even.finish().values(), flat.finish().values());
}

TEST(MergeAlgebra, BatchAdapterRefusesToMerge) {
  FlConfig config;
  config.clients_per_round = 2;
  ToyAlgorithm algorithm(config);
  const nn::ModelState global(std::vector<float>{1.0f, -1.0f});
  auto a = algorithm.Algorithm::make_aggregator(global, 0);
  auto b = algorithm.Algorithm::make_aggregator(global, 0);
  EXPECT_FALSE(a->mergeable());
  a->fold(algebra_update(0));
  b->fold(algebra_update(1));
  EXPECT_THROW(a->merge(std::move(*b)), CheckError);
}

// --- sharded parallel fold ---------------------------------------------------

// The tentpole invariant end to end: with --agg-shards the reorder buffer
// routes ranks to parallel shard aggregators whose merge must land on the
// flat fold's bits — for every shard count, every thread count, and
// arrival orders scrambled by injected latency.
TEST(ShardedAggregation, BitIdenticalAcrossShardAndThreadCounts) {
  const int clients = 8;
  const FedDataset fed = toy_fed(clients);
  auto run = [&](int shards, int threads) {
    FlConfig config = toy_config(clients);
    config.rounds = 3;
    config.threads = threads;
    config.agg_shards = shards;
    config.fault_latency_ms = 15;
    StreamingToyAlgorithm algorithm(config);
    const RunResult result = run_federated(algorithm, fed, false);
    EXPECT_EQ(result.history.size(), 3u);
    for (const RoundStats& r : result.history) {
      EXPECT_EQ(r.participants, clients);
      // Stats must be shard-invariant too (rank-ordered readback).
      EXPECT_GT(r.mean_update_norm, 0.0f);
    }
    return result;
  };
  const RunResult reference = run(1, 1);
  for (const int shards : {1, 2, 8}) {
    for (const int threads : {1, 3, 8}) {
      const RunResult result = run(shards, threads);
      EXPECT_EQ(result.final_state.values(), reference.final_state.values())
          << "shards=" << shards << " threads=" << threads;
      ASSERT_EQ(result.history.size(), reference.history.size());
      for (std::size_t r = 0; r < reference.history.size(); ++r) {
        EXPECT_EQ(result.history[r].mean_update_norm,
                  reference.history[r].mean_update_norm)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

// Same invariant for the async loop: commit windows fold on shard workers,
// staleness discounts and all, and must match the flat async run bitwise.
TEST(ShardedAggregation, AsyncBitIdenticalAcrossShardAndThreadCounts) {
  const int clients = 12;
  const FedDataset fed = toy_fed(clients);
  auto run = [&](int shards, int threads) {
    FlConfig config = toy_config(clients);
    config.async_mode = true;
    config.rounds = 4;
    config.async_buffer_size = 8;
    config.clients_per_round = 8;
    config.agg_shards = shards;
    config.threads = threads;
    config.fault_latency_ms = 10;
    StreamingToyAlgorithm algorithm(config);
    return run_federated(algorithm, fed, false);
  };
  const RunResult reference = run(1, 1);
  ASSERT_EQ(reference.history.size(), 4u);
  for (const int shards : {1, 2, 8}) {
    for (const int threads : {1, 3, 8}) {
      const RunResult result = run(shards, threads);
      EXPECT_EQ(result.final_state.values(), reference.final_state.values())
          << "shards=" << shards << " threads=" << threads;
      ASSERT_EQ(result.history.size(), reference.history.size());
      for (std::size_t i = 0; i < reference.history.size(); ++i) {
        EXPECT_EQ(result.history[i].mean_update_norm,
                  reference.history[i].mean_update_norm)
            << "shards=" << shards << " threads=" << threads;
        EXPECT_EQ(result.history[i].staleness_mean,
                  reference.history[i].staleness_mean);
      }
    }
  }
}

// Merge interaction with the reorder buffer's failure paths: a permanently
// failed rank leaves a hole in the shard routing, and late ranks released
// at the deadline drain through the shards. Both must stay deterministic
// and identical to the flat fold.
TEST(ShardedAggregation, FailedRanksLeaveShardHolesWithoutDivergence) {
  const int clients = 8;
  const FedDataset fed = toy_fed(clients);
  auto run = [&](int shards) {
    FlConfig config = toy_config(clients);
    config.rounds = 3;
    config.agg_shards = shards;
    config.fault_latency_ms = 20;
    StreamingToyAlgorithm algorithm(config, [](const ClientContext& ctx) {
      if (ctx.client_id == 2) throw std::runtime_error("permanent failure");
    });
    const RunResult result = run_federated(algorithm, fed, false);
    for (const RoundStats& r : result.history) {
      EXPECT_EQ(r.participants, clients - 1) << "round " << r.round;
      EXPECT_EQ(r.failures, 1) << "round " << r.round;
    }
    return result.final_state.values();
  };
  const std::vector<float> reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
}

TEST(ShardedAggregation, DeadlineQuorumDrainsThroughShards) {
  const int clients = 8;
  const FedDataset fed = toy_fed(clients);
  FlConfig config = toy_config(clients);
  config.rounds = 2;
  config.round_deadline_ms = 150;
  config.min_participants = 3;
  config.agg_shards = 4;
  std::atomic<int> dispatched{0};
  StreamingToyAlgorithm algorithm(config, [&](const ClientContext&) {
    if (dispatched.fetch_add(1) % 3 == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  });
  const RunResult result = run_federated(algorithm, fed, false);
  ASSERT_EQ(result.history.size(), 2u);
  for (const RoundStats& r : result.history) {
    EXPECT_GE(r.participants, config.min_participants) << "round " << r.round;
    EXPECT_EQ(r.participants + r.timeouts, clients) << "round " << r.round;
  }
}

// A batch-adapter algorithm cannot shard (its buffered subsequences do not
// interleave); --agg-shards must fall back to the flat fold, not crash, and
// produce the exact flat result.
TEST(ShardedAggregation, NonMergeableAggregatorFallsBackToFlatFold) {
  const int clients = 6;
  const FedDataset fed = toy_fed(clients);
  auto run = [&](int shards) {
    FlConfig config = toy_config(clients);
    config.rounds = 2;
    config.agg_shards = shards;
    ToyAlgorithm algorithm(config);  // batch adapter: not mergeable
    return run_federated(algorithm, fed, false).final_state.values();
  };
  EXPECT_EQ(run(6), run(1));
}

// --- failure accounting (regression) ----------------------------------------

// Regression for the failure-overcounting bug: the round loop incremented
// stats.failures BEFORE checking whether the erroring client was still
// pending, so an error reply for an already-resolved client inflated the
// count. The shared helper must count nothing for a non-pending client.
TEST(FailureAccounting, ErrorRepliesForResolvedClientsCountNothing) {
  RoundStats stats;
  int retries_used = 0;
  // Pending with retry budget: failure + retry granted.
  EXPECT_TRUE(account_error_reply(true, retries_used, 1, stats));
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(retries_used, 1);
  // Pending, budget exhausted: failure counted, no retry.
  EXPECT_FALSE(account_error_reply(true, retries_used, 1, stats));
  EXPECT_EQ(stats.failures, 2);
  EXPECT_EQ(stats.retries, 1);
  // Already resolved: the bug — nothing may change, retry budget included.
  EXPECT_FALSE(account_error_reply(false, retries_used, 5, stats));
  EXPECT_EQ(stats.failures, 2);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(retries_used, 1);
}

// --- config validation -------------------------------------------------------

TEST(ConfigValidation, MinParticipantsAboveClientsPerRoundFailsFast) {
  const int clients = 4;
  FlConfig config = toy_config(clients);
  config.min_participants = clients + 1;
  // Both the direct validator and the runner entry point must reject the
  // unsatisfiable quorum instead of silently clamping it to the sample size.
  EXPECT_THROW(validate(config), CheckError);
  ToyAlgorithm algorithm(config);
  const FedDataset fed = toy_fed(clients);
  EXPECT_THROW(run_federated(algorithm, fed, false), CheckError);
  config.min_participants = clients;
  EXPECT_NO_THROW(validate(config));
  config.min_participants = 0;
  EXPECT_THROW(validate(config), CheckError);
}

TEST(ConfigValidation, AsyncRejectsSyncOnlyKnobs) {
  FlConfig config = toy_config(4);
  config.async_mode = true;
  EXPECT_NO_THROW(validate(config));
  config.round_deadline_ms = 100;
  EXPECT_THROW(validate(config), CheckError);
  config.round_deadline_ms = 0;
  config.client_dropout_rate = 0.2f;
  EXPECT_THROW(validate(config), CheckError);
  config.client_dropout_rate = 0.0f;
  config.async_buffer_size = 0;
  EXPECT_THROW(validate(config), CheckError);
  config.async_buffer_size = 8;
  config.staleness_alpha = -0.5f;
  EXPECT_THROW(validate(config), CheckError);
}

TEST(ConfigValidation, CodecKnobsBoundsChecked) {
  FlConfig config = toy_config(4);
  config.wire_codec = comm::Codec::kTopK16;
  EXPECT_NO_THROW(validate(config));
  config.topk_rate = 0.0f;
  EXPECT_THROW(validate(config), CheckError);
  config.topk_rate = 1.5f;
  EXPECT_THROW(validate(config), CheckError);
  config.topk_rate = 1.0f;
  EXPECT_NO_THROW(validate(config));
  config.wire_codec = comm::Codec::kAuto;
  config.codec_error_budget = 0.0f;
  EXPECT_THROW(validate(config), CheckError);
  config.codec_error_budget = 2.0f;
  EXPECT_THROW(validate(config), CheckError);
  config.codec_error_budget = 0.01f;
  EXPECT_NO_THROW(validate(config));
  // An enum value that is not a codec (e.g. a corrupted config) fails fast.
  config.wire_codec = static_cast<comm::Codec>(9);
  EXPECT_THROW(validate(config), CheckError);
}

TEST(ConfigValidation, AggShardsBoundsChecked) {
  FlConfig config = toy_config(4);
  EXPECT_NO_THROW(validate(config));  // default agg_shards = 1
  config.agg_shards = 0;
  EXPECT_THROW(validate(config), CheckError);
  config.agg_shards = 4;
  EXPECT_NO_THROW(validate(config));
  // More shards than sampled clients: some shards could never fold.
  config.agg_shards = 5;
  EXPECT_THROW(validate(config), CheckError);
}

TEST(ConfigValidation, AsyncBufferMustDivideByAggShards) {
  FlConfig config = toy_config(8);
  config.async_mode = true;
  config.async_buffer_size = 8;
  config.agg_shards = 4;
  EXPECT_NO_THROW(validate(config));
  config.agg_shards = 3;  // 8 % 3 != 0: uneven shard load every window
  EXPECT_THROW(validate(config), CheckError);
  config.async_mode = false;  // sync mode has no window-divisibility rule
  EXPECT_NO_THROW(validate(config));
}

TEST(ConfigValidation, DeviceClassRangesChecked) {
  FlConfig config = toy_config(4);
  config.device_classes.push_back({"ok", 0.1f, 5, 0.75f, 24});
  EXPECT_NO_THROW(validate(config));
  config.device_classes.push_back({"bad-rate", 1.5f, 0, 1.0f, 0});
  EXPECT_THROW(validate(config), CheckError);
  config.device_classes.pop_back();
  config.device_classes.push_back({"no-period", 0.0f, 0, 0.5f, 0});
  EXPECT_THROW(validate(config), CheckError);
}

// --- staleness weighting -----------------------------------------------------

TEST(StalenessWeight, MatchesClosedForm) {
  EXPECT_FLOAT_EQ(staleness_weight(0, 0.5f), 1.0f);
  EXPECT_FLOAT_EQ(staleness_weight(7, 0.0f), 1.0f);  // alpha 0 disables
  EXPECT_FLOAT_EQ(staleness_weight(1, 1.0f), 0.5f);
  EXPECT_FLOAT_EQ(staleness_weight(3, 0.5f), 0.5f);  // 1/sqrt(4)
  EXPECT_FLOAT_EQ(staleness_weight(3, 1.0f), 0.25f);
  EXPECT_THROW(staleness_weight(-1, 0.5f), CheckError);
}

// --- buffered asynchronous aggregation ---------------------------------------

FlConfig async_toy_config(int clients) {
  FlConfig config = toy_config(clients);
  config.async_mode = true;
  config.rounds = 4;  // commits, not barriered rounds
  config.async_buffer_size = 3;
  config.clients_per_round = 3;  // in-flight request budget
  return config;
}

TEST(AsyncAggregation, CommitsEveryBufferSizeFolds) {
  const int clients = 6;
  FlConfig config = async_toy_config(clients);
  ToyAlgorithm algorithm(config);
  const FedDataset fed = toy_fed(clients);
  const RunResult result = run_federated(algorithm, fed, false);
  ASSERT_EQ(result.history.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const RoundStats& commit = result.history[static_cast<std::size_t>(i)];
    EXPECT_EQ(commit.round, i);
    EXPECT_EQ(commit.committed_version, i + 1);
    EXPECT_EQ(commit.participants, config.async_buffer_size);
    EXPECT_EQ(commit.timeouts, 0);  // sync-only counter stays zero
    EXPECT_EQ(commit.dropped, 0);
  }
  // First window folds only version-0 updates; afterwards the pipeline runs
  // one version behind for the two slots dispatched before each commit.
  EXPECT_FLOAT_EQ(result.history[0].staleness_mean, 0.0f);
  EXPECT_EQ(result.history[0].staleness_max, 0);
  for (int i = 1; i < 4; ++i) {
    const RoundStats& commit = result.history[static_cast<std::size_t>(i)];
    EXPECT_FLOAT_EQ(commit.staleness_mean, 2.0f / 3.0f) << "commit " << i;
    EXPECT_EQ(commit.staleness_max, 1) << "commit " << i;
  }
}

TEST(AsyncAggregation, DeterministicAcrossThreadCountsUnderChurn) {
  const int clients = 9;
  const FedDataset fed = toy_fed(clients);
  auto run = [&](int threads) {
    FlConfig config = toy_config(clients);
    config.async_mode = true;
    config.rounds = 5;
    config.async_buffer_size = 2;
    config.clients_per_round = 4;
    config.max_client_retries = 1;
    config.threads = threads;
    // Three device classes: reliable, flaky+slow, and a diurnal class that
    // is offline for half of the committed versions.
    config.device_classes = {{"fast", 0.0f, 0, 1.0f, 0},
                             {"flaky", 0.3f, 25, 1.0f, 0},
                             {"night", 0.0f, 10, 0.5f, 4}};
    StreamingToyAlgorithm algorithm(config);
    return run_federated(algorithm, fed, false);
  };
  const RunResult reference = run(1);
  ASSERT_EQ(reference.history.size(), 5u);
  for (const int threads : {3, 8}) {
    const RunResult other = run(threads);
    EXPECT_EQ(other.final_state.values(), reference.final_state.values())
        << "threads=" << threads;
    ASSERT_EQ(other.history.size(), reference.history.size());
    for (std::size_t i = 0; i < reference.history.size(); ++i) {
      const RoundStats& a = reference.history[i];
      const RoundStats& b = other.history[i];
      EXPECT_EQ(b.participants, a.participants) << "commit " << i;
      EXPECT_EQ(b.failures, a.failures) << "commit " << i;
      EXPECT_EQ(b.retries, a.retries) << "commit " << i;
      EXPECT_EQ(b.late_dropped, a.late_dropped) << "commit " << i;
      EXPECT_EQ(b.committed_version, a.committed_version) << "commit " << i;
      EXPECT_FLOAT_EQ(b.staleness_mean, a.staleness_mean) << "commit " << i;
      EXPECT_EQ(b.staleness_max, a.staleness_max) << "commit " << i;
      EXPECT_FLOAT_EQ(b.mean_update_norm, a.mean_update_norm)
          << "commit " << i;
    }
  }
}

TEST(AsyncAggregation, StragglersDrainWithoutFoldingIntoLaterVersions) {
  const int clients = 8;
  const FedDataset fed = toy_fed(clients);
  for (const int threads : {1, 3, 8}) {
    FlConfig config = toy_config(clients);
    config.async_mode = true;
    config.rounds = 5;
    config.async_buffer_size = 2;
    config.clients_per_round = 4;
    config.threads = threads;
    config.fault_latency_ms = 30;  // scramble arrival order
    StreamingToyAlgorithm algorithm(config);
    const RunResult result = run_federated(algorithm, fed, false);
    ASSERT_EQ(result.history.size(), 5u);
    int folds = 0;
    int late = 0;
    for (const RoundStats& commit : result.history) {
      folds += commit.participants;
      late += commit.late_dropped;
      EXPECT_EQ(commit.failures, 0);
    }
    // Exactly rounds * buffer_size updates ever fold — a reply left in
    // flight at the final commit is never aggregated into a later version.
    EXPECT_EQ(folds, config.rounds * config.async_buffer_size)
        << "threads=" << threads;
    // Every other dispatch resolves exactly once, as a drained straggler:
    // the in-flight window minus the seq whose fold triggered the final
    // commit.
    EXPECT_EQ(late, config.clients_per_round - 1) << "threads=" << threads;
  }
}

TEST(AsyncAggregation, StalenessDiscountsShiftTheAggregate) {
  // alpha > 0 down-weights stale folds, so the trajectory must differ from
  // the alpha = 0 run under the same schedule — proof the weight is applied
  // — while staying deterministic for a fixed alpha.
  const int clients = 6;
  const FedDataset fed = toy_fed(clients);
  auto run = [&](float alpha) {
    FlConfig config = async_toy_config(clients);
    config.staleness_alpha = alpha;
    StreamingToyAlgorithm algorithm(config);
    return run_federated(algorithm, fed, false).final_state.values();
  };
  EXPECT_EQ(run(0.5f), run(0.5f));
  EXPECT_NE(run(0.0f), run(0.5f));
}

TEST(DeriveSeed, DeterministicAndDistinct) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t round = 0; round < 10; ++round) {
    for (std::uint64_t client = 0; client < 10; ++client) {
      seeds.insert(derive_seed(42, round, client));
    }
  }
  EXPECT_EQ(seeds.size(), 100u);
}

}  // namespace
}  // namespace calibre::fl
