// Tests for statistics, t-SNE and reporting.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "metrics/tsne.h"

namespace calibre::metrics {
namespace {

TEST(Stats, KnownValues) {
  const AccuracyStats stats = compute_stats({0.2, 0.4, 0.6, 0.8});
  EXPECT_DOUBLE_EQ(stats.mean, 0.5);
  EXPECT_NEAR(stats.variance, 0.05, 1e-12);
  EXPECT_NEAR(stats.stddev, std::sqrt(0.05), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min, 0.2);
  EXPECT_DOUBLE_EQ(stats.max, 0.8);
  EXPECT_EQ(stats.count, 4);
}

TEST(Stats, SingleValueAndEmpty) {
  const AccuracyStats one = compute_stats({0.7});
  EXPECT_DOUBLE_EQ(one.mean, 0.7);
  EXPECT_DOUBLE_EQ(one.variance, 0.0);
  const AccuracyStats none = compute_stats({});
  EXPECT_EQ(none.count, 0);
  EXPECT_DOUBLE_EQ(none.mean, 0.0);
}

TEST(Stats, FormatMeanStd) {
  AccuracyStats stats;
  stats.mean = 0.8916;
  stats.stddev = 0.1058;
  EXPECT_EQ(format_mean_std(stats), "89.16 ± 10.58");
}

TEST(Tsne, SeparatesWellSeparatedClusters) {
  // Two far-apart blobs in 10-D must stay separated in the 2-D embedding.
  rng::Generator gen(1);
  const int per_blob = 20;
  tensor::Tensor points(2 * per_blob, 10);
  for (int i = 0; i < 2 * per_blob; ++i) {
    const float offset = i < per_blob ? 20.0f : -20.0f;
    for (int d = 0; d < 10; ++d) {
      points(i, d) = offset + static_cast<float>(gen.normal());
    }
  }
  TsneConfig config;
  config.iterations = 150;
  const TsneResult result = tsne(points, config, gen);
  EXPECT_EQ(result.embedding.rows(), 2 * per_blob);
  EXPECT_EQ(result.embedding.cols(), 2);
  EXPECT_TRUE(std::isfinite(result.final_kl));
  // Mean embedding distance within blobs << across blobs.
  auto mean_dist = [&](int a_begin, int a_end, int b_begin, int b_end) {
    double total = 0.0;
    int count = 0;
    for (int i = a_begin; i < a_end; ++i) {
      for (int j = b_begin; j < b_end; ++j) {
        if (i == j) continue;
        const double dx =
            result.embedding(i, 0) - result.embedding(j, 0);
        const double dy =
            result.embedding(i, 1) - result.embedding(j, 1);
        total += std::sqrt(dx * dx + dy * dy);
        ++count;
      }
    }
    return total / count;
  };
  const double within = mean_dist(0, per_blob, 0, per_blob);
  const double across = mean_dist(0, per_blob, per_blob, 2 * per_blob);
  EXPECT_GT(across, 2.0 * within);
}

TEST(Tsne, RequiresMinimumPoints) {
  rng::Generator gen(2);
  const tensor::Tensor points = tensor::Tensor::randn(3, 4, gen);
  EXPECT_THROW(tsne(points, TsneConfig{}, gen), CheckError);
}

TEST(Report, ResultTableRendersAllRows) {
  std::ostringstream os;
  ResultRow row;
  row.method = "Calibre (SimCLR)";
  row.stats = compute_stats({0.9, 0.88});
  row.paper_mean = 89.16;
  row.paper_std = 10.58;
  row.note = "reference";
  ResultRow no_paper;
  no_paper.method = "FedAvg";
  no_paper.stats = compute_stats({0.5});
  print_result_table(os, "unit-test table", {row, no_paper});
  const std::string text = os.str();
  EXPECT_NE(text.find("unit-test table"), std::string::npos);
  EXPECT_NE(text.find("Calibre (SimCLR)"), std::string::npos);
  EXPECT_NE(text.find("89.16"), std::string::npos);
  EXPECT_NE(text.find("FedAvg"), std::string::npos);
  EXPECT_NE(text.find("reference"), std::string::npos);
}

TEST(Report, QualityTableRenders) {
  std::ostringstream os;
  RepresentationQuality quality;
  quality.method = "pFL-SimCLR";
  quality.silhouette = 0.123;
  quality.purity = 0.5;
  quality.nmi = 0.25;
  quality.tsne_kl = 1.5;
  print_quality_table(os, "quality", {quality});
  EXPECT_NE(os.str().find("pFL-SimCLR"), std::string::npos);
  EXPECT_NE(os.str().find("0.1230"), std::string::npos);
}

TEST(Report, EmbeddingCsvRoundTrip) {
  const std::string path = "/tmp/calibre_test_embedding.csv";
  tensor::Tensor embedding(2, 2, {1.5f, 2.5f, -3.0f, 4.0f});
  write_embedding_csv(path, embedding, {0, 1}, {7, 8});
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "x,y,label,client");
  std::string first;
  std::getline(file, first);
  EXPECT_EQ(first, "1.5,2.5,0,7");
  std::string second;
  std::getline(file, second);
  EXPECT_EQ(second, "-3,4,1,8");
  std::remove(path.c_str());
}

TEST(Report, EmbeddingCsvWithoutLabels) {
  const std::string path = "/tmp/calibre_test_embedding2.csv";
  tensor::Tensor embedding(1, 2, {1.0f, 2.0f});
  write_embedding_csv(path, embedding, {}, {});
  std::ifstream file(path);
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "x,y");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace calibre::metrics
