// Tests for the SSL methods: construction, forward shapes, training
// behaviour, momentum/queue/prototype machinery, and the factory.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "nn/optim.h"
#include "ssl/byol.h"
#include "ssl/mocov2.h"
#include "ssl/simclr.h"
#include "ssl/smog.h"
#include "ssl/swav.h"

namespace calibre::ssl {
namespace {

using tensor::Tensor;

nn::EncoderConfig small_encoder() {
  nn::EncoderConfig config;
  config.input_dim = 12;
  config.hidden_dims = {16};
  config.feature_dim = 8;
  return config;
}

SslConfig small_ssl() {
  SslConfig config;
  config.proj_hidden = 12;
  config.proj_dim = 6;
  config.moco_queue_size = 32;
  config.num_prototypes = 8;
  return config;
}

Tensor random_batch(std::uint64_t seed, int n = 16, int dim = 12) {
  rng::Generator gen(seed);
  return Tensor::randn(n, dim, gen);
}

// Parameterized over all six methods: construction, one forward pass, and a
// short training loop must produce finite and decreasing-ish losses.
class SslMethodSuite : public ::testing::TestWithParam<Kind> {};

TEST_P(SslMethodSuite, ForwardShapesAndFiniteLoss) {
  const auto method = make_method(GetParam(), small_encoder(), small_ssl(), 1);
  EXPECT_EQ(method->name(), kind_name(GetParam()));
  const SslForward fwd =
      method->forward(random_batch(2), random_batch(3));
  ASSERT_TRUE(fwd.loss && fwd.z1 && fwd.z2 && fwd.h1 && fwd.h2);
  EXPECT_EQ(fwd.z1->value.rows(), 16);
  EXPECT_EQ(fwd.z1->value.cols(), 8);
  EXPECT_EQ(fwd.h1->value.cols(), 6);
  EXPECT_TRUE(std::isfinite(fwd.loss->value(0, 0)));
}

TEST_P(SslMethodSuite, TrainingReducesLoss) {
  // MoCoV2 is exempt from the decrease assertion: repeatedly training on one
  // fixed batch floods its negative queue with keys of the very samples that
  // are also the positives, which legitimately *raises* InfoNCE. Finiteness
  // is still asserted.
  const bool expect_decrease = GetParam() != Kind::kMoCoV2;
  const auto method = make_method(GetParam(), small_encoder(), small_ssl(), 2);
  nn::Sgd optimizer(method->trainable_parameters(), {0.05f, 0.9f, 0.0f});
  const Tensor view1 = random_batch(4);
  const Tensor view2 = random_batch(5);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    optimizer.zero_grad();
    const SslForward fwd = method->forward(view1, view2);
    ag::backward(fwd.loss);
    optimizer.step();
    method->after_step();
    if (step == 0) first = fwd.loss->value(0, 0);
    last = fwd.loss->value(0, 0);
    ASSERT_TRUE(std::isfinite(last)) << "step " << step;
  }
  if (expect_decrease) {
    EXPECT_LT(last, first) << kind_name(GetParam());
  }
}

TEST_P(SslMethodSuite, SharedStateRoundTrips) {
  const auto a = make_method(GetParam(), small_encoder(), small_ssl(), 3);
  const auto b = make_method(GetParam(), small_encoder(), small_ssl(), 3);
  // Perturb a's shared parameters, ship them to b, expect equal encodings.
  for (const ag::VarPtr& p : a->shared_parameters()) {
    p->value.scale_(1.25f);
  }
  const nn::ModelState state =
      nn::ModelState::from_parameters(a->shared_parameters());
  state.apply_to(b->shared_parameters());
  const Tensor x = random_batch(6);
  EXPECT_TRUE(tensor::allclose(a->encode(x), b->encode(x), 1e-5f));
}

TEST_P(SslMethodSuite, EncodeMatchesForwardFeatures) {
  const auto method = make_method(GetParam(), small_encoder(), small_ssl(), 7);
  const Tensor x = random_batch(8);
  const Tensor features = method->encode(x);
  const SslForward fwd = method->forward(x, x);
  EXPECT_TRUE(tensor::allclose(features, fwd.z1->value, 1e-5f));
}

TEST_P(SslMethodSuite, EncodeUsesNoGradModeAndStaysBitwiseIdentical) {
  // encode() runs the encoder under NoGradGuard — a pure value pass with no
  // tape. The guard must not leak out, and the no-tape forward must match a
  // grad-mode forward bit for bit (same kernels either way).
  const auto method = make_method(GetParam(), small_encoder(), small_ssl(), 9);
  const Tensor x = random_batch(10);
  const Tensor features = method->encode(x);
  EXPECT_TRUE(ag::grad_enabled()) << "encode() leaked no-grad mode";
  const SslForward fwd = method->forward(x, x);
  ASSERT_EQ(features.size(), fwd.z1->value.size());
  for (std::int64_t i = 0; i < features.size(); ++i) {
    EXPECT_EQ(features.data()[i], fwd.z1->value.data()[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SslMethodSuite,
                         ::testing::Values(Kind::kSimClr, Kind::kByol,
                                           Kind::kSimSiam, Kind::kMoCoV2,
                                           Kind::kSwav, Kind::kSmog),
                         [](const auto& suite_info) {
                           return kind_name(suite_info.param);
                         });

TEST(Byol, TargetMovesByEmaNotGradient) {
  Byol byol(small_encoder(), small_ssl(), 11);
  // Target starts equal to online.
  const Tensor x = random_batch(12);
  nn::Sgd optimizer(byol.trainable_parameters(), {0.1f, 0.0f, 0.0f});
  optimizer.zero_grad();
  const SslForward fwd = byol.forward(random_batch(13), random_batch(14));
  ag::backward(fwd.loss);
  optimizer.step();
  // Online encoder moved; before after_step() the target is unchanged, so
  // the two encodings now differ...
  const Tensor online_after = byol.encode(x);
  byol.after_step();
  // ...and after_step pulls the target slightly toward the online weights.
  // (We can only observe the online encoder here; the real check is that the
  // loss stays finite across EMA updates, covered by TrainingReducesLoss.)
  EXPECT_TRUE(std::isfinite(online_after.sum()));
}

TEST(MoCoV2, QueueAdvancesAfterStep) {
  MoCoV2 moco(small_encoder(), small_ssl(), 15);
  const Tensor before = moco.queue();
  const SslForward fwd = moco.forward(random_batch(16), random_batch(17));
  ag::backward(fwd.loss);
  moco.after_step();
  const Tensor after = moco.queue();
  EXPECT_FALSE(tensor::allclose(before, after, 1e-6f));
  // Queue rows stay L2-normalised.
  for (std::int64_t r = 0; r < after.rows(); ++r) {
    double norm = 0.0;
    for (std::int64_t c = 0; c < after.cols(); ++c) {
      norm += static_cast<double>(after(r, c)) * after(r, c);
    }
    EXPECT_NEAR(norm, 1.0, 1e-3);
  }
}

TEST(Swav, SinkhornProducesBalancedAssignments) {
  rng::Generator gen(18);
  const Tensor scores = Tensor::randn(24, 6, gen);
  const Tensor q = sinkhorn(scores, 0.25f, 5);
  // Rows are distributions.
  for (std::int64_t r = 0; r < q.rows(); ++r) {
    double total = 0.0;
    for (std::int64_t c = 0; c < q.cols(); ++c) {
      EXPECT_GE(q(r, c), 0.0f);
      total += q(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-4);
  }
  // Columns are roughly balanced (each prototype receives ~N/P mass).
  for (std::int64_t c = 0; c < q.cols(); ++c) {
    double mass = 0.0;
    for (std::int64_t r = 0; r < q.rows(); ++r) mass += q(r, c);
    EXPECT_NEAR(mass, 24.0 / 6.0, 1.5);
  }
}

TEST(Swav, PrototypesStayNormalisedAfterStep) {
  Swav swav(small_encoder(), small_ssl(), 19);
  nn::Sgd optimizer(swav.trainable_parameters(), {0.1f, 0.0f, 0.0f});
  optimizer.zero_grad();
  ag::backward(swav.forward(random_batch(20), random_batch(21)).loss);
  optimizer.step();
  swav.after_step();
  const Tensor& prototypes = swav.prototypes()->value;
  for (std::int64_t r = 0; r < prototypes.rows(); ++r) {
    double norm = 0.0;
    for (std::int64_t c = 0; c < prototypes.cols(); ++c) {
      norm += static_cast<double>(prototypes(r, c)) * prototypes(r, c);
    }
    EXPECT_NEAR(norm, 1.0, 1e-3);
  }
}

TEST(Swav, PrototypesAreShared) {
  Swav swav(small_encoder(), small_ssl(), 22);
  // SwAV's shared (federated) state must include the prototypes.
  EXPECT_EQ(swav.shared_parameters().size(),
            swav.trainable_parameters().size());
}

TEST(Smog, GroupsMoveAfterStep) {
  Smog smog(small_encoder(), small_ssl(), 23);
  const Tensor before = smog.groups();
  ag::backward(smog.forward(random_batch(24), random_batch(25)).loss);
  smog.after_step();
  EXPECT_FALSE(tensor::allclose(before, smog.groups(), 1e-6f));
}

TEST(Freeze, StopsGradients) {
  rng::Generator gen(26);
  nn::Linear layer(4, 4, gen);
  freeze(layer);
  const ag::VarPtr out = layer.forward(ag::parameter(Tensor::zeros(2, 4)));
  // With all layer parameters frozen and a parameter input, the graph still
  // builds, but backward leaves the layer's grads untouched.
  ag::backward(ag::mean_all(ag::square(out)));
  for (const ag::VarPtr& p : layer.parameters()) {
    EXPECT_FLOAT_EQ(p->grad.squared_norm(), 0.0f);
  }
}

TEST(Factory, NamesMatchKinds) {
  for (const Kind kind : {Kind::kSimClr, Kind::kByol, Kind::kSimSiam,
                          Kind::kMoCoV2, Kind::kSwav, Kind::kSmog}) {
    const auto method = make_method(kind, small_encoder(), small_ssl(), 27);
    EXPECT_EQ(method->kind(), kind);
    EXPECT_EQ(method->name(), kind_name(kind));
  }
}

TEST(Factory, SameSeedSameInitialState) {
  const auto a = make_method(Kind::kSimClr, small_encoder(), small_ssl(), 31);
  const auto b = make_method(Kind::kSimClr, small_encoder(), small_ssl(), 31);
  const Tensor x = random_batch(32);
  EXPECT_TRUE(tensor::allclose(a->encode(x), b->encode(x)));
}

}  // namespace
}  // namespace calibre::ssl
