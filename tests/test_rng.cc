// Tests for the deterministic RNG: reproducibility, distribution sanity and
// the sampling helpers every experiment depends on.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/check.h"
#include "tensor/rng.h"

namespace calibre::rng {
namespace {

TEST(Rng, SameSeedSameStream) {
  Generator a(123);
  Generator b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Generator a(1);
  Generator b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Generator gen(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = gen.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = gen.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Generator gen(9);
  double total = 0.0;
  double total_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = gen.uniform();
    total += u;
    total_sq += u * u;
  }
  const double mean = total / n;
  const double variance = total_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(variance, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Generator gen(11);
  double total = 0.0;
  double total_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = gen.normal();
    total += x;
    total_sq += x * x;
  }
  EXPECT_NEAR(total / n, 0.0, 0.03);
  EXPECT_NEAR(total_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Generator gen(13);
  double total = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) total += gen.normal(5.0, 2.0);
  EXPECT_NEAR(total / n, 5.0, 0.1);
}

TEST(Rng, UniformIndexBounds) {
  Generator gen(15);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t v = gen.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_THROW(gen.uniform_index(0), CheckError);
}

TEST(Rng, SampleWithoutReplacement) {
  Generator gen(17);
  const std::vector<int> sample = gen.sample_without_replacement(10, 6);
  EXPECT_EQ(sample.size(), 6u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (const int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
  // k == n returns a permutation.
  const std::vector<int> all = gen.sample_without_replacement(5, 5);
  std::set<int> unique_all(all.begin(), all.end());
  EXPECT_EQ(unique_all.size(), 5u);
  EXPECT_THROW(gen.sample_without_replacement(3, 4), CheckError);
}

TEST(Rng, CategoricalFollowsWeights) {
  Generator gen(19);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(
      gen.categorical(weights))];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.03);
  EXPECT_THROW(gen.categorical({}), CheckError);
  EXPECT_THROW(gen.categorical({0.0, 0.0}), CheckError);
  EXPECT_THROW(gen.categorical({-1.0, 2.0}), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Generator gen(21);
  std::vector<int> values = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = values;
  gen.shuffle(values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, original);
}

class DirichletProperty : public ::testing::TestWithParam<double> {};

TEST_P(DirichletProperty, SumsToOneAndNonNegative) {
  Generator gen(23);
  const double alpha = GetParam();
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> draw = gen.dirichlet(alpha, 10);
    double total = 0.0;
    for (const double p : draw) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletProperty,
                         ::testing::Values(0.05, 0.3, 1.0, 10.0));

TEST(Rng, DirichletConcentrationControlsSkew) {
  Generator gen(25);
  // Small alpha: most mass on a few components; large alpha: flat.
  double max_small = 0.0;
  double max_large = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const auto small = gen.dirichlet(0.1, 10);
    const auto large = gen.dirichlet(50.0, 10);
    max_small += *std::max_element(small.begin(), small.end());
    max_large += *std::max_element(large.begin(), large.end());
  }
  EXPECT_GT(max_small / trials, 0.5);
  EXPECT_LT(max_large / trials, 0.2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Generator a(31);
  Generator forked = a.fork();
  // The fork and its parent should not produce the same next values.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == forked.next_u64();
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace calibre::rng
