// Numeric gradient checks for every autograd primitive and composite.
//
// Strategy: build a scalar loss from the op under test, compute analytic
// gradients via backward(), and compare against central finite differences.
// Since every loss in the library is composed from these primitives, these
// checks cover the gradient correctness of the whole stack.
#include <cmath>
#include <functional>
#include <thread>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/check.h"
#include "nn/losses.h"

namespace calibre {
namespace {

using ag::VarPtr;
using tensor::Tensor;

// Central-difference gradient of `loss_fn` w.r.t. `input`, checked against
// the analytic gradient produced by backward().
void check_gradient(Tensor input,
                    const std::function<VarPtr(const VarPtr&)>& loss_fn,
                    float tolerance = 2e-2f, float epsilon = 1e-2f) {
  const VarPtr leaf = ag::parameter(input);
  const VarPtr loss = loss_fn(leaf);
  ASSERT_EQ(loss->value.rows(), 1);
  ASSERT_EQ(loss->value.cols(), 1);
  ag::backward(loss);
  const Tensor analytic = leaf->grad;

  for (std::int64_t i = 0; i < input.size(); ++i) {
    const float saved = input.data()[i];
    input.data()[i] = saved + epsilon;
    const float up = loss_fn(ag::constant(input))->value(0, 0);
    input.data()[i] = saved - epsilon;
    const float down = loss_fn(ag::constant(input))->value(0, 0);
    input.data()[i] = saved;
    const float numeric = (up - down) / (2.0f * epsilon);
    EXPECT_NEAR(analytic.data()[i], numeric, tolerance)
        << "element " << i << " of " << input.shape_string();
  }
}

Tensor test_matrix(std::int64_t rows, std::int64_t cols,
                   std::uint64_t seed = 7) {
  rng::Generator gen(seed);
  return Tensor::randn(rows, cols, gen);
}

TEST(AutogradGradcheck, AddBroadcastRowVector) {
  const Tensor other = test_matrix(1, 4, 11);
  check_gradient(test_matrix(3, 4), [&](const VarPtr& x) {
    return ag::sum_all(ag::add(x, ag::constant(other)));
  });
}

TEST(AutogradGradcheck, AddBroadcastColVector) {
  const Tensor other = test_matrix(3, 1, 12);
  check_gradient(test_matrix(3, 4), [&](const VarPtr& x) {
    return ag::sum_all(ag::mul(ag::add(x, ag::constant(other)), x));
  });
}

TEST(AutogradGradcheck, BroadcastGradientFlowsToSmallSide) {
  // Gradient must reduce correctly onto the broadcast operand.
  const Tensor big = test_matrix(5, 3, 13);
  check_gradient(test_matrix(1, 3), [&](const VarPtr& x) {
    return ag::sum_all(ag::mul(ag::constant(big), x));
  });
}

TEST(AutogradGradcheck, SubMulDiv) {
  const Tensor other = tensor::add_scalar(test_matrix(3, 3, 14), 3.0f);
  check_gradient(test_matrix(3, 3), [&](const VarPtr& x) {
    const VarPtr d = ag::div(ag::sub(x, ag::constant(other)),
                             ag::constant(other));
    return ag::sum_all(ag::mul(d, d));
  });
}

TEST(AutogradGradcheck, DivByVariable) {
  Tensor denom = tensor::add_scalar(tensor::relu(test_matrix(3, 3, 15)), 1.0f);
  check_gradient(denom, [&](const VarPtr& x) {
    return ag::sum_all(ag::div(ag::constant(test_matrix(3, 3, 16)), x));
  });
}

TEST(AutogradGradcheck, MatmulBothSides) {
  const Tensor right = test_matrix(4, 2, 17);
  check_gradient(test_matrix(3, 4), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::matmul(x, ag::constant(right))));
  });
  const Tensor left = test_matrix(3, 4, 18);
  check_gradient(test_matrix(4, 2), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::matmul(ag::constant(left), x)));
  });
}

TEST(AutogradGradcheck, MatmulNTBothSides) {
  // C = A @ B^T: gradient w.r.t. both operands through the fused kernel.
  const Tensor right = test_matrix(2, 4, 46);
  check_gradient(test_matrix(3, 4), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::matmul_nt(x, ag::constant(right))));
  });
  const Tensor left = test_matrix(3, 4, 47);
  check_gradient(test_matrix(2, 4), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::matmul_nt(ag::constant(left), x)));
  });
}

TEST(AutogradGradcheck, MatmulTNBothSides) {
  // C = A^T @ B: gradient w.r.t. both operands through the fused kernel.
  const Tensor right = test_matrix(4, 2, 48);
  check_gradient(test_matrix(4, 3), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::matmul_tn(x, ag::constant(right))));
  });
  const Tensor left = test_matrix(4, 3, 49);
  check_gradient(test_matrix(4, 2), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::matmul_tn(ag::constant(left), x)));
  });
}

TEST(Autograd, FusedTransposeMatchesComposition) {
  // ag::matmul_nt / ag::matmul_tn must equal matmul-with-explicit-transpose
  // in both value and gradient.
  const Tensor a_v = test_matrix(3, 5, 50);
  const Tensor b_v = test_matrix(4, 5, 51);
  const VarPtr a1 = ag::parameter(a_v);
  const VarPtr b1 = ag::parameter(b_v);
  const VarPtr fused = ag::sum_all(ag::square(ag::matmul_nt(a1, b1)));
  ag::backward(fused);
  const VarPtr a2 = ag::parameter(a_v);
  const VarPtr b2 = ag::parameter(b_v);
  const VarPtr composed =
      ag::sum_all(ag::square(ag::matmul(a2, ag::transpose(b2))));
  ag::backward(composed);
  EXPECT_TRUE(tensor::allclose(fused->value, composed->value, 1e-5f));
  EXPECT_TRUE(tensor::allclose(a1->grad, a2->grad, 1e-4f));
  EXPECT_TRUE(tensor::allclose(b1->grad, b2->grad, 1e-4f));
}

TEST(AutogradGradcheck, Transpose) {
  check_gradient(test_matrix(3, 5), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::transpose(x)));
  });
}

TEST(AutogradGradcheck, UnaryExpLogSqrtTanh) {
  Tensor positive = tensor::add_scalar(tensor::relu(test_matrix(3, 3, 19)),
                                       0.5f);
  check_gradient(positive, [&](const VarPtr& x) {
    return ag::sum_all(ag::log(x));
  });
  check_gradient(positive, [&](const VarPtr& x) {
    return ag::sum_all(ag::sqrt(x));
  }, 2e-2f, 5e-3f);
  check_gradient(test_matrix(3, 3, 20), [&](const VarPtr& x) {
    return ag::sum_all(ag::exp(ag::mul_scalar(x, 0.5f)));
  });
  check_gradient(test_matrix(3, 3, 21), [&](const VarPtr& x) {
    return ag::sum_all(ag::tanh(x));
  });
}

TEST(AutogradGradcheck, ReluAwayFromKink) {
  // Keep inputs away from 0 so finite differences are valid.
  Tensor input = test_matrix(4, 4, 22);
  for (auto& v : input.storage()) {
    if (std::fabs(v) < 0.1f) v = 0.5f;
  }
  check_gradient(input, [&](const VarPtr& x) {
    return ag::sum_all(ag::relu(x));
  });
}

TEST(AutogradGradcheck, RowColSums) {
  check_gradient(test_matrix(3, 4, 23), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::row_sum(x)));
  });
  check_gradient(test_matrix(3, 4, 24), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::col_sum(x)));
  });
}

TEST(AutogradGradcheck, GatherAndTakeRows) {
  check_gradient(test_matrix(4, 3, 25), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::gather_cols(x, {2, 0, 1, 2})));
  });
  check_gradient(test_matrix(4, 3, 26), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::take_rows(x, {1, 1, 3, 0})));
  });
}

TEST(AutogradGradcheck, ConcatAndSlice) {
  check_gradient(test_matrix(3, 4, 27), [&](const VarPtr& x) {
    const VarPtr both = ag::concat_rows({x, ag::mul_scalar(x, 2.0f)});
    return ag::sum_all(ag::square(ag::slice_rows(both, 1, 5)));
  });
  check_gradient(test_matrix(3, 2, 28), [&](const VarPtr& x) {
    return ag::sum_all(
        ag::square(ag::concat_cols({x, ag::square(x)})));
  });
}

TEST(AutogradGradcheck, LogSoftmaxAndCrossEntropy) {
  check_gradient(test_matrix(4, 5, 29), [&](const VarPtr& x) {
    return ag::sum_all(ag::square(ag::log_softmax(x)));
  });
  check_gradient(test_matrix(4, 5, 30), [&](const VarPtr& x) {
    return ag::cross_entropy(x, {0, 3, 2, 4});
  }, 1e-2f, 5e-3f);
}

TEST(AutogradGradcheck, CrossEntropySoft) {
  const Tensor targets = tensor::softmax_rows(test_matrix(4, 5, 31));
  check_gradient(test_matrix(4, 5, 32), [&](const VarPtr& x) {
    return ag::cross_entropy_soft(x, targets);
  }, 1e-2f, 5e-3f);
}

TEST(AutogradGradcheck, L2Normalize) {
  check_gradient(test_matrix(3, 4, 33), [&](const VarPtr& x) {
    return ag::sum_all(
        ag::square(ag::add_scalar(ag::l2_normalize(x), 1.0f)));
  }, 2e-2f, 5e-3f);
}

TEST(AutogradGradcheck, SqDistsTo) {
  const Tensor centroids_v = test_matrix(3, 4, 34);
  check_gradient(test_matrix(5, 4, 35), [&](const VarPtr& x) {
    return ag::mean_all(ag::sq_dists_to(x, ag::constant(centroids_v)));
  }, 2e-2f, 5e-3f);
  // Gradient w.r.t. the centroids, too.
  const Tensor points = test_matrix(5, 4, 36);
  check_gradient(test_matrix(3, 4, 37), [&](const VarPtr& c) {
    return ag::mean_all(ag::sq_dists_to(ag::constant(points), c));
  }, 2e-2f, 5e-3f);
}

TEST(AutogradGradcheck, NtXentLoss) {
  check_gradient(test_matrix(8, 6, 38), [&](const VarPtr& x) {
    return nn::ntxent(x, 0.5f);
  }, 2e-2f, 5e-3f);
}

TEST(AutogradGradcheck, NegativeCosine) {
  const Tensor target = test_matrix(4, 6, 39);
  check_gradient(test_matrix(4, 6, 40), [&](const VarPtr& x) {
    return nn::negative_cosine(x, ag::constant(target));
  }, 2e-2f, 5e-3f);
}

TEST(AutogradGradcheck, InfoNce) {
  const Tensor key = test_matrix(4, 6, 41);
  const Tensor negatives = test_matrix(10, 6, 42);
  check_gradient(test_matrix(4, 6, 43), [&](const VarPtr& x) {
    return nn::info_nce(x, ag::constant(key), negatives, 0.3f);
  }, 2e-2f, 5e-3f);
}

TEST(AutogradGradcheck, MseLoss) {
  const Tensor target = test_matrix(3, 4, 44);
  check_gradient(test_matrix(3, 4, 45), [&](const VarPtr& x) {
    return ag::mse(x, target);
  });
}

TEST(Autograd, FanOutAccumulatesGradients) {
  const VarPtr x = ag::parameter(Tensor::full(2, 2, 3.0f));
  // y = x*x + x  =>  dy/dx = 2x + 1 = 7 per element; loss = sum.
  const VarPtr loss = ag::sum_all(ag::add(ag::mul(x, x), x));
  ag::backward(loss);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(x->grad.data()[i], 7.0f);
  }
}

TEST(Autograd, DetachBlocksGradient) {
  const VarPtr x = ag::parameter(Tensor::full(2, 2, 2.0f));
  const VarPtr loss = ag::sum_all(ag::mul(ag::detach(x), x));
  ag::backward(loss);
  // d/dx [c * x] = c = 2 (no second term from the detached branch).
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(x->grad.data()[i], 2.0f);
  }
}

TEST(Autograd, ConstantBranchesArePruned) {
  const VarPtr c = ag::constant(test_matrix(3, 3, 46));
  const VarPtr result = ag::mul(c, c);
  EXPECT_FALSE(result->requires_grad);
  EXPECT_TRUE(result->parents.empty());
}

TEST(Autograd, NoGradGuardBuildsNoTapeAndMatchesValuesBitwise) {
  const Tensor x = test_matrix(4, 5, 31);
  const Tensor w = test_matrix(5, 3, 32);
  auto forward = [&] {
    return ag::relu(ag::matmul(ag::parameter(x), ag::parameter(w)));
  };
  ASSERT_TRUE(ag::grad_enabled());
  const VarPtr tracked = forward();
  EXPECT_TRUE(tracked->requires_grad);
  EXPECT_FALSE(tracked->is_leaf());
  {
    const ag::NoGradGuard guard;
    EXPECT_FALSE(ag::grad_enabled());
    const VarPtr untracked = forward();
    // Same kernels, no tape: a plain value node even over parameters.
    EXPECT_FALSE(untracked->requires_grad);
    EXPECT_TRUE(untracked->is_leaf());
    EXPECT_FALSE(static_cast<bool>(untracked->backward_fn));
    ASSERT_EQ(untracked->value.size(), tracked->value.size());
    for (std::int64_t i = 0; i < tracked->value.size(); ++i) {
      EXPECT_EQ(untracked->value.data()[i], tracked->value.data()[i])
          << "element " << i << " drifted without the tape";
    }
  }
  // The guard restores the previous mode on scope exit (including nesting).
  EXPECT_TRUE(ag::grad_enabled());
  {
    const ag::NoGradGuard outer;
    {
      const ag::NoGradGuard inner;
      EXPECT_FALSE(ag::grad_enabled());
    }
    EXPECT_FALSE(ag::grad_enabled());
  }
  EXPECT_TRUE(ag::grad_enabled());
}

TEST(Autograd, NoGradModeIsPerThread) {
  const ag::NoGradGuard guard;
  bool other_thread_enabled = false;
  std::thread worker(
      [&other_thread_enabled] { other_thread_enabled = ag::grad_enabled(); });
  worker.join();
  EXPECT_TRUE(other_thread_enabled) << "grad mode leaked across threads";
  EXPECT_FALSE(ag::grad_enabled());
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  const VarPtr x = ag::parameter(test_matrix(2, 3, 47));
  EXPECT_THROW(ag::backward(ag::square(x)), CheckError);
}

}  // namespace
}  // namespace calibre
