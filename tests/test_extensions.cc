// Tests for the library extensions: fairness metrics, Adam + LR schedules,
// flag parsing, checkpointing, and the runner's dropout/history features.
#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "algos/fedprox.h"
#include "algos/qffl.h"
#include "algos/registry.h"
#include "common/check.h"
#include "common/flags.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "flapi/probe.h"
#include "fl/runner.h"
#include "metrics/fairness.h"
#include "nn/adam.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"

namespace calibre {
namespace {

// --- fairness -----------------------------------------------------------------

TEST(Fairness, PerfectlyFairDistribution) {
  const metrics::FairnessReport report =
      metrics::compute_fairness({0.8, 0.8, 0.8, 0.8});
  EXPECT_DOUBLE_EQ(report.variance, 0.0);
  EXPECT_NEAR(report.jain_index, 1.0, 1e-12);
  EXPECT_NEAR(report.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.worst_decile_mean, 0.8);
  EXPECT_DOUBLE_EQ(report.best_decile_mean, 0.8);
  EXPECT_DOUBLE_EQ(report.range, 0.0);
}

TEST(Fairness, SkewLowersJainRaisesGini) {
  const metrics::FairnessReport fair =
      metrics::compute_fairness({0.7, 0.72, 0.68, 0.71});
  const metrics::FairnessReport unfair =
      metrics::compute_fairness({0.95, 0.9, 0.2, 0.15});
  EXPECT_GT(fair.jain_index, unfair.jain_index);
  EXPECT_LT(fair.gini, unfair.gini);
  EXPECT_LT(fair.range, unfair.range);
}

TEST(Fairness, DecileMeans) {
  std::vector<double> accuracies;
  for (int i = 0; i < 20; ++i) accuracies.push_back(i / 20.0);
  const metrics::FairnessReport report =
      metrics::compute_fairness(accuracies);
  // Worst decile = two smallest values (0, 0.05); best = (0.95, 0.90).
  EXPECT_NEAR(report.worst_decile_mean, 0.025, 1e-12);
  EXPECT_NEAR(report.best_decile_mean, 0.925, 1e-12);
}

TEST(Fairness, EmptyInputThrows) {
  EXPECT_THROW(metrics::compute_fairness({}), CheckError);
}

// --- Adam -----------------------------------------------------------------------

TEST(Adam, ConvergesOnLeastSquares) {
  rng::Generator gen(1);
  const tensor::Tensor w_star = tensor::Tensor::randn(3, 2, gen);
  const tensor::Tensor x = tensor::Tensor::randn(64, 3, gen);
  const tensor::Tensor y = tensor::matmul(x, w_star);
  nn::Linear layer(3, 2, gen);
  nn::Adam optimizer(layer.parameters(), {0.05f, 0.9f, 0.999f, 1e-8f, 0.0f});
  float last = 1e9f;
  for (int step = 0; step < 300; ++step) {
    optimizer.zero_grad();
    const ag::VarPtr loss = ag::mse(layer.forward(ag::constant(x)), y);
    ag::backward(loss);
    optimizer.step();
    last = loss->value(0, 0);
  }
  EXPECT_LT(last, 1e-3f);
  EXPECT_EQ(optimizer.steps_taken(), 300);
}

TEST(Adam, WeightDecayShrinksWeights) {
  const ag::VarPtr p = ag::parameter(tensor::Tensor::full(1, 1, 1.0f));
  nn::Adam optimizer({p}, {0.1f, 0.9f, 0.999f, 1e-8f, 0.5f});
  p->zero_grad();
  optimizer.step();
  EXPECT_LT(p->value(0, 0), 1.0f);
}

TEST(LrSchedules, CosineEndpointsAndMonotone) {
  EXPECT_FLOAT_EQ(nn::cosine_lr(0.1f, 0.01f, 0, 100), 0.1f);
  EXPECT_FLOAT_EQ(nn::cosine_lr(0.1f, 0.01f, 100, 100), 0.01f);
  EXPECT_FLOAT_EQ(nn::cosine_lr(0.1f, 0.01f, 200, 100), 0.01f);
  float previous = 1.0f;
  for (int step = 0; step <= 100; step += 10) {
    const float lr = nn::cosine_lr(0.1f, 0.01f, step, 100);
    EXPECT_LE(lr, previous + 1e-7f);
    previous = lr;
  }
}

TEST(LrSchedules, StepDecay) {
  EXPECT_FLOAT_EQ(nn::step_lr(0.1f, 0.5f, 0, 10), 0.1f);
  EXPECT_FLOAT_EQ(nn::step_lr(0.1f, 0.5f, 10, 10), 0.05f);
  EXPECT_FLOAT_EQ(nn::step_lr(0.1f, 0.5f, 25, 10), 0.025f);
}

// --- flags ----------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  // Note: a bare "--switch" followed by a non-flag token consumes it as the
  // switch's value, so positional arguments must precede switches or follow
  // --key=value forms.
  const char* argv[] = {"prog",     "positional", "--alpha=0.5", "--rounds",
                        "30",       "--name",     "x y",         "--verbose"};
  const flags::Parser parser(8, argv);
  EXPECT_DOUBLE_EQ(parser.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(parser.get_int("rounds", 0), 30);
  EXPECT_TRUE(parser.has("verbose"));
  EXPECT_EQ(parser.get("name", ""), "x y");
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "positional");
  EXPECT_FALSE(parser.has("missing"));
  EXPECT_EQ(parser.get_int("missing2", 7), 7);
}

TEST(Flags, UnusedDetection) {
  const char* argv[] = {"prog", "--known=1", "--typo=2"};
  const flags::Parser parser(3, argv);
  (void)parser.get("known", "");
  const auto unused = parser.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, MalformedNumbersFallBack) {
  const char* argv[] = {"prog", "--rounds=abc"};
  const flags::Parser parser(2, argv);
  EXPECT_EQ(parser.get_int("rounds", 5), 5);
  EXPECT_DOUBLE_EQ(parser.get_double("rounds", 1.5), 1.5);
}

// --- checkpoint ------------------------------------------------------------------

TEST(Checkpoint, SaveLoadRoundTrip) {
  rng::Generator gen(2);
  const nn::ModelState original(
      tensor::Tensor::randn(1, 321, gen).to_vector());
  const std::string path = "/tmp/calibre_test_checkpoint.bin";
  nn::save_state(path, original);
  const nn::ModelState loaded = nn::load_state(path);
  EXPECT_EQ(loaded.values(), original.values());
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(nn::load_state("/tmp/does_not_exist_calibre.bin"), CheckError);
}

// --- runner dropout & history ------------------------------------------------------

struct SmallWorld {
  data::SyntheticDataset synth;
  fl::FedDataset fed;
  fl::FlConfig config;
};

SmallWorld make_small_world() {
  SmallWorld world;
  data::SyntheticConfig dataset_config;
  dataset_config.num_classes = 3;
  dataset_config.input_dim = 12;
  dataset_config.latent_dim = 5;
  dataset_config.train_samples = 240;
  dataset_config.test_samples = 120;
  dataset_config.seed = 61;
  world.synth = data::make_synthetic(dataset_config);
  data::PartitionConfig partition_config;
  partition_config.num_clients = 6;
  partition_config.samples_per_client = 30;
  partition_config.test_samples_per_client = 12;
  rng::Generator partition_gen(62);
  const data::Partition partition = data::partition_dirichlet(
      world.synth.train, world.synth.test, partition_config, 0.5,
      partition_gen);
  rng::Generator fed_gen(63);
  world.fed = fl::build_fed_dataset(world.synth, partition, 6, fed_gen);
  world.config.encoder.input_dim = 12;
  world.config.encoder.hidden_dims = {12};
  world.config.encoder.feature_dim = 6;
  world.config.num_classes = 3;
  world.config.rounds = 5;
  world.config.clients_per_round = 4;
  world.config.local_epochs = 1;
  world.config.num_train_clients = 6;
  world.config.threads = 2;
  return world;
}

TEST(RunnerHistory, OneEntryPerRoundWithParticipants) {
  SmallWorld world = make_small_world();
  const auto algorithm = algos::make_algorithm("FedAvg", world.config);
  const fl::RunResult result = fl::run_federated(*algorithm, world.fed, false);
  ASSERT_EQ(result.history.size(), 5u);
  for (const fl::RoundStats& round : result.history) {
    EXPECT_EQ(round.participants, 4);
    EXPECT_EQ(round.dropped, 0);
    EXPECT_GT(round.mean_update_norm, 0.0f);
    EXPECT_FLOAT_EQ(round.mean_divergence, 0.0f);  // FedAvg reports none
  }
}

TEST(RunnerHistory, CalibreReportsDivergence) {
  SmallWorld world = make_small_world();
  world.config.rounds = 2;
  const auto algorithm =
      algos::make_algorithm("Calibre (SimCLR)", world.config);
  const fl::RunResult result = fl::run_federated(*algorithm, world.fed, false);
  for (const fl::RoundStats& round : result.history) {
    EXPECT_GT(round.mean_divergence, 0.0f);
  }
}

TEST(RunnerDropout, DropsSomeClientsButNeverAll) {
  SmallWorld world = make_small_world();
  world.config.rounds = 12;
  world.config.client_dropout_rate = 0.5f;
  const auto algorithm = algos::make_algorithm("FedAvg", world.config);
  const fl::RunResult result = fl::run_federated(*algorithm, world.fed, false);
  int total_dropped = 0;
  for (const fl::RoundStats& round : result.history) {
    EXPECT_GE(round.participants, 1);
    EXPECT_EQ(round.participants + round.dropped, 4);
    total_dropped += round.dropped;
  }
  EXPECT_GT(total_dropped, 0);  // with p=0.5 over 48 draws this is certain
}

TEST(RunnerDropout, ZeroRateDropsNothing) {
  SmallWorld world = make_small_world();
  world.config.client_dropout_rate = 0.0f;
  const auto algorithm = algos::make_algorithm("FedAvg", world.config);
  const fl::RunResult result = fl::run_federated(*algorithm, world.fed, false);
  for (const fl::RoundStats& round : result.history) {
    EXPECT_EQ(round.dropped, 0);
  }
}

// --- prototype probe ---------------------------------------------------------------

TEST(PrototypeProbe, SeparableFeaturesClassifiedCorrectly) {
  rng::Generator gen(70);
  tensor::Tensor train(40, 4);
  std::vector<int> train_labels(40);
  tensor::Tensor test(20, 4);
  std::vector<int> test_labels(20);
  auto fill = [&](tensor::Tensor& x, std::vector<int>& y) {
    for (std::int64_t i = 0; i < x.rows(); ++i) {
      const int label = static_cast<int>(i % 2);
      y[static_cast<std::size_t>(i)] = label;
      for (std::int64_t d = 0; d < 4; ++d) {
        x(i, d) = static_cast<float>(gen.normal()) * 0.3f +
                  (label == 0 ? 2.0f : -2.0f);
      }
    }
  };
  fill(train, train_labels);
  fill(test, test_labels);
  EXPECT_GT(fl::prototype_probe_accuracy(train, train_labels, test,
                                         test_labels, 2),
            0.95);
}

TEST(PrototypeProbe, NeverPredictsUnseenClasses) {
  // Client only holds class 3 of a 10-class problem: every prediction must
  // be class 3 (accuracy 1.0 on class-3 test samples).
  tensor::Tensor train(5, 2);
  const std::vector<int> train_labels(5, 3);
  tensor::Tensor test(4, 2);
  for (std::int64_t i = 0; i < 4; ++i) test(i, 0) = 100.0f;  // far away
  const std::vector<int> test_labels(4, 3);
  EXPECT_DOUBLE_EQ(fl::prototype_probe_accuracy(train, train_labels, test,
                                                test_labels, 10),
                   1.0);
}

TEST(PrototypeProbe, PluggedIntoPflSslPersonalization) {
  SmallWorld world = make_small_world();
  world.config.rounds = 1;
  world.config.probe.head = fl::ProbeConfig::Head::kPrototype;
  const auto algorithm = algos::make_algorithm("pFL-SimCLR", world.config);
  const fl::RunResult result = fl::run_federated(*algorithm, world.fed, false);
  for (const double accuracy : result.train_accuracies) {
    EXPECT_GE(accuracy, 0.0);
    EXPECT_LE(accuracy, 1.0);
  }
}

// --- FedProx / q-FedAvg -----------------------------------------------------------

TEST(FedProx, LargeMuPinsClientsToGlobal) {
  SmallWorld world = make_small_world();
  // Large (but lr-stable) mu: the prox term keeps local updates near the
  // global state; mu = 0 lets them drift freely. Several local steps are
  // needed before the prox gradient is non-zero.
  world.config.local_epochs = 4;
  algos::FedProx tight(world.config, /*mu=*/10.0f);
  const nn::ModelState global = tight.initialize();
  fl::ClientContext ctx;
  ctx.client_id = 0;
  ctx.train = &world.fed.train[0];
  ctx.seed = 71;
  const fl::ClientUpdate tight_update = tight.local_update(global, ctx);
  algos::FedProx loose(world.config, /*mu=*/0.0f);
  const fl::ClientUpdate loose_update = loose.local_update(global, ctx);
  EXPECT_LT(tight_update.state.l2_distance(global),
            loose_update.state.l2_distance(global));
}

TEST(QFfl, HighLossClientsDominateAggregation) {
  algos::QFfl qffl(SmallWorld{}.config, /*q=*/2.0f);
  fl::ClientUpdate easy;
  easy.state = nn::ModelState(std::vector<float>{0.0f});
  easy.weight = 1.0f;
  easy.scalars["loss"] = 0.1f;
  fl::ClientUpdate hard;
  hard.state = nn::ModelState(std::vector<float>{10.0f});
  hard.weight = 1.0f;
  hard.scalars["loss"] = 2.0f;
  const nn::ModelState merged =
      qffl.aggregate(nn::ModelState(), {easy, hard}, 0);
  // With q=2 the hard client's weight is (2/0.1)^2 = 400x: result ~ 10.
  EXPECT_GT(merged.values()[0], 9.5f);
}

TEST(QFfl, QZeroReducesTowardFedAvg) {
  algos::QFfl qffl(SmallWorld{}.config, /*q=*/0.0f);
  fl::ClientUpdate a;
  a.state = nn::ModelState(std::vector<float>{0.0f});
  a.weight = 1.0f;
  a.scalars["loss"] = 0.1f;
  fl::ClientUpdate b;
  b.state = nn::ModelState(std::vector<float>{10.0f});
  b.weight = 1.0f;
  b.scalars["loss"] = 5.0f;
  const nn::ModelState merged =
      qffl.aggregate(nn::ModelState(), {a, b}, 0);
  EXPECT_NEAR(merged.values()[0], 5.0f, 1e-4f);
}

}  // namespace
}  // namespace calibre
