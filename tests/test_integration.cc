// End-to-end integration tests: full training + personalization pipelines
// across the message-passing runtime, and the headline "shape" assertions of
// the reproduction at smoke scale.
#include <cmath>

#include <gtest/gtest.h>

#include "algos/registry.h"
#include "cluster/quality.h"
#include "core/calibre.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"
#include "metrics/stats.h"

namespace calibre {
namespace {

struct World {
  data::SyntheticDataset synth;
  fl::FedDataset fed;
  fl::FlConfig config;
};

// A mid-sized world: large enough for learning signals to be visible, small
// enough for CI (a few seconds per federated run).
const World& world() {
  static const World* instance = [] {
    auto* w = new World();
    data::SyntheticConfig dataset_config = data::cifar10_like();
    dataset_config.train_samples = 2000;
    dataset_config.test_samples = 1500;
    w->synth = data::make_synthetic(dataset_config);
    data::PartitionConfig partition_config;
    partition_config.num_clients = 10;  // 8 train + 2 novel
    partition_config.samples_per_client = 80;
    partition_config.test_samples_per_client = 60;
    rng::Generator partition_gen(50);
    const data::Partition partition = data::partition_dirichlet(
        w->synth.train, w->synth.test, partition_config, 0.3, partition_gen);
    rng::Generator fed_gen(51);
    w->fed = fl::build_fed_dataset(w->synth, partition, 8, fed_gen);
    w->config.encoder.input_dim = w->synth.train.input_dim();
    w->config.num_classes = 10;
    w->config.rounds = 10;
    w->config.clients_per_round = 4;
    w->config.local_epochs = 2;
    w->config.num_train_clients = 8;
    return w;
  }();
  return *instance;
}

double mean_accuracy(const std::vector<double>& accuracies) {
  return metrics::compute_stats(accuracies).mean;
}

TEST(Integration, SupervisedFederationBeatsChance) {
  const auto algorithm = algos::make_algorithm("FedAvg-FT", world().config);
  const fl::RunResult result =
      fl::run_federated(*algorithm, world().fed, true);
  // 10-way task, heavily skewed clients: chance at the client level is well
  // below 0.3 even accounting for skew.
  EXPECT_GT(mean_accuracy(result.train_accuracies), 0.45);
  EXPECT_GT(mean_accuracy(result.novel_accuracies), 0.35);
}

TEST(Integration, SslTrainingImprovesOverRandomEncoder) {
  fl::FlConfig untrained_config = world().config;
  untrained_config.rounds = 0;
  const auto untrained =
      algos::make_algorithm("Calibre (SimCLR)", untrained_config);
  const double random_probe = mean_accuracy(
      fl::run_federated(*untrained, world().fed, false).train_accuracies);

  const auto trained =
      algos::make_algorithm("Calibre (SimCLR)", world().config);
  const double trained_probe = mean_accuracy(
      fl::run_federated(*trained, world().fed, false).train_accuracies);
  EXPECT_GT(trained_probe, random_probe - 0.05)
      << "Calibre training must not destroy the probe signal";
}

TEST(Integration, CalibreImprovesRepresentationQualityOverPflSsl) {
  // The paper's central mechanism (Figs. 1 vs 6): Calibre's prototype
  // regularizers produce representations with clearer class structure than
  // plain pFL-SimCLR under the same budget.
  const auto plain = algos::make_algorithm("pFL-SimCLR", world().config);
  const fl::RunResult plain_result =
      fl::run_federated(*plain, world().fed, false);
  const auto calibre =
      algos::make_algorithm("Calibre (SimCLR)", world().config);
  const fl::RunResult calibre_result =
      fl::run_federated(*calibre, world().fed, false);

  // Pool a few clients' test samples.
  std::vector<tensor::Tensor> parts;
  std::vector<int> labels;
  for (int c = 0; c < 6; ++c) {
    parts.push_back(world().fed.test[static_cast<std::size_t>(c)].x);
    const auto& shard_labels =
        world().fed.test[static_cast<std::size_t>(c)].labels;
    labels.insert(labels.end(), shard_labels.begin(), shard_labels.end());
  }
  const tensor::Tensor pooled = tensor::concat_rows(parts);

  auto* plain_pfl = dynamic_cast<core::PflSsl*>(plain.get());
  auto* calibre_pfl = dynamic_cast<core::PflSsl*>(calibre.get());
  ASSERT_NE(plain_pfl, nullptr);
  ASSERT_NE(calibre_pfl, nullptr);
  const double plain_silhouette = cluster::silhouette_score(
      plain_pfl->extract_features(plain_result.final_state, pooled), labels);
  const double calibre_silhouette = cluster::silhouette_score(
      calibre_pfl->extract_features(calibre_result.final_state, pooled),
      labels);
  // Calibre must not have *worse* cluster structure; usually it is clearly
  // better (small slack for smoke-scale noise).
  EXPECT_GT(calibre_silhouette, plain_silhouette - 0.02);
}

TEST(Integration, NovelClientsPersonalizeWithoutTraining) {
  const auto algorithm =
      algos::make_algorithm("Calibre (SimCLR)", world().config);
  const fl::RunResult result =
      fl::run_federated(*algorithm, world().fed, true);
  ASSERT_EQ(result.novel_accuracies.size(), 2u);
  // Novel clients land in the same accuracy regime as participating ones
  // (paper §V-D): within 25 accuracy points of the participating mean.
  const double participating = mean_accuracy(result.train_accuracies);
  const double novel = mean_accuracy(result.novel_accuracies);
  EXPECT_NEAR(novel, participating, 0.25);
}

TEST(Integration, TrafficScalesWithRoundsAndModelSize) {
  fl::FlConfig short_config = world().config;
  short_config.rounds = 2;
  const auto a = algos::make_algorithm("FedAvg", short_config);
  const auto traffic_short =
      fl::run_federated(*a, world().fed, false).traffic;
  fl::FlConfig long_config = world().config;
  long_config.rounds = 4;
  const auto b = algos::make_algorithm("FedAvg", long_config);
  const auto traffic_long = fl::run_federated(*b, world().fed, false).traffic;
  EXPECT_EQ(traffic_long.messages, 2 * traffic_short.messages);
  EXPECT_NEAR(static_cast<double>(traffic_long.logical_bytes),
              2.0 * static_cast<double>(traffic_short.logical_bytes),
              0.01 * static_cast<double>(traffic_long.logical_bytes));
  // The shared broadcast snapshot keeps physical traffic well under logical
  // traffic (payload buffers counted once), and serializations at one per
  // round no matter how many clients were broadcast to.
  EXPECT_LT(traffic_long.physical_bytes, traffic_long.logical_bytes);
  EXPECT_EQ(traffic_long.broadcast_serializations,
            static_cast<std::uint64_t>(long_config.rounds));
}

TEST(Integration, DivergenceScalarTravelsWithCalibreUpdates) {
  core::Calibre calibre(world().config, ssl::Kind::kSimClr);
  const nn::ModelState global = calibre.initialize();
  fl::ClientContext ctx;
  ctx.client_id = 0;
  ctx.train = &world().fed.train[0];
  ctx.ssl_pool = &world().fed.ssl_pool[0];
  ctx.oracle = &world().fed.oracle;
  ctx.seed = 52;
  const fl::ClientUpdate update = calibre.local_update(global, ctx);
  ASSERT_TRUE(update.scalars.count("divergence"));
  EXPECT_GT(update.scalars.at("divergence"), 0.0f);
  // The scalar survives the wire format.
  const fl::ClientUpdate decoded =
      fl::deserialize_update(fl::serialize_update(update));
  EXPECT_FLOAT_EQ(decoded.scalars.at("divergence"),
                  update.scalars.at("divergence"));
}

TEST(Integration, StlLikeUnlabeledPoolHelpsSsl) {
  // SSL on the STL-10-like dataset sees labeled + unlabeled latents; its
  // per-client SSL pool must be strictly larger than the labeled shard.
  const World& w = world();
  data::SyntheticConfig stl_config = data::stl10_like();
  stl_config.train_samples = 600;
  stl_config.test_samples = 600;
  stl_config.unlabeled_samples = 2400;
  const data::SyntheticDataset stl = data::make_synthetic(stl_config);
  data::PartitionConfig partition_config;
  partition_config.num_clients = 6;
  partition_config.samples_per_client = 50;
  partition_config.test_samples_per_client = 40;
  rng::Generator gen(53);
  const data::Partition partition = data::partition_quantity(
      stl.train, stl.test, partition_config, 2, gen);
  rng::Generator fed_gen(54);
  const fl::FedDataset fed = fl::build_fed_dataset(stl, partition, 6, fed_gen);
  for (std::size_t c = 0; c < fed.ssl_pool.size(); ++c) {
    EXPECT_EQ(fed.ssl_pool[c].rows(), 50 + 2400 / 6);
  }
  (void)w;
}

}  // namespace
}  // namespace calibre
