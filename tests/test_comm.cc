// Tests for the communication substrate: serde, mailbox semantics under
// concurrency, and the router.
#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "comm/mailbox.h"
#include "comm/router.h"
#include "comm/serde.h"
#include "common/check.h"

namespace calibre::comm {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Writer writer;
  writer.write_u8(7);
  writer.write_u32(0xDEADBEEF);
  writer.write_u64(0x0123456789ABCDEFULL);
  writer.write_f32(3.25f);
  writer.write_string("hello");
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_EQ(reader.read_u8(), 7);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, VectorAndMapRoundTrip) {
  Writer writer;
  const std::vector<float> values = {1.0f, -2.5f, 0.0f, 1e-9f};
  writer.write_f32_vector(values);
  const std::map<std::string, float> scalars = {{"divergence", 0.5f},
                                                {"loss", 2.25f}};
  writer.write_scalar_map(scalars);
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_EQ(reader.read_f32_vector(), values);
  EXPECT_EQ(reader.read_scalar_map(), scalars);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, EmptyContainers) {
  Writer writer;
  writer.write_f32_vector({});
  writer.write_scalar_map({});
  writer.write_string("");
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_TRUE(reader.read_f32_vector().empty());
  EXPECT_TRUE(reader.read_scalar_map().empty());
  EXPECT_TRUE(reader.read_string().empty());
}

TEST(Serde, UnderflowThrows) {
  Writer writer;
  writer.write_u32(5);
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW(reader.read_u64(), CheckError);
}

TEST(Mailbox, FifoOrder) {
  Mailbox mailbox;
  for (int i = 0; i < 5; ++i) {
    Message message;
    message.round = i;
    mailbox.push(std::move(message));
  }
  for (int i = 0; i < 5; ++i) {
    const auto message = mailbox.pop();
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->round, i);
  }
  EXPECT_EQ(mailbox.size(), 0u);
}

TEST(Mailbox, TryPopOnEmpty) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.try_pop().has_value());
}

TEST(Mailbox, CloseDrainsAndStops) {
  Mailbox mailbox;
  mailbox.push(Message{});
  mailbox.close();
  EXPECT_TRUE(mailbox.pop().has_value());   // drains remaining
  EXPECT_FALSE(mailbox.pop().has_value());  // then signals closed
  EXPECT_THROW(mailbox.push(Message{}), std::runtime_error);
}

TEST(Mailbox, ConcurrentProducersConsumersLoseNothing) {
  Mailbox mailbox(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<int> consumed{0};
  std::set<int> seen;
  std::mutex seen_mutex;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto message = mailbox.pop();
        if (!message.has_value()) return;
        {
          std::lock_guard<std::mutex> lock(seen_mutex);
          EXPECT_TRUE(seen.insert(message->round).second)
              << "duplicate message " << message->round;
        }
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Message message;
        message.round = p * kPerProducer + i;
        mailbox.push(std::move(message));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  mailbox.close();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(Router, RoutesToHandlerAndBack) {
  Router router(2);
  router.register_endpoint(3, [&](const Message& request) {
    Message response;
    response.type = MessageType::kTrainResponse;
    response.sender = 3;
    response.receiver = kServerEndpoint;
    response.round = request.round + 100;
    router.send(std::move(response));
  });
  Message request;
  request.receiver = 3;
  request.round = 7;
  router.send(std::move(request));
  const auto response = router.server_mailbox().pop();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->round, 107);
  EXPECT_EQ(response->sender, 3);
  const TrafficStats stats = router.stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(Router, UnknownEndpointThrows) {
  Router router(1);
  Message message;
  message.receiver = 42;
  EXPECT_THROW(router.send(std::move(message)), CheckError);
}

TEST(Router, DuplicateRegistrationThrows) {
  Router router(1);
  router.register_endpoint(1, [](const Message&) {});
  EXPECT_THROW(router.register_endpoint(1, [](const Message&) {}),
               CheckError);
  EXPECT_THROW(router.register_endpoint(kServerEndpoint,
                                        [](const Message&) {}),
               CheckError);
}

TEST(Router, ManyConcurrentRequests) {
  Router router(4);
  constexpr int kEndpoints = 8;
  constexpr int kRequestsEach = 20;
  for (int e = 0; e < kEndpoints; ++e) {
    router.register_endpoint(e, [&, e](const Message& request) {
      Message response;
      response.type = MessageType::kTrainResponse;
      response.sender = e;
      response.receiver = kServerEndpoint;
      response.round = request.round;
      router.send(std::move(response));
    });
  }
  for (int i = 0; i < kRequestsEach; ++i) {
    for (int e = 0; e < kEndpoints; ++e) {
      Message request;
      request.receiver = e;
      request.round = i;
      router.send(std::move(request));
    }
  }
  std::vector<int> per_endpoint(kEndpoints, 0);
  for (int i = 0; i < kEndpoints * kRequestsEach; ++i) {
    const auto response = router.server_mailbox().pop();
    ASSERT_TRUE(response.has_value());
    ++per_endpoint[static_cast<std::size_t>(response->sender)];
  }
  for (const int count : per_endpoint) {
    EXPECT_EQ(count, kRequestsEach);
  }
}

}  // namespace
}  // namespace calibre::comm
