// Tests for the communication substrate: serde, mailbox semantics under
// concurrency, and the router.
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <tuple>

#include <gtest/gtest.h>

#include "comm/mailbox.h"
#include "comm/router.h"
#include "comm/serde.h"
#include "common/check.h"

namespace calibre::comm {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Writer writer;
  writer.write_u8(7);
  writer.write_u32(0xDEADBEEF);
  writer.write_u64(0x0123456789ABCDEFULL);
  writer.write_f32(3.25f);
  writer.write_string("hello");
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_EQ(reader.read_u8(), 7);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, VectorAndMapRoundTrip) {
  Writer writer;
  const std::vector<float> values = {1.0f, -2.5f, 0.0f, 1e-9f};
  writer.write_f32_vector(values);
  const std::map<std::string, float> scalars = {{"divergence", 0.5f},
                                                {"loss", 2.25f}};
  writer.write_scalar_map(scalars);
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_EQ(reader.read_f32_vector(), values);
  EXPECT_EQ(reader.read_scalar_map(), scalars);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, EmptyContainers) {
  Writer writer;
  writer.write_f32_vector({});
  writer.write_scalar_map({});
  writer.write_string("");
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_TRUE(reader.read_f32_vector().empty());
  EXPECT_TRUE(reader.read_scalar_map().empty());
  EXPECT_TRUE(reader.read_string().empty());
}

TEST(Serde, UnderflowThrows) {
  Writer writer;
  writer.write_u32(5);
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW(reader.read_u64(), CheckError);
}

TEST(Serde, TruncatedF32VectorRejectedWithoutAllocation) {
  Writer writer;
  writer.write_f32_vector({1.0f, 2.0f, 3.0f});
  auto bytes = writer.take();
  bytes.resize(bytes.size() - 4);  // drop the last float
  Reader reader(bytes);
  EXPECT_THROW(reader.read_f32_vector(), CheckError);
}

TEST(Serde, CorruptF32CountRejectedWithoutAllocation) {
  // A count whose byte size wraps the 64-bit multiplication: 2^62 + 1
  // floats "need" 4 bytes after wrapping, which would slip past a naive
  // `cursor + count*4 <= size` underflow check and allocate absurdly.
  Writer writer;
  writer.write_u64((1ULL << 62) + 1);
  writer.write_f32(0.0f);
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW(reader.read_f32_vector(), CheckError);
}

TEST(Serde, CorruptStringLengthRejectedWithoutAllocation) {
  Writer writer;
  writer.write_u32(0xFFFFFFFFu);  // 4 GB "string", no bytes behind it
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW(reader.read_string(), CheckError);
}

TEST(Serde, CorruptPayloadRoundTrip) {
  // Flipping the count of an otherwise valid payload must fail cleanly.
  Writer writer;
  writer.write_f32_vector({1.0f, 2.0f});
  auto bytes = writer.take();
  bytes[0] = 0xFF;  // little-endian low byte of the u64 count
  Reader reader(bytes);
  EXPECT_THROW(reader.read_f32_vector(), CheckError);
}

TEST(Mailbox, FifoOrder) {
  Mailbox mailbox;
  for (int i = 0; i < 5; ++i) {
    Message message;
    message.round = i;
    mailbox.push(std::move(message));
  }
  for (int i = 0; i < 5; ++i) {
    const auto message = mailbox.pop();
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->round, i);
  }
  EXPECT_EQ(mailbox.size(), 0u);
}

TEST(Mailbox, TryPopOnEmpty) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.try_pop().has_value());
}

TEST(Mailbox, CloseDrainsAndStops) {
  Mailbox mailbox;
  mailbox.push(Message{});
  mailbox.close();
  EXPECT_TRUE(mailbox.pop().has_value());   // drains remaining
  EXPECT_FALSE(mailbox.pop().has_value());  // then signals closed
  EXPECT_THROW(mailbox.push(Message{}), std::runtime_error);
}

TEST(Mailbox, PopForTimesOutOnEmpty) {
  Mailbox mailbox;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(mailbox.pop_for(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
  EXPECT_FALSE(mailbox.closed());  // timeout, not shutdown
}

TEST(Mailbox, PopForDeliversBeforeTimeout) {
  Mailbox mailbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Message message;
    message.round = 9;
    mailbox.push(std::move(message));
  });
  const auto message = mailbox.pop_for(std::chrono::seconds(10));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->round, 9);
  producer.join();
}

TEST(Mailbox, PopForOnClosedDrainedReportsShutdownNotStarvation) {
  Mailbox mailbox;
  mailbox.push(Message{});
  mailbox.close();
  EXPECT_TRUE(mailbox.closed());
  EXPECT_TRUE(mailbox.pop_for(std::chrono::seconds(10)).has_value());
  // Drained + closed: returns immediately (no timeout wait), and closed()
  // tells the caller this is shutdown rather than an empty moment.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(mailbox.pop_for(std::chrono::seconds(10)).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
  EXPECT_TRUE(mailbox.closed());
}

TEST(Mailbox, TryPopDistinguishesClosedFromEmpty) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.try_pop().has_value());
  EXPECT_FALSE(mailbox.closed());  // momentarily empty
  mailbox.push(Message{});
  mailbox.close();
  EXPECT_TRUE(mailbox.try_pop().has_value());   // close still drains
  EXPECT_FALSE(mailbox.try_pop().has_value());
  EXPECT_TRUE(mailbox.closed());  // closed and drained: shutdown
}

TEST(Mailbox, ConcurrentProducersConsumersLoseNothing) {
  Mailbox mailbox(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<int> consumed{0};
  std::set<int> seen;
  std::mutex seen_mutex;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto message = mailbox.pop();
        if (!message.has_value()) return;
        {
          std::lock_guard<std::mutex> lock(seen_mutex);
          EXPECT_TRUE(seen.insert(message->round).second)
              << "duplicate message " << message->round;
        }
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Message message;
        message.round = p * kPerProducer + i;
        mailbox.push(std::move(message));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  mailbox.close();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(Router, RoutesToHandlerAndBack) {
  Router router(2);
  router.register_endpoint(3, [&](const Message& request) {
    Message response;
    response.type = MessageType::kTrainResponse;
    response.sender = 3;
    response.receiver = kServerEndpoint;
    response.round = request.round + 100;
    router.send(std::move(response));
  });
  Message request;
  request.receiver = 3;
  request.round = 7;
  router.send(std::move(request));
  const auto response = router.server_mailbox().pop();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->round, 107);
  EXPECT_EQ(response->sender, 3);
  const TrafficStats stats = router.stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(Router, UnknownEndpointThrows) {
  Router router(1);
  Message message;
  message.receiver = 42;
  EXPECT_THROW(router.send(std::move(message)), CheckError);
}

TEST(Router, DuplicateRegistrationThrows) {
  Router router(1);
  router.register_endpoint(1, [](const Message&) {});
  EXPECT_THROW(router.register_endpoint(1, [](const Message&) {}),
               CheckError);
  EXPECT_THROW(router.register_endpoint(kServerEndpoint,
                                        [](const Message&) {}),
               CheckError);
}

// Regression for the silent client-failure deadlock: a handler that throws
// used to vanish into an abandoned future, leaving the server blocked in
// pop() forever. It must now produce a kTrainError reply carrying the
// exception text. Bounded by pop_for so a regression fails instead of
// hanging the suite.
TEST(Router, ThrowingHandlerRepliesWithTrainError) {
  Router router(2);
  router.register_endpoint(5, [](const Message&) {
    throw std::runtime_error("boom");
  });
  Message request;
  request.receiver = 5;
  request.round = 3;
  router.send(std::move(request));
  const auto reply = router.server_mailbox().pop_for(std::chrono::seconds(30));
  ASSERT_TRUE(reply.has_value()) << "error reply never arrived (deadlock bug)";
  EXPECT_EQ(reply->type, MessageType::kTrainError);
  EXPECT_EQ(reply->sender, 5);
  EXPECT_EQ(reply->round, 3);
  EXPECT_EQ(Router::error_text(*reply), "boom");
}

TEST(Router, NonStdExceptionAlsoRepliesWithTrainError) {
  Router router(1);
  router.register_endpoint(0, [](const Message&) { throw 42; });
  Message request;
  request.receiver = 0;
  router.send(std::move(request));
  const auto reply = router.server_mailbox().pop_for(std::chrono::seconds(30));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MessageType::kTrainError);
  EXPECT_EQ(Router::error_text(*reply), "unknown error");
}

TEST(Router, FaultInjectionRateOneFailsEveryDispatch) {
  Router router(2);
  std::atomic<int> handler_runs{0};
  for (int e = 0; e < 4; ++e) {
    router.register_endpoint(e, [&](const Message&) { ++handler_runs; });
  }
  FaultConfig fault;
  fault.failure_rate = 1.0f;
  fault.seed = 17;
  router.set_fault_injection(fault);
  for (int e = 0; e < 4; ++e) {
    Message request;
    request.receiver = e;
    router.send(std::move(request));
  }
  for (int i = 0; i < 4; ++i) {
    const auto reply =
        router.server_mailbox().pop_for(std::chrono::seconds(30));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MessageType::kTrainError);
    EXPECT_EQ(Router::error_text(*reply), "injected handler fault");
  }
  EXPECT_EQ(handler_runs.load(), 0);
}

TEST(Router, FaultInjectionIsDeterministicPerSeed) {
  // Same seed => identical (sender, round, outcome) set; the decision is a
  // pure function of the fault stream, independent of pool interleaving.
  auto run = [](std::uint64_t seed) {
    Router router(3);
    for (int e = 0; e < 6; ++e) {
      router.register_endpoint(e, [&router, e](const Message& request) {
        Message response;
        response.type = MessageType::kTrainResponse;
        response.sender = e;
        response.receiver = kServerEndpoint;
        response.round = request.round;
        router.send(std::move(response));
      });
    }
    FaultConfig fault;
    fault.failure_rate = 0.5f;
    fault.seed = seed;
    router.set_fault_injection(fault);
    for (int round = 0; round < 4; ++round) {
      for (int e = 0; e < 6; ++e) {
        Message request;
        request.receiver = e;
        request.round = round;
        router.send(std::move(request));
      }
    }
    std::set<std::tuple<int, int, bool>> outcomes;
    for (int i = 0; i < 24; ++i) {
      const auto reply =
          router.server_mailbox().pop_for(std::chrono::seconds(30));
      EXPECT_TRUE(reply.has_value());
      if (!reply.has_value()) break;
      outcomes.emplace(reply->sender, reply->round,
                       reply->type == MessageType::kTrainError);
    }
    return outcomes;
  };
  const auto first = run(99);
  const auto second = run(99);
  EXPECT_EQ(first, second);
  int failures = 0;
  for (const auto& [sender, round, failed] : first) failures += failed ? 1 : 0;
  EXPECT_GT(failures, 0);   // p = 0.5 over 24 draws
  EXPECT_LT(failures, 24);
}

TEST(Router, ManyConcurrentRequests) {
  Router router(4);
  constexpr int kEndpoints = 8;
  constexpr int kRequestsEach = 20;
  for (int e = 0; e < kEndpoints; ++e) {
    router.register_endpoint(e, [&, e](const Message& request) {
      Message response;
      response.type = MessageType::kTrainResponse;
      response.sender = e;
      response.receiver = kServerEndpoint;
      response.round = request.round;
      router.send(std::move(response));
    });
  }
  for (int i = 0; i < kRequestsEach; ++i) {
    for (int e = 0; e < kEndpoints; ++e) {
      Message request;
      request.receiver = e;
      request.round = i;
      router.send(std::move(request));
    }
  }
  std::vector<int> per_endpoint(kEndpoints, 0);
  for (int i = 0; i < kEndpoints * kRequestsEach; ++i) {
    const auto response = router.server_mailbox().pop();
    ASSERT_TRUE(response.has_value());
    ++per_endpoint[static_cast<std::size_t>(response->sender)];
  }
  for (const int count : per_endpoint) {
    EXPECT_EQ(count, kRequestsEach);
  }
}

}  // namespace
}  // namespace calibre::comm
