// Tests for the communication substrate: serde, mailbox semantics under
// concurrency, and the router.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include <gtest/gtest.h>

#include "comm/codec.h"
#include "comm/mailbox.h"
#include "comm/router.h"
#include "comm/serde.h"
#include "common/check.h"
#include "common/timer_queue.h"
#include "flapi/algorithm.h"
#include "nn/state.h"
#include "tensor/rng.h"

namespace calibre::comm {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Writer writer;
  writer.write_u8(7);
  writer.write_u32(0xDEADBEEF);
  writer.write_u64(0x0123456789ABCDEFULL);
  writer.write_f32(3.25f);
  writer.write_string("hello");
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_EQ(reader.read_u8(), 7);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, VectorAndMapRoundTrip) {
  Writer writer;
  const std::vector<float> values = {1.0f, -2.5f, 0.0f, 1e-9f};
  writer.write_f32_vector(values);
  const std::map<std::string, float> scalars = {{"divergence", 0.5f},
                                                {"loss", 2.25f}};
  writer.write_scalar_map(scalars);
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_EQ(reader.read_f32_vector(), values);
  EXPECT_EQ(reader.read_scalar_map(), scalars);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, EmptyContainers) {
  Writer writer;
  writer.write_f32_vector({});
  writer.write_scalar_map({});
  writer.write_string("");
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_TRUE(reader.read_f32_vector().empty());
  EXPECT_TRUE(reader.read_scalar_map().empty());
  EXPECT_TRUE(reader.read_string().empty());
}

TEST(Serde, UnderflowThrows) {
  Writer writer;
  writer.write_u32(5);
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW(reader.read_u64(), CheckError);
}

TEST(Serde, TruncatedF32VectorRejectedWithoutAllocation) {
  Writer writer;
  writer.write_f32_vector({1.0f, 2.0f, 3.0f});
  auto bytes = writer.take();
  bytes.resize(bytes.size() - 4);  // drop the last float
  Reader reader(bytes);
  EXPECT_THROW(reader.read_f32_vector(), CheckError);
}

TEST(Serde, CorruptF32CountRejectedWithoutAllocation) {
  // A count whose byte size wraps the 64-bit multiplication: 2^62 + 1
  // floats "need" 4 bytes after wrapping, which would slip past a naive
  // `cursor + count*4 <= size` underflow check and allocate absurdly.
  Writer writer;
  writer.write_u64((1ULL << 62) + 1);
  writer.write_f32(0.0f);
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW(reader.read_f32_vector(), CheckError);
}

TEST(Serde, CorruptStringLengthRejectedWithoutAllocation) {
  Writer writer;
  writer.write_u32(0xFFFFFFFFu);  // 4 GB "string", no bytes behind it
  const auto bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW(reader.read_string(), CheckError);
}

TEST(Serde, CorruptPayloadRoundTrip) {
  // Flipping the count of an otherwise valid payload must fail cleanly.
  Writer writer;
  writer.write_f32_vector({1.0f, 2.0f});
  auto bytes = writer.take();
  bytes[0] = 0xFF;  // little-endian low byte of the u64 count
  Reader reader(bytes);
  EXPECT_THROW(reader.read_f32_vector(), CheckError);
}

TEST(Mailbox, FifoOrder) {
  Mailbox mailbox;
  for (int i = 0; i < 5; ++i) {
    Message message;
    message.round = i;
    mailbox.push(std::move(message));
  }
  for (int i = 0; i < 5; ++i) {
    const auto message = mailbox.pop();
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->round, i);
  }
  EXPECT_EQ(mailbox.size(), 0u);
}

TEST(Mailbox, TryPopOnEmpty) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.try_pop().has_value());
}

TEST(Mailbox, CloseDrainsAndStops) {
  Mailbox mailbox;
  mailbox.push(Message{});
  mailbox.close();
  EXPECT_TRUE(mailbox.pop().has_value());   // drains remaining
  EXPECT_FALSE(mailbox.pop().has_value());  // then signals closed
  EXPECT_THROW(mailbox.push(Message{}), std::runtime_error);
}

TEST(Mailbox, PopForTimesOutOnEmpty) {
  Mailbox mailbox;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(mailbox.pop_for(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
  EXPECT_FALSE(mailbox.closed());  // timeout, not shutdown
}

TEST(Mailbox, PopForDeliversBeforeTimeout) {
  Mailbox mailbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Message message;
    message.round = 9;
    mailbox.push(std::move(message));
  });
  const auto message = mailbox.pop_for(std::chrono::seconds(10));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->round, 9);
  producer.join();
}

TEST(Mailbox, PopForOnClosedDrainedReportsShutdownNotStarvation) {
  Mailbox mailbox;
  mailbox.push(Message{});
  mailbox.close();
  EXPECT_TRUE(mailbox.closed());
  EXPECT_TRUE(mailbox.pop_for(std::chrono::seconds(10)).has_value());
  // Drained + closed: returns immediately (no timeout wait), and closed()
  // tells the caller this is shutdown rather than an empty moment.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(mailbox.pop_for(std::chrono::seconds(10)).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
  EXPECT_TRUE(mailbox.closed());
}

TEST(Mailbox, TryPopDistinguishesClosedFromEmpty) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.try_pop().has_value());
  EXPECT_FALSE(mailbox.closed());  // momentarily empty
  mailbox.push(Message{});
  mailbox.close();
  EXPECT_TRUE(mailbox.try_pop().has_value());   // close still drains
  EXPECT_FALSE(mailbox.try_pop().has_value());
  EXPECT_TRUE(mailbox.closed());  // closed and drained: shutdown
}

TEST(Mailbox, ConcurrentProducersConsumersLoseNothing) {
  Mailbox mailbox(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<int> consumed{0};
  std::set<int> seen;
  std::mutex seen_mutex;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto message = mailbox.pop();
        if (!message.has_value()) return;
        {
          std::lock_guard<std::mutex> lock(seen_mutex);
          EXPECT_TRUE(seen.insert(message->round).second)
              << "duplicate message " << message->round;
        }
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Message message;
        message.round = p * kPerProducer + i;
        mailbox.push(std::move(message));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  mailbox.close();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(Router, RoutesToHandlerAndBack) {
  Router router(2);
  router.register_endpoint(3, [&](const Message& request) {
    Message response;
    response.type = MessageType::kTrainResponse;
    response.sender = 3;
    response.receiver = kServerEndpoint;
    response.round = request.round + 100;
    router.send(std::move(response));
  });
  Message request;
  request.receiver = 3;
  request.round = 7;
  router.send(std::move(request));
  const auto response = router.server_mailbox().pop();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->round, 107);
  EXPECT_EQ(response->sender, 3);
  const TrafficStats stats = router.stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_GT(stats.logical_bytes, 0u);
}

TEST(Router, UnknownEndpointThrows) {
  Router router(1);
  Message message;
  message.receiver = 42;
  EXPECT_THROW(router.send(std::move(message)), CheckError);
}

TEST(Router, DuplicateRegistrationThrows) {
  Router router(1);
  router.register_endpoint(1, [](const Message&) {});
  EXPECT_THROW(router.register_endpoint(1, [](const Message&) {}),
               CheckError);
  EXPECT_THROW(router.register_endpoint(kServerEndpoint,
                                        [](const Message&) {}),
               CheckError);
}

// Regression for the silent client-failure deadlock: a handler that throws
// used to vanish into an abandoned future, leaving the server blocked in
// pop() forever. It must now produce a kTrainError reply carrying the
// exception text. Bounded by pop_for so a regression fails instead of
// hanging the suite.
TEST(Router, ThrowingHandlerRepliesWithTrainError) {
  Router router(2);
  router.register_endpoint(5, [](const Message&) {
    throw std::runtime_error("boom");
  });
  Message request;
  request.receiver = 5;
  request.round = 3;
  router.send(std::move(request));
  const auto reply = router.server_mailbox().pop_for(std::chrono::seconds(30));
  ASSERT_TRUE(reply.has_value()) << "error reply never arrived (deadlock bug)";
  EXPECT_EQ(reply->type, MessageType::kTrainError);
  EXPECT_EQ(reply->sender, 5);
  EXPECT_EQ(reply->round, 3);
  EXPECT_EQ(Router::error_text(*reply), "boom");
}

TEST(Router, NonStdExceptionAlsoRepliesWithTrainError) {
  Router router(1);
  router.register_endpoint(0, [](const Message&) { throw 42; });
  Message request;
  request.receiver = 0;
  router.send(std::move(request));
  const auto reply = router.server_mailbox().pop_for(std::chrono::seconds(30));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MessageType::kTrainError);
  EXPECT_EQ(Router::error_text(*reply), "unknown error");
}

TEST(Router, FaultInjectionRateOneFailsEveryDispatch) {
  Router router(2);
  std::atomic<int> handler_runs{0};
  for (int e = 0; e < 4; ++e) {
    router.register_endpoint(e, [&](const Message&) { ++handler_runs; });
  }
  FaultConfig fault;
  fault.failure_rate = 1.0f;
  fault.seed = 17;
  router.set_fault_injection(fault);
  for (int e = 0; e < 4; ++e) {
    Message request;
    request.receiver = e;
    router.send(std::move(request));
  }
  for (int i = 0; i < 4; ++i) {
    const auto reply =
        router.server_mailbox().pop_for(std::chrono::seconds(30));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MessageType::kTrainError);
    EXPECT_EQ(Router::error_text(*reply), "injected handler fault");
  }
  EXPECT_EQ(handler_runs.load(), 0);
}

TEST(Router, FaultInjectionIsDeterministicPerSeed) {
  // Same seed => identical (sender, round, outcome) set; the decision is a
  // pure function of the fault stream, independent of pool interleaving.
  auto run = [](std::uint64_t seed) {
    Router router(3);
    for (int e = 0; e < 6; ++e) {
      router.register_endpoint(e, [&router, e](const Message& request) {
        Message response;
        response.type = MessageType::kTrainResponse;
        response.sender = e;
        response.receiver = kServerEndpoint;
        response.round = request.round;
        router.send(std::move(response));
      });
    }
    FaultConfig fault;
    fault.failure_rate = 0.5f;
    fault.seed = seed;
    router.set_fault_injection(fault);
    for (int round = 0; round < 4; ++round) {
      for (int e = 0; e < 6; ++e) {
        Message request;
        request.receiver = e;
        request.round = round;
        router.send(std::move(request));
      }
    }
    std::set<std::tuple<int, int, bool>> outcomes;
    for (int i = 0; i < 24; ++i) {
      const auto reply =
          router.server_mailbox().pop_for(std::chrono::seconds(30));
      EXPECT_TRUE(reply.has_value());
      if (!reply.has_value()) break;
      outcomes.emplace(reply->sender, reply->round,
                       reply->type == MessageType::kTrainError);
    }
    return outcomes;
  };
  const auto first = run(99);
  const auto second = run(99);
  EXPECT_EQ(first, second);
  int failures = 0;
  for (const auto& [sender, round, failed] : first) failures += failed ? 1 : 0;
  EXPECT_GT(failures, 0);   // p = 0.5 over 24 draws
  EXPECT_LT(failures, 24);
}

TEST(Router, ManyConcurrentRequests) {
  Router router(4);
  constexpr int kEndpoints = 8;
  constexpr int kRequestsEach = 20;
  for (int e = 0; e < kEndpoints; ++e) {
    router.register_endpoint(e, [&, e](const Message& request) {
      Message response;
      response.type = MessageType::kTrainResponse;
      response.sender = e;
      response.receiver = kServerEndpoint;
      response.round = request.round;
      router.send(std::move(response));
    });
  }
  for (int i = 0; i < kRequestsEach; ++i) {
    for (int e = 0; e < kEndpoints; ++e) {
      Message request;
      request.receiver = e;
      request.round = i;
      router.send(std::move(request));
    }
  }
  std::vector<int> per_endpoint(kEndpoints, 0);
  for (int i = 0; i < kEndpoints * kRequestsEach; ++i) {
    const auto response = router.server_mailbox().pop();
    ASSERT_TRUE(response.has_value());
    ++per_endpoint[static_cast<std::size_t>(response->sender)];
  }
  for (const int count : per_endpoint) {
    EXPECT_EQ(count, kRequestsEach);
  }
}

// --- Payload: shared immutable broadcast buffers ---------------------------

TEST(Payload, SharesBufferAcrossCopies) {
  const Payload original(std::vector<std::uint8_t>{1, 2, 3});
  const Payload copy = original;  // refcount bump, no deep copy
  EXPECT_TRUE(original.shares_buffer_with(copy));
  EXPECT_TRUE(copy.shares_buffer_with(original));
  EXPECT_EQ(original.use_count(), 2);
  EXPECT_EQ(&original.bytes(), &copy.bytes());

  const Payload rebuilt(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_FALSE(original.shares_buffer_with(rebuilt));  // equal bytes, new buffer
}

TEST(Payload, EmptyPayloadAllocatesNothing) {
  const Payload empty;
  const Payload from_empty_vector((std::vector<std::uint8_t>{}));
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(from_empty_vector.empty());
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_EQ(from_empty_vector.use_count(), 0);
  EXPECT_FALSE(empty.shares_buffer_with(from_empty_vector));
  EXPECT_FALSE(empty.mark_transmitted());  // never "first transmission"
}

TEST(Payload, MarkTransmittedLatchesOncePerBuffer) {
  const Payload original(std::vector<std::uint8_t>{9, 9});
  const Payload shared = original;
  EXPECT_TRUE(original.mark_transmitted());
  EXPECT_FALSE(original.mark_transmitted());  // same handle
  EXPECT_FALSE(shared.mark_transmitted());    // sharing handle, same buffer
  const Payload fresh(std::vector<std::uint8_t>{9, 9});
  EXPECT_TRUE(fresh.mark_transmitted());  // distinct buffer latches anew
}

TEST(Message, HeaderBytesDeriveFromActualFields) {
  // The header cost used by traffic accounting must track the real fields.
  Message message;
  EXPECT_EQ(Message::kHeaderBytes, sizeof(message.type) +
                                       sizeof(message.sender) +
                                       sizeof(message.receiver) +
                                       sizeof(message.round));
  EXPECT_EQ(message.wire_size(), Message::kHeaderBytes);  // empty payload
  message.payload = std::vector<std::uint8_t>(17, 0xAB);
  EXPECT_EQ(message.wire_size(), Message::kHeaderBytes + 17u);
}

// --- Codec: binary16 conversion --------------------------------------------

TEST(Codec, F16ConversionHitsIeeeEdgeValues) {
  EXPECT_EQ(f32_to_f16(0.0f), 0x0000);
  EXPECT_EQ(f32_to_f16(-0.0f), 0x8000);
  EXPECT_EQ(f32_to_f16(1.0f), 0x3C00);
  EXPECT_EQ(f32_to_f16(-2.0f), 0xC000);
  EXPECT_EQ(f32_to_f16(65504.0f), 0x7BFF);  // largest finite f16
  EXPECT_EQ(f32_to_f16(1e6f), 0x7C00);      // overflow saturates to +inf
  EXPECT_EQ(f32_to_f16(-1e6f), 0xFC00);
  EXPECT_EQ(f32_to_f16(std::numeric_limits<float>::infinity()), 0x7C00);
  // Smallest subnormal (2^-24) survives; half of it ties to even -> zero.
  EXPECT_EQ(f32_to_f16(5.9604645e-8f), 0x0001);
  EXPECT_EQ(f32_to_f16(2.9802322e-8f), 0x0000);
  EXPECT_EQ(f32_to_f16(-1e-12f), 0x8000);  // below-subnormal keeps the sign
  // NaN stays NaN through the round trip.
  const std::uint16_t nan_half =
      f32_to_f16(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(f16_to_f32(nan_half)));
}

TEST(Codec, F16RoundTripIsExactForRepresentableValues) {
  // Integers up to 2048 and power-of-two scales are exact in binary16.
  for (const float value : {0.0f, 1.0f, -1.0f, 2.0f, 1024.0f, 2048.0f,
                            0.5f, -0.25f, 0.125f, 65504.0f, -65504.0f}) {
    EXPECT_EQ(f16_to_f32(f32_to_f16(value)), value) << "value " << value;
  }
  for (int i = 0; i <= 2048; i += 37) {
    const float value = static_cast<float>(i);
    EXPECT_EQ(f16_to_f32(f32_to_f16(value)), value);
  }
}

TEST(Codec, F16RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 (1 + 2^-10);
  // ties go to the even significand, i.e. 1.0.
  EXPECT_EQ(f32_to_f16(1.0f + 0.00048828125f), 0x3C00);
  // Just above the tie rounds up.
  EXPECT_EQ(f32_to_f16(1.0f + 0.0005f), 0x3C01);
}

// Exhaustive defined-behavior proof for the conversion pair: every one of
// the 65536 binary16 bit patterns decodes and re-encodes without UB (this
// test runs inside the ubsan lane, where any shift/overflow/float-cast UB
// aborts) and round-trips bit-identically — subnormals, both zeros, both
// infinities included. NaNs keep sign and NaN-ness but canonicalize their
// payload to the single quiet bit f32_to_f16 emits.
TEST(Codec, F16AllBitPatternsRoundTripBitwise) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const auto half = static_cast<std::uint16_t>(bits);
    const float value = f16_to_f32(half);
    const std::uint16_t back = f32_to_f16(value);
    const bool is_nan =
        ((half >> 10) & 0x1Fu) == 0x1Fu && (half & 0x3FFu) != 0;
    if (is_nan) {
      EXPECT_TRUE(std::isnan(value)) << "bits 0x" << std::hex << bits;
      EXPECT_TRUE(std::isnan(f16_to_f32(back)));
      EXPECT_EQ(back & 0x8000u, half & 0x8000u);  // sign survives
    } else {
      EXPECT_EQ(back, half) << "bits 0x" << std::hex << bits;
    }
  }
}

// The overflow boundary: 65520 = (65504 + 65536) / 2 is exactly halfway
// between the largest finite f16 and the value that would need the infinity
// exponent; the 65504 significand is odd, so the tie rounds *up* to inf.
// Anything below the halfway point stays finite.
TEST(Codec, F16OverflowBoundaryTiesToInfinity) {
  EXPECT_EQ(f32_to_f16(65520.0f), 0x7C00);
  EXPECT_EQ(f32_to_f16(-65520.0f), 0xFC00);
  EXPECT_EQ(f32_to_f16(65519.0f), 0x7BFF);
  EXPECT_EQ(f32_to_f16(std::nextafterf(65520.0f, 0.0f)), 0x7BFF);
}

// The SIMD bulk converters must be bit-identical to the scalar functions:
// the wire format (and the streaming/batch equivalence proof built on it)
// depends on encode bytes not changing with the instruction set or the
// position of a value inside a block. Decode side: every one of the 65536
// f16 patterns through the block path. Encode side: adversarial floats
// (ties, subnormal boundaries, overflow halfway, NaN payloads) placed at
// every lane offset, plus a broad random sweep.
TEST(Codec, BlockConvertersMatchScalarBitwise) {
  // Decode: exhaustive over all f16 bit patterns, odd length to cover the
  // scalar tail after the 16-lane groups.
  std::vector<std::uint16_t> halves(0x10000 + 7);
  for (std::size_t i = 0; i < halves.size(); ++i) {
    halves[i] = static_cast<std::uint16_t>(i & 0xFFFFu);
  }
  std::vector<float> bulk(halves.size());
  f16_to_f32_block(halves.data(), nullptr, bulk.data(), halves.size());
  for (std::size_t i = 0; i < halves.size(); ++i) {
    const float scalar = f16_to_f32(halves[i]);
    EXPECT_EQ(std::memcmp(&bulk[i], &scalar, sizeof(float)), 0)
        << "half 0x" << std::hex << halves[i];
  }

  // Encode: edge values at every alignment, then a seeded random sweep over
  // the full f32 range (sign * random exponent * random mantissa).
  std::vector<float> values;
  const float edges[] = {0.0f,
                         -0.0f,
                         1.0f,
                         1.0f + 0.00048828125f,  // RNE tie at 1.0
                         65504.0f,
                         65519.0f,
                         65520.0f,  // overflow tie -> inf
                         -65520.0f,
                         5.9604645e-8f,   // smallest f16 subnormal
                         2.9802322e-8f,   // tie to zero
                         -1e-12f,
                         1e6f,
                         std::numeric_limits<float>::infinity(),
                         -std::numeric_limits<float>::infinity(),
                         std::numeric_limits<float>::quiet_NaN()};
  for (const float edge : edges) {
    for (int offset = 0; offset < 17; ++offset) {
      values.insert(values.end(), static_cast<std::size_t>(offset), 0.25f);
      values.push_back(edge);
    }
  }
  rng::Generator gen(0xC0DEC);
  for (int i = 0; i < 4096; ++i) {
    const auto bits = static_cast<std::uint32_t>(
        gen.uniform_index(std::uint64_t{1} << 32));
    float value = 0.0f;
    std::memcpy(&value, &bits, sizeof(value));
    values.push_back(value);
  }
  std::vector<std::uint16_t> encoded(values.size());
  f32_to_f16_block(values.data(), nullptr, encoded.data(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(encoded[i], f32_to_f16(values[i])) << "index " << i;
  }

  // Fused delta paths: encode (src - base) and decode (base + half) must
  // match composing the scalar ops by hand.
  std::vector<float> base(values.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<float>(gen.uniform());
  }
  std::vector<std::uint16_t> delta(values.size());
  f32_to_f16_block(values.data(), base.data(), delta.data(), values.size());
  std::vector<float> decoded(values.size());
  f16_to_f32_block(delta.data(), base.data(), decoded.data(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(delta[i], f32_to_f16(values[i] - base[i])) << "index " << i;
    const float expect = base[i] + f16_to_f32(delta[i]);
    EXPECT_EQ(std::memcmp(&decoded[i], &expect, sizeof(float)), 0)
        << "index " << i;
  }
}

// --- Codec: block encode/decode --------------------------------------------

std::vector<float> random_values(std::size_t count, std::uint64_t seed,
                                 float scale) {
  rng::Generator gen(seed);
  std::vector<float> values(count);
  for (float& v : values) v = static_cast<float>(gen.normal()) * scale;
  return values;
}

TEST(Codec, F32BlockRoundTripsBitwise) {
  const std::vector<float> values = random_values(129, 11, 1.0f);
  Writer writer;
  encode_values(writer, values, Codec::kF32);
  const auto bytes = writer.take();
  EXPECT_EQ(bytes.size(), encoded_size(Codec::kF32, values.size()));
  Reader reader(bytes);
  EXPECT_EQ(decode_values(reader), values);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Codec, F16BlockRoundTripsWithinHalfPrecision) {
  const std::vector<float> values = random_values(200, 12, 1.0f);
  Writer writer;
  encode_values(writer, values, Codec::kF16);
  const auto bytes = writer.take();
  EXPECT_EQ(bytes.size(), encoded_size(Codec::kF16, values.size()));
  Reader reader(bytes);
  const std::vector<float> decoded = decode_values(reader);
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // binary16 has a 10-bit significand: relative error <= 2^-11.
    EXPECT_NEAR(decoded[i], values[i], std::abs(values[i]) * 4.9e-4f + 1e-7f);
  }
}

TEST(Codec, Delta16BeatsF16NearTheReference) {
  const std::vector<float> base = random_values(300, 13, 1.0f);
  std::vector<float> values = base;
  rng::Generator gen(14);
  for (float& v : values) v += static_cast<float>(gen.normal()) * 0.01f;

  Writer delta_writer;
  encode_values(delta_writer, values, Codec::kDelta16, base.data(),
                base.size());
  auto delta_bytes = delta_writer.take();
  Reader delta_reader(delta_bytes);
  const std::vector<float> from_delta =
      decode_values(delta_reader, base.data(), base.size());

  Writer f16_writer;
  encode_values(f16_writer, values, Codec::kF16);
  auto f16_bytes = f16_writer.take();
  Reader f16_reader(f16_bytes);
  const std::vector<float> from_f16 = decode_values(f16_reader);

  ASSERT_EQ(from_delta.size(), values.size());
  double delta_err = 0.0, f16_err = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    delta_err += std::abs(from_delta[i] - values[i]);
    f16_err += std::abs(from_f16[i] - values[i]);
  }
  // Small deltas quantize against a tiny exponent range, so the delta codec
  // must be at least ~5x more accurate here (measured ~11x).
  EXPECT_LT(delta_err * 5.0, f16_err);
  EXPECT_EQ(delta_bytes.size(), f16_bytes.size());  // same wire cost
}

TEST(Codec, Delta16WithoutBaseDegradesToSelfDescribingF16) {
  const std::vector<float> values = random_values(40, 15, 1.0f);
  Writer writer;
  encode_values(writer, values, Codec::kDelta16);  // no base available
  const auto bytes = writer.take();
  // The wire says f16, so decoding needs no reference.
  Reader reader(bytes);
  const std::vector<float> decoded = decode_values(reader);
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(decoded[i], values[i], std::abs(values[i]) * 4.9e-4f + 1e-7f);
  }
}

TEST(Codec, Delta16DecodeRequiresMatchingBase) {
  const std::vector<float> base = random_values(8, 16, 1.0f);
  Writer writer;
  encode_values(writer, base, Codec::kDelta16, base.data(), base.size());
  const auto bytes = writer.take();
  {
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader), CheckError);  // no base
  }
  {
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader, base.data(), base.size() - 1),
                 CheckError);  // wrong dimension
  }
}

TEST(Codec, CorruptTagAndCountFailCleanly) {
  const std::vector<float> values = {1.0f, 2.0f};
  Writer writer;
  encode_values(writer, values, Codec::kF32);
  auto bytes = writer.take();
  bytes[0] = 0x7F;  // no such codec tag
  Reader reader(bytes);
  EXPECT_THROW(decode_values(reader), CheckError);

  // An f16 count far past the remaining bytes must not allocate.
  Writer huge;
  huge.write_u8(0x02);
  huge.write_u64((1ULL << 63) + 5);
  huge.write_u16(0);
  const auto huge_bytes = huge.take();
  Reader huge_reader(huge_bytes);
  EXPECT_THROW(decode_values(huge_reader), CheckError);
}

TEST(Codec, NameRoundTrip) {
  for (const Codec codec : {Codec::kAuto, Codec::kF32, Codec::kF16,
                            Codec::kDelta16, Codec::kTopK16, Codec::kInt8A}) {
    EXPECT_EQ(codec_from_name(codec_name(codec)), codec);
  }
  EXPECT_THROW(codec_from_name("zstd"), CheckError);
}

// --- topk16 / int8a wire blocks ---------------------------------------------

TEST(Codec, TopK16RoundTripKeepsLargestMagnitudeDeltas) {
  std::vector<float> base = random_values(64, 40, 1.0f);
  std::vector<float> values = base;
  for (float& v : values) v += 1e-4f;  // background noise below the top-3
  values[3] += 8.0f;
  values[31] -= 6.0f;
  values[60] += 7.0f;
  Writer writer;
  encode_values(writer, values, Codec::kTopK16, base.data(), base.size(), 3);
  const auto bytes = writer.take();
  EXPECT_EQ(bytes.size(), encoded_size(Codec::kTopK16, values.size(), 3));
  Reader reader(bytes);
  const std::vector<float> decoded =
      decode_values(reader, base.data(), base.size());
  EXPECT_EQ(reader.remaining(), 0u);
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (i == 3 || i == 31 || i == 60) {
      EXPECT_NEAR(decoded[i], values[i], 0.02f) << "selected coord " << i;
    } else {
      // Coordinates outside the top-k reconstruct the base exactly.
      EXPECT_EQ(decoded[i], base[i]) << "dropped coord " << i;
    }
  }
}

TEST(Codec, TopK16EncodingIsDeterministicUnderTies) {
  // Equal-magnitude deltas: the bit-level magnitude + index tiebreak must
  // make repeated encodes byte-identical (the chooser relies on this).
  const std::vector<float> base(32, 0.0f);
  std::vector<float> values(32, 0.5f);  // every delta ties
  Writer a;
  encode_values(a, values, Codec::kTopK16, base.data(), base.size(), 5);
  Writer b;
  encode_values(b, values, Codec::kTopK16, base.data(), base.size(), 5);
  const auto bytes_a = a.take();
  EXPECT_EQ(bytes_a, b.take());
  // Lowest indices win ties: indices 0..4, ascending.
  Reader reader(bytes_a);
  const auto decoded = decode_values(reader, base.data(), base.size());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NE(decoded[i], 0.0f);
  for (std::size_t i = 5; i < 32; ++i) EXPECT_EQ(decoded[i], 0.0f);
}

TEST(Codec, TopK16SampledThresholdSelectionStaysExact) {
  // The encoder's sampled-threshold pre-pass (engaged at count >= 4096,
  // k*4 <= count) must select the exact same index set as a brute-force
  // sort under the documented total order (|delta| desc, index asc on
  // ties). Heavy ties around the k-th magnitude are the hard case: the
  // threshold filter keeps every tied element, the index tiebreak picks.
  const std::size_t count = 8192;
  std::vector<float> base(count, 0.0f);
  std::vector<float> values = random_values(count, 91, 1e-3f);
  for (std::size_t i = 0; i < count; i += 37) values[i] = 0.25f;  // tie band
  for (const std::size_t k : {std::size_t{1}, std::size_t{64},
                              std::size_t{640}, count}) {
    Writer writer;
    encode_values(writer, values, Codec::kTopK16, base.data(), base.size(),
                  k);
    const auto bytes = writer.take();
    Reader reader(bytes);
    ASSERT_EQ(reader.read_u8(), 0x04) << "topk16 tag";  // Codec::kTopK16
    ASSERT_EQ(reader.read_u64(), count);
    ASSERT_EQ(reader.read_u64(), k);
    const std::vector<std::uint32_t> got = reader.read_u32_array(k);
    // Reference selection: full sort, no sampling shortcut.
    std::vector<std::uint32_t> expected(count);
    std::iota(expected.begin(), expected.end(), 0u);
    const auto magnitude = [&](std::uint32_t i) {
      std::uint32_t bits = 0;
      std::memcpy(&bits, &values[i], sizeof(bits));
      return bits & 0x7FFFFFFFu;
    };
    std::sort(expected.begin(), expected.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const std::uint32_t ma = magnitude(a);
                const std::uint32_t mb = magnitude(b);
                return ma != mb ? ma > mb : a < b;
              });
    expected.resize(k);
    std::sort(expected.begin(), expected.end());  // wire order: ascending
    EXPECT_EQ(got, expected) << "k=" << k;
  }
}

TEST(Codec, TopK16WithoutBaseDegradesToSelfDescribingF16) {
  const std::vector<float> values = random_values(17, 46, 1.0f);
  Writer writer;
  encode_values(writer, values, Codec::kTopK16, nullptr, 0, 4);
  const auto bytes = writer.take();
  EXPECT_EQ(bytes[0], 0x02);  // f16 tag: decodable with no reference
  Reader reader(bytes);
  EXPECT_EQ(decode_values(reader).size(), values.size());
}

TEST(Codec, TopK16DecodeRequiresMatchingBase) {
  const std::vector<float> base = random_values(12, 51, 1.0f);
  std::vector<float> values = base;
  values[5] += 1.0f;
  Writer writer;
  encode_values(writer, values, Codec::kTopK16, base.data(), base.size(), 2);
  const auto bytes = writer.take();
  {
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader), CheckError);  // no base
  }
  {
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader, base.data(), base.size() - 1),
                 CheckError);  // wrong dimension
  }
}

TEST(Codec, TopK16IndexListValidatedAgainstCountBeforeAllocation) {
  const std::vector<float> base = random_values(8, 45, 1.0f);
  {
    // Declared k astronomically past the payload must fail before any
    // allocation (a wraparound-prone k * 6 size computation would pass).
    Writer huge;
    huge.write_u8(0x04);
    huge.write_u64(base.size());
    huge.write_u64((1ULL << 62) + 3);
    const auto bytes = huge.take();
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader, base.data(), base.size()), CheckError);
  }
  {
    // k <= total but more index entries declared than bytes present.
    Writer trunc;
    trunc.write_u8(0x04);
    trunc.write_u64(base.size());
    trunc.write_u64(6);
    trunc.write_u32(0);
    trunc.write_u16(0);
    const auto bytes = trunc.take();
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader, base.data(), base.size()), CheckError);
  }
  {
    // Out-of-range index (9 >= total 8) rejected after the size checks.
    Writer oob;
    oob.write_u8(0x04);
    oob.write_u64(base.size());
    oob.write_u64(2);
    oob.write_u32(1);
    oob.write_u32(9);
    oob.write_u16(0);
    oob.write_u16(0);
    const auto bytes = oob.take();
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader, base.data(), base.size()), CheckError);
  }
  {
    // Non-ascending (duplicate) indices rejected: a repeated index would
    // silently double-apply a delta.
    Writer dup;
    dup.write_u8(0x04);
    dup.write_u64(base.size());
    dup.write_u64(2);
    dup.write_u32(3);
    dup.write_u32(3);
    dup.write_u16(0);
    dup.write_u16(0);
    const auto bytes = dup.take();
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader, base.data(), base.size()), CheckError);
  }
}

TEST(Codec, Int8ARoundTripWithinBlockScale) {
  // More than two blocks so per-block params are exercised.
  const std::vector<float> values = random_values(600, 47, 2.0f);
  Writer writer;
  encode_values(writer, values, Codec::kInt8A);
  const auto bytes = writer.take();
  EXPECT_EQ(bytes.size(), encoded_size(Codec::kInt8A, values.size()));
  Reader reader(bytes);
  const std::vector<float> decoded = decode_values(reader);
  EXPECT_EQ(reader.remaining(), 0u);
  ASSERT_EQ(decoded.size(), values.size());
  // Affine reconstruction error is at most half a quantization step, where
  // the step is each 256-element block's own min-to-max range over 255.
  for (std::size_t start = 0; start < values.size(); start += kInt8BlockSize) {
    const std::size_t end = std::min(values.size(), start + kInt8BlockSize);
    float lo = values[start];
    float hi = values[start];
    for (std::size_t i = start; i < end; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    const float step = (hi - lo) / 255.0f;
    for (std::size_t i = start; i < end; ++i) {
      EXPECT_NEAR(decoded[i], values[i], step * 0.5f + 1e-4f) << i;
    }
  }
}

TEST(Codec, Int8ANonFiniteInputsDegradeDeterministically) {
  // An infinite value makes its block's range unrepresentable: the whole
  // block degrades to the (0, 0) affine params and decodes to exact zeros.
  std::vector<float> with_inf = random_values(40, 48, 1.0f);
  with_inf[7] = std::numeric_limits<float>::infinity();
  Writer a;
  encode_values(a, with_inf, Codec::kInt8A);
  Writer b;
  encode_values(b, with_inf, Codec::kInt8A);
  const auto bytes = a.take();
  EXPECT_EQ(bytes, b.take());  // byte-identical across encodes
  Reader reader(bytes);
  for (const float v : decode_values(reader)) EXPECT_EQ(v, 0.0f);

  // NaNs are skipped by the param scan and quantize to the block minimum:
  // the decode stays finite everywhere.
  std::vector<float> with_nan = random_values(40, 49, 1.0f);
  with_nan[3] = std::numeric_limits<float>::quiet_NaN();
  Writer writer;
  encode_values(writer, with_nan, Codec::kInt8A);
  const auto nan_bytes = writer.take();
  Reader nan_reader(nan_bytes);
  for (const float v : decode_values(nan_reader)) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Codec, Int8ACountValidatedBeforeAllocation) {
  {
    Writer huge;
    huge.write_u8(0x05);
    huge.write_u64((1ULL << 63) + 9);  // count far past the payload
    huge.write_u32(0);
    const auto bytes = huge.take();
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader), CheckError);
  }
  {
    // count fits the remaining bytes but the per-block param table does
    // not: the combined bound must reject before the param allocation.
    Writer trunc;
    trunc.write_u8(0x05);
    trunc.write_u64(10);
    for (int i = 0; i < 14; ++i) trunc.write_u8(0);  // 14 < 8 + 10
    const auto bytes = trunc.take();
    Reader reader(bytes);
    EXPECT_THROW(decode_values(reader), CheckError);
  }
}

TEST(Codec, TopK16Int8AAllPrefixesRejected) {
  const std::vector<float> base = random_values(23, 41, 1.0f);
  std::vector<float> values = base;
  for (float& v : values) v += 0.01f;
  Writer topk;
  encode_values(topk, values, Codec::kTopK16, base.data(), base.size(), 5);
  Writer int8;
  encode_values(int8, values, Codec::kInt8A);
  for (const auto& bytes : {topk.take(), int8.take()}) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<std::uint8_t> prefix(bytes.begin(),
                                             bytes.begin() + len);
      Reader reader(prefix);
      EXPECT_THROW(decode_values(reader, base.data(), base.size()),
                   CheckError)
          << "prefix of length " << len << " slipped through";
    }
  }
}

TEST(Codec, TopK16Int8ABitFlipsFailOrPreserveDimension) {
  const std::vector<float> base = random_values(33, 42, 1.0f);
  std::vector<float> values = base;
  for (float& v : values) v += 0.05f;
  const struct {
    Codec codec;
    std::size_t topk;
  } cases[] = {{Codec::kTopK16, 7}, {Codec::kInt8A, 0}};
  for (const auto& c : cases) {
    Writer writer;
    encode_values(writer, values, c.codec, base.data(), base.size(), c.topk);
    const auto bytes = writer.take();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (const int bit : {0, 3, 7}) {
        auto mutated = bytes;
        mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ (1u << bit));
        Reader reader(mutated);
        try {
          const auto decoded =
              decode_values(reader, base.data(), base.size());
          // A decode that leaves trailing bytes (e.g. a count bit flipped
          // low) is rejected by every caller's exhaustion check; only a
          // fully-consumed decode must preserve the dimension.
          if (reader.remaining() == 0) {
            EXPECT_EQ(decoded.size(), values.size())
                << "codec " << codec_name(c.codec) << " byte " << i
                << " bit " << bit;
          }
        } catch (const CheckError&) {
          // clean rejection is equally fine
        }
      }
    }
  }
}

TEST(Codec, RandomGarbageBlocksNeverOverAllocate) {
  rng::Generator gen(43);
  const std::vector<float> base = random_values(16, 44, 1.0f);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> garbage(gen.uniform_index(96));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(gen.uniform_index(256));
    }
    // Half the trials force the new tags so the topk16/int8a paths see the
    // garbage body, not just the tag dispatch.
    if (!garbage.empty()) {
      garbage[0] = (trial % 2 == 0) ? 0x04 : 0x05;
    }
    Reader reader(garbage);
    try {
      const auto decoded = decode_values(reader, base.data(), base.size());
      // topk16 output is sized by the trusted base, int8a by a count
      // bounded against the remaining bytes — never by raw wire values.
      EXPECT_LE(decoded.size(), std::max(garbage.size(), base.size()));
    } catch (const CheckError&) {
    }
  }
}

// --- ModelState wire formats ------------------------------------------------

TEST(StateWire, DefaultToBytesIsLegacyLayoutBitwise) {
  const nn::ModelState state(std::vector<float>{1.5f, -2.0f, 0.25f});
  const auto bytes = state.to_bytes();
  // u32 magic | u64 count | 3 * f32 — assembled by hand.
  Writer writer;
  writer.write_u32(0xCA11B4E5u);
  writer.write_f32_vector(state.values());
  EXPECT_EQ(bytes, writer.take());
  // The codec overload with kF32 must produce exactly the same bytes.
  EXPECT_EQ(state.to_bytes(comm::Codec::kF32), bytes);
  EXPECT_EQ(nn::ModelState::from_bytes(bytes).values(), state.values());
}

TEST(StateWire, CodecLayoutsRoundTripThroughFromBytes) {
  const nn::ModelState base(random_values(64, 21, 1.0f));
  nn::ModelState state = base;
  for (float& v : state.values()) v += 0.003f;

  const auto f16_bytes = state.to_bytes(Codec::kF16);
  const nn::ModelState from_f16 = nn::ModelState::from_bytes(f16_bytes);
  ASSERT_EQ(from_f16.size(), state.size());
  EXPECT_LT(from_f16.l2_distance(state), 1e-2f);

  const auto delta_bytes = state.to_bytes(Codec::kDelta16, &base);
  const nn::ModelState from_delta =
      nn::ModelState::from_bytes(delta_bytes, &base);
  ASSERT_EQ(from_delta.size(), state.size());
  EXPECT_LT(from_delta.l2_distance(state), 1e-4f);
  EXPECT_LT(f16_bytes.size(), state.to_bytes().size() * 0.55);
}

// Every strict prefix of a valid payload must fail with CheckError — never a
// crash, never a giant allocation, never a silent partial decode.
void expect_all_prefixes_rejected(const std::vector<std::uint8_t>& bytes,
                                  const nn::ModelState* base) {
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + len);
    EXPECT_THROW(nn::ModelState::from_bytes(prefix, base), CheckError)
        << "prefix of length " << len << " slipped through";
  }
}

TEST(StateWire, TruncationFuzzAllCodecs) {
  const nn::ModelState base(random_values(13, 22, 1.0f));
  const nn::ModelState state(random_values(13, 23, 1.0f));
  expect_all_prefixes_rejected(state.to_bytes(), nullptr);
  expect_all_prefixes_rejected(state.to_bytes(Codec::kF16), nullptr);
  expect_all_prefixes_rejected(state.to_bytes(Codec::kDelta16, &base), &base);
}

TEST(StateWire, BitFlipFuzzEitherRejectsOrKeepsDimension) {
  // Flipping any single bit must either fail the magic/count/size checks or
  // decode to a state of the original dimension (a value-byte flip only
  // perturbs one element). Nothing else is acceptable.
  const nn::ModelState base(random_values(13, 24, 1.0f));
  const nn::ModelState state(random_values(13, 25, 1.0f));
  for (const Codec codec : {Codec::kF32, Codec::kF16, Codec::kDelta16}) {
    const auto bytes = state.to_bytes(codec, &base);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (const int bit : {0, 3, 7}) {
        auto mutated = bytes;
        mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ (1u << bit));
        try {
          const nn::ModelState decoded =
              nn::ModelState::from_bytes(mutated, &base);
          EXPECT_EQ(decoded.size(), state.size())
              << "codec " << codec_name(codec) << " byte " << i << " bit "
              << bit;
        } catch (const CheckError&) {
          // clean rejection is equally fine
        }
      }
    }
  }
}

TEST(StateWire, RandomGarbageNeverOverAllocates) {
  rng::Generator gen(26);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(gen.uniform_index(96));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(gen.uniform_index(256));
    }
    try {
      const nn::ModelState decoded = nn::ModelState::from_bytes(garbage);
      // Counts are validated against the remaining payload, so any decode
      // that survives is bounded by the input size.
      EXPECT_LE(decoded.size() * sizeof(std::uint16_t), garbage.size());
    } catch (const CheckError&) {
    }
  }
}

// --- ClientUpdate wire formats ---------------------------------------------

fl::ClientUpdate sample_update(std::uint64_t seed) {
  fl::ClientUpdate update;
  update.state = nn::ModelState(random_values(19, seed, 1.0f));
  update.weight = 32.0f;
  update.scalars = {{"divergence", 0.125f}, {"ssl_loss", 2.5f}};
  return update;
}

TEST(UpdateWire, LegacyLayoutIsDefaultAndBitwiseStable) {
  const fl::ClientUpdate update = sample_update(31);
  const auto bytes = fl::serialize_update(update);
  // Legacy layout: f32 vector | weight | scalar map — assembled by hand.
  Writer writer;
  writer.write_f32_vector(update.state.values());
  writer.write_f32(update.weight);
  writer.write_scalar_map(update.scalars);
  EXPECT_EQ(bytes, writer.take());
  const fl::ClientUpdate decoded = fl::deserialize_update(bytes);
  EXPECT_EQ(decoded.state.values(), update.state.values());
  EXPECT_EQ(decoded.weight, update.weight);
  EXPECT_EQ(decoded.scalars, update.scalars);
}

TEST(UpdateWire, CodecLayoutsRoundTrip) {
  const nn::ModelState broadcast(random_values(19, 32, 1.0f));
  fl::ClientUpdate update = sample_update(31);
  update.state = broadcast;
  for (float& v : update.state.values()) v += 0.002f;

  for (const Codec codec : {Codec::kF16, Codec::kDelta16}) {
    const auto bytes = fl::serialize_update(update, codec, &broadcast);
    const fl::ClientUpdate decoded = fl::deserialize_update(bytes, &broadcast);
    ASSERT_EQ(decoded.state.size(), update.state.size());
    EXPECT_LT(decoded.state.l2_distance(update.state), 1e-2f);
    EXPECT_EQ(decoded.weight, update.weight);
    EXPECT_EQ(decoded.scalars, update.scalars);
    EXPECT_LT(bytes.size(), fl::serialize_update(update).size());
  }
}

TEST(UpdateWire, TruncationFuzzBothLayouts) {
  const nn::ModelState broadcast(random_values(19, 33, 1.0f));
  const fl::ClientUpdate update = sample_update(34);
  for (const auto& bytes :
       {fl::serialize_update(update),
        fl::serialize_update(update, Codec::kF16),
        fl::serialize_update(update, Codec::kDelta16, &broadcast)}) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<std::uint8_t> prefix(bytes.begin(),
                                             bytes.begin() + len);
      EXPECT_THROW(fl::deserialize_update(prefix, &broadcast), CheckError)
          << "prefix of length " << len;
    }
  }
}

TEST(UpdateWire, RandomGarbageFailsCleanly) {
  rng::Generator gen(35);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(gen.uniform_index(96));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(gen.uniform_index(256));
    }
    try {
      const fl::ClientUpdate decoded = fl::deserialize_update(garbage);
      EXPECT_LE(decoded.state.size() * sizeof(std::uint16_t), garbage.size());
    } catch (const CheckError&) {
    }
  }
}

TEST(UpdateWire, TopK16AndInt8ALayoutsRoundTrip) {
  const nn::ModelState broadcast(random_values(300, 49, 1.0f));
  fl::ClientUpdate update = sample_update(50);
  update.state = broadcast;
  for (float& v : update.state.values()) v += 0.002f;
  const std::size_t f32_size = fl::update_wire_size_f32(update);

  const auto topk_bytes =
      fl::serialize_update(update, Codec::kTopK16, &broadcast, 30);
  EXPECT_EQ(fl::peek_update_codec(topk_bytes), Codec::kTopK16);
  const fl::ClientUpdate from_topk =
      fl::deserialize_update(topk_bytes, &broadcast);
  ASSERT_EQ(from_topk.state.size(), update.state.size());
  EXPECT_EQ(from_topk.weight, update.weight);
  EXPECT_EQ(from_topk.scalars, update.scalars);
  // 30 of 300 coordinates at 6 bytes each: comfortably under a quarter of
  // the f32 layout (the PR's headline compression claim).
  EXPECT_LT(topk_bytes.size(), f32_size / 4);

  const auto int8_bytes = fl::serialize_update(update, Codec::kInt8A);
  EXPECT_EQ(fl::peek_update_codec(int8_bytes), Codec::kInt8A);
  const fl::ClientUpdate from_int8 = fl::deserialize_update(int8_bytes);
  ASSERT_EQ(from_int8.state.size(), update.state.size());
  EXPECT_EQ(from_int8.weight, update.weight);
  // Quantization noise scales with the block ranges; bound it relative to
  // the state's own norm (~1% of a unit-Gaussian state is ample).
  EXPECT_LT(from_int8.state.l2_distance(update.state),
            0.02f * update.state.norm());
  EXPECT_LT(static_cast<double>(int8_bytes.size()),
            static_cast<double>(f32_size) * 0.3);

  EXPECT_EQ(fl::peek_update_codec(fl::serialize_update(update)), Codec::kF32);
}

TEST(UpdateWire, TruncationFuzzNewCodecs) {
  const nn::ModelState broadcast(random_values(19, 52, 1.0f));
  const fl::ClientUpdate update = sample_update(53);
  for (const auto& bytes :
       {fl::serialize_update(update, Codec::kTopK16, &broadcast, 4),
        fl::serialize_update(update, Codec::kInt8A)}) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<std::uint8_t> prefix(bytes.begin(),
                                             bytes.begin() + len);
      EXPECT_THROW(fl::deserialize_update(prefix, &broadcast), CheckError)
          << "prefix of length " << len;
    }
  }
}

// --- Router: shared-payload accounting and concurrent reads -----------------

TEST(Router, SharedBroadcastCountsPhysicalBytesOnce) {
  Router router(2);
  constexpr int kClients = 8;
  for (int e = 0; e < kClients; ++e) {
    router.register_endpoint(e, [](const Message&) {});
  }
  const Payload snapshot{std::vector<std::uint8_t>(1000, 0x5A)};
  for (int e = 0; e < kClients; ++e) {
    Message request;
    request.receiver = e;
    request.payload = snapshot;  // refcount bump, same buffer
    router.send(std::move(request));
  }
  const TrafficStats stats = router.stats();
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.logical_bytes,
            static_cast<std::uint64_t>(kClients) *
                (1000 + Message::kHeaderBytes));
  // Payload bytes hit the wire once; later sends cost only the header.
  EXPECT_EQ(stats.physical_bytes,
            1000 + static_cast<std::uint64_t>(kClients) * Message::kHeaderBytes);
  EXPECT_EQ(stats.broadcast_serializations, 1u);
  EXPECT_EQ(stats.collect_serializations, 0u);
  EXPECT_EQ(stats.broadcast_bytes, stats.logical_bytes);
  EXPECT_EQ(stats.collected_bytes, 0u);
}

TEST(Router, TrafficStatsDifferenceIsComponentWise) {
  Router router(1);
  router.register_endpoint(0, [](const Message&) {});
  Message first;
  first.receiver = 0;
  first.payload = std::vector<std::uint8_t>(100, 1);
  router.send(std::move(first));
  const TrafficStats before = router.stats();
  Message second;
  second.receiver = 0;
  second.payload = std::vector<std::uint8_t>(60, 2);
  router.send(std::move(second));
  const TrafficStats delta = router.stats() - before;
  EXPECT_EQ(delta.messages, 1u);
  EXPECT_EQ(delta.logical_bytes, 60 + Message::kHeaderBytes);
  EXPECT_EQ(delta.physical_bytes, 60 + Message::kHeaderBytes);
  EXPECT_EQ(delta.broadcast_serializations, 1u);
}

TEST(Router, ConcurrentHandlersReadOneSharedBufferSafely) {
  // The zero-copy contract: many pool threads read the same immutable buffer
  // concurrently with no synchronization beyond the refcount. Run under TSan
  // via calibre_concurrency_tests.
  Router router(4);
  constexpr int kClients = 16;
  const std::vector<std::uint8_t> blob(4096, 0x3C);
  std::uint64_t expected_sum = 0;
  for (const std::uint8_t b : blob) expected_sum += b;
  for (int e = 0; e < kClients; ++e) {
    router.register_endpoint(e, [&router, e](const Message& request) {
      std::uint64_t sum = 0;
      for (const std::uint8_t b : request.payload.bytes()) sum += b;
      Message response;
      response.type = MessageType::kTrainResponse;
      response.sender = e;
      response.receiver = kServerEndpoint;
      response.round = static_cast<int>(sum & 0x7FFFFFFF);
      router.send(std::move(response));
    });
  }
  const Payload snapshot{std::vector<std::uint8_t>(blob)};
  for (int e = 0; e < kClients; ++e) {
    Message request;
    request.receiver = e;
    request.payload = snapshot;
    router.send(std::move(request));
  }
  for (int i = 0; i < kClients; ++i) {
    const auto response =
        router.server_mailbox().pop_for(std::chrono::seconds(60));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(static_cast<std::uint64_t>(response->round),
              expected_sum & 0x7FFFFFFF);
  }
  EXPECT_EQ(router.stats().broadcast_serializations, 1u);
}

// --- heterogeneous device classes + availability schedule -------------------

TEST(Router, FaultProfilesRouteByDeviceClass) {
  Router router(2);
  std::atomic<int> handler_runs{0};
  for (int e = 0; e < 6; ++e) {
    router.register_endpoint(e, [&router, &handler_runs, e](const Message&) {
      ++handler_runs;
      Message response;
      response.type = MessageType::kTrainResponse;
      response.sender = e;
      response.receiver = kServerEndpoint;
      router.send(std::move(response));
    });
  }
  FaultConfig broken;
  broken.failure_rate = 1.0f;
  broken.seed = 9;
  FaultConfig healthy;
  healthy.seed = 9;
  // Even endpoints are class 0 (always fail), odd ones class 1 (never).
  router.set_fault_profiles({broken, healthy},
                            [](int e) { return static_cast<std::size_t>(e % 2); });
  for (int e = 0; e < 6; ++e) {
    Message request;
    request.receiver = e;
    router.send(std::move(request));
  }
  int errors = 0;
  for (int i = 0; i < 6; ++i) {
    const auto reply =
        router.server_mailbox().pop_for(std::chrono::seconds(30));
    ASSERT_TRUE(reply.has_value());
    if (reply->type == MessageType::kTrainError) {
      EXPECT_EQ(reply->sender % 2, 0) << "healthy class produced an error";
      ++errors;
    } else {
      EXPECT_EQ(reply->sender % 2, 1);
    }
  }
  EXPECT_EQ(errors, 3);
  EXPECT_EQ(handler_runs.load(), 3);
}

TEST(Router, AvailabilityScheduleIsOfflineForWholeRounds) {
  // duty 0.5 over a 2-round period: every endpoint alternates online /
  // offline with a per-endpoint phase. Offline dispatches fail before the
  // handler with the dedicated error text, and a retry in the same round
  // keeps failing — the schedule ignores the attempt counter on purpose.
  Router router(2);
  std::atomic<int> handler_runs{0};
  router.register_endpoint(7, [&router, &handler_runs](const Message& m) {
    ++handler_runs;
    Message response;
    response.type = MessageType::kTrainResponse;
    response.sender = 7;
    response.receiver = kServerEndpoint;
    response.round = m.round;
    router.send(std::move(response));
  });
  FaultConfig fault;
  fault.seed = 33;
  fault.duty_cycle = 0.5f;
  fault.period_rounds = 2;
  router.set_fault_injection(fault);
  std::vector<bool> online_by_round;
  for (int round = 0; round < 6; ++round) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      Message request;
      request.receiver = 7;
      request.round = round;
      router.send(std::move(request));
      const auto reply =
          router.server_mailbox().pop_for(std::chrono::seconds(30));
      ASSERT_TRUE(reply.has_value());
      const bool online = reply->type == MessageType::kTrainResponse;
      if (!online) {
        EXPECT_EQ(Router::error_text(*reply), kOfflineErrorText);
      }
      if (attempt == 0) {
        online_by_round.push_back(online);
      } else {
        EXPECT_EQ(online, online_by_round.back())
            << "round " << round << ": availability flipped between attempts";
      }
    }
  }
  // duty 0.5, period 2: exactly one online round per period, so 3 of 6.
  int online_rounds = 0;
  for (const bool online : online_by_round) online_rounds += online ? 1 : 0;
  EXPECT_EQ(online_rounds, 3);
  EXPECT_EQ(handler_runs.load(), 2 * online_rounds);
}

TEST(Router, RejectsInvalidFaultConfigs) {
  Router router(1);
  FaultConfig fault;
  fault.failure_rate = 1.5f;
  EXPECT_THROW(router.set_fault_injection(fault), CheckError);
  fault.failure_rate = 0.0f;
  fault.latency_ms = -1;
  EXPECT_THROW(router.set_fault_injection(fault), CheckError);
  fault.latency_ms = 0;
  fault.duty_cycle = 0.5f;  // needs period_rounds > 0
  EXPECT_THROW(router.set_fault_injection(fault), CheckError);
  fault.duty_cycle = 1.0f;
  EXPECT_THROW(router.set_fault_profiles({}, [](int) { return 0u; }),
               CheckError);
}

// Regression for injected latency parking pool workers: with ONE pool
// thread and per-dispatch delays up to 300 ms, eight dispatches used to
// sleep back-to-back on that thread (~ sum of the delays). Delays now wait
// on the TimerQueue and only the handler runs on the pool, so the batch
// completes in roughly max(delay), far under the serialized sum.
TEST(Router, InjectedLatencyDoesNotSerializeOnPoolWorkers) {
  Router router(1);
  constexpr int kDispatches = 8;
  router.register_endpoint(0, [&router](const Message& m) {
    Message response;
    response.type = MessageType::kTrainResponse;
    response.sender = 0;
    response.receiver = kServerEndpoint;
    response.round = m.round;
    router.send(std::move(response));
  });
  FaultConfig fault;
  fault.latency_ms = 300;
  fault.seed = 5;
  router.set_fault_injection(fault);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kDispatches; ++i) {
    Message request;
    request.receiver = 0;
    request.round = i;
    router.send(std::move(request));
  }
  for (int i = 0; i < kDispatches; ++i) {
    const auto reply =
        router.server_mailbox().pop_for(std::chrono::seconds(30));
    ASSERT_TRUE(reply.has_value());
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Serialized sleeps would take the sum of 8 uniform [0, 300] ms draws
  // (~1200 ms expected; this seed's draws sum well above the bound below).
  // Concurrent timers finish in max(delay) <= 300 ms plus slack.
  EXPECT_LT(elapsed.count(), 900) << "delays appear to serialize";
}

// --- TimerQueue (the designated sleep-free deferral point) ------------------

TEST(TimerQueue, FiresInDeadlineOrderNotScheduleOrder) {
  common::TimerQueue timer;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> order;
  auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(mutex);
    order.push_back(id);
    cv.notify_all();
  };
  // Scheduled first but due last: a sleeping implementation would fire 1
  // before 2; the deadline-ordered queue must not.
  timer.schedule_after(std::chrono::milliseconds(400), [&] { record(1); });
  timer.schedule_after(std::chrono::milliseconds(40), [&] { record(2); });
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return order.size() == 2; }));
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(TimerQueue, DestructionFiresEveryPendingCallback) {
  std::atomic<int> fired{0};
  {
    common::TimerQueue timer;
    for (int i = 0; i < 5; ++i) {
      // Hours out: only the destructor's early-fire can run these today.
      timer.schedule_after(std::chrono::hours(2), [&] { ++fired; });
    }
    EXPECT_EQ(timer.pending(), 5u);
  }
  EXPECT_EQ(fired.load(), 5) << "shutdown dropped scheduled callbacks";
}

TEST(TimerQueue, RejectsNullCallbacksAndNegativeDelayRunsPromptly) {
  common::TimerQueue timer;
  EXPECT_THROW(timer.schedule_after(std::chrono::milliseconds(1), nullptr),
               CheckError);
  std::mutex mutex;
  std::condition_variable cv;
  bool ran = false;
  timer.schedule_after(std::chrono::milliseconds(-50), [&] {
    std::lock_guard<std::mutex> lock(mutex);
    ran = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  EXPECT_TRUE(
      cv.wait_for(lock, std::chrono::seconds(30), [&] { return ran; }));
}

}  // namespace
}  // namespace calibre::comm
