// Tests for the pooled tensor storage layer (tensor/pool.h) and the fused
// graph layer that rides on it: recycling correctness (no stale reads),
// per-thread cache isolation across a worker pool, the reset() live-buffer
// guard, the CALIBRE_TENSOR_POOL kill-switch semantics, fused-vs-composite
// graph agreement, and bitwise determinism of a fixed-seed Calibre run with
// the pool on vs. off.
#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "core/calibre.h"
#include "data/synthetic.h"
#include "fl/runner.h"
#include "tensor/pool.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace calibre {
namespace {

using tensor::Tensor;

// The pool switch and the fused-graph switch are process-wide; every test
// that flips one restores it so the rest of the suite sees the defaults.
struct PoolGuard {
  bool prev = tensor::pool::enabled();
  ~PoolGuard() { tensor::pool::set_enabled(prev); }
};

struct FusedGuard {
  bool prev = ag::fused_graphs();
  ~FusedGuard() { ag::set_fused_graphs(prev); }
};

// The main test thread holds long-lived tensors (gtest fixtures, statics),
// so pool-lifecycle assertions run on a fresh thread whose cache starts
// empty and dies with the thread. Exceptions propagate to the caller.
template <typename Fn>
void on_fresh_thread(Fn&& fn) {
  std::exception_ptr error;
  std::thread worker([&] {
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
  });
  worker.join();
  if (error) std::rethrow_exception(error);
}

TEST(TensorPool, RecycledBuffersHonorTheZeroInitContract) {
  PoolGuard guard;
  on_fresh_thread([] {
    tensor::pool::set_enabled(true);
    tensor::pool::reset_thread_stats();
    {
      Tensor poisoned(32, 32);
      poisoned.fill(123.0f);
    }  // released into the free list holding 123s
    Tensor zeros(32, 32);  // same bucket: must be served from the free list
    const tensor::pool::Stats stats = tensor::pool::thread_stats();
    EXPECT_GE(stats.hits, 1u) << "expected the poisoned buffer to recycle";
    for (std::int64_t i = 0; i < zeros.size(); ++i) {
      ASSERT_EQ(zeros.data()[i], 0.0f) << "stale data at " << i;
    }
  });
}

TEST(TensorPool, FreeListsServeSameBucketRequests) {
  on_fresh_thread([] {
    tensor::pool::set_enabled(true);
    tensor::pool::reset_thread_stats();
    { Tensor a(64, 1); }  // 64-float bucket: miss, then release
    { Tensor b(33, 1); }  // rounds up to the same 64-float bucket: hit
    const tensor::pool::Stats stats = tensor::pool::thread_stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(tensor::pool::outstanding(), 0);
  });
}

// Regression for the bucket math at class boundaries: a request one past a
// power of two must roll into the next class, an exact power of two must
// share the class with the rounded-up requests below it, and the floor
// class stays distinct. Guards the shift arithmetic in bucket_index /
// bucket_floats against off-by-one rewrites.
TEST(TensorPool, BucketMathAtPowerOfTwoBoundaries) {
  on_fresh_thread([] {
    tensor::pool::set_enabled(true);
    tensor::pool::reset_thread_stats();
    float* nine = tensor::pool::acquire(9);  // miss: 16-float class
    tensor::pool::release(nine, 9);
    float* sixteen = tensor::pool::acquire(16);  // same class: hit
    tensor::pool::release(sixteen, 16);
    float* seventeen = tensor::pool::acquire(17);  // next class: miss
    tensor::pool::release(seventeen, 17);
    float* eight = tensor::pool::acquire(8);  // floor class: miss
    tensor::pool::release(eight, 8);
    const tensor::pool::Stats stats = tensor::pool::thread_stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(tensor::pool::outstanding(), 0);
  });
}

TEST(TensorPool, ResetIsRejectedWhileBuffersAreLive) {
  on_fresh_thread([] {
    tensor::pool::set_enabled(true);
    {
      Tensor live(8, 8);
      EXPECT_GT(tensor::pool::outstanding(), 0);
      EXPECT_THROW(tensor::pool::reset(), CheckError);
    }
    // All buffers returned: reset now succeeds and empties the cache.
    tensor::pool::reset();
    EXPECT_EQ(tensor::pool::thread_stats().cached_bytes, 0u);
  });
}

TEST(TensorPool, ThreadCachesDoNotAliasAcrossWorkerPool) {
  // Two workers acquire buffers concurrently and hold them while both
  // address sets are collected: per-thread free lists must never hand the
  // same storage to two threads.
  common::ThreadPool workers(2);
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::vector<std::set<const float*>> held(2);

  const auto task = [&](int which) {
    tensor::pool::reset_thread_stats();
    constexpr std::size_t kFloats = 256;
    std::vector<float*> buffers;
    for (int i = 0; i < 8; ++i) {
      buffers.push_back(tensor::pool::acquire(kFloats));
    }
    EXPECT_EQ(tensor::pool::thread_stats().misses, 8u)
        << "worker stats must count only this thread's traffic";
    {
      std::unique_lock<std::mutex> lock(mutex);
      for (const float* p : buffers) held[which].insert(p);
      ++arrived;
      cv.notify_all();
      cv.wait(lock, [&] { return arrived == 2; });  // both sets live at once
    }
    for (float* p : buffers) tensor::pool::release(p, kFloats);
  };
  auto f0 = workers.submit([&] { task(0); });
  auto f1 = workers.submit([&] { task(1); });
  f0.get();
  f1.get();

  std::vector<const float*> overlap;
  std::set_intersection(held[0].begin(), held[0].end(), held[1].begin(),
                        held[1].end(), std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty())
      << overlap.size() << " buffers were live on both threads at once";
}

TEST(TensorPool, KillSwitchRestoresSeedStorageSemantics) {
  PoolGuard guard;
  on_fresh_thread([] {
    tensor::pool::set_enabled(false);
    tensor::pool::reset_thread_stats();
    { Tensor t(16, 16); }
    { Tensor u(16, 16); }  // must NOT recycle: caching is off
    const tensor::pool::Stats stats = tensor::pool::thread_stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.releases, 0u);
    // Disabled acquisitions are zeroed (std::vector value-init, the seed's
    // behavior) even through the uninit fast path.
    Tensor raw = Tensor::uninit(16, 16);
    for (std::int64_t i = 0; i < raw.size(); ++i) {
      ASSERT_EQ(raw.data()[i], 0.0f);
    }
  });
}

// --- fused vs. composite graphs ---------------------------------------------

// Builds a small graph with `build`, runs backward from a scalar loss, and
// returns {loss value, every leaf gradient} for one fused_graphs setting.
template <typename Build>
std::vector<std::vector<float>> eval_graph(bool fused, Build&& build) {
  FusedGuard guard;
  ag::set_fused_graphs(fused);
  std::vector<ag::VarPtr> leaves;
  const ag::VarPtr loss = build(leaves);
  ag::backward(loss);
  std::vector<std::vector<float>> out;
  out.push_back(loss->value.to_vector());
  for (const ag::VarPtr& leaf : leaves) out.push_back(leaf->grad.to_vector());
  return out;
}

template <typename Build>
void expect_fused_matches_composite(Build&& build, float tol) {
  const auto fused = eval_graph(true, build);
  const auto composite = eval_graph(false, build);
  ASSERT_EQ(fused.size(), composite.size());
  for (std::size_t t = 0; t < fused.size(); ++t) {
    ASSERT_EQ(fused[t].size(), composite[t].size()) << "tensor " << t;
    for (std::size_t i = 0; i < fused[t].size(); ++i) {
      EXPECT_NEAR(fused[t][i], composite[t][i], tol)
          << "tensor " << t << " element " << i;
    }
  }
}

TEST(FusedGraphs, LogSoftmaxMatchesComposite) {
  expect_fused_matches_composite(
      [](std::vector<ag::VarPtr>& leaves) {
        rng::Generator gen(11);
        const auto x = ag::parameter(Tensor::randn(5, 7, gen));
        leaves = {x};
        return ag::mean_all(ag::square(ag::log_softmax(x)));
      },
      1e-4f);
}

TEST(FusedGraphs, SoftmaxMatchesComposite) {
  expect_fused_matches_composite(
      [](std::vector<ag::VarPtr>& leaves) {
        rng::Generator gen(12);
        const auto x = ag::parameter(Tensor::randn(4, 9, gen));
        leaves = {x};
        return ag::mean_all(ag::square(ag::softmax(x)));
      },
      1e-5f);
}

TEST(FusedGraphs, L2NormalizeMatchesComposite) {
  expect_fused_matches_composite(
      [](std::vector<ag::VarPtr>& leaves) {
        rng::Generator gen(13);
        const auto x = ag::parameter(Tensor::randn(6, 8, gen));
        leaves = {x};
        return ag::mean_all(ag::square(ag::l2_normalize(x)));
      },
      1e-5f);
}

TEST(FusedGraphs, NtxentLogitsMatchesComposite) {
  expect_fused_matches_composite(
      [](std::vector<ag::VarPtr>& leaves) {
        rng::Generator gen(14);
        const auto z = ag::parameter(Tensor::randn(8, 6, gen));
        leaves = {z};
        const auto logits = ag::ntxent_logits(ag::l2_normalize(z), 0.5f);
        return ag::mean_all(ag::square(ag::softmax(logits)));
      },
      1e-4f);
}

TEST(FusedGraphs, AffineMatchesComposite) {
  expect_fused_matches_composite(
      [](std::vector<ag::VarPtr>& leaves) {
        rng::Generator gen(15);
        const auto x = ag::parameter(Tensor::randn(5, 4, gen));
        const auto w = ag::parameter(Tensor::randn(4, 3, gen));
        const auto b = ag::parameter(Tensor::randn(1, 3, gen));
        leaves = {x, w, b};
        return ag::mean_all(ag::square(ag::affine(x, w, b)));
      },
      1e-4f);
}

TEST(FusedGraphs, AffineWithoutBiasMatchesComposite) {
  expect_fused_matches_composite(
      [](std::vector<ag::VarPtr>& leaves) {
        rng::Generator gen(16);
        const auto x = ag::parameter(Tensor::randn(5, 4, gen));
        const auto w = ag::parameter(Tensor::randn(4, 3, gen));
        leaves = {x, w};
        return ag::mean_all(ag::square(ag::affine(x, w, nullptr)));
      },
      1e-4f);
}

TEST(FusedGraphs, LayerNormMatchesComposite) {
  expect_fused_matches_composite(
      [](std::vector<ag::VarPtr>& leaves) {
        rng::Generator gen(17);
        const auto x = ag::parameter(Tensor::randn(6, 10, gen));
        const auto gamma = ag::parameter(Tensor::rand_uniform(
            1, 10, gen, 0.5f, 1.5f));
        const auto beta = ag::parameter(Tensor::randn(1, 10, gen));
        leaves = {x, gamma, beta};
        return ag::mean_all(
            ag::square(ag::layer_norm(x, gamma, beta, 1e-5f)));
      },
      1e-4f);
}

// --- bitwise determinism ------------------------------------------------------

struct RunMetrics {
  std::vector<float> final_state;
  std::vector<double> accuracies;
};

// A fixed-seed 2-round SimCLR+Calibre federation driven directly through the
// Algorithm interface (client order fixed, no comm-layer timing), so the only
// varying input between invocations is the pool switch.
RunMetrics run_two_round_calibre(bool pooled) {
  tensor::pool::set_enabled(pooled);

  data::SyntheticConfig dataset_config = data::cifar10_like();
  dataset_config.train_samples = 240;
  dataset_config.test_samples = 120;
  const data::SyntheticDataset synth = data::make_synthetic(dataset_config);

  fl::FlConfig config;
  config.encoder.input_dim = synth.train.input_dim();
  config.num_classes = 10;
  config.rounds = 2;
  config.local_epochs = 1;
  config.batch_size = 16;
  config.seed = 99;
  core::Calibre algo(config, ssl::Kind::kSimClr);

  constexpr int kClients = 3;
  rng::Generator pool_gen(123);
  std::vector<Tensor> ssl_pools;
  for (int c = 0; c < kClients; ++c) {
    ssl_pools.push_back(
        Tensor::randn(48, config.encoder.input_dim, pool_gen));
  }

  nn::ModelState state = algo.initialize();
  for (int round = 0; round < config.rounds; ++round) {
    std::vector<fl::ClientUpdate> updates;
    for (int c = 0; c < kClients; ++c) {
      fl::ClientContext ctx;
      ctx.client_id = c;
      ctx.round = round;
      ctx.train = &synth.train;
      ctx.ssl_pool = &ssl_pools[static_cast<std::size_t>(c)];
      ctx.seed = fl::derive_seed(config.seed,
                                 static_cast<std::uint64_t>(round),
                                 static_cast<std::uint64_t>(c));
      updates.push_back(algo.local_update(state, ctx));
    }
    state = algo.aggregate(state, updates, round);
  }

  RunMetrics metrics;
  metrics.final_state = state.values();
  for (int c = 0; c < kClients; ++c) {
    fl::PersonalizationContext ctx;
    ctx.client_id = c;
    ctx.train = &synth.train;
    ctx.test = &synth.test;
    ctx.seed = fl::derive_seed(config.seed, 1000,
                               static_cast<std::uint64_t>(c));
    metrics.accuracies.push_back(algo.personalize(state, ctx));
  }
  return metrics;
}

TEST(TensorPool, FixedSeedCalibreRunIsBitwiseIdenticalPoolOnVsOff) {
  PoolGuard guard;
  const RunMetrics with_pool = run_two_round_calibre(/*pooled=*/true);
  const RunMetrics without_pool = run_two_round_calibre(/*pooled=*/false);

  ASSERT_EQ(with_pool.final_state.size(), without_pool.final_state.size());
  for (std::size_t i = 0; i < with_pool.final_state.size(); ++i) {
    ASSERT_EQ(with_pool.final_state[i], without_pool.final_state[i])
        << "final global state diverges at parameter " << i;
  }
  ASSERT_EQ(with_pool.accuracies.size(), without_pool.accuracies.size());
  for (std::size_t c = 0; c < with_pool.accuracies.size(); ++c) {
    EXPECT_EQ(with_pool.accuracies[c], without_pool.accuracies[c])
        << "personalized accuracy diverges for client " << c;
  }
}

}  // namespace
}  // namespace calibre
