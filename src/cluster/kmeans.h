// KMeans clustering — the prototype generator at the heart of Calibre
// (paper §IV-B "Prototype generation": pseudo labels via "a straightforward
// clustering algorithm, such as KMeans").
#pragma once

#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace calibre::cluster {

struct KMeansConfig {
  int k = 10;
  int max_iters = 25;
  // Convergence threshold on total centroid movement.
  float tolerance = 1e-4f;
};

struct KMeansResult {
  tensor::Tensor centroids;         // [k, D]
  std::vector<int> assignments;     // size N, values in [0, k)
  std::vector<int> cluster_sizes;   // size k
  // Mean distance of samples to their assigned centroid — Calibre's "local
  // divergence rate" is computed from exactly this quantity.
  float mean_distance = 0.0f;
  int iterations = 0;
};

// Lloyd's algorithm with k-means++ seeding. Empty clusters are reseeded to
// the point farthest from its centroid. k is clamped to the number of
// distinct rows available (k <= N).
KMeansResult kmeans(const tensor::Tensor& points, const KMeansConfig& config,
                    rng::Generator& gen);

// Assigns `points` to the nearest of `centroids`; returns assignments and
// (optionally) the mean distance via `mean_distance_out`.
std::vector<int> assign_to_centroids(const tensor::Tensor& points,
                                     const tensor::Tensor& centroids,
                                     float* mean_distance_out = nullptr);

// Mean of the rows of `points` selected by each cluster id (0..k-1). Empty
// clusters get a zero row.
tensor::Tensor cluster_means(const tensor::Tensor& points,
                             const std::vector<int>& assignments, int k);

}  // namespace calibre::cluster
