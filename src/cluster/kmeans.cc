#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace calibre::cluster {
namespace {

using tensor::Tensor;

float sq_dist_rows(const Tensor& a, std::int64_t i, const Tensor& b,
                   std::int64_t j) {
  double total = 0.0;
  for (std::int64_t c = 0; c < a.cols(); ++c) {
    const double d = static_cast<double>(a(i, c)) - b(j, c);
    total += d * d;
  }
  return static_cast<float>(total);
}

// k-means++ seeding: first centroid uniform, the rest proportional to the
// squared distance from the nearest chosen centroid.
Tensor seed_centroids(const Tensor& points, int k, rng::Generator& gen) {
  const std::int64_t n = points.rows();
  Tensor centroids(k, points.cols());
  std::vector<double> min_sq(static_cast<std::size_t>(n),
                             std::numeric_limits<double>::max());
  const std::int64_t first =
      static_cast<std::int64_t>(gen.uniform_index(static_cast<std::uint64_t>(n)));
  for (std::int64_t c = 0; c < points.cols(); ++c) {
    centroids(0, c) = points(first, c);
  }
  for (int chosen = 1; chosen < k; ++chosen) {
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      min_sq[static_cast<std::size_t>(i)] = std::min(
          min_sq[static_cast<std::size_t>(i)],
          static_cast<double>(sq_dist_rows(points, i, centroids, chosen - 1)));
      total += min_sq[static_cast<std::size_t>(i)];
    }
    // Degenerate input (fewer distinct points than k): fall back to a
    // uniform draw instead of a zero-weight categorical.
    const int next =
        total > 0.0
            ? gen.categorical(min_sq)
            : static_cast<int>(gen.uniform_index(static_cast<std::uint64_t>(n)));
    for (std::int64_t c = 0; c < points.cols(); ++c) {
      centroids(chosen, c) = points(next, c);
    }
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const tensor::Tensor& points, const KMeansConfig& config,
                    rng::Generator& gen) {
  const std::int64_t n = points.rows();
  CALIBRE_CHECK_MSG(n > 0, "kmeans on empty input");
  const int k = std::max(1, std::min<int>(config.k, static_cast<int>(n)));

  KMeansResult result;
  result.centroids = seed_centroids(points, k, gen);
  result.assignments.assign(static_cast<std::size_t>(n), 0);
  result.cluster_sizes.assign(static_cast<std::size_t>(k), 0);

  for (int iter = 0; iter < config.max_iters; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    result.assignments = assign_to_centroids(points, result.centroids);
    // Update step.
    Tensor fresh = cluster_means(points, result.assignments, k);
    std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0);
    for (const int a : result.assignments) {
      ++result.cluster_sizes[static_cast<std::size_t>(a)];
    }
    // Reseed empty clusters to the point farthest from its own centroid.
    for (int c = 0; c < k; ++c) {
      if (result.cluster_sizes[static_cast<std::size_t>(c)] > 0) continue;
      std::int64_t farthest = 0;
      float best = -1.0f;
      for (std::int64_t i = 0; i < n; ++i) {
        const float d = sq_dist_rows(
            points, i, result.centroids,
            result.assignments[static_cast<std::size_t>(i)]);
        if (d > best) {
          best = d;
          farthest = i;
        }
      }
      for (std::int64_t col = 0; col < points.cols(); ++col) {
        fresh(c, col) = points(farthest, col);
      }
    }
    // Convergence check on centroid movement.
    double movement = 0.0;
    for (int c = 0; c < k; ++c) {
      movement += std::sqrt(sq_dist_rows(fresh, c, result.centroids, c));
    }
    result.centroids = std::move(fresh);
    if (movement < config.tolerance) break;
  }

  result.assignments =
      assign_to_centroids(points, result.centroids, &result.mean_distance);
  std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0);
  for (const int a : result.assignments) {
    ++result.cluster_sizes[static_cast<std::size_t>(a)];
  }
  return result;
}

std::vector<int> assign_to_centroids(const tensor::Tensor& points,
                                     const tensor::Tensor& centroids,
                                     float* mean_distance_out) {
  CALIBRE_CHECK(points.cols() == centroids.cols());
  CALIBRE_CHECK(centroids.rows() > 0);
  std::vector<int> assignments(static_cast<std::size_t>(points.rows()), 0);
  double total_distance = 0.0;
  for (std::int64_t i = 0; i < points.rows(); ++i) {
    float best = std::numeric_limits<float>::max();
    int arg = 0;
    for (std::int64_t c = 0; c < centroids.rows(); ++c) {
      const float d = sq_dist_rows(points, i, centroids, c);
      if (d < best) {
        best = d;
        arg = static_cast<int>(c);
      }
    }
    assignments[static_cast<std::size_t>(i)] = arg;
    total_distance += std::sqrt(static_cast<double>(best));
  }
  if (mean_distance_out != nullptr) {
    *mean_distance_out =
        points.rows() == 0
            ? 0.0f
            : static_cast<float>(total_distance / points.rows());
  }
  return assignments;
}

tensor::Tensor cluster_means(const tensor::Tensor& points,
                             const std::vector<int>& assignments, int k) {
  CALIBRE_CHECK(static_cast<std::int64_t>(assignments.size()) == points.rows());
  tensor::Tensor means(k, points.cols());
  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  for (std::int64_t i = 0; i < points.rows(); ++i) {
    const int a = assignments[static_cast<std::size_t>(i)];
    CALIBRE_CHECK(a >= 0 && a < k);
    ++counts[static_cast<std::size_t>(a)];
    for (std::int64_t c = 0; c < points.cols(); ++c) {
      means(a, c) += points(i, c);
    }
  }
  for (int a = 0; a < k; ++a) {
    const int count = counts[static_cast<std::size_t>(a)];
    if (count > 0) {
      for (std::int64_t c = 0; c < points.cols(); ++c) {
        means(a, c) /= static_cast<float>(count);
      }
    }
  }
  return means;
}

}  // namespace calibre::cluster
