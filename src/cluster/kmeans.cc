#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace calibre::cluster {
namespace {

using tensor::Tensor;

// Argmin scan over a [N,K] distance matrix: writes the best centroid per row
// and (optionally) the best squared distance. Raw row pointers — this runs
// on every KMeans iteration and every prototype assignment.
void argmin_rows(const Tensor& dists, std::vector<int>& assignments,
                 std::vector<float>* best_sq) {
  const std::int64_t n = dists.rows();
  const std::int64_t k = dists.cols();
  assignments.assign(static_cast<std::size_t>(n), 0);
  if (best_sq != nullptr) {
    best_sq->assign(static_cast<std::size_t>(n), 0.0f);
  }
  const float* dd = dists.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = dd + i * k;
    float best = row[0];
    std::int64_t arg = 0;
    for (std::int64_t c = 1; c < k; ++c) {
      if (row[c] < best) {
        best = row[c];
        arg = c;
      }
    }
    assignments[static_cast<std::size_t>(i)] = static_cast<int>(arg);
    if (best_sq != nullptr) (*best_sq)[static_cast<std::size_t>(i)] = best;
  }
}

// k-means++ seeding: first centroid uniform, the rest proportional to the
// squared distance from the nearest chosen centroid. Each round folds the
// distances to the newest centroid (one GEMM-based pairwise column) into
// the running minimum.
Tensor seed_centroids(const Tensor& points, int k, rng::Generator& gen) {
  const std::int64_t n = points.rows();
  Tensor centroids(k, points.cols());
  std::vector<double> min_sq(static_cast<std::size_t>(n),
                             std::numeric_limits<double>::max());
  const std::int64_t first =
      static_cast<std::int64_t>(gen.uniform_index(static_cast<std::uint64_t>(n)));
  std::copy(points.data() + first * points.cols(),
            points.data() + (first + 1) * points.cols(), centroids.data());
  for (int chosen = 1; chosen < k; ++chosen) {
    const Tensor newest = tensor::slice_rows(centroids, chosen - 1, chosen);
    const Tensor dists = tensor::pairwise_sq_dists(points, newest);  // [N,1]
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      min_sq[static_cast<std::size_t>(i)] =
          std::min(min_sq[static_cast<std::size_t>(i)],
                   static_cast<double>(dists.data()[i]));
      total += min_sq[static_cast<std::size_t>(i)];
    }
    // Degenerate input (fewer distinct points than k): fall back to a
    // uniform draw instead of a zero-weight categorical.
    const std::int64_t next =
        total > 0.0
            ? gen.categorical(min_sq)
            : static_cast<std::int64_t>(
                  gen.uniform_index(static_cast<std::uint64_t>(n)));
    std::copy(points.data() + next * points.cols(),
              points.data() + (next + 1) * points.cols(),
              centroids.data() + chosen * points.cols());
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const tensor::Tensor& points, const KMeansConfig& config,
                    rng::Generator& gen) {
  const std::int64_t n = points.rows();
  CALIBRE_CHECK_MSG(n > 0, "kmeans on empty input");
  const int k = std::max(1, std::min<int>(config.k, static_cast<int>(n)));

  KMeansResult result;
  result.centroids = seed_centroids(points, k, gen);
  result.assignments.assign(static_cast<std::size_t>(n), 0);
  result.cluster_sizes.assign(static_cast<std::size_t>(k), 0);

  std::vector<float> best_sq;
  for (int iter = 0; iter < config.max_iters; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: one GEMM-based [N,K] distance matrix per iteration;
    // the per-point best distance is reused by the empty-cluster reseed.
    const Tensor dists = tensor::pairwise_sq_dists(points, result.centroids);
    argmin_rows(dists, result.assignments, &best_sq);
    // Update step.
    Tensor fresh = cluster_means(points, result.assignments, k);
    std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0);
    for (const int a : result.assignments) {
      ++result.cluster_sizes[static_cast<std::size_t>(a)];
    }
    // Reseed empty clusters to the point farthest from its own centroid.
    for (int c = 0; c < k; ++c) {
      if (result.cluster_sizes[static_cast<std::size_t>(c)] > 0) continue;
      const std::int64_t farthest =
          std::max_element(best_sq.begin(), best_sq.end()) - best_sq.begin();
      std::copy(points.data() + farthest * points.cols(),
                points.data() + (farthest + 1) * points.cols(),
                fresh.data() + c * points.cols());
    }
    // Convergence check on centroid movement.
    double movement = 0.0;
    for (int c = 0; c < k; ++c) {
      const float* old_row = result.centroids.data() + c * points.cols();
      const float* new_row = fresh.data() + c * points.cols();
      double sq = 0.0;
      for (std::int64_t col = 0; col < points.cols(); ++col) {
        const double d = static_cast<double>(old_row[col]) - new_row[col];
        sq += d * d;
      }
      movement += std::sqrt(sq);
    }
    result.centroids = std::move(fresh);
    if (movement < config.tolerance) break;
  }

  result.assignments =
      assign_to_centroids(points, result.centroids, &result.mean_distance);
  std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0);
  for (const int a : result.assignments) {
    ++result.cluster_sizes[static_cast<std::size_t>(a)];
  }
  return result;
}

std::vector<int> assign_to_centroids(const tensor::Tensor& points,
                                     const tensor::Tensor& centroids,
                                     float* mean_distance_out) {
  CALIBRE_CHECK(points.cols() == centroids.cols());
  CALIBRE_CHECK(centroids.rows() > 0);
  const Tensor dists = tensor::pairwise_sq_dists(points, centroids);
  std::vector<int> assignments;
  std::vector<float> best_sq;
  argmin_rows(dists, assignments,
              mean_distance_out != nullptr ? &best_sq : nullptr);
  if (mean_distance_out != nullptr) {
    double total_distance = 0.0;
    for (const float d : best_sq) {
      total_distance += std::sqrt(static_cast<double>(d));
    }
    *mean_distance_out =
        points.rows() == 0
            ? 0.0f
            : static_cast<float>(total_distance / points.rows());
  }
  return assignments;
}

tensor::Tensor cluster_means(const tensor::Tensor& points,
                             const std::vector<int>& assignments, int k) {
  CALIBRE_CHECK(static_cast<std::int64_t>(assignments.size()) == points.rows());
  tensor::Tensor means(k, points.cols());
  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  const std::int64_t cols = points.cols();
  for (std::int64_t i = 0; i < points.rows(); ++i) {
    const int a = assignments[static_cast<std::size_t>(i)];
    CALIBRE_CHECK(a >= 0 && a < k);
    ++counts[static_cast<std::size_t>(a)];
    const float* prow = points.data() + i * cols;
    float* mrow = means.data() + a * cols;
    for (std::int64_t c = 0; c < cols; ++c) mrow[c] += prow[c];
  }
  for (int a = 0; a < k; ++a) {
    const int count = counts[static_cast<std::size_t>(a)];
    if (count > 0) {
      const float inv = 1.0f / static_cast<float>(count);
      float* mrow = means.data() + static_cast<std::int64_t>(a) * cols;
      for (std::int64_t c = 0; c < cols; ++c) mrow[c] *= inv;
    }
  }
  return means;
}

}  // namespace calibre::cluster
