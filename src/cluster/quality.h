// Cluster-quality metrics used to quantify what the paper's t-SNE figures
// show visually: how cleanly representations separate into class clusters.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace calibre::cluster {

// Mean silhouette coefficient over all points, in [-1, 1]; higher means
// tighter, better separated clusters. Labels < 0 are ignored. Returns 0 when
// fewer than two labeled clusters are present.
double silhouette_score(const tensor::Tensor& points,
                        const std::vector<int>& labels);

// Purity of `clusters` against ground-truth `labels`: the fraction of points
// whose cluster's majority label matches their own. In (0, 1].
double cluster_purity(const std::vector<int>& clusters,
                      const std::vector<int>& labels);

// Normalized mutual information between two labelings, in [0, 1].
double normalized_mutual_information(const std::vector<int>& a,
                                     const std::vector<int>& b);

}  // namespace calibre::cluster
