#include "cluster/quality.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/check.h"

namespace calibre::cluster {
namespace {

double dist_rows(const tensor::Tensor& points, std::int64_t i,
                 std::int64_t j) {
  double total = 0.0;
  for (std::int64_t c = 0; c < points.cols(); ++c) {
    const double d = static_cast<double>(points(i, c)) - points(j, c);
    total += d * d;
  }
  return std::sqrt(total);
}

// Remaps arbitrary label values to dense ids [0, k).
std::vector<int> densify(const std::vector<int>& labels, int& k_out) {
  std::map<int, int> mapping;
  std::vector<int> dense(labels.size(), -1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) continue;
    auto [it, inserted] =
        mapping.emplace(labels[i], static_cast<int>(mapping.size()));
    dense[i] = it->second;
  }
  k_out = static_cast<int>(mapping.size());
  return dense;
}

}  // namespace

double silhouette_score(const tensor::Tensor& points,
                        const std::vector<int>& labels) {
  CALIBRE_CHECK(static_cast<std::int64_t>(labels.size()) == points.rows());
  int k = 0;
  const std::vector<int> dense = densify(labels, k);
  if (k < 2) return 0.0;

  const std::int64_t n = points.rows();
  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  for (const int label : dense) {
    if (label >= 0) ++counts[static_cast<std::size_t>(label)];
  }

  double total_s = 0.0;
  std::int64_t scored = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int own = dense[static_cast<std::size_t>(i)];
    if (own < 0) continue;
    if (counts[static_cast<std::size_t>(own)] < 2) continue;  // singleton
    // Mean distance per cluster.
    std::vector<double> sums(static_cast<std::size_t>(k), 0.0);
    for (std::int64_t j = 0; j < n; ++j) {
      const int other = dense[static_cast<std::size_t>(j)];
      if (other < 0 || j == i) continue;
      sums[static_cast<std::size_t>(other)] += dist_rows(points, i, j);
    }
    const double a =
        sums[static_cast<std::size_t>(own)] /
        (counts[static_cast<std::size_t>(own)] - 1);
    double b = std::numeric_limits<double>::max();
    for (int c = 0; c < k; ++c) {
      if (c == own || counts[static_cast<std::size_t>(c)] == 0) continue;
      b = std::min(b, sums[static_cast<std::size_t>(c)] /
                          counts[static_cast<std::size_t>(c)]);
    }
    if (b == std::numeric_limits<double>::max()) continue;
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total_s += (b - a) / denom;
    }
    ++scored;
  }
  return scored == 0 ? 0.0 : total_s / static_cast<double>(scored);
}

double cluster_purity(const std::vector<int>& clusters,
                      const std::vector<int>& labels) {
  CALIBRE_CHECK(clusters.size() == labels.size());
  CALIBRE_CHECK(!clusters.empty());
  std::map<int, std::map<int, int>> histogram;  // cluster -> label -> count
  int total = 0;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (labels[i] < 0) continue;
    ++histogram[clusters[i]][labels[i]];
    ++total;
  }
  if (total == 0) return 0.0;
  int majority_total = 0;
  for (const auto& [cluster, label_counts] : histogram) {
    int best = 0;
    for (const auto& [label, count] : label_counts) best = std::max(best, count);
    majority_total += best;
  }
  return static_cast<double>(majority_total) / total;
}

double normalized_mutual_information(const std::vector<int>& a,
                                     const std::vector<int>& b) {
  CALIBRE_CHECK(a.size() == b.size());
  CALIBRE_CHECK(!a.empty());
  std::map<std::pair<int, int>, double> joint;
  std::map<int, double> pa;
  std::map<int, double> pb;
  double n = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 0 || b[i] < 0) continue;
    joint[{a[i], b[i]}] += 1.0;
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    n += 1.0;
  }
  if (n == 0.0) return 0.0;
  for (auto& [key, value] : joint) value /= n;
  for (auto& [key, value] : pa) value /= n;
  for (auto& [key, value] : pb) value /= n;

  double mi = 0.0;
  for (const auto& [key, pxy] : joint) {
    const double px = pa[key.first];
    const double py = pb[key.second];
    if (pxy > 0.0) mi += pxy * std::log(pxy / (px * py));
  }
  double ha = 0.0;
  for (const auto& [key, p] : pa) {
    if (p > 0.0) ha -= p * std::log(p);
  }
  double hb = 0.0;
  for (const auto& [key, p] : pb) {
    if (p > 0.0) hb -= p * std::log(p);
  }
  if (ha <= 0.0 || hb <= 0.0) return 0.0;
  return mi / std::sqrt(ha * hb);
}

}  // namespace calibre::cluster
