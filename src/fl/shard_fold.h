// Sharded parallel fold trees for streaming aggregation.
//
// The runner's reorder buffer releases replies in selection-rank order, but
// decoding a reply (codec decompress + delta reconstruction) and folding it
// are the round's serial bottleneck: both ran on the server thread. A
// ShardedFolder splits that work across N shard aggregators: the server
// thread routes each released rank to shard (rank % N) — a cheap refcounted
// payload handoff — and shard workers decode + fold concurrently. At
// collect() the shard partials merge in ascending shard order into a single
// root aggregator, which the runner finish()es exactly as it finished the
// flat fold.
//
// Determinism: every native fold accumulates in exact fixed-point
// (flapi/fixed_accum.h), so the merged result is bit-identical to the flat
// single-threaded fold for ANY shard count and any schedule — the hash
// check in bench_hierarchy gates on exactly this. Per-rank stats (update
// norms, divergence scalars) are recorded into rank-indexed arrays and
// summed by the caller in rank order, so RoundStats match the flat path
// bit-for-bit too.
//
// Threading: classic strand pattern on the shared common::ThreadPool — each
// shard owns a FIFO queue drained by at most one in-flight pool task, so a
// shard's aggregator is only ever touched by one thread at a time, and
// ranks fold in submission (ascending-rank) order within their shard. With
// a null pool the folder degrades to inline decode+fold on the caller
// thread (same code path, zero threading), which is what the runner uses
// when sharding is off or the aggregator is not mergeable.
//
// Memory: at most `shards` decoded updates exist outside aggregators at any
// instant (one per active worker); queued items hold serialized payload
// handles only. The O(model)-per-shard accumulators are the only state that
// scales with the model.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/payload.h"
#include "common/thread_pool.h"
#include "flapi/algorithm.h"

namespace calibre::fl {

class ShardedFolder {
 public:
  // Creates `shards` shard aggregators via algorithm.make_aggregator(global,
  // round). `capacity` is the rank-index bound (sync: selected count; async:
  // buffer size). `pool` runs the shard workers; nullptr folds inline on the
  // caller thread. shards > 1 requires a mergeable aggregator (CHECKed).
  ShardedFolder(Algorithm& algorithm, const nn::ModelState& global, int round,
                int shards, common::ThreadPool* pool, std::size_t capacity);

  // Waits for in-flight shard work before tearing down (abandoned partial
  // windows in the async drain path land here without collect()).
  ~ShardedFolder();

  ShardedFolder(const ShardedFolder&) = delete;
  ShardedFolder& operator=(const ShardedFolder&) = delete;

  // Hands one released reply to shard (rank % shards). Called from ONE
  // thread (the server loop) in ascending rank order; ranks are distinct and
  // < capacity. `base` is the delta-codec reference for this reply's
  // broadcast version (kept alive by the shared_ptr across the async
  // handoff; null for self-contained codecs); `weight_scale` multiplies the
  // decoded update's weight (async staleness discount; 1.0f in sync mode).
  void submit(int rank, comm::Payload payload,
              std::shared_ptr<const nn::ModelState> base, float weight_scale);

  // Waits until every shard queue drains, merges shard partials in
  // ascending shard order into shard 0's aggregator, and returns that root.
  // Called at most once; submit() is illegal afterwards. The caller owns
  // finish() — the folder never finishes an aggregator, merged or not.
  std::unique_ptr<StreamingAggregator> collect();

  // Per-rank fold records, valid after collect() (reads race with workers
  // before that). Indexed by submit() rank; entries for never-submitted
  // ranks are zero/false. Summing in ascending rank order reproduces the
  // flat path's stats accumulation order exactly.
  const std::vector<std::uint8_t>& submitted() const { return submitted_; }
  const std::vector<double>& norms() const { return norms_; }
  const std::vector<float>& divergences() const { return divergences_; }
  const std::vector<std::uint8_t>& has_divergence() const { return has_div_; }
  // Compression accounting per rank: encoded payload bytes and the codec
  // tag (recorded at submit(), before decode), plus the bytes the decoded
  // update would occupy in the legacy f32 layout (recorded by the fold
  // worker). Same validity rule as the stats above.
  const std::vector<std::uint64_t>& wire_bytes() const { return wire_bytes_; }
  const std::vector<std::uint8_t>& codec_tags() const { return codec_tags_; }
  const std::vector<std::uint64_t>& f32_bytes() const { return f32_bytes_; }

  // Wall-clock spent in deserialize_update / StreamingAggregator::fold
  // across all shards, valid after collect(). Under a parallel pool the
  // phases overlap, so these can exceed the elapsed collect time.
  double decode_seconds() const;
  double fold_seconds() const;

  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Item {
    int rank = 0;
    comm::Payload payload;
    std::shared_ptr<const nn::ModelState> base;
    float weight_scale = 1.0f;
  };
  // One strand: queue + aggregator + timers, all owned by whichever task
  // currently drains the queue (at most one, enforced by `running`).
  struct Shard {
    std::unique_ptr<StreamingAggregator> agg;
    std::deque<Item> queue;
    bool running = false;
    double decode_seconds = 0.0;
    double fold_seconds = 0.0;
    std::mutex mu;
  };

  void fold_item(Shard& shard, Item item);
  void drain(std::size_t shard_index);

  common::ThreadPool* pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint8_t> submitted_;
  std::vector<double> norms_;
  std::vector<float> divergences_;
  std::vector<std::uint8_t> has_div_;
  std::vector<std::uint64_t> wire_bytes_;
  std::vector<std::uint8_t> codec_tags_;
  std::vector<std::uint64_t> f32_bytes_;
  bool collected_ = false;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  int active_shards_ = 0;  // shards with a drain task in flight
};

}  // namespace calibre::fl
