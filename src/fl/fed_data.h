// Federated view of a dataset: per-client shards, eager or virtual.
//
// Built from a SyntheticDataset plus a Partition over (participating +
// novel) clients. Novel clients never appear during federated training; they
// only download the final global model and personalize (paper §V-D). For
// STL-10-style datasets the unlabeled pool is split evenly across
// participating clients and concatenated with their labeled inputs to form
// the per-client SSL pool.
//
// Two construction modes:
//  * build_fed_dataset         — eager: every client shard is materialised
//    up front (memory O(total samples) per split *again*, plus per-client
//    tensors). Right for small populations and for tests that index the
//    shard vectors directly.
//  * build_virtual_fed_dataset — virtual clients: the shared base splits and
//    the partition's index lists are kept, and a client's shard is
//    materialised on demand into caller-provided scratch. Memory stays
//    O(dataset + indices) no matter how many clients the partition names,
//    which is what lets a 100k-client federation fit; the price is a
//    subset() per handler invocation. Both modes produce bit-identical
//    shards for the same partition (the virtual accessors run exactly the
//    eager build's tensor ops).
//
// The *_shard accessors work in both modes: eager datasets return references
// into the materialised vectors (scratch untouched); virtual datasets fill
// `scratch` and return it.
#pragma once

#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"

namespace calibre::fl {

struct FedDataset {
  std::vector<data::Dataset> train;       // per participating client
  std::vector<data::Dataset> test;
  std::vector<data::Dataset> novel_train; // per novel client
  std::vector<data::Dataset> novel_test;
  std::vector<tensor::Tensor> ssl_pool;   // per participating client
  // True when ssl_pool rows are class latents to be rendered through
  // `oracle`; false when they are raw inputs for pixel augmentation.
  bool pool_is_latent = false;
  data::ViewOracle oracle;
  int num_classes = 0;
  std::int64_t input_dim = 0;

  // --- virtual mode ---------------------------------------------------------
  // When virtual_train_clients > 0 the per-client vectors above stay empty;
  // shards materialise on demand from the shared bases + partition indices.
  int virtual_train_clients = 0;
  int virtual_novel_clients = 0;
  data::Dataset base_train;                 // shared train split
  data::Dataset base_test;                  // shared test split
  data::Dataset base_unlabeled;             // shared SSL-only pool
  std::vector<std::vector<int>> train_indices;  // per client (train + novel)
  std::vector<std::vector<int>> test_indices;
  // The eager build's shuffled unlabeled order, kept so virtual SSL pools
  // reproduce the same per-client slices bit-for-bit.
  std::vector<int> unlabeled_order;
  std::size_t unlabeled_share = 0;          // rows per participating client

  bool is_virtual() const { return virtual_train_clients > 0; }

  int num_train_clients() const {
    return is_virtual() ? virtual_train_clients
                        : static_cast<int>(train.size());
  }
  int num_novel_clients() const {
    return is_virtual() ? virtual_novel_clients
                        : static_cast<int>(novel_train.size());
  }

  // Per-client shard accessors valid in both modes; see header comment.
  const data::Dataset& train_shard(int client, data::Dataset& scratch) const;
  const data::Dataset& test_shard(int client, data::Dataset& scratch) const;
  const data::Dataset& novel_train_shard(int novel,
                                         data::Dataset& scratch) const;
  const data::Dataset& novel_test_shard(int novel,
                                        data::Dataset& scratch) const;
  // The client's SSL pool (labeled share + unlabeled slice).
  const tensor::Tensor& client_ssl_pool(int client,
                                        tensor::Tensor& scratch) const;
};

// Splits `partition` (over num_train_clients + novel clients) into the
// participating/novel shards and materialises all client datasets.
FedDataset build_fed_dataset(const data::SyntheticDataset& synth,
                             const data::Partition& partition,
                             int num_train_clients, rng::Generator& gen);

// Virtual-client variant: keeps the shared splits + index lists and defers
// shard materialisation to the accessors. Consumes `gen` exactly like the
// eager build (one shuffle of the unlabeled order), so downstream streams
// and shard contents match the eager build bit-for-bit.
FedDataset build_virtual_fed_dataset(const data::SyntheticDataset& synth,
                                     const data::Partition& partition,
                                     int num_train_clients,
                                     rng::Generator& gen);

}  // namespace calibre::fl
