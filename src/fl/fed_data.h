// Federated view of a dataset: materialised per-client shards.
//
// Built from a SyntheticDataset plus a Partition over (participating +
// novel) clients. Novel clients never appear during federated training; they
// only download the final global model and personalize (paper §V-D). For
// STL-10-style datasets the unlabeled pool is split evenly across
// participating clients and concatenated with their labeled inputs to form
// the per-client SSL pool.
#pragma once

#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"

namespace calibre::fl {

struct FedDataset {
  std::vector<data::Dataset> train;       // per participating client
  std::vector<data::Dataset> test;
  std::vector<data::Dataset> novel_train; // per novel client
  std::vector<data::Dataset> novel_test;
  std::vector<tensor::Tensor> ssl_pool;   // per participating client
  // True when ssl_pool rows are class latents to be rendered through
  // `oracle`; false when they are raw inputs for pixel augmentation.
  bool pool_is_latent = false;
  data::ViewOracle oracle;
  int num_classes = 0;
  std::int64_t input_dim = 0;

  int num_train_clients() const { return static_cast<int>(train.size()); }
  int num_novel_clients() const {
    return static_cast<int>(novel_train.size());
  }
};

// Splits `partition` (over num_train_clients + novel clients) into the
// participating/novel shards and materialises all client datasets.
FedDataset build_fed_dataset(const data::SyntheticDataset& synth,
                             const data::Partition& partition,
                             int num_train_clients, rng::Generator& gen);

}  // namespace calibre::fl
