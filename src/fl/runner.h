// The federated round loop.
//
// Runner wires an Algorithm to a FedDataset through the comm layer: every
// global model broadcast and every client update crosses a serialized
// message boundary and executes on a device thread pool, as it would in a
// real deployment. After the training stage it runs the personalization
// stage on every participating and novel client and collects per-client
// accuracies.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "comm/router.h"
#include "flapi/algorithm.h"
#include "fl/fed_data.h"

namespace calibre::fl {

// Per-round progress record (one entry per federated round).
struct RoundStats {
  int round = 0;
  int participants = 0;       // clients that delivered an update
  int dropped = 0;            // sampled clients lost to dropout
  int failures = 0;           // kTrainError replies (thrown handlers,
                              // injected faults); includes retried attempts
  int retries = 0;            // requests re-sent after a failure
  int timeouts = 0;           // clients still pending when the deadline fired
  int late_dropped = 0;       // stale replies from earlier rounds discarded
  // Logical wire bytes this round, by direction (retry re-sends and replies
  // from earlier rounds that surfaced during this round are included).
  std::uint64_t bytes_broadcast = 0;  // server -> clients
  std::uint64_t bytes_collected = 0;  // clients -> server
  // Distinct broadcast payload buffers serialized this round. The shared
  // snapshot makes this 1 regardless of clients_per_round or retries.
  std::uint64_t serializations = 0;
  float mean_divergence = 0.0f;  // mean of the updates' "divergence" scalar
                                 // (0 when the algorithm does not report it)
  float mean_update_norm = 0.0f;
  // --- Update compression ----------------------------------------------------
  // Encoded wire bytes of the updates folded this round, against the bytes
  // the same updates would occupy in the legacy f32 layout. Their ratio is
  // the round's physical/logical compression ratio for the collected
  // direction (1.0 under f32). Covers folded updates only — failed and
  // discarded replies carry no decodable update to attribute.
  std::uint64_t update_bytes_wire = 0;
  std::uint64_t update_bytes_f32 = 0;
  // Folded updates by concrete wire codec, indexed by comm::Codec tag value
  // (kF32 = 1 ... kInt8A = 5; slot 0 — the config-only kAuto — stays 0).
  // Under --wire-codec auto this is the chooser's per-round decision record.
  std::array<std::uint32_t, 6> codec_counts{};
  // --- Async mode only (zero in sync runs) ---------------------------------
  // Global version committed at the end of this entry (async "rounds" are
  // buffer commits; version k is the state after commit k).
  int committed_version = 0;
  // Staleness of the folded updates: commit version minus the version the
  // client's base model came from.
  float staleness_mean = 0.0f;
  int staleness_max = 0;
};

// Server-side wall-clock split of the training stage, summed over rounds
// (sync) or commit windows (async). With agg_shards > 1 decode/fold run on
// parallel shard workers, so their totals are CPU seconds that can exceed
// the stage's elapsed time; commit covers the collect barrier + shard merge
// + finish(). Dispatch is the serialize-and-send side of the loop.
struct PhaseTimes {
  double dispatch_seconds = 0.0;
  double decode_seconds = 0.0;
  double fold_seconds = 0.0;
  double commit_seconds = 0.0;
};

struct RunResult {
  std::string algorithm;
  std::vector<double> train_accuracies;  // per participating client
  std::vector<double> novel_accuracies;  // per novel client
  std::vector<RoundStats> history;       // one entry per round
  comm::TrafficStats traffic;
  double wall_seconds = 0.0;
  PhaseTimes phases;                     // training-stage server-side split
  nn::ModelState final_state;            // trained global state
};

// Deterministic per-(seed, round, client) sub-stream seed.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

// Accounts one kTrainError reply. Counts a failure (and decides whether a
// retry is owed) ONLY for a still-pending client: an error reply from a
// client that already delivered, was dropped at the deadline, or belongs to
// a finished round must not inflate `failures` — the historical bug was
// incrementing before the pending check. Returns true when the caller
// should re-dispatch (pending, and retry budget remains; `retries_used` and
// stats.retries are advanced). Shared by the sync and async loops.
bool account_error_reply(bool client_pending, int& retries_used,
                         int max_client_retries, RoundStats& stats);

// FedBuff-style staleness discount w(s) = 1 / (1 + s)^alpha, s >= 0.
// alpha = 0 disables discounting (w = 1 for all s).
float staleness_weight(int staleness, float alpha);

// Runs training + personalization. `personalize_novel` controls whether the
// novel-client pass (paper Fig. 4 right column) is executed.
RunResult run_federated(Algorithm& algorithm, const FedDataset& fed,
                        bool personalize_novel = true);

}  // namespace calibre::fl
