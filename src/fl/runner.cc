#include "fl/runner.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/log.h"
#include "common/thread_pool.h"

namespace calibre::fl {
namespace {

std::size_t resolve_threads(const FlConfig& config) {
  return config.threads > 0 ? static_cast<std::size_t>(config.threads)
                            : common::ThreadPool::default_parallelism();
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (a + 1) +
                    0xbf58476d1ce4e5b9ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

RunResult run_federated(Algorithm& algorithm, const FedDataset& fed,
                        bool personalize_novel) {
  const FlConfig& config = algorithm.config();
  CALIBRE_CHECK(fed.num_train_clients() > 0);
  CALIBRE_CHECK_MSG(config.clients_per_round <= fed.num_train_clients(),
                    "cannot sample " << config.clients_per_round << " of "
                                     << fed.num_train_clients() << " clients");
  const auto start_time = std::chrono::steady_clock::now();

  comm::Router router(resolve_threads(config));
  if (config.fault_rate > 0.0f || config.fault_latency_ms > 0) {
    comm::FaultConfig fault;
    fault.failure_rate = config.fault_rate;
    fault.latency_ms = config.fault_latency_ms;
    fault.seed = derive_seed(config.seed, 0xFA01, 0);
    router.set_fault_injection(fault);
  }

  // Register one device endpoint per participating client. The handler runs
  // on the device pool: deserialize global -> local update -> reply.
  for (int c = 0; c < fed.num_train_clients(); ++c) {
    router.register_endpoint(c, [&, c](const comm::Message& request) {
      CALIBRE_CHECK(request.type == comm::MessageType::kTrainRequest);
      const nn::ModelState global =
          nn::ModelState::from_bytes(request.payload.bytes());
      ClientContext ctx;
      ctx.client_id = c;
      ctx.round = request.round;
      ctx.train = &fed.train[static_cast<std::size_t>(c)];
      ctx.ssl_pool = &fed.ssl_pool[static_cast<std::size_t>(c)];
      ctx.oracle = fed.pool_is_latent ? &fed.oracle : nullptr;
      ctx.seed = derive_seed(config.seed,
                             static_cast<std::uint64_t>(request.round),
                             static_cast<std::uint64_t>(c));
      const ClientUpdate update = algorithm.local_update(global, ctx);

      comm::Message response;
      response.type = comm::MessageType::kTrainResponse;
      response.sender = c;
      response.receiver = comm::kServerEndpoint;
      response.round = request.round;
      // delta16 replies encode against the global exactly as this client
      // decoded it — the same reference the server derives from its own
      // broadcast snapshot, so both sides agree bit-for-bit.
      response.payload = serialize_update(update, config.wire_codec, &global);
      router.send(std::move(response));
    });
  }

  // --- Training stage -------------------------------------------------------
  nn::ModelState state = algorithm.initialize();
  rng::Generator sampler(derive_seed(config.seed, 0xC1, 0xE57));
  RunResult result;
  result.algorithm = algorithm.name();
  for (int round = 0; round < config.rounds; ++round) {
    RoundStats round_stats;
    round_stats.round = round;
    const comm::TrafficStats traffic_at_round_start = router.stats();
    std::vector<int> selected = sampler.sample_without_replacement(
        fed.num_train_clients(), config.clients_per_round);
    // Dropout simulation: sampled clients may fail to respond. Keep at
    // least one participant so the round stays well-defined. Dropout coins
    // come from their own per-round stream, NOT from `sampler`: drawing
    // them from the sampling stream would make --dropout silently change
    // which clients are sampled in every later round.
    int dropped = 0;
    if (config.client_dropout_rate > 0.0f) {
      rng::Generator dropout_gen(
          derive_seed(config.seed, 0xD80, static_cast<std::uint64_t>(round)));
      std::vector<int> alive;
      for (const int client : selected) {
        if (dropout_gen.uniform() < config.client_dropout_rate) {
          ++dropped;
        } else {
          alive.push_back(client);
        }
      }
      if (alive.empty()) {
        alive.push_back(selected.front());
        --dropped;
      }
      selected = std::move(alive);
    }
    // Zero-copy broadcast: serialize the global state ONCE per round and
    // share the immutable snapshot across every train request, including
    // retry re-sends — 1 serialization + K refcounts instead of K copies.
    const comm::Payload snapshot(state.to_bytes(config.wire_codec));
    // delta16 replies are deltas against the broadcast *as the clients
    // decode it*; with a lossy broadcast codec that differs from `state`,
    // so the server derives the reference by decoding its own snapshot.
    nn::ModelState snapshot_base;
    const nn::ModelState* update_base = nullptr;
    if (config.wire_codec != comm::Codec::kF32) {
      snapshot_base = nn::ModelState::from_bytes(snapshot.bytes());
      update_base = &snapshot_base;
    }
    auto send_request = [&](int client) {
      comm::Message request;
      request.type = comm::MessageType::kTrainRequest;
      request.sender = comm::kServerEndpoint;
      request.receiver = client;
      request.round = round;
      request.payload = snapshot;
      router.send(std::move(request));
    };
    for (const int client : selected) send_request(client);

    // Deadline-aware receive with a minimum-participation quorum. Every
    // dispatch is guaranteed exactly one reply (success or kTrainError), so
    // waiting on `pending` cannot hang; the deadline merely lets the round
    // cut stragglers loose once `quorum` updates are in. Replies tagged
    // with an earlier round are stragglers from a timed-out round —
    // discarded, never aggregated into the wrong round.
    const bool has_deadline = config.round_deadline_ms > 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(config.round_deadline_ms);
    const int quorum =
        std::min(std::max(config.min_participants, 1),
                 static_cast<int>(selected.size()));
    std::unordered_set<int> pending(selected.begin(), selected.end());
    std::unordered_map<int, int> retries_used;
    // Updates are tagged with the sender's selection rank and sorted before
    // aggregation: reply arrival order depends on thread scheduling, and
    // float summation is order-sensitive, so aggregating in arrival order
    // would break the bit-for-bit reproducibility the runtime promises.
    std::unordered_map<int, int> selection_rank;
    selection_rank.reserve(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      selection_rank[selected[i]] = static_cast<int>(i);
    }
    bool deadline_fired = false;
    std::vector<std::pair<int, ClientUpdate>> arrived;
    arrived.reserve(selected.size());
    while (!pending.empty()) {
      std::optional<comm::Message> response;
      if (has_deadline && !deadline_fired) {
        response = router.server_mailbox().pop_until(deadline);
        if (!response.has_value() && !router.server_mailbox().closed()) {
          deadline_fired = true;
          if (static_cast<int>(arrived.size()) >= quorum) break;
          continue;  // below quorum: keep waiting, replies are guaranteed
        }
      } else {
        response = router.server_mailbox().pop();
      }
      CALIBRE_CHECK_MSG(response.has_value(), "server mailbox closed early");
      if (response->round != round) {
        ++round_stats.late_dropped;
        log::debug() << algorithm.name() << " round " << round
                     << " discarded late reply from client "
                     << response->sender << " (round " << response->round
                     << ")";
        continue;
      }
      if (response->type == comm::MessageType::kTrainError) {
        ++round_stats.failures;
        const int client = response->sender;
        if (pending.count(client) == 0) continue;  // already resolved
        int& used = retries_used[client];
        if (used < config.max_client_retries) {
          ++used;
          ++round_stats.retries;
          send_request(client);
        } else {
          pending.erase(client);
          log::debug() << algorithm.name() << " round " << round
                       << " client " << client << " failed: "
                       << comm::Router::error_text(*response);
        }
        continue;
      }
      CALIBRE_CHECK(response->type == comm::MessageType::kTrainResponse);
      if (pending.erase(response->sender) == 0) continue;
      arrived.emplace_back(selection_rank[response->sender],
                           deserialize_update(response->payload.bytes(),
                                              update_base));
      if (deadline_fired && static_cast<int>(arrived.size()) >= quorum) break;
    }
    round_stats.timeouts = static_cast<int>(pending.size());
    std::sort(arrived.begin(), arrived.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<ClientUpdate> updates;
    updates.reserve(arrived.size());
    for (auto& [rank, update] : arrived) updates.push_back(std::move(update));

    // Partial aggregation: whatever arrived forms the next global state. A
    // fully failed round (every client errored out) keeps the state as-is
    // rather than aggregating nothing.
    if (!updates.empty()) {
      state = algorithm.aggregate(state, updates, round);
    } else {
      log::warn() << algorithm.name() << " round " << round
                  << ": no updates arrived; keeping previous global state";
    }

    round_stats.participants = static_cast<int>(updates.size());
    round_stats.dropped = dropped;
    double divergence_total = 0.0;
    int divergence_count = 0;
    double norm_total = 0.0;
    for (const ClientUpdate& update : updates) {
      const auto it = update.scalars.find("divergence");
      if (it != update.scalars.end()) {
        divergence_total += it->second;
        ++divergence_count;
      }
      norm_total += update.state.norm();
    }
    if (divergence_count > 0) {
      round_stats.mean_divergence =
          static_cast<float>(divergence_total / divergence_count);
    }
    round_stats.mean_update_norm = updates.empty()
        ? 0.0f
        : static_cast<float>(norm_total / static_cast<double>(updates.size()));
    // Per-round traffic from the router's counters: retries re-sent this
    // round and late replies that surfaced this round are all in the diff.
    const comm::TrafficStats round_traffic =
        router.stats() - traffic_at_round_start;
    round_stats.bytes_broadcast = round_traffic.broadcast_bytes;
    round_stats.bytes_collected = round_traffic.collected_bytes;
    round_stats.serializations = round_traffic.broadcast_serializations;
    result.history.push_back(round_stats);
    log::debug() << algorithm.name() << " round " << round + 1 << "/"
                 << config.rounds << " aggregated " << updates.size()
                 << " updates (" << round_stats.failures << " failures, "
                 << round_stats.timeouts << " timeouts, "
                 << round_stats.late_dropped << " late-dropped)";
  }

  // --- Personalization stage -------------------------------------------------
  {
    common::ThreadPool pool(resolve_threads(config));
    auto personalize_set =
        [&](const std::vector<data::Dataset>& train_sets,
            const std::vector<data::Dataset>& test_sets,
            std::uint64_t salt, int id_offset) {
          std::vector<std::future<double>> futures;
          futures.reserve(train_sets.size());
          for (std::size_t c = 0; c < train_sets.size(); ++c) {
            futures.push_back(pool.submit([&, c] {
              PersonalizationContext ctx;
              ctx.client_id = id_offset + static_cast<int>(c);
              ctx.train = &train_sets[c];
              ctx.test = &test_sets[c];
              ctx.seed = derive_seed(config.seed, salt,
                                     static_cast<std::uint64_t>(c));
              return algorithm.personalize(state, ctx);
            }));
          }
          std::vector<double> accuracies;
          accuracies.reserve(futures.size());
          for (auto& future : futures) accuracies.push_back(future.get());
          return accuracies;
        };
    result.train_accuracies = personalize_set(fed.train, fed.test, 0xA11, /*id_offset=*/0);
    if (personalize_novel && fed.num_novel_clients() > 0) {
      result.novel_accuracies =
          personalize_set(fed.novel_train, fed.novel_test, 0xB22,
                          /*id_offset=*/fed.num_train_clients());
    }
  }

  result.traffic = router.stats();
  result.final_state = std::move(state);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

}  // namespace calibre::fl
