#include "fl/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "fl/shard_fold.h"
#include "fl/update_codec.h"

namespace calibre::fl {
namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_between(SteadyClock::time_point from,
                       SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::size_t resolve_threads(const FlConfig& config) {
  return config.threads > 0 ? static_cast<std::size_t>(config.threads)
                            : common::ThreadPool::default_parallelism();
}

// Wires the config's fault model into the router: heterogeneous device
// classes when configured (client c -> class c % num_classes), else the
// uniform fault knobs. The fault stream seed is derived once, so sync and
// async runs over the same config see the same faults.
void configure_faults(const FlConfig& config, comm::Router& router) {
  const std::uint64_t fault_seed = derive_seed(config.seed, 0xFA01, 0);
  if (!config.device_classes.empty()) {
    std::vector<comm::FaultConfig> profiles;
    profiles.reserve(config.device_classes.size());
    for (const DeviceClass& device : config.device_classes) {
      comm::FaultConfig profile;
      profile.failure_rate = device.fault_rate;
      profile.latency_ms = device.fault_latency_ms;
      profile.seed = fault_seed;
      profile.duty_cycle = device.duty_cycle;
      profile.period_rounds = device.period_rounds;
      profiles.push_back(profile);
    }
    router.set_fault_profiles(
        std::move(profiles),
        [num_classes = config.device_classes.size()](int endpoint) {
          return static_cast<std::size_t>(endpoint) % num_classes;
        });
    return;
  }
  if (config.fault_rate > 0.0f || config.fault_latency_ms > 0) {
    comm::FaultConfig fault;
    fault.failure_rate = config.fault_rate;
    fault.latency_ms = config.fault_latency_ms;
    fault.seed = fault_seed;
    router.set_fault_injection(fault);
  }
}

// --- Buffered asynchronous training (FedBuff-style) -------------------------
//
// The server keeps `clients_per_round` requests in flight. Replies fold into
// a StreamingAggregator as they resolve; every `async_buffer_size` folds the
// buffer commits a new global version, and each folded update is discounted
// by staleness_weight(commit_version - base_version, staleness_alpha).
//
// Determinism: reply ARRIVAL order depends on thread scheduling, so — like
// the sync loop's selection-rank reorder buffer — the async loop folds in
// DISPATCH order. Each dispatch gets a sequence number; replies that arrive
// ahead of the fold front are held serialized, and the front decodes+folds
// (or skips a permanently failed seq) only when every earlier seq resolved.
// Replacement dispatches and commits happen at front-advance time, so the
// sampler's draw order, every base version, and every fold are pure
// functions of the seed: a run is bit-identical across thread counts.
//
// Each client has at most one dispatch in flight (a device trains one model
// at a time), so a reply's sender uniquely identifies its sequence number.
void run_async_training(Algorithm& algorithm, const FedDataset& fed,
                        const FlConfig& config, comm::Router& router,
                        rng::Generator& sampler, nn::ModelState& state,
                        int fold_shards, common::ThreadPool* fold_pool,
                        RunResult& result) {
  const int concurrency = config.clients_per_round;
  const int buffer_size = config.async_buffer_size;

  // Snapshot registry: one serialized broadcast per committed version, kept
  // alive while any in-flight dispatch trained against it (delta16 replies
  // decode against the base of *their* version, not the newest one). The
  // decoded base is shared_ptr-held because shard workers may still be
  // decoding against it after the version's last slot resolved and the
  // registry entry died.
  struct VersionSnapshot {
    comm::Payload payload;
    std::shared_ptr<const nn::ModelState> base;  // lossy-codec reference
    int refs = 0;
  };
  std::unordered_map<int, VersionSnapshot> snapshots;
  int version = 0;
  auto make_snapshot = [&](int v) {
    const SteadyClock::time_point start = SteadyClock::now();
    VersionSnapshot& snap = snapshots[v];
    snap.payload =
        comm::Payload(state.to_bytes(resolve_broadcast_codec(config.wire_codec)));
    if (config.wire_codec != comm::Codec::kF32) {
      snap.base = std::make_shared<const nn::ModelState>(
          nn::ModelState::from_bytes(snap.payload.bytes()));
    }
    result.phases.dispatch_seconds +=
        seconds_between(start, SteadyClock::now());
  };
  auto release_version = [&](int v) {
    const auto it = snapshots.find(v);
    CALIBRE_CHECK(it != snapshots.end() && it->second.refs > 0);
    // The current version stays cached for future dispatches even at zero
    // refs; superseded versions die with their last in-flight dispatch.
    if (--it->second.refs == 0 && v != version) snapshots.erase(it);
  };

  // Reorder buffer over dispatch sequence numbers.
  enum class SlotState : std::uint8_t { kOutstanding, kHeld, kFailed };
  struct Slot {
    SlotState status = SlotState::kOutstanding;
    int client = -1;
    int base_version = 0;
    int retries_used = 0;
    comm::Payload reply;  // set when kHeld
  };
  std::unordered_map<int, Slot> slots;         // seq -> slot (active window)
  // client -> unresolved seq. A client is released for re-sampling at front
  // RESOLUTION, not at reply arrival: arrival order is thread-schedule
  // noise, and freeing a client on arrival would make the rejection
  // sampler's candidate set (and thus every later draw) nondeterministic.
  std::unordered_map<int, int> seq_of_client;
  int next_seq = 0;
  int fold_front = 0;
  int awaiting_reply = 0;  // dispatches (incl. retries) without a reply yet

  auto send_request = [&](int client, int base_version) {
    const SteadyClock::time_point start = SteadyClock::now();
    ++awaiting_reply;
    comm::Message request;
    request.type = comm::MessageType::kTrainRequest;
    request.sender = comm::kServerEndpoint;
    request.receiver = client;
    // The round tag carries the base version: clients run against it, the
    // fault injector's availability schedule keys on it (a device-class
    // "period" counts versions here, rounds in sync mode).
    request.round = base_version;
    request.payload = snapshots.at(base_version).payload;
    router.send(std::move(request));
    result.phases.dispatch_seconds +=
        seconds_between(start, SteadyClock::now());
  };
  auto dispatch_new = [&] {
    // Rejection-sample a client with no dispatch in flight. Terminates:
    // in-flight < population whenever this is called (clients_per_round <=
    // num_train_clients, and a slot was just resolved for replacements).
    int client;
    do {
      client = static_cast<int>(sampler.uniform_index(
          static_cast<std::uint64_t>(fed.num_train_clients())));
    } while (seq_of_client.count(client) != 0);
    Slot slot;
    slot.client = client;
    slot.base_version = version;
    slots.emplace(next_seq, std::move(slot));
    seq_of_client[client] = next_seq;
    ++snapshots.at(version).refs;
    send_request(client, version);
    ++next_seq;
  };

  // One folder per commit window; the fold index within the window is the
  // submit rank, so shard routing and the stats arrays are dense 0..B-1.
  auto folder = std::make_unique<ShardedFolder>(
      algorithm, state, /*round=*/0, fold_shards, fold_pool,
      static_cast<std::size_t>(buffer_size));
  int commits = 0;
  int folds_in_window = 0;
  int consecutive_failures = 0;
  // Legit high-fault configs recover within tens of dispatches; only a
  // configuration that can never fold (e.g. every class offline at the
  // current version, which no commit will ever advance) hits this bound.
  const int max_consecutive_failures = 1000 + 50 * concurrency;
  RoundStats window_stats;
  double window_divergence_total = 0.0;
  int window_divergence_count = 0;
  double window_norm_total = 0.0;
  double window_staleness_total = 0.0;
  int window_staleness_max = 0;
  comm::TrafficStats traffic_at_window_start = router.stats();

  auto fold_slot = [&](Slot& slot) {
    const VersionSnapshot& snap = snapshots.at(slot.base_version);
    const int staleness = version - slot.base_version;
    CALIBRE_CHECK(staleness >= 0);
    // Decode + fold run on the folder (shard workers under --agg-shards,
    // inline otherwise); the staleness discount multiplies the decoded
    // weight there, exactly as the flat fold applied it. Update-content
    // stats (norm, divergence) are read back from the folder's rank arrays
    // at commit; staleness stats are pure server-side state, tallied here.
    folder->submit(folds_in_window, std::move(slot.reply), snap.base,
                   staleness_weight(staleness, config.staleness_alpha));
    window_staleness_total += staleness;
    window_staleness_max = std::max(window_staleness_max, staleness);
    ++folds_in_window;
    consecutive_failures = 0;
  };
  auto commit = [&] {
    const SteadyClock::time_point commit_start = SteadyClock::now();
    std::unique_ptr<StreamingAggregator> merged = folder->collect();
    CALIBRE_CHECK_EQ(merged->folded(), folds_in_window,
                     "shard merge lost folds");
    state = merged->finish();
    result.phases.commit_seconds +=
        seconds_between(commit_start, SteadyClock::now());
    result.phases.decode_seconds += folder->decode_seconds();
    result.phases.fold_seconds += folder->fold_seconds();
    // Rank-ordered readback reproduces the flat fold's accumulation order.
    for (int r = 0; r < folds_in_window; ++r) {
      const std::size_t rank = static_cast<std::size_t>(r);
      if (folder->has_divergence()[rank] != 0) {
        window_divergence_total += folder->divergences()[rank];
        ++window_divergence_count;
      }
      window_norm_total += folder->norms()[rank];
      window_stats.update_bytes_wire += folder->wire_bytes()[rank];
      window_stats.update_bytes_f32 += folder->f32_bytes()[rank];
      const std::uint8_t tag = folder->codec_tags()[rank];
      if (tag < window_stats.codec_counts.size()) {
        ++window_stats.codec_counts[tag];
      }
    }
    ++version;
    ++commits;
    folder = std::make_unique<ShardedFolder>(
        algorithm, state, /*round=*/version, fold_shards, fold_pool,
        static_cast<std::size_t>(buffer_size));
    if (commits < config.rounds) make_snapshot(version);

    window_stats.round = commits - 1;
    window_stats.committed_version = version;
    window_stats.participants = folds_in_window;
    window_stats.staleness_mean = static_cast<float>(
        window_staleness_total / static_cast<double>(folds_in_window));
    window_stats.staleness_max = window_staleness_max;
    if (window_divergence_count > 0) {
      window_stats.mean_divergence = static_cast<float>(
          window_divergence_total / window_divergence_count);
    }
    window_stats.mean_update_norm = static_cast<float>(
        window_norm_total / static_cast<double>(folds_in_window));
    const comm::TrafficStats window_traffic =
        router.stats() - traffic_at_window_start;
    window_stats.bytes_broadcast = window_traffic.broadcast_bytes;
    window_stats.bytes_collected = window_traffic.collected_bytes;
    window_stats.serializations = window_traffic.broadcast_serializations;
    result.history.push_back(window_stats);
    log::debug() << algorithm.name() << " async commit " << commits << "/"
                 << config.rounds << " (version " << version << ", "
                 << folds_in_window << " folds, staleness mean "
                 << window_stats.staleness_mean << ")";
    window_stats = RoundStats{};
    folds_in_window = 0;
    window_divergence_total = 0.0;
    window_divergence_count = 0;
    window_norm_total = 0.0;
    window_staleness_total = 0.0;
    window_staleness_max = 0;
    traffic_at_window_start = router.stats();
  };
  // Resolves every foldable seq at the front, committing when the buffer
  // fills and back-filling the in-flight window — all in seq order, which
  // is what pins the sampler draws and base versions regardless of reply
  // arrival order. Stops at the first seq still awaiting its reply, or once
  // the final commit lands.
  auto advance_front = [&] {
    while (commits < config.rounds) {
      const auto it = slots.find(fold_front);
      if (it == slots.end() || it->second.status == SlotState::kOutstanding) {
        return;
      }
      Slot slot = std::move(it->second);
      slots.erase(it);
      seq_of_client.erase(slot.client);
      ++fold_front;
      // Failures/retries are attributed to the commit window in which the
      // seq RESOLVES, not the one where the error reply happened to arrive:
      // resolution order is deterministic, so the history's counters are
      // bit-identical across thread counts (only the byte columns, diffed
      // from the router's arrival-timed counters, are wall-clock).
      window_stats.retries += slot.retries_used;
      window_stats.failures +=
          slot.retries_used + (slot.status == SlotState::kFailed ? 1 : 0);
      if (slot.status == SlotState::kHeld) {
        fold_slot(slot);
      } else {
        ++consecutive_failures;
        CALIBRE_CHECK_MSG(
            consecutive_failures <= max_consecutive_failures,
            "async made no progress after "
                << consecutive_failures
                << " consecutive permanent failures; with duty-cycled device "
                   "classes the availability schedule only advances on "
                   "commits, so a population that is fully offline at the "
                   "current version can never recover");
      }
      release_version(slot.base_version);
      if (folds_in_window == buffer_size) commit();
      if (commits < config.rounds) dispatch_new();
    }
  };

  make_snapshot(0);
  for (int i = 0; i < concurrency; ++i) dispatch_new();

  while (commits < config.rounds) {
    std::optional<comm::Message> response = router.server_mailbox().pop();
    CALIBRE_CHECK_MSG(response.has_value(), "server mailbox closed early");
    const int client = response->sender;
    --awaiting_reply;
    const auto seq_it = seq_of_client.find(client);
    // Every reply maps to an unresolved dispatch: a client gets a new
    // request only after its previous seq resolved, which happens after its
    // previous reply arrived.
    CALIBRE_CHECK_MSG(seq_it != seq_of_client.end(),
                      "async reply from client " << client
                                                 << " with nothing in flight");
    Slot& slot = slots.at(seq_it->second);
    if (response->type == comm::MessageType::kTrainError) {
      // Shared retry policy with the sync loop; the scratch stats are
      // discarded because this window's counters are credited at front
      // resolution (see advance_front), keeping attribution deterministic.
      RoundStats arrival_scratch;
      if (account_error_reply(/*client_pending=*/true, slot.retries_used,
                              config.max_client_retries, arrival_scratch)) {
        // Retry keeps its seq (its place in fold order) and its snapshot:
        // the device re-runs the same request.
        send_request(client, slot.base_version);
        continue;
      }
      log::debug() << algorithm.name() << " async seq " << seq_it->second
                   << " client " << client << " failed: "
                   << comm::Router::error_text(*response);
      slot.status = SlotState::kFailed;
    } else {
      CALIBRE_CHECK(response->type == comm::MessageType::kTrainResponse);
      slot.status = SlotState::kHeld;
      slot.reply = std::move(response->payload);
    }
    advance_front();
  }

  // Drain: requests still in flight after the final commit get their
  // guaranteed reply; every dispatch left unresolved — outstanding,
  // held-but-unfolded behind a straggler, or failed behind one — is
  // discarded, never folded into a future version. The count is the
  // unresolved slot window, which is deterministic; whether an individual
  // straggler's reply arrived before or after the final commit is not.
  const int discarded = static_cast<int>(slots.size());
  while (awaiting_reply > 0) {
    std::optional<comm::Message> response = router.server_mailbox().pop();
    CALIBRE_CHECK_MSG(response.has_value(), "server mailbox closed early");
    --awaiting_reply;
    CALIBRE_CHECK_MSG(seq_of_client.count(response->sender) != 0,
                      "async drain reply from client "
                          << response->sender << " with nothing in flight");
  }
  if (!result.history.empty()) {
    result.history.back().late_dropped += discarded;
  }
}

}  // namespace

bool account_error_reply(bool client_pending, int& retries_used,
                         int max_client_retries, RoundStats& stats) {
  // Guard BEFORE counting: an error reply for a client that already
  // resolved (delivered, permanently failed, or cut at the deadline) is
  // stale noise, not a new failure. The pre-fix code incremented
  // stats.failures unconditionally, overcounting exactly these replies.
  if (!client_pending) return false;
  ++stats.failures;
  if (retries_used < max_client_retries) {
    ++retries_used;
    ++stats.retries;
    return true;
  }
  return false;
}

float staleness_weight(int staleness, float alpha) {
  CALIBRE_CHECK_MSG(staleness >= 0, "staleness must be >= 0");
  if (alpha == 0.0f || staleness == 0) return 1.0f;
  return static_cast<float>(
      1.0 / std::pow(1.0 + static_cast<double>(staleness),
                     static_cast<double>(alpha)));
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (a + 1) +
                    0xbf58476d1ce4e5b9ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

RunResult run_federated(Algorithm& algorithm, const FedDataset& fed,
                        bool personalize_novel) {
  const FlConfig& config = algorithm.config();
  validate(config);
  CALIBRE_CHECK(fed.num_train_clients() > 0);
  CALIBRE_CHECK_MSG(config.clients_per_round <= fed.num_train_clients(),
                    "cannot sample " << config.clients_per_round << " of "
                                     << fed.num_train_clients() << " clients");
  const auto start_time = std::chrono::steady_clock::now();

  // Client-side update encoder: error-feedback residuals (ClientStore-backed,
  // so they survive re-selection gaps) plus the per-update codec chooser.
  // Declared before the router so in-flight handlers can never outlive it.
  UpdateEncoder update_encoder(config);

  comm::Router router(resolve_threads(config));
  configure_faults(config, router);

  // Virtual clients: ONE generic device handler serves the whole population,
  // parameterized by the client id in Message::receiver — registration cost
  // O(1) instead of O(clients), and no per-client closures. The handler runs
  // on the device pool: materialise the client's shard (a reference in eager
  // mode, scratch-filled in virtual mode), deserialize global -> local
  // update -> reply. Scratch lives on the handler frame, so per-shard memory
  // is bounded by the pool's thread count, not the population.
  router.register_default_handler([&](const comm::Message& request) {
    CALIBRE_CHECK(request.type == comm::MessageType::kTrainRequest);
    const int c = request.receiver;
    CALIBRE_CHECK(c >= 0 && c < fed.num_train_clients());
    const nn::ModelState global =
        nn::ModelState::from_bytes(request.payload.bytes());
    data::Dataset train_scratch;
    tensor::Tensor pool_scratch;
    ClientContext ctx;
    ctx.client_id = c;
    ctx.round = request.round;
    ctx.train = &fed.train_shard(c, train_scratch);
    ctx.ssl_pool = &fed.client_ssl_pool(c, pool_scratch);
    ctx.oracle = fed.pool_is_latent ? &fed.oracle : nullptr;
    ctx.seed = derive_seed(config.seed,
                           static_cast<std::uint64_t>(request.round),
                           static_cast<std::uint64_t>(c));
    const ClientUpdate update = algorithm.local_update(global, ctx);

    comm::Message response;
    response.type = comm::MessageType::kTrainResponse;
    response.sender = c;
    response.receiver = comm::kServerEndpoint;
    response.round = request.round;
    // delta16/topk16 replies encode against the global exactly as this
    // client decoded it — the same reference the server derives from its own
    // broadcast snapshot, so both sides agree bit-for-bit.
    response.payload = comm::Payload(update_encoder.encode(update, &global, c));
    router.send(std::move(response));
  });

  // --- Training stage -------------------------------------------------------
  nn::ModelState state = algorithm.initialize();
  rng::Generator sampler(derive_seed(config.seed, 0xC1, 0xE57));
  RunResult result;
  result.algorithm = algorithm.name();
  // Sharded fold setup: --agg-shards > 1 engages parallel shard workers
  // only for mergeable aggregators (probed once — mergeability is a static
  // property of the algorithm); batch-adapter folds fall back to the flat
  // path, since two buffered rank subsequences cannot be interleaved back
  // into global rank order. Both paths run through ShardedFolder (shards=1
  // + null pool is the inline flat fold), and the fixed-point accumulators
  // make every shard count produce bit-identical states.
  int fold_shards = 1;
  std::unique_ptr<common::ThreadPool> fold_pool;
  if (config.agg_shards > 1) {
    if (algorithm.make_aggregator(state, /*round=*/0)->mergeable()) {
      fold_shards = config.agg_shards;
      fold_pool = std::make_unique<common::ThreadPool>(
          static_cast<std::size_t>(config.agg_shards));
    } else {
      log::warn() << algorithm.name() << ": aggregator is not mergeable; "
                  << "--agg-shards " << config.agg_shards
                  << " falls back to the flat single-threaded fold";
    }
  }
  // Async mode replaces the barriered round loop below with the buffered
  // asynchronous loop; the sync path is untouched (bit-identical to the
  // pre-async build).
  if (config.async_mode) {
    run_async_training(algorithm, fed, config, router, sampler, state,
                       fold_shards, fold_pool.get(), result);
  }
  const int sync_rounds = config.async_mode ? 0 : config.rounds;
  for (int round = 0; round < sync_rounds; ++round) {
    RoundStats round_stats;
    round_stats.round = round;
    const comm::TrafficStats traffic_at_round_start = router.stats();
    std::vector<int> selected = sampler.sample_without_replacement(
        fed.num_train_clients(), config.clients_per_round);
    // Dropout simulation: sampled clients may fail to respond. Keep at
    // least one participant so the round stays well-defined. Dropout coins
    // come from their own per-round stream, NOT from `sampler`: drawing
    // them from the sampling stream would make --dropout silently change
    // which clients are sampled in every later round.
    int dropped = 0;
    if (config.client_dropout_rate > 0.0f) {
      rng::Generator dropout_gen(
          derive_seed(config.seed, 0xD80, static_cast<std::uint64_t>(round)));
      std::vector<int> alive;
      for (const int client : selected) {
        if (dropout_gen.uniform() < config.client_dropout_rate) {
          ++dropped;
        } else {
          alive.push_back(client);
        }
      }
      if (alive.empty()) {
        alive.push_back(selected.front());
        --dropped;
      }
      selected = std::move(alive);
    }
    // Zero-copy broadcast: serialize the global state ONCE per round and
    // share the immutable snapshot across every train request, including
    // retry re-sends — 1 serialization + K refcounts instead of K copies.
    const SteadyClock::time_point dispatch_start = SteadyClock::now();
    const comm::Payload snapshot(
        state.to_bytes(resolve_broadcast_codec(config.wire_codec)));
    // delta16 replies are deltas against the broadcast *as the clients
    // decode it*; with a lossy broadcast codec that differs from `state`,
    // so the server derives the reference by decoding its own snapshot.
    // shared_ptr because shard workers may still hold it mid-decode when
    // the round's server-side bookkeeping has already moved on.
    std::shared_ptr<const nn::ModelState> update_base;
    if (config.wire_codec != comm::Codec::kF32) {
      update_base = std::make_shared<const nn::ModelState>(
          nn::ModelState::from_bytes(snapshot.bytes()));
    }
    auto send_request = [&](int client) {
      comm::Message request;
      request.type = comm::MessageType::kTrainRequest;
      request.sender = comm::kServerEndpoint;
      request.receiver = client;
      request.round = round;
      request.payload = snapshot;
      router.send(std::move(request));
    };
    for (const int client : selected) send_request(client);
    result.phases.dispatch_seconds +=
        seconds_between(dispatch_start, SteadyClock::now());

    // Streaming aggregation: updates fold into the aggregator one at a time,
    // in selection-rank order — reply arrival order depends on thread
    // scheduling, and float summation is order-sensitive, so folding in
    // arrival order would break bit-for-bit reproducibility. A reorder
    // buffer bridges the gap: replies that arrive ahead of the fold front
    // are held SERIALIZED (refcounted payload handles, no decode), and the
    // front decodes+folds them the moment every earlier rank is resolved
    // (folded or permanently missing). At any instant the server holds at
    // most ONE decoded update outside the aggregator, so server memory is
    // O(model + wire bytes in flight), not O(participants × model).
    const int num_selected = static_cast<int>(selected.size());
    // All decode + fold work funnels through the folder: shard workers when
    // --agg-shards engaged, inline on this thread otherwise. The bounded-
    // memory streaming invariant (no decoded updates buffered outside the
    // aggregators) is CHECKed inside the folder at every fold.
    ShardedFolder folder(algorithm, state, round, fold_shards, fold_pool.get(),
                         selected.size());
    std::unordered_map<int, comm::Payload> held;  // rank -> serialized reply
    enum : std::uint8_t { kOutstanding = 0, kHeld = 1, kResolved = 2 };
    std::vector<std::uint8_t> rank_state(selected.size(), kOutstanding);
    int fold_front = 0;
    auto fold_payload = [&](int rank, comm::Payload payload) {
      folder.submit(rank, std::move(payload), update_base,
                    /*weight_scale=*/1.0f);
    };
    // Folds every resolvable rank at the front: resolved ranks are skipped,
    // held ranks are decoded+folded, and the walk stops at the first rank
    // still awaiting its reply. Missing ranks are marked resolved by the
    // failure/timeout paths below, so a rank that never arrives can never
    // wedge the front (no deadlock).
    auto advance_front = [&] {
      while (fold_front < num_selected) {
        if (rank_state[static_cast<std::size_t>(fold_front)] == kResolved) {
          ++fold_front;
          continue;
        }
        if (rank_state[static_cast<std::size_t>(fold_front)] == kHeld) {
          auto node = held.extract(fold_front);
          fold_payload(fold_front, std::move(node.mapped()));
          rank_state[static_cast<std::size_t>(fold_front)] = kResolved;
          ++fold_front;
          continue;
        }
        break;
      }
    };

    // Deadline-aware receive with a minimum-participation quorum. Every
    // dispatch is guaranteed exactly one reply (success or kTrainError), so
    // waiting on `pending` cannot hang; the deadline merely lets the round
    // cut stragglers loose once `quorum` updates are in. Replies tagged
    // with an earlier round are stragglers from a timed-out round —
    // discarded, never aggregated into the wrong round.
    const bool has_deadline = config.round_deadline_ms > 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(config.round_deadline_ms);
    // validate() already rejected min_participants outside
    // [1, clients_per_round]; the clamp here only covers dropout legitimately
    // shrinking the round below the configured quorum.
    const int quorum = std::min(config.min_participants, num_selected);
    std::unordered_set<int> pending(selected.begin(), selected.end());
    std::unordered_map<int, int> retries_used;
    std::unordered_map<int, int> selection_rank;
    selection_rank.reserve(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      selection_rank[selected[i]] = static_cast<int>(i);
    }
    bool deadline_fired = false;
    int received = 0;  // accepted TrainResponses (folded or held)
    while (!pending.empty()) {
      std::optional<comm::Message> response;
      if (has_deadline && !deadline_fired) {
        response = router.server_mailbox().pop_until(deadline);
        if (!response.has_value() && !router.server_mailbox().closed()) {
          deadline_fired = true;
          if (received >= quorum) break;
          continue;  // below quorum: keep waiting, replies are guaranteed
        }
      } else {
        response = router.server_mailbox().pop();
      }
      CALIBRE_CHECK_MSG(response.has_value(), "server mailbox closed early");
      if (response->round != round) {
        ++round_stats.late_dropped;
        log::debug() << algorithm.name() << " round " << round
                     << " discarded late reply from client "
                     << response->sender << " (round " << response->round
                     << ")";
        continue;
      }
      if (response->type == comm::MessageType::kTrainError) {
        const int client = response->sender;
        const bool client_pending = pending.count(client) != 0;
        int stale_retries = 0;  // scratch so a stale reply touches no state
        if (account_error_reply(client_pending,
                                client_pending ? retries_used[client]
                                               : stale_retries,
                                config.max_client_retries, round_stats)) {
          send_request(client);
        } else if (client_pending) {
          pending.erase(client);
          // Permanently failed: resolve the rank as missing so the fold
          // front can move past it instead of waiting forever.
          rank_state[static_cast<std::size_t>(selection_rank[client])] =
              kResolved;
          advance_front();
          log::debug() << algorithm.name() << " round " << round
                       << " client " << client << " failed: "
                       << comm::Router::error_text(*response);
        }
        continue;
      }
      CALIBRE_CHECK(response->type == comm::MessageType::kTrainResponse);
      if (pending.erase(response->sender) == 0) continue;
      const int rank = selection_rank[response->sender];
      ++received;
      if (rank == fold_front) {
        fold_payload(rank, std::move(response->payload));
        rank_state[static_cast<std::size_t>(rank)] = kResolved;
        ++fold_front;
        advance_front();
      } else {
        held.emplace(rank, std::move(response->payload));
        rank_state[static_cast<std::size_t>(rank)] = kHeld;
      }
      if (deadline_fired && received >= quorum) break;
    }
    round_stats.timeouts = static_cast<int>(pending.size());
    // Drain: ranks still pending (deadline stragglers) resolve as missing,
    // which releases every held reply behind them into the fold. The round's
    // fold order is therefore always "arrived ranks, ascending" — exactly
    // the order the batch path aggregated in.
    for (const int client : pending) {
      rank_state[static_cast<std::size_t>(selection_rank[client])] = kResolved;
    }
    advance_front();
    CALIBRE_CHECK_MSG(held.empty() && fold_front == num_selected,
                      "reorder buffer failed to drain");

    // Partial aggregation: whatever arrived forms the next global state. A
    // fully failed round (every client errored out) keeps the state as-is
    // rather than aggregating nothing. collect() waits out the shard
    // workers and merges the partials in ascending shard order; only the
    // merged root is ever finished.
    const SteadyClock::time_point commit_start = SteadyClock::now();
    std::unique_ptr<StreamingAggregator> merged = folder.collect();
    const int participants = merged->folded();
    if (participants > 0) {
      state = merged->finish();
    } else {
      log::warn() << algorithm.name() << " round " << round
                  << ": no updates arrived; keeping previous global state";
    }
    result.phases.commit_seconds +=
        seconds_between(commit_start, SteadyClock::now());
    result.phases.decode_seconds += folder.decode_seconds();
    result.phases.fold_seconds += folder.fold_seconds();
    // Update-content stats read back from the folder's rank arrays, summed
    // in ascending rank order — the exact order the flat fold accumulated
    // them in, so the history is bit-identical across shard counts.
    double divergence_total = 0.0;
    int divergence_count = 0;
    double norm_total = 0.0;
    for (std::size_t r = 0; r < selected.size(); ++r) {
      if (folder.submitted()[r] == 0) continue;
      if (folder.has_divergence()[r] != 0) {
        divergence_total += folder.divergences()[r];
        ++divergence_count;
      }
      norm_total += folder.norms()[r];
      round_stats.update_bytes_wire += folder.wire_bytes()[r];
      round_stats.update_bytes_f32 += folder.f32_bytes()[r];
      const std::uint8_t tag = folder.codec_tags()[r];
      if (tag < round_stats.codec_counts.size()) {
        ++round_stats.codec_counts[tag];
      }
    }

    round_stats.participants = participants;
    round_stats.dropped = dropped;
    if (divergence_count > 0) {
      round_stats.mean_divergence =
          static_cast<float>(divergence_total / divergence_count);
    }
    round_stats.mean_update_norm =
        participants == 0
            ? 0.0f
            : static_cast<float>(norm_total /
                                 static_cast<double>(participants));
    // Per-round traffic from the router's counters: retries re-sent this
    // round and late replies that surfaced this round are all in the diff.
    const comm::TrafficStats round_traffic =
        router.stats() - traffic_at_round_start;
    round_stats.bytes_broadcast = round_traffic.broadcast_bytes;
    round_stats.bytes_collected = round_traffic.collected_bytes;
    round_stats.serializations = round_traffic.broadcast_serializations;
    result.history.push_back(round_stats);
    log::debug() << algorithm.name() << " round " << round + 1 << "/"
                 << config.rounds << " aggregated " << participants
                 << " updates (" << round_stats.failures << " failures, "
                 << round_stats.timeouts << " timeouts, "
                 << round_stats.late_dropped << " late-dropped)";
  }

  // --- Personalization stage -------------------------------------------------
  {
    common::ThreadPool pool(resolve_threads(config));
    // `novel` switches both the shard accessors and the cap's sample stream;
    // ids are indices within the respective set. With personalize_cap set, a
    // seeded without-replacement sample of that size is evaluated instead of
    // the full sweep (the cap stream is independent of the round sampler, so
    // capping never perturbs training).
    auto personalize_set = [&](int count, bool novel, std::uint64_t salt,
                               int id_offset) {
      std::vector<int> ids;
      if (config.personalize_cap > 0 && count > config.personalize_cap) {
        rng::Generator cap_gen(
            derive_seed(config.seed, 0x9CA9, novel ? 1 : 0));
        ids = cap_gen.sample_without_replacement(count,
                                                 config.personalize_cap);
        std::sort(ids.begin(), ids.end());
      } else {
        ids.resize(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) ids[static_cast<std::size_t>(i)] = i;
      }
      std::vector<std::future<double>> futures;
      futures.reserve(ids.size());
      for (const int id : ids) {
        futures.push_back(pool.submit([&, id] {
          data::Dataset train_scratch;
          data::Dataset test_scratch;
          PersonalizationContext ctx;
          ctx.client_id = id_offset + id;
          ctx.train = novel ? &fed.novel_train_shard(id, train_scratch)
                            : &fed.train_shard(id, train_scratch);
          ctx.test = novel ? &fed.novel_test_shard(id, test_scratch)
                           : &fed.test_shard(id, test_scratch);
          ctx.seed = derive_seed(config.seed, salt,
                                 static_cast<std::uint64_t>(id));
          return algorithm.personalize(state, ctx);
        }));
      }
      std::vector<double> accuracies;
      accuracies.reserve(futures.size());
      for (auto& future : futures) accuracies.push_back(future.get());
      return accuracies;
    };
    result.train_accuracies = personalize_set(fed.num_train_clients(),
                                              /*novel=*/false, 0xA11,
                                              /*id_offset=*/0);
    if (personalize_novel && fed.num_novel_clients() > 0) {
      result.novel_accuracies =
          personalize_set(fed.num_novel_clients(), /*novel=*/true, 0xB22,
                          /*id_offset=*/fed.num_train_clients());
    }
  }

  result.traffic = router.stats();
  result.final_state = std::move(state);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

}  // namespace calibre::fl
