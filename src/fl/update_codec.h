// Client-side update encoding: error feedback for sparsifying codecs and
// the per-update adaptive codec chooser behind --wire-codec auto.
//
// Error feedback (EF-SGD style): when topk16 drops coordinates, the dropped
// mass is not lost. The encoder keeps, per client, the residual
//   r' = carried - decode(encode(carried)),   carried = update + r,
// and adds it into that client's next encoded update before selection, so
// compression error accumulates into the model over rounds instead of being
// discarded. The residual is client state, and it lives where client state
// lives: an algos::ClientStore keyed by client id — never in the runner,
// whose per-round containers die with the round while a residual must
// survive arbitrary re-selection gaps (the residual-in-store lint rule
// enforces this placement). Residuals apply only to the lossy sparsifying
// configs (kTopK16, kAuto); f32/f16/delta16 pass through untouched, keeping
// those paths bitwise identical to pre-EF builds.
//
// The chooser (wire_codec = kAuto) picks, per update, the cheapest codec
// whose exact relative-L2 reconstruction error fits codec_error_budget.
// Candidates are tried in ascending encoded size (topk16, int8a, delta16,
// f16, f32); a deterministic stride subsample prunes hopeless candidates
// cheaply, and the winning codec is always verified with an exact
// encode/decode round trip, so the budget is a hard guarantee (f32, error
// zero, is the last resort). Every input to the choice is a pure function
// of the update, the broadcast base, and the config — no clocks, no thread
// state — so choices are bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/client_store.h"
#include "flapi/algorithm.h"
#include "flapi/config.h"

namespace calibre::fl {

// The codec broadcasts actually use under a config codec. Update-direction
// codecs have no reference on the broadcast side: kAuto resolves to kF16
// (kAuto must never reach an encoder), kDelta16/kTopK16 pass through and
// degrade to f16 inside encode_values. Everything else broadcasts as-is.
comm::Codec resolve_broadcast_codec(comm::Codec codec);

class UpdateEncoder {
 public:
  explicit UpdateEncoder(const FlConfig& config) : config_(config) {}

  // Serializes one client's update for the wire under config.wire_codec.
  // `base` is the broadcast reference as the client decoded it (null only
  // under kF32). For kTopK16/kAuto the client's carried residual is added
  // in first, the concrete codec is fixed (configured k) or chosen (error
  // budget), and the new residual is stored back for this client's next
  // round. `chosen` (optional) receives the concrete codec tag written.
  // Thread-safe for distinct client ids (the runner's only concurrency).
  std::vector<std::uint8_t> encode(const ClientUpdate& update,
                                   const nn::ModelState* base, int client_id,
                                   comm::Codec* chosen = nullptr);

  // k = clamp(round(topk_rate * count), 1, count); 0 for an empty model.
  std::size_t topk_for(std::size_t count) const;

  // Exact relative L2 error ||decoded - values|| / ||values|| (0 for a zero
  // values vector with zero error). Shared by the chooser and the tests.
  static double relative_error(const std::vector<float>& values,
                               const std::vector<float>& decoded);

  // Test hooks into the error-feedback state.
  bool has_residual(int client_id) const { return carry_.contains(client_id); }
  double residual_norm(int client_id) const;

 private:
  comm::Codec choose(const std::vector<float>& values, const float* base,
                     std::size_t topk) const;

  const FlConfig config_;
  // Per-client error-feedback residual. An empty vector means "exactly
  // zero" (stored after a lossless f32 choice); a vector whose size no
  // longer matches the model is stale and ignored.
  algos::ClientStore<std::vector<float>> carry_;
};

}  // namespace calibre::fl
