#include "fl/algorithm.h"

#include <cstring>

#include "comm/codec.h"
#include "comm/serde.h"
#include "common/check.h"

namespace calibre::fl {

namespace {

constexpr std::uint32_t kUpdateCodecMagic = 0xCA11C0DF;

std::size_t scalar_map_wire_size(const std::map<std::string, float>& scalars) {
  std::size_t size = sizeof(std::uint32_t);
  for (const auto& [key, value] : scalars) {
    size += sizeof(std::uint32_t) + key.size() + sizeof(value);
  }
  return size;
}

}  // namespace

std::vector<std::uint8_t> serialize_update(const ClientUpdate& update,
                                           comm::Codec codec,
                                           const nn::ModelState* base) {
  const std::size_t tail =
      sizeof(update.weight) + scalar_map_wire_size(update.scalars);
  if (codec == comm::Codec::kF32) {
    // Legacy layout, bitwise identical to pre-codec builds.
    comm::Writer writer(sizeof(std::uint64_t) +
                        update.state.size() * sizeof(float) + tail);
    writer.write_f32_vector(update.state.values());
    writer.write_f32(update.weight);
    writer.write_scalar_map(update.scalars);
    return writer.take();
  }
  comm::Writer writer(sizeof(kUpdateCodecMagic) +
                      comm::encoded_size(codec, update.state.size()) + tail);
  writer.write_u32(kUpdateCodecMagic);
  comm::encode_values(writer, update.state.values(), codec,
                      base != nullptr ? base->values().data() : nullptr,
                      base != nullptr ? base->size() : 0);
  writer.write_f32(update.weight);
  writer.write_scalar_map(update.scalars);
  return writer.take();
}

ClientUpdate deserialize_update(const std::vector<std::uint8_t>& bytes,
                                const nn::ModelState* base) {
  comm::Reader reader(bytes);
  ClientUpdate update;
  // Peek the layout: codec payloads lead with the magic, legacy payloads
  // with the low u32 of the f32 vector's element count (see algorithm.h on
  // why these cannot collide for any payload the count validation admits).
  std::uint32_t head = 0;
  if (bytes.size() >= sizeof(head)) {
    std::memcpy(&head, bytes.data(), sizeof(head));
  }
  if (head == kUpdateCodecMagic) {
    reader.read_u32();
    update.state = nn::ModelState(comm::decode_values(
        reader, base != nullptr ? base->values().data() : nullptr,
        base != nullptr ? base->size() : 0));
  } else {
    update.state = nn::ModelState(reader.read_f32_vector());
  }
  update.weight = reader.read_f32();
  update.scalars = reader.read_scalar_map();
  CALIBRE_CHECK_MSG(reader.exhausted(), "trailing bytes in ClientUpdate");
  return update;
}

nn::ModelState Algorithm::aggregate(const nn::ModelState& /*global*/,
                                    const std::vector<ClientUpdate>& updates,
                                    int /*round*/) {
  return fedavg_aggregate(updates);
}

nn::ModelState fedavg_aggregate(const std::vector<ClientUpdate>& updates) {
  CALIBRE_CHECK(!updates.empty());
  double total_weight = 0.0;
  for (const ClientUpdate& update : updates) {
    CALIBRE_CHECK_MSG(update.weight > 0.0f, "non-positive aggregation weight");
    CALIBRE_CHECK(update.state.size() == updates.front().state.size());
    total_weight += update.weight;
  }
  nn::ModelState result(
      std::vector<float>(updates.front().state.size(), 0.0f));
  for (const ClientUpdate& update : updates) {
    result.add_scaled(update.state,
                      static_cast<float>(update.weight / total_weight));
  }
  return result;
}

}  // namespace calibre::fl
