#include "fl/algorithm.h"

#include "comm/serde.h"
#include "common/check.h"

namespace calibre::fl {

std::vector<std::uint8_t> serialize_update(const ClientUpdate& update) {
  comm::Writer writer;
  writer.write_f32_vector(update.state.values());
  writer.write_f32(update.weight);
  writer.write_scalar_map(update.scalars);
  return writer.take();
}

ClientUpdate deserialize_update(const std::vector<std::uint8_t>& bytes) {
  comm::Reader reader(bytes);
  ClientUpdate update;
  update.state = nn::ModelState(reader.read_f32_vector());
  update.weight = reader.read_f32();
  update.scalars = reader.read_scalar_map();
  CALIBRE_CHECK_MSG(reader.exhausted(), "trailing bytes in ClientUpdate");
  return update;
}

nn::ModelState Algorithm::aggregate(const nn::ModelState& /*global*/,
                                    const std::vector<ClientUpdate>& updates,
                                    int /*round*/) {
  return fedavg_aggregate(updates);
}

nn::ModelState fedavg_aggregate(const std::vector<ClientUpdate>& updates) {
  CALIBRE_CHECK(!updates.empty());
  double total_weight = 0.0;
  for (const ClientUpdate& update : updates) {
    CALIBRE_CHECK_MSG(update.weight > 0.0f, "non-positive aggregation weight");
    CALIBRE_CHECK(update.state.size() == updates.front().state.size());
    total_weight += update.weight;
  }
  nn::ModelState result(
      std::vector<float>(updates.front().state.size(), 0.0f));
  for (const ClientUpdate& update : updates) {
    result.add_scaled(update.state,
                      static_cast<float>(update.weight / total_weight));
  }
  return result;
}

}  // namespace calibre::fl
