#include "fl/update_codec.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "comm/serde.h"
#include "common/check.h"

namespace calibre::fl {
namespace {

// Deterministic stride subsample bound for the chooser's error estimates.
constexpr std::size_t kSampleCap = 512;
// Candidates whose estimated error exceeds budget * slack are skipped
// without an exact encode. The final choice is always verified exactly, so
// an estimator miss can only cost bytes (a cheaper viable codec skipped),
// never the budget.
constexpr double kEstimateSlack = 1.5;

std::size_t sample_stride(std::size_t count) {
  return std::max<std::size_t>(1, count / kSampleCap);
}

// Estimated relative L2 reconstruction error of `codec` over a stride
// subsample. Pure function of (values, base, topk) — deterministic.
double estimated_error(comm::Codec codec, const std::vector<float>& values,
                       const float* base, std::size_t topk) {
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  const std::size_t stride = sample_stride(n);
  double err = 0.0;
  double nrm = 0.0;
  switch (codec) {
    case comm::Codec::kF32:
      return 0.0;
    case comm::Codec::kF16:
      for (std::size_t i = 0; i < n; i += stride) {
        const float v = values[i];
        const double d =
            static_cast<double>(comm::f16_to_f32(comm::f32_to_f16(v))) - v;
        err += d * d;
        nrm += static_cast<double>(v) * v;
      }
      break;
    case comm::Codec::kDelta16:
      for (std::size_t i = 0; i < n; i += stride) {
        const float v = values[i];
        const float delta = v - base[i];
        const double d =
            static_cast<double>(base[i]) +
            static_cast<double>(comm::f16_to_f32(comm::f32_to_f16(delta))) - v;
        err += d * d;
        nrm += static_cast<double>(v) * v;
      }
      break;
    case comm::Codec::kInt8A: {
      // Approximate the per-block affine params with one (zero, scale) pair
      // fit over the whole sample; per-block fits are at least this good.
      float lo = 0.0f;
      float hi = 0.0f;
      bool seen = false;
      for (std::size_t i = 0; i < n; i += stride) {
        const float v = values[i];
        if (v != v) continue;
        lo = seen && lo < v ? lo : v;
        hi = seen && hi > v ? hi : v;
        seen = true;
      }
      const float scale =
          seen ? static_cast<float>((static_cast<double>(hi) - lo) / 255.0)
               : 0.0f;
      const float inv =
          scale > 0.0f ? static_cast<float>(1.0 / static_cast<double>(scale))
                       : 0.0f;
      for (std::size_t i = 0; i < n; i += stride) {
        const float v = values[i];
        const double d =
            static_cast<double>(comm::int8a_dequantize(
                comm::int8a_quantize(v, lo, inv), lo, scale)) - v;
        err += d * d;
        nrm += static_cast<double>(v) * v;
      }
      break;
    }
    case comm::Codec::kTopK16: {
      // Dropped coordinates decode back to the base, so their error is the
      // full delta; kept coordinates contribute only f16 rounding (ignored
      // here — the exact verify pass covers it). The sample keeps the same
      // fraction topk/n its full-size selection would.
      std::vector<double> mags;
      mags.reserve(n / stride + 1);
      for (std::size_t i = 0; i < n; i += stride) {
        const float v = values[i];
        mags.push_back(std::fabs(static_cast<double>(v) - base[i]));
        nrm += static_cast<double>(v) * v;
      }
      const std::size_t kept = static_cast<std::size_t>(
          static_cast<double>(topk) / static_cast<double>(n) *
          static_cast<double>(mags.size()));
      std::vector<double> sorted = mags;
      std::nth_element(sorted.begin(),
                       sorted.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(kept, sorted.size())),
                       sorted.end(), std::greater<double>());
      const double threshold =
          kept < sorted.size() ? sorted[kept] : -1.0;  // -1: keep everything
      // Dropped mass: every sampled magnitude at or below the threshold.
      for (const double m : mags) {
        if (m <= threshold) err += m * m;
      }
      break;
    }
    case comm::Codec::kAuto:
      CALIBRE_CHECK_MSG(false, "estimated_error on config-only codec auto");
  }
  if (nrm == 0.0) return err == 0.0 ? 0.0 : 1.0;
  return std::sqrt(err / nrm);
}

// Exact relative error of one full encode/decode round trip.
double exact_error(comm::Codec codec, const std::vector<float>& values,
                   const float* base, std::size_t topk) {
  const std::size_t n = values.size();
  comm::Writer writer(comm::encoded_size(codec, n, topk));
  comm::encode_values(writer, values, codec, base, base != nullptr ? n : 0,
                      topk);
  comm::Reader reader(writer.bytes());
  const std::vector<float> decoded =
      comm::decode_values(reader, base, base != nullptr ? n : 0);
  return UpdateEncoder::relative_error(values, decoded);
}

}  // namespace

comm::Codec resolve_broadcast_codec(comm::Codec codec) {
  return codec == comm::Codec::kAuto ? comm::Codec::kF16 : codec;
}

std::size_t UpdateEncoder::topk_for(std::size_t count) const {
  if (count == 0) return 0;
  const auto k = static_cast<std::size_t>(
      static_cast<double>(config_.topk_rate) * static_cast<double>(count) +
      0.5);
  return std::clamp<std::size_t>(k, 1, count);
}

double UpdateEncoder::relative_error(const std::vector<float>& values,
                                     const std::vector<float>& decoded) {
  CALIBRE_CHECK_EQ(values.size(), decoded.size(),
                   "relative_error dimension mismatch");
  double err = 0.0;
  double nrm = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double d =
        static_cast<double>(decoded[i]) - static_cast<double>(values[i]);
    err += d * d;
    nrm += static_cast<double>(values[i]) * values[i];
  }
  if (nrm == 0.0) return err == 0.0 ? 0.0 : 1.0;
  return std::sqrt(err / nrm);
}

double UpdateEncoder::residual_norm(int client_id) const {
  double total = 0.0;
  carry_.visit(client_id, [&](const std::vector<float>& residual) {
    for (const float r : residual) total += static_cast<double>(r) * r;
  });
  return std::sqrt(total);
}

comm::Codec UpdateEncoder::choose(const std::vector<float>& values,
                                  const float* base, std::size_t topk) const {
  const std::size_t n = values.size();
  const double budget = static_cast<double>(config_.codec_error_budget);
  // Candidates in ascending encoded size; delta-referenced codecs only when
  // a usable base exists (they would silently degrade to f16 otherwise).
  std::vector<std::pair<std::size_t, comm::Codec>> candidates;
  if (base != nullptr) {
    candidates.emplace_back(comm::encoded_size(comm::Codec::kTopK16, n, topk),
                            comm::Codec::kTopK16);
    candidates.emplace_back(comm::encoded_size(comm::Codec::kDelta16, n),
                            comm::Codec::kDelta16);
  }
  candidates.emplace_back(comm::encoded_size(comm::Codec::kInt8A, n),
                          comm::Codec::kInt8A);
  candidates.emplace_back(comm::encoded_size(comm::Codec::kF16, n),
                          comm::Codec::kF16);
  // stable_sort keeps delta16 ahead of the equally-sized f16 (it is never
  // less accurate against a valid base).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [size, codec] : candidates) {
    if (size >= comm::encoded_size(comm::Codec::kF32, n)) break;  // no win
    if (estimated_error(codec, values, base, topk) > budget * kEstimateSlack) {
      continue;
    }
    if (exact_error(codec, values, base, topk) <= budget) return codec;
  }
  return comm::Codec::kF32;  // error zero — the budget always holds
}

std::vector<std::uint8_t> UpdateEncoder::encode(const ClientUpdate& update,
                                                const nn::ModelState* base,
                                                int client_id,
                                                comm::Codec* chosen) {
  const comm::Codec configured = config_.wire_codec;
  if (configured != comm::Codec::kTopK16 &&
      configured != comm::Codec::kAuto) {
    // Pass-through codecs: no error feedback, bitwise identical to the
    // pre-EF encoder.
    std::vector<std::uint8_t> bytes =
        serialize_update(update, configured, base);
    if (chosen != nullptr) *chosen = peek_update_codec(bytes);
    return bytes;
  }

  const std::size_t n = update.state.size();
  ClientUpdate carried = update;
  carry_.visit(client_id, [&](const std::vector<float>& residual) {
    if (residual.size() != n) return;  // absent-or-stale: nothing to carry
    std::vector<float>& values = carried.state.values();
    for (std::size_t i = 0; i < n; ++i) values[i] += residual[i];
  });

  const float* base_values =
      base != nullptr && base->size() == n ? base->values().data() : nullptr;
  const std::size_t topk = topk_for(n);
  const comm::Codec codec =
      configured == comm::Codec::kAuto
          ? choose(carried.state.values(), base_values, topk)
          : comm::Codec::kTopK16;
  std::vector<std::uint8_t> bytes = serialize_update(carried, codec, base,
                                                     topk);
  const comm::Codec actual = peek_update_codec(bytes);
  if (chosen != nullptr) *chosen = actual;
  if (actual == comm::Codec::kF32) {
    // Lossless round trip: the residual is exactly zero. Store the empty
    // sentinel rather than an O(model) zero vector.
    carry_.put(client_id, {});
  } else {
    // New residual: what the encoder was given minus what the server will
    // decode from these exact bytes.
    const ClientUpdate echoed = deserialize_update(bytes, base);
    std::vector<float> residual(n);
    const std::vector<float>& c = carried.state.values();
    const std::vector<float>& d = echoed.state.values();
    for (std::size_t i = 0; i < n; ++i) residual[i] = c[i] - d[i];
    carry_.put(client_id, std::move(residual));
  }
  return bytes;
}

}  // namespace calibre::fl
