#include "fl/shard_fold.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace calibre::fl {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

ShardedFolder::ShardedFolder(Algorithm& algorithm, const nn::ModelState& global,
                             int round, int shards, common::ThreadPool* pool,
                             std::size_t capacity)
    : pool_(pool),
      submitted_(capacity, 0),
      norms_(capacity, 0.0),
      divergences_(capacity, 0.0f),
      has_div_(capacity, 0),
      wire_bytes_(capacity, 0),
      codec_tags_(capacity, 0),
      f32_bytes_(capacity, 0) {
  CALIBRE_CHECK_GE(shards, 1, "shard count");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->agg = algorithm.make_aggregator(global, round);
    CALIBRE_CHECK_MSG(shards == 1 || shard->agg->mergeable(),
                      "sharded fold needs a mergeable aggregator; the runner "
                      "must fall back to shards=1 for batch-adapter folds");
    shards_.push_back(std::move(shard));
  }
}

ShardedFolder::~ShardedFolder() {
  // An abandoned folder (async drain discarding a partial window) still has
  // workers touching this object; wait them out before the members die.
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [&] { return active_shards_ == 0; });
}

void ShardedFolder::fold_item(Shard& shard, Item item) {
  const Clock::time_point start = Clock::now();
  ClientUpdate update =
      deserialize_update(item.payload.bytes(), item.base.get());
  const Clock::time_point decoded = Clock::now();
  update.weight *= item.weight_scale;
  const std::size_t rank = static_cast<std::size_t>(item.rank);
  const auto it = update.scalars.find("divergence");
  if (it != update.scalars.end()) {
    divergences_[rank] = it->second;
    has_div_[rank] = 1;
  }
  norms_[rank] = static_cast<double>(update.state.norm());
  f32_bytes_[rank] = update_wire_size_f32(update);
  shard.agg->fold(std::move(update));
  // Streaming invariant (same CHECK the flat path makes): a bounded-memory
  // aggregator never buffers decoded updates.
  if (shard.agg->bounded_memory()) {
    CALIBRE_CHECK_EQ(shard.agg->buffered_updates(), std::size_t{0},
                     "bounded-memory aggregator buffered decoded updates");
  }
  shard.decode_seconds += seconds_between(start, decoded);
  shard.fold_seconds += seconds_between(decoded, Clock::now());
}

void ShardedFolder::drain(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    Item item;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.queue.empty()) {
        shard.running = false;
        break;
      }
      item = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    // Unlocked: the strand invariant (at most one drain task per shard)
    // makes this task the aggregator's sole owner right now.
    fold_item(shard, std::move(item));
  }
  {
    // notify_all under the lock, deliberately: collect()/~ShardedFolder wake
    // the instant the count hits zero and may destroy this object — an
    // unlocked notify could still be touching the condvar at that point.
    std::lock_guard<std::mutex> lock(idle_mu_);
    --active_shards_;
    idle_cv_.notify_all();
  }
}

void ShardedFolder::submit(int rank, comm::Payload payload,
                           std::shared_ptr<const nn::ModelState> base,
                           float weight_scale) {
  CALIBRE_CHECK_MSG(!collected_, "submit() after collect()");
  CALIBRE_CHECK(rank >= 0 &&
                static_cast<std::size_t>(rank) < submitted_.size());
  CALIBRE_CHECK_EQ(submitted_[static_cast<std::size_t>(rank)], 0,
                   "rank submitted twice");
  submitted_[static_cast<std::size_t>(rank)] = 1;
  wire_bytes_[static_cast<std::size_t>(rank)] = payload.bytes().size();
  codec_tags_[static_cast<std::size_t>(rank)] =
      static_cast<std::uint8_t>(peek_update_codec(payload.bytes()));

  Item item;
  item.rank = rank;
  item.payload = std::move(payload);
  item.base = std::move(base);
  item.weight_scale = weight_scale;

  const std::size_t shard_index =
      static_cast<std::size_t>(rank) % shards_.size();
  Shard& shard = *shards_[shard_index];
  if (pool_ == nullptr) {
    // Inline mode: decode + fold on the caller thread, queue never used.
    fold_item(shard, std::move(item));
    return;
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.queue.push_back(std::move(item));
    if (!shard.running) {
      shard.running = true;
      schedule = true;
    }
  }
  if (schedule) {
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      ++active_shards_;
    }
    pool_->submit([this, shard_index] { drain(shard_index); });
  }
}

std::unique_ptr<StreamingAggregator> ShardedFolder::collect() {
  CALIBRE_CHECK_MSG(!collected_, "collect() called twice");
  collected_ = true;
  {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [&] { return active_shards_ == 0; });
  }
  // Rank-ordered merge tree, degenerate form: shard partials fold left into
  // shard 0 in ascending shard order. The fixed-point accumulators make any
  // tree shape produce the same bits, so the simplest shape wins; a genuine
  // two-level edge-aggregator tree is exercised in bench_hierarchy.
  std::unique_ptr<StreamingAggregator> root = std::move(shards_[0]->agg);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    root->merge(std::move(*shards_[s]->agg));
  }
  return root;
}

double ShardedFolder::decode_seconds() const {
  double total = 0.0;
  for (const auto& shard : shards_) total += shard->decode_seconds;
  return total;
}

double ShardedFolder::fold_seconds() const {
  double total = 0.0;
  for (const auto& shard : shards_) total += shard->fold_seconds;
  return total;
}

}  // namespace calibre::fl
