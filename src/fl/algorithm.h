// The pluggable FL algorithm interface.
//
// The Runner drives: initialize() -> rounds of {local_update on sampled
// clients, aggregate} -> personalize() on every client (participating and
// novel). All model movement between runner and algorithm is by value
// (ModelState), matching the serialization boundary of the comm layer.
//
// Thread safety: local_update and personalize are called concurrently for
// *distinct* clients; implementations guard any cross-client shared state
// (e.g. persistent per-client heads) with their own mutex.
#pragma once

#include <map>
#include <string>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "fl/config.h"
#include "nn/state.h"

namespace calibre::fl {

// What a client sends back after a local update.
struct ClientUpdate {
  nn::ModelState state;
  // Aggregation weight before normalisation (usually the sample count).
  float weight = 1.0f;
  // Algorithm-specific side channel (divergence rates, control-variate
  // norms, ...), serialized with the update.
  std::map<std::string, float> scalars;
};

// Wire helpers for ClientUpdate (used by the comm layer and tests).
//
// kF32 (the default) writes the legacy layout — f32 vector | weight |
// scalar map — bitwise identical to pre-codec builds. kF16/kDelta16 prefix a
// codec magic and encode the state through comm/codec.h; `base` is the
// delta16 reference (the round's broadcast snapshot as decoded by the
// client), ignored by the other codecs. deserialize_update accepts both
// layouts by peeking the leading u32: a legacy payload starts with the low
// half of a u64 element count, which would have to exceed 3.3e9 elements to
// collide with the magic — far past what the count validation admits.
std::vector<std::uint8_t> serialize_update(
    const ClientUpdate& update, comm::Codec codec = comm::Codec::kF32,
    const nn::ModelState* base = nullptr);
ClientUpdate deserialize_update(const std::vector<std::uint8_t>& bytes,
                                const nn::ModelState* base = nullptr);

// Everything a client device knows during one local update.
struct ClientContext {
  int client_id = 0;
  int round = 0;
  const data::Dataset* train = nullptr;     // labeled local shard
  const tensor::Tensor* ssl_pool = nullptr; // local SSL pool (labeled +
                                            // unlabeled share): class latents
                                            // when `oracle` is set, raw
                                            // inputs otherwise
  const data::ViewOracle* oracle = nullptr; // view generator (may be null)
  std::uint64_t seed = 0;                   // per-(client, round) stream
};

// Everything a client knows during personalization/evaluation.
struct PersonalizationContext {
  int client_id = 0;
  const data::Dataset* train = nullptr;
  const data::Dataset* test = nullptr;
  std::uint64_t seed = 0;
};

class Algorithm {
 public:
  explicit Algorithm(const FlConfig& config) : config_(config) {}
  virtual ~Algorithm() = default;

  Algorithm(const Algorithm&) = delete;
  Algorithm& operator=(const Algorithm&) = delete;

  virtual std::string name() const = 0;

  // Initial global state broadcast in round 0.
  virtual nn::ModelState initialize() = 0;

  // One local update starting from `global`; returns the client's update.
  virtual ClientUpdate local_update(const nn::ModelState& global,
                                    const ClientContext& ctx) = 0;

  // Combines updates into the next global state. Default: weighted FedAvg.
  virtual nn::ModelState aggregate(const nn::ModelState& global,
                                   const std::vector<ClientUpdate>& updates,
                                   int round);

  // Personalization + evaluation for one client; returns test accuracy.
  virtual double personalize(const nn::ModelState& global,
                             const PersonalizationContext& ctx) = 0;

  const FlConfig& config() const { return config_; }

 protected:
  FlConfig config_;
};

// Weighted average of updates (weights normalised internally).
nn::ModelState fedavg_aggregate(const std::vector<ClientUpdate>& updates);

}  // namespace calibre::fl
