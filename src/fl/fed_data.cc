#include "fl/fed_data.h"

#include "common/check.h"

namespace calibre::fl {

FedDataset build_fed_dataset(const data::SyntheticDataset& synth,
                             const data::Partition& partition,
                             int num_train_clients, rng::Generator& gen) {
  CALIBRE_CHECK(num_train_clients > 0 &&
                num_train_clients <= partition.num_clients());
  FedDataset fed;
  fed.num_classes = synth.train.num_classes;
  fed.input_dim = synth.train.input_dim();

  for (int c = 0; c < partition.num_clients(); ++c) {
    data::Dataset train_shard = synth.train.subset(
        partition.train_indices[static_cast<std::size_t>(c)]);
    data::Dataset test_shard = synth.test.subset(
        partition.test_indices[static_cast<std::size_t>(c)]);
    if (c < num_train_clients) {
      fed.train.push_back(std::move(train_shard));
      fed.test.push_back(std::move(test_shard));
    } else {
      fed.novel_train.push_back(std::move(train_shard));
      fed.novel_test.push_back(std::move(test_shard));
    }
  }

  // Per-client SSL pools: labeled inputs plus an even, shuffled share of the
  // unlabeled pool (empty share when the dataset has none).
  fed.ssl_pool.reserve(static_cast<std::size_t>(num_train_clients));
  std::vector<int> unlabeled_order(
      static_cast<std::size_t>(synth.unlabeled.size()));
  for (std::size_t i = 0; i < unlabeled_order.size(); ++i) {
    unlabeled_order[i] = static_cast<int>(i);
  }
  gen.shuffle(unlabeled_order);
  const std::size_t share = unlabeled_order.size() /
                            static_cast<std::size_t>(num_train_clients);
  // With a ViewOracle the pools hold class latents (views are rendered on
  // demand); without one they hold raw pixels for generic augmentation.
  fed.pool_is_latent = synth.oracle.valid();
  fed.oracle = synth.oracle;
  for (int c = 0; c < num_train_clients; ++c) {
    const data::Dataset& labeled = fed.train[static_cast<std::size_t>(c)];
    const tensor::Tensor& labeled_pool =
        fed.pool_is_latent ? labeled.latents : labeled.x;
    if (share == 0) {
      fed.ssl_pool.push_back(labeled_pool);
      continue;
    }
    const std::vector<int> slice(
        unlabeled_order.begin() + static_cast<std::ptrdiff_t>(c * share),
        unlabeled_order.begin() + static_cast<std::ptrdiff_t>((c + 1) * share));
    const tensor::Tensor& unlabeled_pool =
        fed.pool_is_latent ? synth.unlabeled.latents : synth.unlabeled.x;
    fed.ssl_pool.push_back(tensor::concat_rows(
        {labeled_pool, tensor::take_rows(unlabeled_pool, slice)}));
  }
  return fed;
}

}  // namespace calibre::fl
