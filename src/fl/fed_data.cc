#include "fl/fed_data.h"

#include "common/check.h"

namespace calibre::fl {
namespace {

// The SSL pool construction shared by the eager build and the virtual
// accessor: labeled inputs (or latents) plus this client's slice of the
// shuffled unlabeled order. Keeping one implementation is what guarantees
// the two modes produce bit-identical pools.
tensor::Tensor make_ssl_pool(const data::Dataset& labeled,
                             const data::Dataset& unlabeled,
                             bool pool_is_latent,
                             const std::vector<int>& unlabeled_order,
                             std::size_t share, int client) {
  const tensor::Tensor& labeled_pool =
      pool_is_latent ? labeled.latents : labeled.x;
  if (share == 0) return labeled_pool;
  const std::size_t begin = static_cast<std::size_t>(client) * share;
  const std::vector<int> slice(
      unlabeled_order.begin() + static_cast<std::ptrdiff_t>(begin),
      unlabeled_order.begin() + static_cast<std::ptrdiff_t>(begin + share));
  const tensor::Tensor& unlabeled_pool =
      pool_is_latent ? unlabeled.latents : unlabeled.x;
  return tensor::concat_rows(
      {labeled_pool, tensor::take_rows(unlabeled_pool, slice)});
}

}  // namespace

const data::Dataset& FedDataset::train_shard(int client,
                                             data::Dataset& scratch) const {
  if (!is_virtual()) return train[static_cast<std::size_t>(client)];
  CALIBRE_CHECK(client >= 0 && client < virtual_train_clients);
  scratch = base_train.subset(train_indices[static_cast<std::size_t>(client)]);
  return scratch;
}

const data::Dataset& FedDataset::test_shard(int client,
                                            data::Dataset& scratch) const {
  if (!is_virtual()) return test[static_cast<std::size_t>(client)];
  CALIBRE_CHECK(client >= 0 && client < virtual_train_clients);
  scratch = base_test.subset(test_indices[static_cast<std::size_t>(client)]);
  return scratch;
}

const data::Dataset& FedDataset::novel_train_shard(
    int novel, data::Dataset& scratch) const {
  if (!is_virtual()) return novel_train[static_cast<std::size_t>(novel)];
  CALIBRE_CHECK(novel >= 0 && novel < virtual_novel_clients);
  const std::size_t index =
      static_cast<std::size_t>(virtual_train_clients + novel);
  scratch = base_train.subset(train_indices[index]);
  return scratch;
}

const data::Dataset& FedDataset::novel_test_shard(
    int novel, data::Dataset& scratch) const {
  if (!is_virtual()) return novel_test[static_cast<std::size_t>(novel)];
  CALIBRE_CHECK(novel >= 0 && novel < virtual_novel_clients);
  const std::size_t index =
      static_cast<std::size_t>(virtual_train_clients + novel);
  scratch = base_test.subset(test_indices[index]);
  return scratch;
}

const tensor::Tensor& FedDataset::client_ssl_pool(
    int client, tensor::Tensor& scratch) const {
  if (!is_virtual()) return ssl_pool[static_cast<std::size_t>(client)];
  CALIBRE_CHECK(client >= 0 && client < virtual_train_clients);
  data::Dataset shard_scratch;
  const data::Dataset& labeled = train_shard(client, shard_scratch);
  scratch = make_ssl_pool(labeled, base_unlabeled, pool_is_latent,
                          unlabeled_order, unlabeled_share, client);
  return scratch;
}

FedDataset build_fed_dataset(const data::SyntheticDataset& synth,
                             const data::Partition& partition,
                             int num_train_clients, rng::Generator& gen) {
  CALIBRE_CHECK(num_train_clients > 0 &&
                num_train_clients <= partition.num_clients());
  FedDataset fed;
  fed.num_classes = synth.train.num_classes;
  fed.input_dim = synth.train.input_dim();

  for (int c = 0; c < partition.num_clients(); ++c) {
    data::Dataset train_shard = synth.train.subset(
        partition.train_indices[static_cast<std::size_t>(c)]);
    data::Dataset test_shard = synth.test.subset(
        partition.test_indices[static_cast<std::size_t>(c)]);
    if (c < num_train_clients) {
      fed.train.push_back(std::move(train_shard));
      fed.test.push_back(std::move(test_shard));
    } else {
      fed.novel_train.push_back(std::move(train_shard));
      fed.novel_test.push_back(std::move(test_shard));
    }
  }

  // Per-client SSL pools: labeled inputs plus an even, shuffled share of the
  // unlabeled pool (empty share when the dataset has none).
  fed.ssl_pool.reserve(static_cast<std::size_t>(num_train_clients));
  std::vector<int> unlabeled_order(
      static_cast<std::size_t>(synth.unlabeled.size()));
  for (std::size_t i = 0; i < unlabeled_order.size(); ++i) {
    unlabeled_order[i] = static_cast<int>(i);
  }
  gen.shuffle(unlabeled_order);
  const std::size_t share = unlabeled_order.size() /
                            static_cast<std::size_t>(num_train_clients);
  // With a ViewOracle the pools hold class latents (views are rendered on
  // demand); without one they hold raw pixels for generic augmentation.
  fed.pool_is_latent = synth.oracle.valid();
  fed.oracle = synth.oracle;
  for (int c = 0; c < num_train_clients; ++c) {
    fed.ssl_pool.push_back(make_ssl_pool(
        fed.train[static_cast<std::size_t>(c)], synth.unlabeled,
        fed.pool_is_latent, unlabeled_order, share, c));
  }
  return fed;
}

FedDataset build_virtual_fed_dataset(const data::SyntheticDataset& synth,
                                     const data::Partition& partition,
                                     int num_train_clients,
                                     rng::Generator& gen) {
  CALIBRE_CHECK(num_train_clients > 0 &&
                num_train_clients <= partition.num_clients());
  FedDataset fed;
  fed.num_classes = synth.train.num_classes;
  fed.input_dim = synth.train.input_dim();
  fed.virtual_train_clients = num_train_clients;
  fed.virtual_novel_clients = partition.num_clients() - num_train_clients;
  fed.base_train = synth.train;
  fed.base_test = synth.test;
  fed.base_unlabeled = synth.unlabeled;
  fed.train_indices = partition.train_indices;
  fed.test_indices = partition.test_indices;

  // Same unlabeled shuffle as the eager build (one draw from `gen`), stored
  // so client_ssl_pool can cut the identical per-client slices later.
  fed.unlabeled_order.resize(static_cast<std::size_t>(synth.unlabeled.size()));
  for (std::size_t i = 0; i < fed.unlabeled_order.size(); ++i) {
    fed.unlabeled_order[i] = static_cast<int>(i);
  }
  gen.shuffle(fed.unlabeled_order);
  fed.unlabeled_share = fed.unlabeled_order.size() /
                        static_cast<std::size_t>(num_train_clients);
  fed.pool_is_latent = synth.oracle.valid();
  fed.oracle = synth.oracle;
  return fed;
}

}  // namespace calibre::fl
