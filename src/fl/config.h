// Experiment configuration shared by all FL algorithms.
#pragma once

#include <cstdint>

#include "comm/codec.h"
#include "data/augment.h"
#include "nn/networks.h"
#include "nn/optim.h"

namespace calibre::fl {

// Personalization stage settings (paper §V: 10 epochs, SGD lr = 0.05,
// batch size 32, linear classifier on frozen encoder features).
struct ProbeConfig {
  // kLinear: the paper's linear classifier trained for `epochs`.
  // kPrototype: training-free nearest-class-prototype head (extension).
  enum class Head { kLinear, kPrototype };
  Head head = Head::kLinear;
  int epochs = 10;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  int batch_size = 32;
};

struct FlConfig {
  nn::EncoderConfig encoder;
  int num_classes = 10;

  // Federated training stage.
  int rounds = 30;
  int clients_per_round = 10;
  int local_epochs = 3;
  int batch_size = 32;
  nn::SgdConfig supervised_opt{/*lr=*/0.05f, /*momentum=*/0.9f,
                               /*weight_decay=*/1e-4f};
  nn::SgdConfig ssl_opt{/*lr=*/0.10f, /*momentum=*/0.9f,
                        /*weight_decay=*/1e-4f};

  data::AugmentConfig augment;
  // Whether supervised local training may use the dataset's ViewOracle for
  // augmentation. Default off: supervised FL baselines use generic (weak)
  // augmentation, while SSL methods rely on the strong semantic-preserving
  // view pipeline — mirroring practice, where SimCLR-style pipelines are far
  // stronger than the crop/flip used in supervised FL.
  bool supervised_oracle_views = false;
  ProbeConfig probe;

  // Probability that a sampled client fails to deliver its update in a
  // round (straggler / dropout simulation). The server aggregates whatever
  // arrives; at least one client per round is guaranteed.
  float client_dropout_rate = 0.0f;

  // --- Fault tolerance -------------------------------------------------------
  // Wall-clock budget per round, measured from the broadcast. When it
  // expires the server aggregates whatever arrived (partial aggregation);
  // stragglers are counted as timeouts and their eventual replies are
  // discarded by round tag. 0 = wait for every reply (no deadline).
  int round_deadline_ms = 0;
  // Minimum successful updates per round: the deadline only fires once this
  // many updates arrived (clamped to the number of sampled clients). Keeps
  // a late-but-quorate round meaningful instead of aggregating nothing.
  int min_participants = 1;
  // Bounded retry: a client whose update fails (kTrainError) is re-sent the
  // request up to this many times within the same round.
  int max_client_retries = 0;
  // Fault injection (comm::FaultConfig): probability that a dispatched
  // client update fails, and per-dispatch artificial latency in
  // [0, fault_latency_ms]. Seeded from `seed`; 0/0 disables injection.
  float fault_rate = 0.0f;
  int fault_latency_ms = 0;

  // Wire codec for model payloads (broadcasts and updates). kF32 keeps runs
  // bitwise identical to pre-codec builds; kF16 halves model bytes on the
  // wire; kDelta16 additionally encodes client updates as fp16 deltas
  // against the round's broadcast snapshot. See comm/codec.h.
  comm::Codec wire_codec = comm::Codec::kF32;

  // Cap on clients evaluated in the personalization stage (0 = all). With
  // 100k virtual clients the training stage is cheap per round but a full
  // personalization sweep is O(population); the cap evaluates a seeded
  // without-replacement sample of that size instead, applied independently
  // to the participating and novel sets.
  int personalize_cap = 0;

  std::uint64_t seed = 42;
  // Worker threads for simulated client devices (0 = library default).
  int threads = 0;
  // Total participating clients; algorithms that need the population size
  // (e.g. SCAFFOLD's control-variate update) read it here. The experiment
  // driver sets it to match the FedDataset.
  int num_train_clients = 100;
};

}  // namespace calibre::fl
