// Experiment configuration shared by all FL algorithms.
#pragma once

#include <cstdint>

#include "data/augment.h"
#include "nn/networks.h"
#include "nn/optim.h"

namespace calibre::fl {

// Personalization stage settings (paper §V: 10 epochs, SGD lr = 0.05,
// batch size 32, linear classifier on frozen encoder features).
struct ProbeConfig {
  // kLinear: the paper's linear classifier trained for `epochs`.
  // kPrototype: training-free nearest-class-prototype head (extension).
  enum class Head { kLinear, kPrototype };
  Head head = Head::kLinear;
  int epochs = 10;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  int batch_size = 32;
};

struct FlConfig {
  nn::EncoderConfig encoder;
  int num_classes = 10;

  // Federated training stage.
  int rounds = 30;
  int clients_per_round = 10;
  int local_epochs = 3;
  int batch_size = 32;
  nn::SgdConfig supervised_opt{/*lr=*/0.05f, /*momentum=*/0.9f,
                               /*weight_decay=*/1e-4f};
  nn::SgdConfig ssl_opt{/*lr=*/0.10f, /*momentum=*/0.9f,
                        /*weight_decay=*/1e-4f};

  data::AugmentConfig augment;
  // Whether supervised local training may use the dataset's ViewOracle for
  // augmentation. Default off: supervised FL baselines use generic (weak)
  // augmentation, while SSL methods rely on the strong semantic-preserving
  // view pipeline — mirroring practice, where SimCLR-style pipelines are far
  // stronger than the crop/flip used in supervised FL.
  bool supervised_oracle_views = false;
  ProbeConfig probe;

  // Probability that a sampled client fails to deliver its update in a
  // round (straggler / dropout simulation). The server aggregates whatever
  // arrives; at least one client per round is guaranteed.
  float client_dropout_rate = 0.0f;

  std::uint64_t seed = 42;
  // Worker threads for simulated client devices (0 = library default).
  int threads = 0;
  // Total participating clients; algorithms that need the population size
  // (e.g. SCAFFOLD's control-variate update) read it here. The experiment
  // driver sets it to match the FedDataset.
  int num_train_clients = 100;
};

}  // namespace calibre::fl
