// Lightweight runtime-check macros used across the library.
//
// CALIBRE_CHECK fires in every build type: invariants guarding library
// correctness (shape mismatches, invalid arguments) must never be compiled
// out, because experiment results silently produced from corrupted state are
// worse than a crash.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace calibre {

// Error type thrown by all CALIBRE_CHECK failures. Deriving from
// std::runtime_error keeps call sites exception-agnostic.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace calibre

#define CALIBRE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::calibre::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
    }                                                                    \
  } while (0)

#define CALIBRE_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream calibre_check_os_;                              \
      calibre_check_os_ << msg;                                          \
      ::calibre::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                      calibre_check_os_.str());          \
    }                                                                    \
  } while (0)
