// Lightweight runtime-check macros used across the library.
//
// CALIBRE_CHECK fires in every build type: invariants guarding library
// correctness (shape mismatches, invalid arguments) must never be compiled
// out, because experiment results silently produced from corrupted state are
// worse than a crash.
#pragma once

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace calibre {

// Error type thrown by all CALIBRE_CHECK failures. Deriving from
// std::runtime_error keeps call sites exception-agnostic.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

// Streams a comparison operand into the failure message. Byte-sized integers
// print as numbers (not characters) and bools as true/false, since the
// operands at check sites are counts, sizes and flags, never text.
template <class T>
void stream_operand(std::ostream& os, const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    os << (value ? "true" : "false");
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 1) {
    os << static_cast<int>(value);
  } else {
    os << value;
  }
}

template <class A, class B>
[[noreturn]] void check_op_failed(const char* a_expr, const char* op,
                                  const char* b_expr, const A& a, const B& b,
                                  const char* file, int line,
                                  const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << a_expr << ' ' << op << ' ' << b_expr << " (";
  stream_operand(os, a);
  os << " vs ";
  stream_operand(os, b);
  os << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace calibre

#define CALIBRE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::calibre::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
    }                                                                    \
  } while (0)

#define CALIBRE_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream calibre_check_os_;                              \
      calibre_check_os_ << msg;                                          \
      ::calibre::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                      calibre_check_os_.str());          \
    }                                                                    \
  } while (0)

// Typed comparison checks: CALIBRE_CHECK_EQ(a, b) and friends print *both
// operand values* on failure, where CALIBRE_CHECK(a == b) only prints the
// expression text. An optional trailing message is streamed after the
// operands: CALIBRE_CHECK_LE(count, cap, "while decoding " << name).
// Operands are evaluated exactly once.
#define CALIBRE_CHECK_OP_(op, a, b, ...)                                 \
  do {                                                                   \
    auto&& calibre_lhs_ = (a);                                           \
    auto&& calibre_rhs_ = (b);                                           \
    if (!(calibre_lhs_ op calibre_rhs_)) {                               \
      std::ostringstream calibre_check_os_;                              \
      __VA_OPT__(calibre_check_os_ << __VA_ARGS__;)                      \
      ::calibre::detail::check_op_failed(#a, #op, #b, calibre_lhs_,      \
                                         calibre_rhs_, __FILE__,         \
                                         __LINE__,                       \
                                         calibre_check_os_.str());       \
    }                                                                    \
  } while (0)

#define CALIBRE_CHECK_EQ(a, b, ...) CALIBRE_CHECK_OP_(==, a, b, __VA_ARGS__)
#define CALIBRE_CHECK_NE(a, b, ...) CALIBRE_CHECK_OP_(!=, a, b, __VA_ARGS__)
#define CALIBRE_CHECK_LT(a, b, ...) CALIBRE_CHECK_OP_(<, a, b, __VA_ARGS__)
#define CALIBRE_CHECK_LE(a, b, ...) CALIBRE_CHECK_OP_(<=, a, b, __VA_ARGS__)
#define CALIBRE_CHECK_GT(a, b, ...) CALIBRE_CHECK_OP_(>, a, b, __VA_ARGS__)
#define CALIBRE_CHECK_GE(a, b, ...) CALIBRE_CHECK_OP_(>=, a, b, __VA_ARGS__)
