#include "common/thread_pool.h"

#include <algorithm>

#include "common/env.h"

namespace calibre::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t range = end - begin;
  if (range <= grain || workers_.size() <= 1) {
    fn(begin, end);  // serial fallback: no dispatch overhead
    return;
  }
  const std::int64_t max_chunks = static_cast<std::int64_t>(workers_.size()) + 1;
  const std::int64_t chunks = std::min(max_chunks, (range + grain - 1) / grain);
  const std::int64_t chunk = (range + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(chunks - 1));
  for (std::int64_t c0 = begin + chunk; c0 < end; c0 += chunk) {
    const std::int64_t c1 = std::min(c0 + chunk, end);
    futures.push_back(submit([&fn, c0, c1] { fn(c0, c1); }));
  }
  // The caller works the first chunk instead of idling on the futures.
  std::exception_ptr first_error;
  try {
    fn(begin, std::min(begin + chunk, end));
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::default_parallelism() {
  const int env_value = env::get_int("CALIBRE_THREADS", 0);
  if (env_value > 0) return static_cast<std::size_t>(env_value);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<std::size_t>(hw);
}

}  // namespace calibre::common
