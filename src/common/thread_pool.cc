#include "common/thread_pool.h"

#include <algorithm>

#include "common/env.h"

namespace calibre::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::size_t ThreadPool::default_parallelism() {
  const int env_value = env::get_int("CALIBRE_THREADS", 0);
  if (env_value > 0) return static_cast<std::size_t>(env_value);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<std::size_t>(hw);
}

}  // namespace calibre::common
