// Minimal leveled logger. Experiments log progress at Info; the noisy
// per-round details sit at Debug and are enabled via CALIBRE_LOG_LEVEL=debug.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace calibre::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped. Initialised from the
// CALIBRE_LOG_LEVEL environment variable (debug/info/warn/error/off).
Level threshold();
void set_threshold(Level level);

// Writes one formatted line ("[level] message") to stderr, thread-safely.
void write(Level level, const std::string& message);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace calibre::log
