// Typed environment-variable lookup used by benches/examples to scale
// experiment size without recompiling (e.g. CALIBRE_ROUNDS=50).
#pragma once

#include <string>

// Parsing is strict: an *unset* variable yields the fallback, but a variable
// that is set to something unparsable throws CheckError instead of silently
// defaulting — a typo'd CALIBRE_ROUNDS must not quietly run the wrong
// experiment.
namespace calibre::env {

// Returns the integer value of `name`, or `fallback` when unset. Throws
// CheckError when set but not an in-range integer.
int get_int(const char* name, int fallback);

// Returns the double value of `name`, or `fallback` when unset. Throws
// CheckError when set but not a number.
double get_double(const char* name, double fallback);

// Returns the string value of `name`, or `fallback` when unset.
std::string get_string(const char* name, const std::string& fallback);

// True when the variable is set to a truthy value ("1"/"true"/"yes"/"on",
// case-insensitive), false for falsy ("0"/"false"/"no"/"off"). Throws
// CheckError for anything else.
bool get_flag(const char* name, bool fallback = false);

}  // namespace calibre::env
