// Typed environment-variable lookup used by benches/examples to scale
// experiment size without recompiling (e.g. CALIBRE_ROUNDS=50).
#pragma once

#include <string>

namespace calibre::env {

// Returns the integer value of `name`, or `fallback` when the variable is
// unset or unparsable.
int get_int(const char* name, int fallback);

// Returns the double value of `name`, or `fallback` when unset/unparsable.
double get_double(const char* name, double fallback);

// Returns the string value of `name`, or `fallback` when unset.
std::string get_string(const char* name, const std::string& fallback);

// True when the variable is set to a truthy value ("1", "true", "yes", "on").
bool get_flag(const char* name, bool fallback = false);

}  // namespace calibre::env
