#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace calibre::log {
namespace {

Level parse_env_level() {
  const char* env = std::getenv("CALIBRE_LOG_LEVEL");
  if (env == nullptr) return Level::kInfo;
  std::string_view v(env);
  if (v == "debug") return Level::kDebug;
  if (v == "info") return Level::kInfo;
  if (v == "warn") return Level::kWarn;
  if (v == "error") return Level::kError;
  if (v == "off") return Level::kOff;
  return Level::kInfo;
}

std::atomic<Level>& threshold_storage() {
  static std::atomic<Level> level{parse_env_level()};
  return level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "?";
}

std::mutex& write_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

Level threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_threshold(Level level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

void write(Level level, const std::string& message) {
  if (level < threshold()) return;
  std::lock_guard<std::mutex> lock(write_mutex());
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace calibre::log
