#include "common/env.h"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/check.h"

namespace calibre::env {
namespace {

// Lower-cases ASCII so flag spellings like "TRUE"/"On" normalize before
// matching. Locale-independent on purpose (std::tolower is locale-sensitive).
std::string ascii_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace

int get_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  // A set-but-garbage variable is a user error that must fail loudly: an
  // experiment silently running with the fallback (e.g. a typo'd
  // CALIBRE_ROUNDS) produces wrong results that look right.
  CALIBRE_CHECK_MSG(end != v && *end == '\0',
                    "env var " << name << "='" << v
                               << "' is not an integer");
  CALIBRE_CHECK_MSG(errno != ERANGE && parsed >= INT_MIN && parsed <= INT_MAX,
                    "env var " << name << "='" << v
                               << "' is out of int range");
  return static_cast<int>(parsed);
}

double get_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  CALIBRE_CHECK_MSG(end != v && *end == '\0',
                    "env var " << name << "='" << v << "' is not a number");
  return parsed;
}

std::string get_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

bool get_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string s = ascii_lower(v);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  CALIBRE_CHECK_MSG(false, "env var " << name << "='" << v
                                      << "' is not a boolean (expected "
                                         "1/true/yes/on or 0/false/no/off)");
  return fallback;
}

}  // namespace calibre::env
