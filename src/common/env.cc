#include "common/env.h"

#include <cstdlib>
#include <string_view>

namespace calibre::env {

int get_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double get_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string get_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

bool get_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string_view s(v);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace calibre::env
