// Minimal command-line flag parsing for the CLI tools:
//   --key=value   --key value   --switch
// Unrecognised positional arguments are collected separately.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace calibre::flags {

class Parser {
 public:
  Parser(int argc, const char* const* argv);

  // Value of --name, or `fallback` when absent.
  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  // True when --name was passed (with any value or as a bare switch).
  bool has(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags that were provided but never queried — typo detection.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace calibre::flags
