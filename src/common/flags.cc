#include "common/flags.h"

#include <cstdlib>

namespace calibre::flags {

Parser::Parser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare switch
    }
  }
}

std::string Parser::get(const std::string& name,
                        const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Parser::get_int(const std::string& name, int fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(it->second.c_str(), &end, 10);
  return (end != it->second.c_str() && *end == '\0')
             ? static_cast<int>(parsed)
             : fallback;
}

double Parser::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  return (end != it->second.c_str() && *end == '\0') ? parsed : fallback;
}

bool Parser::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::vector<std::string> Parser::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace calibre::flags
