// Deferred execution without occupying a caller or pool thread.
//
// The comm layer's injected latency used to sleep_for() inside the handler
// task, so every delayed dispatch parked a pool worker for the whole delay —
// a small pool plus high --fault-latency-ms serialized dispatch and
// distorted deadline/async timing. TimerQueue is the designated place for
// time-based deferral: callbacks are held in a deadline-ordered queue and
// fired by ONE dedicated worker (a ThreadPool of size 1, so the
// thread-funnel contract still holds), which waits on a condition variable
// instead of sleeping. The `blocking-sleep` lint rule forbids
// sleep_for/sleep_until everywhere else in the tree.
//
// Ordering: entries with equal deadlines fire in schedule order (a
// monotonic sequence number breaks ties). Destruction fires every pending
// callback immediately (early, never dropped) and then joins the worker —
// callers that promise "exactly one completion per scheduled entry" keep
// that promise through shutdown.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

#include "common/thread_pool.h"

namespace calibre::common {

class TimerQueue {
 public:
  TimerQueue();

  // Fires every still-pending callback immediately, then joins the worker.
  ~TimerQueue();

  TimerQueue(const TimerQueue&) = delete;
  TimerQueue& operator=(const TimerQueue&) = delete;

  // Runs `fn` on the timer worker once `delay` has elapsed (immediately when
  // delay <= 0). `fn` must not block for long: the worker is shared by every
  // pending entry, so long work should be re-submitted to a real pool.
  void schedule_after(std::chrono::milliseconds delay,
                      std::function<void()> fn);

  // Entries scheduled but not yet fired.
  std::size_t pending() const;

 private:
  using Clock = std::chrono::steady_clock;
  // (deadline, schedule seq) -> callback; the map IS the priority queue.
  using Key = std::pair<Clock::time_point, std::uint64_t>;

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::function<void()>> entries_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  // Declared last: constructed after the state above (the worker reads it)
  // and destroyed first (joins the drain loop while the state is alive).
  ThreadPool worker_;
};

}  // namespace calibre::common
