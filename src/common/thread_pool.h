// Fixed-size thread pool used to run per-client local updates concurrently
// inside the federated round loop, mirroring the parallelism a real FL
// deployment gets from having independent client machines.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace calibre::common {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  // Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Schedules `fn` and returns a future for its result. Exceptions thrown by
  // `fn` propagate through the future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit on stopped pool");
      }
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  // Runs `fn(chunk_begin, chunk_end)` over a partition of [begin, end).
  // Ranges no larger than `grain` (and all ranges on a single-worker pool)
  // run inline on the calling thread — the serial fallback that keeps small
  // workloads free of dispatch overhead. Larger ranges are split into at
  // most size()+1 chunks of >= grain iterations; the caller executes one
  // chunk itself while the workers drain the rest. Blocks until every chunk
  // has finished. If any chunk throws, the first exception is rethrown after
  // all chunks complete. Must not be called from a task already running on
  // this pool (the caller would block a worker the chunks need).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  std::size_t size() const { return workers_.size(); }

  // A sensible default pool size for experiment drivers.
  static std::size_t default_parallelism();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace calibre::common
