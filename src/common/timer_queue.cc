#include "common/timer_queue.h"

#include "common/check.h"

namespace calibre::common {

TimerQueue::TimerQueue() : worker_(1) {
  worker_.submit([this] { worker_loop(); });
}

TimerQueue::~TimerQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // ~ThreadPool joins the worker, which early-fires every pending entry on
  // its way out (stopping_ short-circuits the deadline wait below).
}

void TimerQueue::schedule_after(std::chrono::milliseconds delay,
                                std::function<void()> fn) {
  CALIBRE_CHECK_MSG(fn != nullptr, "TimerQueue callback must be callable");
  const auto when =
      Clock::now() + std::chrono::milliseconds(std::max<std::int64_t>(
                         0, static_cast<std::int64_t>(delay.count())));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CALIBRE_CHECK_MSG(!stopping_, "schedule_after on a stopping TimerQueue");
    entries_.emplace(Key{when, next_seq_++}, std::move(fn));
  }
  cv_.notify_all();
}

std::size_t TimerQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TimerQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (entries_.empty()) {
      if (stopping_) return;
      cv_.wait(lock);
      continue;
    }
    const auto when = entries_.begin()->first.first;
    if (stopping_ || Clock::now() >= when) {
      auto node = entries_.extract(entries_.begin());
      lock.unlock();
      node.mapped()();  // outside the lock: fn may schedule more entries
      lock.lock();
      continue;
    }
    cv_.wait_until(lock, when);
  }
}

}  // namespace calibre::common
