#include "autograd/variable.h"

#include <unordered_set>
#include <utility>

#include "autograd/ops.h"  // fused_graphs()
#include "common/check.h"

namespace calibre::ag {

void Variable::accumulate_grad(const tensor::Tensor& g) {
  CALIBRE_CHECK_MSG(g.rows() == value.rows() && g.cols() == value.cols(),
                    "gradient shape " << g.shape_string() << " vs value "
                                      << value.shape_string());
  if (grad.size() == 0) {
    grad = g;
  } else {
    grad.add_(g);
  }
}

void Variable::accumulate_grad(tensor::Tensor&& g) {
  CALIBRE_CHECK_MSG(g.rows() == value.rows() && g.cols() == value.cols(),
                    "gradient shape " << g.shape_string() << " vs value "
                                      << value.shape_string());
  if (!fused_graphs()) {
    // Stealing closure storage is part of the fused-op layer; in composite
    // mode fall back to the copy the library performed before it existed,
    // so the train_step bench's baseline carries the same per-push
    // allocation the original backward pass did.
    accumulate_grad(static_cast<const tensor::Tensor&>(g));
    return;
  }
  if (grad.size() == 0) {
    grad = std::move(g);
  } else {
    grad.add_(g);
  }
}

void Variable::zero_grad() {
  if (grad.size() == 0) {
    grad = tensor::Tensor::zeros(value.rows(), value.cols());
  } else {
    grad.zero();
  }
}

namespace {

thread_local bool t_grad_enabled = true;

}  // namespace

bool grad_enabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

VarPtr constant(tensor::Tensor value) {
  return std::make_shared<Variable>(std::move(value), /*requires=*/false);
}

VarPtr parameter(tensor::Tensor value) {
  auto v = std::make_shared<Variable>(std::move(value), /*requires=*/true);
  v->zero_grad();
  return v;
}

namespace {

// Iterative post-order DFS over parents; avoids stack overflow on deep
// graphs (e.g. many chained layers or long loss compositions).
void topo_sort(const VarPtr& root, std::vector<Variable*>& order) {
  std::unordered_set<const Variable*> visited;
  struct Frame {
    Variable* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) {
    stack.push_back({root.get(), 0});
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Variable* parent = frame.node->parents[frame.next_parent].get();
      ++frame.next_parent;
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void backward(const VarPtr& root) {
  CALIBRE_CHECK_MSG(root->value.rows() == 1 && root->value.cols() == 1,
                    "backward() root must be scalar, got "
                        << root->value.shape_string());
  std::vector<Variable*> order;  // post-order: leaves first, root last
  topo_sort(root, order);
  root->accumulate_grad(tensor::Tensor::ones(1, 1));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Variable* node = *it;
    if (node->backward_fn && node->grad.size() != 0 && node->requires_grad) {
      node->backward_fn(*node);
    }
  }
}

}  // namespace calibre::ag
