// Differentiable op library.
//
// Primitive ops carry hand-derived backward closures; everything else in the
// library (losses, normalisation, softmax) is composed from these primitives,
// so the gradient-check tests on the primitives cover the whole stack.
//
// Broadcasting: add/sub/mul/div support full 2-D broadcasting; their backward
// reduces the upstream gradient over the broadcast dimensions
// (tensor::reduce_to_shape).
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace calibre::ag {

// Process-wide switch between the fused primitives below and the equivalent
// composite graphs built from the elementary ops (the form the library used
// before the fused layer existed). Default on; CALIBRE_FUSED_GRAPHS=0 (env,
// read once) or set_fused_graphs(false) selects the composite form. The two
// forms differ in float rounding (different operation order), so this is NOT
// the bitwise kill-switch — that is CALIBRE_TENSOR_POOL, which only changes
// storage. The composite form exists (a) to cross-check the hand-derived
// fused backwards against graphs gradcheck already covers, and (b) as the
// seed-equivalent training step the train_step bench measures against.
bool fused_graphs();
void set_fused_graphs(bool on);

// --- binary elementwise (2-D broadcasting) ----------------------------------
VarPtr add(const VarPtr& a, const VarPtr& b);
VarPtr sub(const VarPtr& a, const VarPtr& b);
VarPtr mul(const VarPtr& a, const VarPtr& b);
VarPtr div(const VarPtr& a, const VarPtr& b);

// --- scalar ------------------------------------------------------------------
VarPtr add_scalar(const VarPtr& a, float s);
VarPtr mul_scalar(const VarPtr& a, float s);

// --- unary elementwise ---------------------------------------------------------
VarPtr neg(const VarPtr& a);
VarPtr exp(const VarPtr& a);
VarPtr log(const VarPtr& a);   // caller guarantees positive input
VarPtr sqrt(const VarPtr& a);  // caller guarantees non-negative input
VarPtr relu(const VarPtr& a);
VarPtr tanh(const VarPtr& a);
VarPtr square(const VarPtr& a);

// --- linear algebra ------------------------------------------------------------
VarPtr matmul(const VarPtr& a, const VarPtr& b);
// a [N,K] x b [M,K] -> [N,M]: A·Bᵀ with the transpose fused into the GEMM —
// neither the forward nor the backward pass materializes a transposed copy.
VarPtr matmul_nt(const VarPtr& a, const VarPtr& b);
// a [K,N] x b [K,M] -> [N,M]: Aᵀ·B, likewise transpose-free.
VarPtr matmul_tn(const VarPtr& a, const VarPtr& b);
VarPtr transpose(const VarPtr& a);

// --- reductions ------------------------------------------------------------------
VarPtr row_sum(const VarPtr& a);  // [N,D] -> [N,1]
VarPtr col_sum(const VarPtr& a);  // [N,D] -> [1,D]
VarPtr sum_all(const VarPtr& a);  // [N,D] -> [1,1]

// --- structural --------------------------------------------------------------------
VarPtr concat_rows(const std::vector<VarPtr>& parts);
VarPtr concat_cols(const std::vector<VarPtr>& parts);
VarPtr slice_rows(const VarPtr& a, std::int64_t begin, std::int64_t end);
// out[r,0] = a[r, idx[r]]; backward scatters into the gathered columns.
VarPtr gather_cols(const VarPtr& a, std::vector<int> idx);
// Row gather with repetition allowed; backward scatter-adds rows.
VarPtr take_rows(const VarPtr& a, std::vector<int> indices);

// Cuts the graph: returns a constant holding a's current value.
VarPtr detach(const VarPtr& a);

// --- composites & fused primitives ------------------------------------------
// Mean over all elements -> scalar.
VarPtr mean_all(const VarPtr& a);
// Row-wise mean -> [N,1].
VarPtr row_mean(const VarPtr& a);
// Numerically stable row-wise log-softmax. Fused primitive: single-pass
// forward kernel, analytic backward g - softmax(x)·rowsum(g).
VarPtr log_softmax(const VarPtr& a);
// Row-wise softmax. Fused primitive: backward s⊙(g - rowsum(g⊙s)).
VarPtr softmax(const VarPtr& a);
// Fused NT-Xent logits for [2N,D] normalised embeddings z: (z·zᵀ)/T with the
// self-similarity diagonal masked to -1e9 in the same pass. Backward routes
// dL/dz = (G + Gᵀ)·z / T (diagonal of G zeroed) through accumulating GEMMs.
VarPtr ntxent_logits(const VarPtr& z, float temperature);
// Fused affine map x·W + b (b broadcast over rows; may be null). One node
// instead of matmul+add; backward feeds dL/dW and dL/db directly.
VarPtr affine(const VarPtr& x, const VarPtr& w, const VarPtr& b);
// Fused per-row layer normalisation (x - mean)/sqrt(var + eps) * gamma +
// beta, one node instead of the 9-node composite chain.
VarPtr layer_norm(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                  float eps);
// Mean negative log-likelihood of integer labels under row-softmax of logits.
VarPtr cross_entropy(const VarPtr& logits, const std::vector<int>& labels);
// Cross entropy against a fixed soft target distribution (rows sum to 1).
VarPtr cross_entropy_soft(const VarPtr& logits,
                          const tensor::Tensor& targets);
// Row-wise L2 normalisation with epsilon inside the square root. Fused
// primitive: one forward pass producing rows/norms, analytic backward
// (g - y·(g·y)) / n per row.
VarPtr l2_normalize(const VarPtr& a, float eps = 1e-8f);
// Mean squared error against a fixed target.
VarPtr mse(const VarPtr& a, const tensor::Tensor& target);
// Squared Euclidean distances to fixed centroids: [N,D] x const [K,D] -> [N,K].
VarPtr sq_dists_to(const VarPtr& a, const VarPtr& centroids);

}  // namespace calibre::ag
