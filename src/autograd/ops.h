// Differentiable op library.
//
// Primitive ops carry hand-derived backward closures; everything else in the
// library (losses, normalisation, softmax) is composed from these primitives,
// so the gradient-check tests on the primitives cover the whole stack.
//
// Broadcasting: add/sub/mul/div support full 2-D broadcasting; their backward
// reduces the upstream gradient over the broadcast dimensions
// (tensor::reduce_to_shape).
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace calibre::ag {

// --- binary elementwise (2-D broadcasting) ----------------------------------
VarPtr add(const VarPtr& a, const VarPtr& b);
VarPtr sub(const VarPtr& a, const VarPtr& b);
VarPtr mul(const VarPtr& a, const VarPtr& b);
VarPtr div(const VarPtr& a, const VarPtr& b);

// --- scalar ------------------------------------------------------------------
VarPtr add_scalar(const VarPtr& a, float s);
VarPtr mul_scalar(const VarPtr& a, float s);

// --- unary elementwise ---------------------------------------------------------
VarPtr neg(const VarPtr& a);
VarPtr exp(const VarPtr& a);
VarPtr log(const VarPtr& a);   // caller guarantees positive input
VarPtr sqrt(const VarPtr& a);  // caller guarantees non-negative input
VarPtr relu(const VarPtr& a);
VarPtr tanh(const VarPtr& a);
VarPtr square(const VarPtr& a);

// --- linear algebra ------------------------------------------------------------
VarPtr matmul(const VarPtr& a, const VarPtr& b);
// a [N,K] x b [M,K] -> [N,M]: A·Bᵀ with the transpose fused into the GEMM —
// neither the forward nor the backward pass materializes a transposed copy.
VarPtr matmul_nt(const VarPtr& a, const VarPtr& b);
// a [K,N] x b [K,M] -> [N,M]: Aᵀ·B, likewise transpose-free.
VarPtr matmul_tn(const VarPtr& a, const VarPtr& b);
VarPtr transpose(const VarPtr& a);

// --- reductions ------------------------------------------------------------------
VarPtr row_sum(const VarPtr& a);  // [N,D] -> [N,1]
VarPtr col_sum(const VarPtr& a);  // [N,D] -> [1,D]
VarPtr sum_all(const VarPtr& a);  // [N,D] -> [1,1]

// --- structural --------------------------------------------------------------------
VarPtr concat_rows(const std::vector<VarPtr>& parts);
VarPtr concat_cols(const std::vector<VarPtr>& parts);
VarPtr slice_rows(const VarPtr& a, std::int64_t begin, std::int64_t end);
// out[r,0] = a[r, idx[r]]; backward scatters into the gathered columns.
VarPtr gather_cols(const VarPtr& a, std::vector<int> idx);
// Row gather with repetition allowed; backward scatter-adds rows.
VarPtr take_rows(const VarPtr& a, std::vector<int> indices);

// Cuts the graph: returns a constant holding a's current value.
VarPtr detach(const VarPtr& a);

// --- composites (built from primitives; no bespoke backward) -------------------------
// Mean over all elements -> scalar.
VarPtr mean_all(const VarPtr& a);
// Row-wise mean -> [N,1].
VarPtr row_mean(const VarPtr& a);
// Numerically stable row-wise log-softmax (max-shift treated as constant,
// which yields the exact gradient by softmax shift invariance).
VarPtr log_softmax(const VarPtr& a);
// Row-wise softmax.
VarPtr softmax(const VarPtr& a);
// Mean negative log-likelihood of integer labels under row-softmax of logits.
VarPtr cross_entropy(const VarPtr& logits, const std::vector<int>& labels);
// Cross entropy against a fixed soft target distribution (rows sum to 1).
VarPtr cross_entropy_soft(const VarPtr& logits,
                          const tensor::Tensor& targets);
// Row-wise L2 normalisation with epsilon inside the square root.
VarPtr l2_normalize(const VarPtr& a, float eps = 1e-8f);
// Mean squared error against a fixed target.
VarPtr mse(const VarPtr& a, const tensor::Tensor& target);
// Squared Euclidean distances to fixed centroids: [N,D] x const [K,D] -> [N,K].
VarPtr sq_dists_to(const VarPtr& a, const VarPtr& centroids);

}  // namespace calibre::ag
