// Reverse-mode automatic differentiation.
//
// Every differentiable quantity is a Variable node in a dynamically built
// DAG. Leaf nodes are either parameters (requires_grad = true, persistent
// across steps — the optimizer reads value/grad in place) or constants.
// Interior nodes are produced by the op library in ops.h and carry a
// backward_fn closure that routes the node's accumulated gradient to its
// parents. backward() topologically sorts the DAG from the (scalar) root and
// runs the closures in reverse order, so fan-out is handled by plain gradient
// accumulation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace calibre::ag {

class Variable;
using VarPtr = std::shared_ptr<Variable>;

class Variable {
 public:
  explicit Variable(tensor::Tensor v, bool requires_g = false)
      : value(std::move(v)), requires_grad(requires_g) {}

  // Forward value of this node.
  tensor::Tensor value;

  // Accumulated gradient dLoss/dvalue; empty until first accumulation.
  tensor::Tensor grad;

  // True when gradients should flow into this node.
  bool requires_grad = false;

  // Inputs of the op that produced this node (empty for leaves).
  std::vector<VarPtr> parents;

  // Routes this node's grad into its parents. Null for leaves.
  std::function<void(Variable&)> backward_fn;

  // Adds `g` (shaped like value) into grad, allocating on first use.
  void accumulate_grad(const tensor::Tensor& g);
  // Move-aware variant: on the first accumulation the storage is stolen
  // instead of copied. Backward closures use this for gradients they are
  // done with (an interior node's grad is consumed exactly once, in reverse
  // topological order).
  void accumulate_grad(tensor::Tensor&& g);

  // Resets the gradient buffer to zeros (keeps allocation if present).
  void zero_grad();

  bool is_leaf() const { return parents.empty(); }
};

// Grad mode -------------------------------------------------------------------

// Thread-local gradient mode. While disabled, op builders skip the tape
// entirely: every op produces a plain value node (no parents, no backward
// closure) even over parameters, so a forward pass used only for its values
// — feature extraction, probes, divergence reporting, t-SNE exports — costs
// no graph bookkeeping and frees activations as soon as the ops consume
// them. Forward values are computed by the same kernels either way, so
// results are bitwise identical to a grad-mode forward.
bool grad_enabled();

// RAII scope that disables gradient tracking on this thread.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// Leaf factories -------------------------------------------------------------

// A constant: gradients are not tracked through it.
VarPtr constant(tensor::Tensor value);

// A trainable parameter: persistent leaf whose grad is filled by backward().
VarPtr parameter(tensor::Tensor value);

// Runs backpropagation from `root`, which must be a scalar ([1,1]).
// Seeds d(root)/d(root) = 1 and accumulates into every reachable leaf with
// requires_grad set.
void backward(const VarPtr& root);

}  // namespace calibre::ag
