#include "autograd/ops.h"

#include <atomic>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "tensor/kernels.h"

namespace calibre::ag {
namespace {

using tensor::Tensor;

// Builds an interior node. When no parent requires gradients the node is
// demoted to a constant (no parents, no closure), which prunes dead branches
// from the tape.
VarPtr make_node(Tensor value, std::vector<VarPtr> parents,
                 std::function<void(Variable&)> backward_fn) {
  auto node = std::make_shared<Variable>(std::move(value));
  bool requires_g = false;
  if (grad_enabled()) {
    for (const VarPtr& parent : parents) requires_g |= parent->requires_grad;
  }
  node->requires_grad = requires_g;
  if (requires_g) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

// Move-aware gradient hand-off: gives the closure's storage to the parent
// (free when the parent has no gradient yet). Backward closures below route
// every freshly built gradient — including a consumed self.grad — through
// this overload, so the backward pass recycles buffers instead of copying
// them. (In composite mode accumulate_grad degrades the move to the copy
// the pre-fusion library performed — see variable.cc.)
void push(const VarPtr& parent, Tensor&& g) {
  if (parent->requires_grad) parent->accumulate_grad(std::move(g));
}

std::atomic<bool>& fused_flag() {
  static std::atomic<bool> flag{
      env::get_flag("CALIBRE_FUSED_GRAPHS", /*fallback=*/true)};
  return flag;
}

}  // namespace

bool fused_graphs() { return fused_flag().load(std::memory_order_relaxed); }

void set_fused_graphs(bool on) {
  fused_flag().store(on, std::memory_order_relaxed);
}

// Closure conventions for the backward pass:
//  * An interior node's grad is consumed exactly once (reverse topological
//    order runs each backward_fn a single time), so a closure may mutate
//    self.grad in place and move it into its LAST push.
//  * Per-parent gradient math is guarded by parent->requires_grad so a
//    constant operand costs nothing on the backward pass.

VarPtr add(const VarPtr& a, const VarPtr& b) {
  return make_node(
      tensor::add(a->value, b->value), {a, b}, [a, b](Variable& self) {
        if (a->requires_grad) {
          push(a, tensor::reduce_to_shape(self.grad, a->value.rows(),
                                          a->value.cols()));
        }
        if (b->requires_grad) {
          push(b, tensor::reduce_to_shape(std::move(self.grad),
                                          b->value.rows(), b->value.cols()));
        }
      });
}

VarPtr sub(const VarPtr& a, const VarPtr& b) {
  return make_node(
      tensor::sub(a->value, b->value), {a, b}, [a, b](Variable& self) {
        if (a->requires_grad) {
          push(a, tensor::reduce_to_shape(self.grad, a->value.rows(),
                                          a->value.cols()));
        }
        if (b->requires_grad) {
          self.grad.scale_(-1.0f);
          push(b, tensor::reduce_to_shape(std::move(self.grad),
                                          b->value.rows(), b->value.cols()));
        }
      });
}

VarPtr mul(const VarPtr& a, const VarPtr& b) {
  return make_node(
      tensor::mul(a->value, b->value), {a, b}, [a, b](Variable& self) {
        if (a->requires_grad) {
          push(a, tensor::reduce_to_shape(tensor::mul(self.grad, b->value),
                                          a->value.rows(), a->value.cols()));
        }
        if (b->requires_grad) {
          push(b, tensor::reduce_to_shape(tensor::mul(self.grad, a->value),
                                          b->value.rows(), b->value.cols()));
        }
      });
}

VarPtr div(const VarPtr& a, const VarPtr& b) {
  return make_node(
      tensor::div(a->value, b->value), {a, b}, [a, b](Variable& self) {
        if (a->requires_grad) {
          push(a, tensor::reduce_to_shape(tensor::div(self.grad, b->value),
                                          a->value.rows(), a->value.cols()));
        }
        if (b->requires_grad) {
          // d(a/b)/db = -(a/b) / b = -value / b
          Tensor gb = tensor::div(self.value, b->value);
          gb.scale_(-1.0f);
          push(b, tensor::reduce_to_shape(tensor::mul(self.grad, gb),
                                          b->value.rows(), b->value.cols()));
        }
      });
}

VarPtr add_scalar(const VarPtr& a, float s) {
  return make_node(tensor::add_scalar(a->value, s), {a}, [a](Variable& self) {
    push(a, std::move(self.grad));
  });
}

VarPtr mul_scalar(const VarPtr& a, float s) {
  return make_node(tensor::mul_scalar(a->value, s), {a},
                   [a, s](Variable& self) {
                     self.grad.mul_scalar_(s);
                     push(a, std::move(self.grad));
                   });
}

VarPtr neg(const VarPtr& a) {
  return make_node(tensor::neg(a->value), {a}, [a](Variable& self) {
    self.grad.scale_(-1.0f);
    push(a, std::move(self.grad));
  });
}

VarPtr exp(const VarPtr& a) {
  return make_node(tensor::exp(a->value), {a}, [a](Variable& self) {
    self.grad.mul_(self.value);
    push(a, std::move(self.grad));
  });
}

VarPtr log(const VarPtr& a) {
  return make_node(tensor::log(a->value), {a}, [a](Variable& self) {
    self.grad.div_(a->value);
    push(a, std::move(self.grad));
  });
}

VarPtr sqrt(const VarPtr& a) {
  return make_node(tensor::sqrt(a->value), {a}, [a](Variable& self) {
    // d sqrt(x) = 0.5 / sqrt(x)
    self.grad.mul_scalar_(0.5f);
    self.grad.div_(self.value);
    push(a, std::move(self.grad));
  });
}

VarPtr relu(const VarPtr& a) {
  return make_node(tensor::relu(a->value), {a}, [a](Variable& self) {
    float* gd = self.grad.data();
    const float* av = a->value.data();
    const std::int64_t size = self.grad.size();
    for (std::int64_t i = 0; i < size; ++i) {
      gd[i] = av[i] > 0.0f ? gd[i] : 0.0f;  // branchless: vectorizes to a mask
    }
    push(a, std::move(self.grad));
  });
}

VarPtr tanh(const VarPtr& a) {
  return make_node(tensor::tanh(a->value), {a}, [a](Variable& self) {
    // d tanh(x) = 1 - tanh(x)^2
    float* gd = self.grad.data();
    const float* out = self.value.data();
    const std::int64_t size = self.grad.size();
    for (std::int64_t i = 0; i < size; ++i) {
      gd[i] *= 1.0f - out[i] * out[i];
    }
    push(a, std::move(self.grad));
  });
}

VarPtr square(const VarPtr& a) {
  return make_node(tensor::square(a->value), {a}, [a](Variable& self) {
    float* gd = self.grad.data();
    const float* av = a->value.data();
    const std::int64_t size = self.grad.size();
    for (std::int64_t i = 0; i < size; ++i) {
      gd[i] *= 2.0f * av[i];
    }
    push(a, std::move(self.grad));
  });
}

VarPtr matmul(const VarPtr& a, const VarPtr& b) {
  return make_node(
      tensor::matmul(a->value, b->value), {a, b}, [a, b](Variable& self) {
        if (a->requires_grad) {
          push(a, tensor::matmul_nt(self.grad, b->value));  // G·Bᵀ
        }
        if (b->requires_grad) {
          push(b, tensor::matmul_tn(a->value, self.grad));  // Aᵀ·G
        }
      });
}

VarPtr matmul_nt(const VarPtr& a, const VarPtr& b) {
  // value = A·Bᵀ with A [N,K], B [M,K].
  return make_node(
      tensor::matmul_nt(a->value, b->value), {a, b}, [a, b](Variable& self) {
        if (a->requires_grad) {
          push(a, tensor::matmul(self.grad, b->value));  // G·B
        }
        if (b->requires_grad) {
          push(b, tensor::matmul_tn(self.grad, a->value));  // Gᵀ·A
        }
      });
}

VarPtr matmul_tn(const VarPtr& a, const VarPtr& b) {
  // value = Aᵀ·B with A [K,N], B [K,M].
  return make_node(
      tensor::matmul_tn(a->value, b->value), {a, b}, [a, b](Variable& self) {
        if (a->requires_grad) {
          push(a, tensor::matmul_nt(b->value, self.grad));  // B·Gᵀ
        }
        if (b->requires_grad) {
          push(b, tensor::matmul(a->value, self.grad));  // A·G
        }
      });
}

VarPtr transpose(const VarPtr& a) {
  return make_node(tensor::transpose(a->value), {a}, [a](Variable& self) {
    // The gradient of a transpose is a transpose; write it with a raw
    // scatter loop so the closure stays free of materializing helpers.
    const std::int64_t rows = self.grad.rows();
    const std::int64_t cols = self.grad.cols();
    Tensor g = Tensor::uninit(cols, rows);
    const float* src = self.grad.data();
    float* dst = g.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        dst[c * rows + r] = src[r * cols + c];
      }
    }
    push(a, std::move(g));
  });
}

VarPtr row_sum(const VarPtr& a) {
  return make_node(tensor::row_sum(a->value), {a}, [a](Variable& self) {
    // Broadcast [N,1] back to [N,D].
    Tensor g = Tensor::uninit(a->value.rows(), a->value.cols());
    const float* gr = self.grad.data();
    float* gd = g.data();
    const std::int64_t cols = g.cols();
    for (std::int64_t r = 0; r < g.rows(); ++r) {
      const float v = gr[r];
      float* row = gd + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) row[c] = v;
    }
    push(a, std::move(g));
  });
}

VarPtr col_sum(const VarPtr& a) {
  return make_node(tensor::col_sum(a->value), {a}, [a](Variable& self) {
    Tensor g = Tensor::uninit(a->value.rows(), a->value.cols());
    const float* gr = self.grad.data();
    float* gd = g.data();
    const std::int64_t cols = g.cols();
    for (std::int64_t r = 0; r < g.rows(); ++r) {
      float* row = gd + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) row[c] = gr[c];
    }
    push(a, std::move(g));
  });
}

VarPtr sum_all(const VarPtr& a) {
  return make_node(tensor::sum_all(a->value), {a}, [a](Variable& self) {
    push(a, Tensor::full(a->value.rows(), a->value.cols(), self.grad(0, 0)));
  });
}

VarPtr concat_rows(const std::vector<VarPtr>& parts) {
  CALIBRE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const VarPtr& part : parts) values.push_back(part->value);
  std::vector<VarPtr> parents = parts;
  return make_node(tensor::concat_rows(values), std::move(parents),
                   [parts](Variable& self) {
                     std::int64_t offset = 0;
                     for (const VarPtr& part : parts) {
                       if (part->requires_grad) {
                         push(part, tensor::slice_rows(
                                        self.grad, offset,
                                        offset + part->value.rows()));
                       }
                       offset += part->value.rows();
                     }
                   });
}

VarPtr concat_cols(const std::vector<VarPtr>& parts) {
  CALIBRE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const VarPtr& part : parts) values.push_back(part->value);
  std::vector<VarPtr> parents = parts;
  return make_node(tensor::concat_cols(values), std::move(parents),
                   [parts](Variable& self) {
                     std::int64_t offset = 0;
                     for (const VarPtr& part : parts) {
                       if (part->requires_grad) {
                         push(part, tensor::slice_cols(
                                        self.grad, offset,
                                        offset + part->value.cols()));
                       }
                       offset += part->value.cols();
                     }
                   });
}

VarPtr slice_rows(const VarPtr& a, std::int64_t begin, std::int64_t end) {
  return make_node(tensor::slice_rows(a->value, begin, end), {a},
                   [a, begin](Variable& self) {
                     // Zero-initialised scatter target: rows outside the
                     // slice contribute no gradient.
                     Tensor g(a->value.rows(), a->value.cols());
                     for (std::int64_t r = 0; r < self.grad.rows(); ++r) {
                       for (std::int64_t c = 0; c < g.cols(); ++c) {
                         g(begin + r, c) = self.grad(r, c);
                       }
                     }
                     push(a, std::move(g));
                   });
}

VarPtr gather_cols(const VarPtr& a, std::vector<int> idx) {
  Tensor value = tensor::gather_cols(a->value, idx);
  return make_node(std::move(value), {a},
                   [a, idx = std::move(idx)](Variable& self) {
                     Tensor g(a->value.rows(), a->value.cols());
                     for (std::int64_t r = 0; r < g.rows(); ++r) {
                       g(r, idx[static_cast<std::size_t>(r)]) +=
                           self.grad(r, 0);
                     }
                     push(a, std::move(g));
                   });
}

VarPtr take_rows(const VarPtr& a, std::vector<int> indices) {
  Tensor value = tensor::take_rows(a->value, indices);
  return make_node(std::move(value), {a},
                   [a, indices = std::move(indices)](Variable& self) {
                     Tensor g(a->value.rows(), a->value.cols());
                     for (std::size_t i = 0; i < indices.size(); ++i) {
                       const std::int64_t src =
                           static_cast<std::int64_t>(i);
                       const std::int64_t dst = indices[i];
                       for (std::int64_t c = 0; c < g.cols(); ++c) {
                         g(dst, c) += self.grad(src, c);
                       }
                     }
                     push(a, std::move(g));
                   });
}

VarPtr detach(const VarPtr& a) { return constant(a->value); }

VarPtr mean_all(const VarPtr& a) {
  CALIBRE_CHECK(a->value.size() > 0);
  return mul_scalar(sum_all(a), 1.0f / static_cast<float>(a->value.size()));
}

VarPtr row_mean(const VarPtr& a) {
  CALIBRE_CHECK(a->value.cols() > 0);
  return mul_scalar(row_sum(a), 1.0f / static_cast<float>(a->value.cols()));
}

VarPtr log_softmax(const VarPtr& a) {
  if (!fused_graphs()) {
    // Composite form: shift by the row max as a constant (softmax is shift
    // invariant, so the gradient of the shifted expression equals the true
    // gradient), then log-sum-exp through the elementary ops.
    const VarPtr shift = constant(tensor::row_max(a->value));
    const VarPtr shifted = sub(a, shift);
    const VarPtr lse = log(row_sum(exp(shifted)));
    return sub(shifted, lse);
  }
  // Fused primitive: the forward is the single-pass tensor kernel, and the
  // backward uses the identity d/dx log_softmax = g - softmax(x)·rowsum(g)
  // where softmax(x) = exp(log_softmax(x)) is recovered from the output —
  // no max-shift intermediates or graph nodes are materialized.
  return make_node(
      tensor::log_softmax_rows(a->value), {a}, [a](Variable& self) {
        float* gd = self.grad.data();
        const float* out = self.value.data();
        const std::int64_t rows = self.grad.rows();
        const std::int64_t cols = self.grad.cols();
        for (std::int64_t r = 0; r < rows; ++r) {
          float* grow = gd + r * cols;
          const float* orow = out + r * cols;
          float total = 0.0f;
          for (std::int64_t c = 0; c < cols; ++c) total += grow[c];
          for (std::int64_t c = 0; c < cols; ++c) {
            grow[c] -= std::exp(orow[c]) * total;
          }
        }
        push(a, std::move(self.grad));
      });
}

VarPtr softmax(const VarPtr& a) {
  if (!fused_graphs()) return exp(log_softmax(a));
  // Fused primitive: backward is g' = s ⊙ (g − rowsum(g ⊙ s)) with
  // s = softmax(x) read from the node's own output.
  return make_node(tensor::softmax_rows(a->value), {a}, [a](Variable& self) {
    float* gd = self.grad.data();
    const float* out = self.value.data();
    const std::int64_t rows = self.grad.rows();
    const std::int64_t cols = self.grad.cols();
    for (std::int64_t r = 0; r < rows; ++r) {
      float* grow = gd + r * cols;
      const float* srow = out + r * cols;
      float dot = 0.0f;
      for (std::int64_t c = 0; c < cols; ++c) dot += grow[c] * srow[c];
      for (std::int64_t c = 0; c < cols; ++c) {
        grow[c] = srow[c] * (grow[c] - dot);
      }
    }
    push(a, std::move(self.grad));
  });
}

VarPtr cross_entropy(const VarPtr& logits, const std::vector<int>& labels) {
  CALIBRE_CHECK_MSG(
      static_cast<std::int64_t>(labels.size()) == logits->value.rows(),
      "cross_entropy: one label per row");
  const VarPtr picked = gather_cols(log_softmax(logits), labels);
  return neg(mean_all(picked));
}

VarPtr cross_entropy_soft(const VarPtr& logits, const tensor::Tensor& targets) {
  CALIBRE_CHECK_MSG(targets.rows() == logits->value.rows() &&
                        targets.cols() == logits->value.cols(),
                    "cross_entropy_soft shape mismatch");
  const VarPtr weighted = mul(log_softmax(logits), constant(targets));
  const float n = static_cast<float>(logits->value.rows());
  return neg(mul_scalar(sum_all(weighted), 1.0f / n));
}

VarPtr l2_normalize(const VarPtr& a, float eps) {
  if (!fused_graphs()) {
    return div(a, sqrt(add_scalar(row_sum(square(a)), eps)));
  }
  // Fused primitive replacing the sqrt(row_sum(square(a)) + eps) composite
  // (5 graph nodes, 6 tensor intermediates). Forward computes the row norms
  // n_r = sqrt(Σ a² + eps) and y = a / n in one pass; the norms travel to
  // the backward closure by value. Backward: dL/da = (g − y·(g·y)) / n per
  // row, where (g·y) is the row dot product.
  const std::int64_t rows = a->value.rows();
  const std::int64_t cols = a->value.cols();
  Tensor norms = Tensor::uninit(rows, 1);
  Tensor out = Tensor::uninit(rows, cols);
  const float* ad = a->value.data();
  float* od = out.data();
  float* nd = norms.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* arow = ad + r * cols;
    float sq = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) sq += arow[c] * arow[c];
    const float n = std::sqrt(sq + eps);
    nd[r] = n;
    const float inv = 1.0f / n;
    float* orow = od + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) orow[c] = arow[c] * inv;
  }
  return make_node(
      std::move(out), {a}, [a, norms = std::move(norms)](Variable& self) {
        float* gd = self.grad.data();
        const float* yd = self.value.data();
        const float* norm_d = norms.data();
        const std::int64_t g_rows = self.grad.rows();
        const std::int64_t g_cols = self.grad.cols();
        for (std::int64_t r = 0; r < g_rows; ++r) {
          float* grow = gd + r * g_cols;
          const float* yrow = yd + r * g_cols;
          float dot = 0.0f;
          for (std::int64_t c = 0; c < g_cols; ++c) dot += grow[c] * yrow[c];
          const float inv = 1.0f / norm_d[r];
          for (std::int64_t c = 0; c < g_cols; ++c) {
            grow[c] = (grow[c] - yrow[c] * dot) * inv;
          }
        }
        push(a, std::move(self.grad));
      });
}

VarPtr ntxent_logits(const VarPtr& z, float temperature) {
  // Fused NT-Xent logits: out = (z·zᵀ) / T with the diagonal masked to -1e9
  // in the same pass (the previous composite materialized the raw similarity
  // matrix, a scaled copy, a [2N,2N] mask constant, and their sum). The
  // diagonal entries are constants, so backward zeroes their upstream
  // gradient and routes dL/dz = (G + Gᵀ)·z / T through two accumulating
  // GEMMs into a single buffer.
  CALIBRE_CHECK(temperature > 0.0f);
  const std::int64_t n = z->value.rows();
  const std::int64_t k = z->value.cols();
  if (!fused_graphs()) {
    VarPtr sim = mul_scalar(matmul(z, transpose(z)), 1.0f / temperature);
    Tensor diag_mask(n, n);
    for (std::int64_t i = 0; i < n; ++i) diag_mask(i, i) = -1e9f;
    return add(sim, constant(diag_mask));
  }
  Tensor out(n, n);  // zero-initialised: gemm_nt accumulates into it
  tensor::kernels::gemm_nt(n, k, n, z->value.data(), z->value.data(),
                           out.data());
  const float inv_t = 1.0f / temperature;
  float* od = out.data();
  for (std::int64_t r = 0; r < n; ++r) {
    float* row = od + r * n;
    for (std::int64_t c = 0; c < n; ++c) row[c] *= inv_t;
    row[r] = -1e9f;
  }
  return make_node(
      std::move(out), {z}, [z, inv_t](Variable& self) {
        const std::int64_t zn = z->value.rows();
        const std::int64_t zk = z->value.cols();
        float* gd = self.grad.data();
        for (std::int64_t i = 0; i < zn; ++i) gd[i * zn + i] = 0.0f;
        Tensor gz(zn, zk);  // zero-initialised: both GEMMs accumulate
        tensor::kernels::gemm(zn, zn, zk, gd, z->value.data(), gz.data());
        tensor::kernels::gemm_tn(zn, zn, zk, gd, z->value.data(), gz.data());
        gz.scale_(inv_t);
        push(z, std::move(gz));
      });
}

VarPtr affine(const VarPtr& x, const VarPtr& w, const VarPtr& b) {
  if (!fused_graphs()) {
    const VarPtr product = matmul(x, w);
    return b != nullptr ? add(product, b) : product;
  }
  // Fuses Linear's matmul + broadcast bias add into one node: the bias is
  // added into the GEMM output in place, and backward computes the three
  // gradients (G·Wᵀ, Xᵀ·G, col_sum(G)) without an intermediate tensor.
  Tensor out = tensor::matmul(x->value, w->value);
  std::vector<VarPtr> parents = {x, w};
  if (b != nullptr) {
    CALIBRE_CHECK_MSG(b->value.rows() == 1 && b->value.cols() == out.cols(),
                      "affine bias must be [1," << out.cols() << "], got "
                                                << b->value.shape_string());
    float* od = out.data();
    const float* bd = b->value.data();
    const std::int64_t cols = out.cols();
    for (std::int64_t r = 0; r < out.rows(); ++r) {
      float* row = od + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) row[c] += bd[c];
    }
    parents.push_back(b);
  }
  return make_node(std::move(out), std::move(parents),
                   [x, w, b](Variable& self) {
                     if (b != nullptr && b->requires_grad) {
                       push(b, tensor::col_sum(self.grad));
                     }
                     if (x->requires_grad) {
                       push(x, tensor::matmul_nt(self.grad, w->value));
                     }
                     if (w->requires_grad) {
                       push(w, tensor::matmul_tn(x->value, self.grad));
                     }
                   });
}

VarPtr layer_norm(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                  float eps) {
  // Fused per-row normalisation. The composite form materializes ~9 graph
  // nodes and a dozen intermediates per call; here the forward is one pass
  // (computing mean, variance, x̂ and the output row by row) and the
  // backward applies the standard layer-norm gradient
  //   dx = (γ/σ) ⊙ (g − mean(ĝ) − x̂·mean(ĝ⊙x̂)),  ĝ = g⊙γ
  // with dγ = Σ_rows g⊙x̂ and dβ = Σ_rows g. x̂ and 1/σ are cached for the
  // closure (the same tensors the composite graph would have held alive).
  const std::int64_t rows = x->value.rows();
  const std::int64_t cols = x->value.cols();
  CALIBRE_CHECK_MSG(gamma->value.rows() == 1 && gamma->value.cols() == cols &&
                        beta->value.rows() == 1 && beta->value.cols() == cols,
                    "layer_norm gamma/beta must be [1," << cols << "]");
  CALIBRE_CHECK(cols > 0);
  if (!fused_graphs()) {
    const VarPtr mean = row_mean(x);                       // [N,1]
    const VarPtr centered = sub(x, mean);                  // [N,D]
    const VarPtr variance = row_mean(square(centered));
    const VarPtr stddev = sqrt(add_scalar(variance, eps));
    const VarPtr normalized = div(centered, stddev);
    return add(mul(normalized, gamma), beta);
  }
  Tensor xhat = Tensor::uninit(rows, cols);
  Tensor inv_std = Tensor::uninit(rows, 1);
  Tensor out = Tensor::uninit(rows, cols);
  const float* xd = x->value.data();
  const float* gd = gamma->value.data();
  const float* bd = beta->value.data();
  float* hd = xhat.data();
  float* sd = inv_std.data();
  float* od = out.data();
  const float inv_cols = 1.0f / static_cast<float>(cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xrow = xd + r * cols;
    float mean = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) mean += xrow[c];
    mean *= inv_cols;
    float var = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float d = xrow[c] - mean;
      var += d * d;
    }
    var *= inv_cols;
    const float inv = 1.0f / std::sqrt(var + eps);
    sd[r] = inv;
    float* hrow = hd + r * cols;
    float* orow = od + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float h = (xrow[c] - mean) * inv;
      hrow[c] = h;
      orow[c] = h * gd[c] + bd[c];
    }
  }
  return make_node(
      std::move(out), {x, gamma, beta},
      [x, gamma, beta, xhat = std::move(xhat),
       inv_std = std::move(inv_std)](Variable& self) {
        const std::int64_t g_rows = self.grad.rows();
        const std::int64_t g_cols = self.grad.cols();
        const float g_inv_cols = 1.0f / static_cast<float>(g_cols);
        const float* grad_d = self.grad.data();
        const float* hat_d = xhat.data();
        const float* std_d = inv_std.data();
        const float* gammad = gamma->value.data();
        if (gamma->requires_grad) {
          Tensor dgamma(1, g_cols);
          float* dgd = dgamma.data();
          for (std::int64_t r = 0; r < g_rows; ++r) {
            const float* grow = grad_d + r * g_cols;
            const float* hrow = hat_d + r * g_cols;
            for (std::int64_t c = 0; c < g_cols; ++c) {
              dgd[c] += grow[c] * hrow[c];
            }
          }
          push(gamma, std::move(dgamma));
        }
        if (beta->requires_grad) {
          push(beta, tensor::col_sum(self.grad));
        }
        if (x->requires_grad) {
          Tensor dx = Tensor::uninit(g_rows, g_cols);
          float* dxd = dx.data();
          for (std::int64_t r = 0; r < g_rows; ++r) {
            const float* grow = grad_d + r * g_cols;
            const float* hrow = hat_d + r * g_cols;
            float* dxrow = dxd + r * g_cols;
            float sum_gh = 0.0f;
            float sum_gh_h = 0.0f;
            for (std::int64_t c = 0; c < g_cols; ++c) {
              const float gh = grow[c] * gammad[c];
              sum_gh += gh;
              sum_gh_h += gh * hrow[c];
            }
            const float mean_gh = sum_gh * g_inv_cols;
            const float mean_gh_h = sum_gh_h * g_inv_cols;
            const float inv = std_d[r];
            for (std::int64_t c = 0; c < g_cols; ++c) {
              const float gh = grow[c] * gammad[c];
              dxrow[c] = (gh - mean_gh - hrow[c] * mean_gh_h) * inv;
            }
          }
          push(x, std::move(dx));
        }
      });
}

VarPtr mse(const VarPtr& a, const tensor::Tensor& target) {
  const VarPtr diff = sub(a, constant(target));
  return mean_all(square(diff));
}

VarPtr sq_dists_to(const VarPtr& a, const VarPtr& centroids) {
  // ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 via broadcasting:
  // [N,1] + [1,K] - 2 [N,K]. The cross term fuses the centroid transpose
  // into the GEMM; only the [K,1] norm vector is ever transposed.
  const VarPtr x_sq = row_sum(square(a));                       // [N,1]
  const VarPtr c_sq = transpose(row_sum(square(centroids)));    // [1,K]
  const VarPtr cross = matmul_nt(a, centroids);                 // [N,K]
  return add(add(x_sq, c_sq), mul_scalar(cross, -2.0f));
}

}  // namespace calibre::ag
