#include "autograd/ops.h"

#include <utility>

#include "common/check.h"

namespace calibre::ag {
namespace {

using tensor::Tensor;

// Builds an interior node. When no parent requires gradients the node is
// demoted to a constant (no parents, no closure), which prunes dead branches
// from the tape.
VarPtr make_node(Tensor value, std::vector<VarPtr> parents,
                 std::function<void(Variable&)> backward_fn) {
  auto node = std::make_shared<Variable>(std::move(value));
  bool requires_g = false;
  for (const VarPtr& parent : parents) requires_g |= parent->requires_grad;
  node->requires_grad = requires_g;
  if (requires_g) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

// Accumulates `g` into `parent` if it participates in differentiation.
void push(const VarPtr& parent, const Tensor& g) {
  if (parent->requires_grad) parent->accumulate_grad(g);
}

}  // namespace

VarPtr add(const VarPtr& a, const VarPtr& b) {
  return make_node(tensor::add(a->value, b->value), {a, b},
                   [a, b](Variable& self) {
                     push(a, tensor::reduce_to_shape(self.grad, a->value.rows(),
                                                     a->value.cols()));
                     push(b, tensor::reduce_to_shape(self.grad, b->value.rows(),
                                                     b->value.cols()));
                   });
}

VarPtr sub(const VarPtr& a, const VarPtr& b) {
  return make_node(tensor::sub(a->value, b->value), {a, b},
                   [a, b](Variable& self) {
                     push(a, tensor::reduce_to_shape(self.grad, a->value.rows(),
                                                     a->value.cols()));
                     push(b, tensor::reduce_to_shape(tensor::neg(self.grad),
                                                     b->value.rows(),
                                                     b->value.cols()));
                   });
}

VarPtr mul(const VarPtr& a, const VarPtr& b) {
  return make_node(
      tensor::mul(a->value, b->value), {a, b}, [a, b](Variable& self) {
        push(a, tensor::reduce_to_shape(tensor::mul(self.grad, b->value),
                                        a->value.rows(), a->value.cols()));
        push(b, tensor::reduce_to_shape(tensor::mul(self.grad, a->value),
                                        b->value.rows(), b->value.cols()));
      });
}

VarPtr div(const VarPtr& a, const VarPtr& b) {
  return make_node(
      tensor::div(a->value, b->value), {a, b}, [a, b](Variable& self) {
        push(a, tensor::reduce_to_shape(tensor::div(self.grad, b->value),
                                        a->value.rows(), a->value.cols()));
        // d(a/b)/db = -a / b^2
        const Tensor minus_a_over_b2 = tensor::neg(tensor::div(
            tensor::div(a->value, b->value), b->value));
        push(b, tensor::reduce_to_shape(
                    tensor::mul(self.grad, minus_a_over_b2), b->value.rows(),
                    b->value.cols()));
      });
}

VarPtr add_scalar(const VarPtr& a, float s) {
  return make_node(tensor::add_scalar(a->value, s), {a},
                   [a](Variable& self) { push(a, self.grad); });
}

VarPtr mul_scalar(const VarPtr& a, float s) {
  return make_node(tensor::mul_scalar(a->value, s), {a},
                   [a, s](Variable& self) {
                     push(a, tensor::mul_scalar(self.grad, s));
                   });
}

VarPtr neg(const VarPtr& a) {
  return make_node(tensor::neg(a->value), {a}, [a](Variable& self) {
    push(a, tensor::neg(self.grad));
  });
}

VarPtr exp(const VarPtr& a) {
  return make_node(tensor::exp(a->value), {a}, [a](Variable& self) {
    push(a, tensor::mul(self.grad, self.value));
  });
}

VarPtr log(const VarPtr& a) {
  return make_node(tensor::log(a->value), {a}, [a](Variable& self) {
    push(a, tensor::div(self.grad, a->value));
  });
}

VarPtr sqrt(const VarPtr& a) {
  return make_node(tensor::sqrt(a->value), {a}, [a](Variable& self) {
    // d sqrt(x) = 0.5 / sqrt(x)
    push(a, tensor::div(tensor::mul_scalar(self.grad, 0.5f), self.value));
  });
}

VarPtr relu(const VarPtr& a) {
  return make_node(tensor::relu(a->value), {a}, [a](Variable& self) {
    push(a, tensor::mul(self.grad, tensor::relu_mask(a->value)));
  });
}

VarPtr tanh(const VarPtr& a) {
  return make_node(tensor::tanh(a->value), {a}, [a](Variable& self) {
    const Tensor one_minus_sq = tensor::sub(
        Tensor::ones(self.value.rows(), self.value.cols()),
        tensor::square(self.value));
    push(a, tensor::mul(self.grad, one_minus_sq));
  });
}

VarPtr square(const VarPtr& a) {
  return make_node(tensor::square(a->value), {a}, [a](Variable& self) {
    push(a, tensor::mul(self.grad, tensor::mul_scalar(a->value, 2.0f)));
  });
}

VarPtr matmul(const VarPtr& a, const VarPtr& b) {
  return make_node(
      tensor::matmul(a->value, b->value), {a, b}, [a, b](Variable& self) {
        push(a, tensor::matmul_nt(self.grad, b->value));  // G·Bᵀ
        push(b, tensor::matmul_tn(a->value, self.grad));  // Aᵀ·G
      });
}

VarPtr matmul_nt(const VarPtr& a, const VarPtr& b) {
  // value = A·Bᵀ with A [N,K], B [M,K].
  return make_node(
      tensor::matmul_nt(a->value, b->value), {a, b}, [a, b](Variable& self) {
        push(a, tensor::matmul(self.grad, b->value));     // G·B
        push(b, tensor::matmul_tn(self.grad, a->value));  // Gᵀ·A
      });
}

VarPtr matmul_tn(const VarPtr& a, const VarPtr& b) {
  // value = Aᵀ·B with A [K,N], B [K,M].
  return make_node(
      tensor::matmul_tn(a->value, b->value), {a, b}, [a, b](Variable& self) {
        push(a, tensor::matmul_nt(b->value, self.grad));  // B·Gᵀ
        push(b, tensor::matmul(a->value, self.grad));     // A·G
      });
}

VarPtr transpose(const VarPtr& a) {
  return make_node(tensor::transpose(a->value), {a}, [a](Variable& self) {
    // The gradient of a transpose is a transpose; write it with a raw
    // scatter loop so the closure stays free of materializing helpers.
    const std::int64_t rows = self.grad.rows();
    const std::int64_t cols = self.grad.cols();
    Tensor g(cols, rows);
    const float* src = self.grad.data();
    float* dst = g.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        dst[c * rows + r] = src[r * cols + c];
      }
    }
    push(a, g);
  });
}

VarPtr row_sum(const VarPtr& a) {
  return make_node(tensor::row_sum(a->value), {a}, [a](Variable& self) {
    // Broadcast [N,1] back to [N,D].
    Tensor g(a->value.rows(), a->value.cols());
    for (std::int64_t r = 0; r < g.rows(); ++r) {
      const float gr = self.grad(r, 0);
      for (std::int64_t c = 0; c < g.cols(); ++c) g(r, c) = gr;
    }
    push(a, g);
  });
}

VarPtr col_sum(const VarPtr& a) {
  return make_node(tensor::col_sum(a->value), {a}, [a](Variable& self) {
    Tensor g(a->value.rows(), a->value.cols());
    for (std::int64_t r = 0; r < g.rows(); ++r) {
      for (std::int64_t c = 0; c < g.cols(); ++c) g(r, c) = self.grad(0, c);
    }
    push(a, g);
  });
}

VarPtr sum_all(const VarPtr& a) {
  return make_node(tensor::sum_all(a->value), {a}, [a](Variable& self) {
    push(a, Tensor::full(a->value.rows(), a->value.cols(), self.grad(0, 0)));
  });
}

VarPtr concat_rows(const std::vector<VarPtr>& parts) {
  CALIBRE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const VarPtr& part : parts) values.push_back(part->value);
  std::vector<VarPtr> parents = parts;
  return make_node(tensor::concat_rows(values), std::move(parents),
                   [parts](Variable& self) {
                     std::int64_t offset = 0;
                     for (const VarPtr& part : parts) {
                       push(part,
                            tensor::slice_rows(self.grad, offset,
                                               offset + part->value.rows()));
                       offset += part->value.rows();
                     }
                   });
}

VarPtr concat_cols(const std::vector<VarPtr>& parts) {
  CALIBRE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const VarPtr& part : parts) values.push_back(part->value);
  std::vector<VarPtr> parents = parts;
  return make_node(tensor::concat_cols(values), std::move(parents),
                   [parts](Variable& self) {
                     std::int64_t offset = 0;
                     for (const VarPtr& part : parts) {
                       push(part,
                            tensor::slice_cols(self.grad, offset,
                                               offset + part->value.cols()));
                       offset += part->value.cols();
                     }
                   });
}

VarPtr slice_rows(const VarPtr& a, std::int64_t begin, std::int64_t end) {
  return make_node(tensor::slice_rows(a->value, begin, end), {a},
                   [a, begin](Variable& self) {
                     Tensor g(a->value.rows(), a->value.cols());
                     for (std::int64_t r = 0; r < self.grad.rows(); ++r) {
                       for (std::int64_t c = 0; c < g.cols(); ++c) {
                         g(begin + r, c) = self.grad(r, c);
                       }
                     }
                     push(a, g);
                   });
}

VarPtr gather_cols(const VarPtr& a, std::vector<int> idx) {
  Tensor value = tensor::gather_cols(a->value, idx);
  return make_node(std::move(value), {a},
                   [a, idx = std::move(idx)](Variable& self) {
                     Tensor g(a->value.rows(), a->value.cols());
                     for (std::int64_t r = 0; r < g.rows(); ++r) {
                       g(r, idx[static_cast<std::size_t>(r)]) +=
                           self.grad(r, 0);
                     }
                     push(a, g);
                   });
}

VarPtr take_rows(const VarPtr& a, std::vector<int> indices) {
  Tensor value = tensor::take_rows(a->value, indices);
  return make_node(std::move(value), {a},
                   [a, indices = std::move(indices)](Variable& self) {
                     Tensor g(a->value.rows(), a->value.cols());
                     for (std::size_t i = 0; i < indices.size(); ++i) {
                       const std::int64_t src =
                           static_cast<std::int64_t>(i);
                       const std::int64_t dst = indices[i];
                       for (std::int64_t c = 0; c < g.cols(); ++c) {
                         g(dst, c) += self.grad(src, c);
                       }
                     }
                     push(a, g);
                   });
}

VarPtr detach(const VarPtr& a) { return constant(a->value); }

VarPtr mean_all(const VarPtr& a) {
  CALIBRE_CHECK(a->value.size() > 0);
  return mul_scalar(sum_all(a), 1.0f / static_cast<float>(a->value.size()));
}

VarPtr row_mean(const VarPtr& a) {
  CALIBRE_CHECK(a->value.cols() > 0);
  return mul_scalar(row_sum(a), 1.0f / static_cast<float>(a->value.cols()));
}

VarPtr log_softmax(const VarPtr& a) {
  // Shift by the row max as a constant. Softmax is shift invariant, so the
  // gradient of the shifted expression equals the true gradient.
  const VarPtr shift = constant(tensor::row_max(a->value));
  const VarPtr shifted = sub(a, shift);
  const VarPtr lse = log(row_sum(exp(shifted)));
  return sub(shifted, lse);
}

VarPtr softmax(const VarPtr& a) { return exp(log_softmax(a)); }

VarPtr cross_entropy(const VarPtr& logits, const std::vector<int>& labels) {
  CALIBRE_CHECK_MSG(
      static_cast<std::int64_t>(labels.size()) == logits->value.rows(),
      "cross_entropy: one label per row");
  const VarPtr picked = gather_cols(log_softmax(logits), labels);
  return neg(mean_all(picked));
}

VarPtr cross_entropy_soft(const VarPtr& logits, const tensor::Tensor& targets) {
  CALIBRE_CHECK_MSG(targets.rows() == logits->value.rows() &&
                        targets.cols() == logits->value.cols(),
                    "cross_entropy_soft shape mismatch");
  const VarPtr weighted = mul(log_softmax(logits), constant(targets));
  const float n = static_cast<float>(logits->value.rows());
  return neg(mul_scalar(sum_all(weighted), 1.0f / n));
}

VarPtr l2_normalize(const VarPtr& a, float eps) {
  const VarPtr norms = sqrt(add_scalar(row_sum(square(a)), eps));
  return div(a, norms);
}

VarPtr mse(const VarPtr& a, const tensor::Tensor& target) {
  const VarPtr diff = sub(a, constant(target));
  return mean_all(square(diff));
}

VarPtr sq_dists_to(const VarPtr& a, const VarPtr& centroids) {
  // ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 via broadcasting:
  // [N,1] + [1,K] - 2 [N,K]. The cross term fuses the centroid transpose
  // into the GEMM; only the [K,1] norm vector is ever transposed.
  const VarPtr x_sq = row_sum(square(a));                       // [N,1]
  const VarPtr c_sq = transpose(row_sum(square(centroids)));    // [1,K]
  const VarPtr cross = matmul_nt(a, centroids);                 // [N,K]
  return add(add(x_sq, c_sq), mul_scalar(cross, -2.0f));
}

}  // namespace calibre::ag
