#include "core/calibre.h"

#include "cluster/kmeans.h"
#include "common/check.h"
#include "core/divergence.h"

namespace calibre::core {

Calibre::Calibre(const fl::FlConfig& config, ssl::Kind kind,
                 const CalibreConfig& calibre_config,
                 const ssl::SslConfig& ssl_config)
    : PflSsl(config, kind, ssl_config), calibre_config_(calibre_config) {}

std::string Calibre::name() const {
  std::string name = "Calibre (" + ssl::kind_name(kind_) + ")";
  const bool full = calibre_config_.prototype.use_ln &&
                    calibre_config_.prototype.use_lp;
  if (!full) {
    name += calibre_config_.prototype.use_ln   ? " [Ln]"
            : calibre_config_.prototype.use_lp ? " [Lp]"
                                               : " [none]";
  }
  if (!calibre_config_.divergence_weighted_aggregation) name += " [fedavg]";
  return name;
}

void Calibre::prepare_local_update(ssl::SslMethod& method,
                                   const fl::ClientContext& ctx,
                                   rng::Generator& gen,
                                   LocalScratch& scratch) {
  if (calibre_config_.prototype.scope != PrototypeScope::kLocalDataset) {
    return;
  }
  // Cluster the client's full local encodings once; batches are assigned to
  // these fixed centroids for stable pseudo-labels.
  const tensor::Tensor encodings = method.encode(ctx.train->x);
  cluster::KMeansConfig kmeans_config;
  kmeans_config.k = std::max(
      2, std::min<int>(calibre_config_.prototype.num_prototypes,
                       static_cast<int>(encodings.rows())));
  scratch.fixed_centroids =
      cluster::kmeans(encodings, kmeans_config, gen).centroids;
}

ag::VarPtr Calibre::build_loss(ssl::SslMethod& /*method*/,
                               const ssl::SslForward& fwd,
                               rng::Generator& gen, LocalScratch& scratch) {
  const PrototypeLosses proto = compute_prototype_losses(
      fwd, calibre_config_.prototype, gen,
      scratch.fixed_centroids.rows() > 0 ? &scratch.fixed_centroids
                                         : nullptr);
  ag::VarPtr loss = fwd.loss;
  ag::VarPtr reg;
  if (proto.l_n && proto.l_p) {
    reg = ag::add(proto.l_n, proto.l_p);
  } else if (proto.l_n) {
    reg = proto.l_n;
  } else if (proto.l_p) {
    reg = proto.l_p;
  }
  if (reg) {
    loss = ag::add(loss, ag::mul_scalar(reg, calibre_config_.alpha));
  }
  return loss;
}

void Calibre::finalize_update(ssl::SslMethod& method,
                              const fl::ClientContext& ctx,
                              rng::Generator& gen, fl::ClientUpdate& update) {
  // The client's local divergence rate over its own samples, computed with
  // the freshly trained encoder; shipped with the update as a scalar.
  update.scalars["divergence"] = client_divergence(
      method, ctx.train->x, calibre_config_.divergence_prototypes, gen);
}

nn::ModelState Calibre::aggregate(const nn::ModelState& global,
                                  const std::vector<fl::ClientUpdate>& updates,
                                  int round) {
  if (!calibre_config_.divergence_weighted_aggregation) {
    return PflSsl::aggregate(global, updates, round);
  }
  CALIBRE_CHECK(!updates.empty());
  const auto fold = make_aggregator(global, round);
  for (const fl::ClientUpdate& update : updates) fold->fold(update);
  return fold->finish();
}

std::unique_ptr<fl::StreamingAggregator> Calibre::make_aggregator(
    const nn::ModelState& global, int round) {
  if (!calibre_config_.divergence_weighted_aggregation) {
    return PflSsl::make_aggregator(global, round);
  }
  // Unnormalised per-update weight mirroring divergence_weights(); the
  // shared fold normalises by the running total at finish(). The shared
  // fold is also what makes Calibre shard-mergeable: its fixed-point
  // accumulators let --agg-shards split this fold across workers without
  // changing a single output bit.
  const DivergenceMode mode = calibre_config_.divergence_mode;
  return std::make_unique<fl::WeightedStreamingAggregator>(
      [mode](const fl::ClientUpdate& update) {
        const auto it = update.scalars.find("divergence");
        const float d = it == update.scalars.end() ? 0.0f : it->second;
        CALIBRE_CHECK_MSG(d >= 0.0f, "negative divergence");
        constexpr float kEps = 1e-3f;  // divergence_weights() default
        return static_cast<double>(mode == DivergenceMode::kInverse
                                       ? update.weight / (d + kEps)
                                       : update.weight * (d + kEps));
      });
}

}  // namespace calibre::core
