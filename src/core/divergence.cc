#include "core/divergence.h"

#include "cluster/kmeans.h"
#include "common/check.h"

namespace calibre::core {

float client_divergence(ssl::SslMethod& method, const tensor::Tensor& inputs,
                        int k, rng::Generator& gen) {
  CALIBRE_CHECK(inputs.rows() > 0);
  const tensor::Tensor encodings = method.encode(inputs);
  cluster::KMeansConfig config;
  config.k = std::max(2, std::min<int>(k, static_cast<int>(inputs.rows())));
  return cluster::kmeans(encodings, config, gen).mean_distance;
}

std::vector<float> divergence_weights(const std::vector<float>& divergences,
                                      const std::vector<float>& sample_weights,
                                      DivergenceMode mode, float eps) {
  CALIBRE_CHECK(divergences.size() == sample_weights.size());
  CALIBRE_CHECK(!divergences.empty());
  std::vector<float> weights(divergences.size());
  double total = 0.0;
  for (std::size_t i = 0; i < divergences.size(); ++i) {
    CALIBRE_CHECK_MSG(divergences[i] >= 0.0f, "negative divergence");
    weights[i] = mode == DivergenceMode::kInverse
                     ? sample_weights[i] / (divergences[i] + eps)
                     : sample_weights[i] * (divergences[i] + eps);
    total += weights[i];
  }
  CALIBRE_CHECK(total > 0.0);
  for (float& w : weights) w = static_cast<float>(w / total);
  return weights;
}

}  // namespace calibre::core
