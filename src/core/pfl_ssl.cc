#include "core/pfl_ssl.h"

#include "common/check.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "flapi/probe.h"
#include "nn/optim.h"

namespace calibre::core {

PflSsl::PflSsl(const fl::FlConfig& config, ssl::Kind kind,
               const ssl::SslConfig& ssl_config)
    : fl::Algorithm(config), kind_(kind), ssl_config_(ssl_config) {}

std::string PflSsl::name() const { return "pFL-" + ssl::kind_name(kind_); }

std::unique_ptr<ssl::SslMethod> PflSsl::build_method() const {
  return ssl::make_method(kind_, config_.encoder, ssl_config_, config_.seed);
}

nn::ModelState PflSsl::initialize() {
  const auto method = build_method();
  return nn::ModelState::from_parameters(method->shared_parameters());
}

void PflSsl::prepare_local_update(ssl::SslMethod& /*method*/,
                                  const fl::ClientContext& /*ctx*/,
                                  rng::Generator& /*gen*/,
                                  LocalScratch& /*scratch*/) {}

ag::VarPtr PflSsl::build_loss(ssl::SslMethod& /*method*/,
                              const ssl::SslForward& fwd,
                              rng::Generator& /*gen*/,
                              LocalScratch& /*scratch*/) {
  return fwd.loss;
}

void PflSsl::finalize_update(ssl::SslMethod& /*method*/,
                             const fl::ClientContext& /*ctx*/,
                             rng::Generator& /*gen*/,
                             fl::ClientUpdate& /*update*/) {}

fl::ClientUpdate PflSsl::local_update(const nn::ModelState& global,
                                      const fl::ClientContext& ctx) {
  CALIBRE_CHECK(ctx.ssl_pool != nullptr && ctx.ssl_pool->rows() > 0);
  const auto method = build_method();
  global.apply_to(method->shared_parameters());

  rng::Generator gen(ctx.seed);
  LocalScratch scratch;
  prepare_local_update(*method, ctx, gen, scratch);
  nn::Sgd optimizer(method->trainable_parameters(), config_.ssl_opt);
  for (int epoch = 0; epoch < config_.local_epochs; ++epoch) {
    // NT-Xent style losses need a minimum batch to have negatives.
    const auto batches = data::make_batches(ctx.ssl_pool->rows(),
                                            config_.batch_size, gen,
                                            /*min_batch=*/4);
    for (const auto& batch : batches) {
      const tensor::Tensor x = tensor::take_rows(*ctx.ssl_pool, batch);
      tensor::Tensor view1;
      tensor::Tensor view2;
      if (ctx.oracle != nullptr) {
        view1 = ctx.oracle->render_view(x, gen);
        view2 = ctx.oracle->render_view(x, gen);
      } else {
        data::TwoViews views = data::augment_pair(x, config_.augment, gen);
        view1 = std::move(views.view1);
        view2 = std::move(views.view2);
      }
      optimizer.zero_grad();
      const ssl::SslForward fwd = method->forward(view1, view2);
      ag::backward(build_loss(*method, fwd, gen, scratch));
      optimizer.step();
      method->after_step();
    }
  }

  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(method->shared_parameters());
  update.weight = static_cast<float>(ctx.ssl_pool->rows());
  finalize_update(*method, ctx, gen, update);
  return update;
}

double PflSsl::personalize(const nn::ModelState& global,
                           const fl::PersonalizationContext& ctx) {
  const auto method = build_method();
  global.apply_to(method->shared_parameters());
  const tensor::Tensor train_features = method->encode(ctx.train->x);
  const tensor::Tensor test_features = method->encode(ctx.test->x);
  if (config_.probe.head == fl::ProbeConfig::Head::kPrototype) {
    return fl::prototype_probe_accuracy(train_features, ctx.train->labels,
                                        test_features, ctx.test->labels,
                                        config_.num_classes);
  }
  return fl::linear_probe_accuracy(train_features, ctx.train->labels,
                                   test_features, ctx.test->labels,
                                   config_.num_classes, config_.probe,
                                   ctx.seed);
}

tensor::Tensor PflSsl::extract_features(const nn::ModelState& global,
                                        const tensor::Tensor& inputs) const {
  const auto method = build_method();
  global.apply_to(method->shared_parameters());
  return method->encode(inputs);
}

}  // namespace calibre::core
