// Client local divergence rate (paper §I / §IV-B): the average distance
// between a client's sample encodings and their assigned KMeans prototypes.
// Small divergence = tight local clusters = a trustworthy update; the server
// turns these into aggregation weights.
#pragma once

#include <vector>

#include "ssl/method.h"

namespace calibre::core {

// Mean encoding-to-prototype distance over `inputs` using `k` prototypes.
float client_divergence(ssl::SslMethod& method, const tensor::Tensor& inputs,
                        int k, rng::Generator& gen);

// Direction of the divergence-based re-weighting:
//  * kInverse      — trust tight clusters: w ~ 1 / (divergence + eps).
//  * kProportional — prioritise struggling clients (fairness-first, in the
//                    spirit of q-FFL): w ~ divergence + eps.
enum class DivergenceMode { kInverse, kProportional };

// Aggregation weights from divergences, scaled by sample weights and
// normalised to sum to 1. All-equal divergences reduce to FedAvg weights.
std::vector<float> divergence_weights(
    const std::vector<float>& divergences,
    const std::vector<float>& sample_weights,
    DivergenceMode mode = DivergenceMode::kInverse, float eps = 1e-3f);

}  // namespace calibre::core
