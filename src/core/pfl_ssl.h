// pFL-SSL: the paper's two-stage personalized-FL-with-SSL framework
// (§III-B). The training stage federates an SSL method's shared parameters
// with plain FedAvg; the personalization stage trains a linear probe per
// client on frozen encoder features. Instantiating it with different SSL
// methods yields pFL-SimCLR, pFL-BYOL, pFL-SimSiam, pFL-MoCoV2, pFL-SwAV and
// pFL-SMoG. Calibre derives from this class and overrides the loss and the
// aggregation rule.
#pragma once

#include <memory>

#include "flapi/algorithm.h"
#include "ssl/method.h"

namespace calibre::core {

class PflSsl : public fl::Algorithm {
 public:
  PflSsl(const fl::FlConfig& config, ssl::Kind kind,
         const ssl::SslConfig& ssl_config = {});

  std::string name() const override;
  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Plain FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

  ssl::Kind ssl_kind() const { return kind_; }

  // Encoder features of `inputs` under the given global state (used by the
  // representation-quality benches).
  tensor::Tensor extract_features(const nn::ModelState& global,
                                  const tensor::Tensor& inputs) const;

 protected:
  // Per-local-update scratch shared between the hooks (thread-confined: one
  // instance per local_update call).
  struct LocalScratch {
    // Feature-space centroids of the client's local dataset; empty unless a
    // subclass fills them in prepare_local_update.
    tensor::Tensor fixed_centroids;
  };

  // Builds the method with the experiment-wide seed so every client/round
  // constructs identical shapes and identical non-federated buffers.
  std::unique_ptr<ssl::SslMethod> build_method() const;

  // Hook: called once per local update after the global state is loaded.
  virtual void prepare_local_update(ssl::SslMethod& method,
                                    const fl::ClientContext& ctx,
                                    rng::Generator& gen,
                                    LocalScratch& scratch);

  // Hook: total loss for one batch. Base: the SSL loss itself. Calibre adds
  // the prototype regularizers and records the batch divergence.
  virtual ag::VarPtr build_loss(ssl::SslMethod& method,
                                const ssl::SslForward& fwd,
                                rng::Generator& gen, LocalScratch& scratch);

  // Hook: last touch on the update before it is sent (Calibre attaches the
  // client's divergence rate here).
  virtual void finalize_update(ssl::SslMethod& method,
                               const fl::ClientContext& ctx,
                               rng::Generator& gen, fl::ClientUpdate& update);

  ssl::Kind kind_;
  ssl::SslConfig ssl_config_;
};

}  // namespace calibre::core
