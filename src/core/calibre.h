// Calibre (paper §IV): pFL-SSL with
//   (1) the client-adaptive prototype regularizers L_n and L_p mixed into the
//       local SSL objective as L = l_s + alpha * (l_p + l_n), alpha = 0.3;
//   (2) divergence-weighted server aggregation, where each client's weight is
//       scaled by the inverse of its local divergence rate (the mean distance
//       between its encodings and their prototypes).
#pragma once

#include "core/divergence.h"
#include "core/pfl_ssl.h"
#include "core/prototype_loss.h"

namespace calibre::core {

struct CalibreConfig {
  PrototypeLossConfig prototype;  // K, temperature, use_ln / use_lp ablation
  float alpha = 0.3f;             // regularizer mixing weight (paper §V)
  // Ablation switch for the divergence-guided aggregation rule.
  bool divergence_weighted_aggregation = true;
  DivergenceMode divergence_mode = DivergenceMode::kInverse;
  // Prototype count when measuring a client's divergence rate.
  int divergence_prototypes = 10;
};

class Calibre : public PflSsl {
 public:
  Calibre(const fl::FlConfig& config, ssl::Kind kind,
          const CalibreConfig& calibre_config = {},
          const ssl::SslConfig& ssl_config = {});

  std::string name() const override;

  // Divergence-weighted FedAvg over the received updates. Delegates to the
  // streaming fold below so batch and streaming results are bit-identical.
  nn::ModelState aggregate(const nn::ModelState& global,
                           const std::vector<fl::ClientUpdate>& updates,
                           int round) override;
  // Native O(model) fold: each client's unnormalised weight n_c / (d_c + eps)
  // (or n_c * (d_c + eps)) is separable, so divergence weighting streams —
  // normalisation happens once at finish().
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState& global, int round) override;

  const CalibreConfig& calibre_config() const { return calibre_config_; }

 protected:
  void prepare_local_update(ssl::SslMethod& method,
                            const fl::ClientContext& ctx, rng::Generator& gen,
                            LocalScratch& scratch) override;
  ag::VarPtr build_loss(ssl::SslMethod& method, const ssl::SslForward& fwd,
                        rng::Generator& gen, LocalScratch& scratch) override;
  void finalize_update(ssl::SslMethod& method, const fl::ClientContext& ctx,
                       rng::Generator& gen,
                       fl::ClientUpdate& update) override;

 private:
  CalibreConfig calibre_config_;
};

}  // namespace calibre::core
