// Calibre's client-adaptive prototype regularizers (paper §IV-B, Alg. 1).
//
// Given the two-view SSL forward outputs of a batch:
//  * L_n (prototype-based meta regularizer): KMeans prototypes are built from
//    the encoder features of view e; features of view o are classified
//    against those prototypes with a temperature-scaled contrastive cross
//    entropy (Alg. 1 line 17). Gradients flow into both the assigned
//    features and the prototypes (which are differentiable means).
//  * L_p (prototype-oriented contrastive regularizer): per-cluster prototype
//    vectors are computed independently on the two views' projections; the
//    two views of each prototype form a positive pair in an NT-Xent loss
//    (Alg. 1 lines 8-12).
#pragma once

#include "autograd/ops.h"
#include "ssl/method.h"

namespace calibre::core {

// Two interchangeable realisations of L_n:
//  * kPaper     — Alg. 1 line 17 verbatim: softmax over samples for a fixed
//                 prototype anchor.
//  * kProtoNce  — the ProtoNCE-style transpose: each sample classified over
//                 prototypes with cross entropy. Same fixed points, different
//                 gradient geometry; switchable for the ablation bench.
enum class LnForm { kPaper, kProtoNce };

// Where the prototype pseudo-labels come from:
//  * kBatch — KMeans over the current batch's view-e encodings (Alg. 1).
//  * kLocalDataset — KMeans once per local update over the client's full
//    local encodings; batches are assigned to those fixed centroids. More
//    stable pseudo-labels under small batches.
enum class PrototypeScope { kBatch, kLocalDataset };

struct PrototypeLossConfig {
  int num_prototypes = 10;    // K for the prototype KMeans
  float temperature = 0.5f;   // tau in L_n and L_p
  bool use_ln = true;         // ablation switches (paper Table I)
  bool use_lp = true;
  LnForm ln_form = LnForm::kProtoNce;
  PrototypeScope scope = PrototypeScope::kBatch;
};

struct PrototypeLosses {
  ag::VarPtr l_n;  // null when disabled or the batch degenerates
  ag::VarPtr l_p;
  // KMeans mean point-to-prototype distance over this batch: the per-batch
  // ingredient of the client's local divergence rate.
  float batch_divergence = 0.0f;
};

// Computes the regularizers for one two-view batch. `fwd` must carry valid
// z1/z2/h1/h2. Degenerate cases (too few samples / a single non-empty
// cluster) disable the corresponding term rather than failing.
// `fixed_centroids` (optional, used by PrototypeScope::kLocalDataset) are
// feature-space centroids that replace the per-batch KMeans for assignment.
PrototypeLosses compute_prototype_losses(
    const ssl::SslForward& fwd, const PrototypeLossConfig& config,
    rng::Generator& gen, const tensor::Tensor* fixed_centroids = nullptr);

}  // namespace calibre::core
