#include "core/prototype_loss.h"

#include <algorithm>

#include "cluster/kmeans.h"
#include "common/check.h"
#include "nn/losses.h"

namespace calibre::core {
namespace {

// Row-normalised assignment matrix over the *non-empty* clusters:
// out[k', i] = 1/N_k for samples assigned to the k'-th non-empty cluster.
// Multiplying it with a feature matrix yields differentiable prototypes.
tensor::Tensor assignment_matrix(const std::vector<int>& assignments, int k,
                                 std::vector<int>& dense_of_cluster) {
  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  for (const int a : assignments) ++counts[static_cast<std::size_t>(a)];
  dense_of_cluster.assign(static_cast<std::size_t>(k), -1);
  int dense = 0;
  for (int c = 0; c < k; ++c) {
    if (counts[static_cast<std::size_t>(c)] > 0) {
      dense_of_cluster[static_cast<std::size_t>(c)] = dense++;
    }
  }
  tensor::Tensor matrix(dense, static_cast<std::int64_t>(assignments.size()));
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const int cluster = assignments[i];
    const int row = dense_of_cluster[static_cast<std::size_t>(cluster)];
    matrix(row, static_cast<std::int64_t>(i)) =
        1.0f / static_cast<float>(counts[static_cast<std::size_t>(cluster)]);
  }
  return matrix;
}

}  // namespace

PrototypeLosses compute_prototype_losses(const ssl::SslForward& fwd,
                                         const PrototypeLossConfig& config,
                                         rng::Generator& gen,
                                         const tensor::Tensor* fixed_centroids) {
  CALIBRE_CHECK(fwd.z1 && fwd.z2 && fwd.h1 && fwd.h2);
  PrototypeLosses losses;
  const std::int64_t n = fwd.z1->value.rows();
  if (n < 4) return losses;  // too small for meaningful prototypes

  // Pseudo labels for the batch (Alg. 1 line 13, prototype generation on
  // I_e): either a fresh per-batch KMeans or an assignment to the fixed
  // local-dataset centroids.
  std::vector<int> assignments;
  int num_clusters = 0;
  if (fixed_centroids != nullptr && fixed_centroids->rows() >= 2) {
    float mean_distance = 0.0f;
    assignments = cluster::assign_to_centroids(fwd.z2->value,
                                               *fixed_centroids,
                                               &mean_distance);
    num_clusters = static_cast<int>(fixed_centroids->rows());
    losses.batch_divergence = mean_distance;
  } else {
    cluster::KMeansConfig kmeans_config;
    kmeans_config.k = std::max(
        2, std::min<int>(config.num_prototypes, static_cast<int>(n / 2)));
    const cluster::KMeansResult clustering =
        cluster::kmeans(fwd.z2->value, kmeans_config, gen);
    assignments = clustering.assignments;
    num_clusters = static_cast<int>(clustering.centroids.rows());
    losses.batch_divergence = clustering.mean_distance;
  }

  std::vector<int> dense_of_cluster;
  const tensor::Tensor assign =
      assignment_matrix(assignments, num_clusters, dense_of_cluster);
  const std::int64_t num_dense = assign.rows();
  if (num_dense < 2) return losses;  // a single cluster: no contrast possible

  // Dense pseudo-label per instance (views share the instance identity, so
  // the assignment of z2_i doubles as the target for z1_i — "assigning I_o
  // to these prototypes").
  std::vector<int> pseudo_labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    pseudo_labels[static_cast<std::size_t>(i)] = dense_of_cluster
        [static_cast<std::size_t>(assignments[static_cast<std::size_t>(i)])];
  }

  const ag::VarPtr assign_const = ag::constant(assign);
  if (config.use_ln && config.ln_form == LnForm::kProtoNce) {
    // ProtoNCE form: classify each view-o encoding over the (differentiable)
    // view-e prototypes with temperature-scaled cross entropy.
    const ag::VarPtr prototypes = ag::matmul(assign_const, fwd.z2);  // [K,D]
    const ag::VarPtr logits = ag::mul_scalar(
        ag::matmul_nt(ag::l2_normalize(fwd.z1),
                      ag::l2_normalize(prototypes)),
        1.0f / config.temperature);
    losses.l_n = ag::cross_entropy(logits, pseudo_labels);
  } else if (config.use_ln) {
    // Alg. 1 line 17 exactly:
    //   L_n = sum_k (-1/N_k) sum_{j in k} log[ exp(z_j.v_k / tau)
    //                                / sum_{a not in k} exp(z_a.v_k / tau) ]
    // with v_k the (differentiable) mean of the view-e encodings of cluster
    // k and z the view-o encodings. The softmax runs over *samples* for a
    // fixed prototype anchor: members are pulled onto their prototype while
    // every non-member is pushed away from it.
    const ag::VarPtr prototypes = ag::matmul(assign_const, fwd.z2);  // [K,D]
    const ag::VarPtr sim = ag::mul_scalar(
        ag::matmul_nt(ag::l2_normalize(fwd.z1),
                      ag::l2_normalize(prototypes)),
        1.0f / config.temperature);  // [N,K]

    // Per-prototype log-sum-exp over NON-member samples: mask members out.
    tensor::Tensor member_mask(n, num_dense);
    std::vector<float> inv_cluster_size(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const int k = pseudo_labels[static_cast<std::size_t>(i)];
      member_mask(i, k) = -1e9f;
      // 1/N_k weight for the sample's own term (paper's per-cluster mean).
      inv_cluster_size[static_cast<std::size_t>(i)] =
          assign(k, i);  // assignment matrix rows hold exactly 1/N_k
    }
    const ag::VarPtr masked =
        ag::transpose(ag::add(sim, ag::constant(member_mask)));   // [K,N]
    const ag::VarPtr shift = ag::constant(tensor::row_max(masked->value));
    const ag::VarPtr lse = ag::add(
        ag::log(ag::row_sum(ag::exp(ag::sub(masked, shift)))), shift);  // [K,1]

    const ag::VarPtr own_sim = ag::gather_cols(sim, pseudo_labels);  // [N,1]
    const ag::VarPtr per_sample =
        ag::sub(ag::take_rows(lse, pseudo_labels), own_sim);         // [N,1]
    tensor::Tensor weights(n, 1);
    for (std::int64_t i = 0; i < n; ++i) {
      weights(i, 0) = inv_cluster_size[static_cast<std::size_t>(i)];
    }
    // Normalise by the number of clusters so the scale matches the other
    // loss terms regardless of K.
    losses.l_n = ag::mul_scalar(
        ag::sum_all(ag::mul(per_sample, ag::constant(weights))),
        1.0f / static_cast<float>(num_dense));
  }
  if (config.use_lp) {
    // Per-view prototypes in projection space; the two views of the same
    // cluster are positives under NT-Xent (Alg. 1 lines 8-12).
    const ag::VarPtr proto_view1 = ag::matmul(assign_const, fwd.h1);
    const ag::VarPtr proto_view2 = ag::matmul(assign_const, fwd.h2);
    losses.l_p = nn::ntxent(ag::concat_rows({proto_view1, proto_view2}),
                            config.temperature);
  }
  return losses;
}

}  // namespace calibre::core
