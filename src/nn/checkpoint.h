// Model-state checkpointing: persist a trained global model to disk and
// reload it later (the "novel client downloads the trained encoder" flow
// without re-running training).
#pragma once

#include <string>

#include "nn/state.h"

namespace calibre::nn {

// Writes the state's wire format to `path` (overwrites). Throws CheckError
// on I/O failure.
void save_state(const std::string& path, const ModelState& state);

// Reads a state previously written by save_state.
ModelState load_state(const std::string& path);

}  // namespace calibre::nn
