#include "nn/optim.h"

#include "common/check.h"

namespace calibre::nn {

Sgd::Sgd(std::vector<ag::VarPtr> params, const SgdConfig& config)
    : params_(std::move(params)), config_(config) {
  if (config_.momentum != 0.0f) {
    momentum_buffers_.reserve(params_.size());
    for (const ag::VarPtr& p : params_) {
      momentum_buffers_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ag::VarPtr& p = params_[i];
    if (p->grad.size() == 0) continue;  // parameter unused in this graph
    tensor::Tensor g = p->grad;
    if (config_.weight_decay != 0.0f) {
      g.axpy_(config_.weight_decay, p->value);
    }
    if (config_.momentum != 0.0f) {
      tensor::Tensor& buf = momentum_buffers_[i];
      buf.scale_(config_.momentum);
      buf.add_(g);
      p->value.axpy_(-config_.learning_rate, buf);
    } else {
      p->value.axpy_(-config_.learning_rate, g);
    }
  }
}

void Sgd::zero_grad() {
  for (const ag::VarPtr& p : params_) p->zero_grad();
}

void ema_update(const std::vector<ag::VarPtr>& target,
                const std::vector<ag::VarPtr>& online, float m) {
  CALIBRE_CHECK(target.size() == online.size());
  for (std::size_t i = 0; i < target.size(); ++i) {
    CALIBRE_CHECK(target[i]->value.same_shape(online[i]->value));
    target[i]->value.scale_(m);
    target[i]->value.axpy_(1.0f - m, online[i]->value);
  }
}

void copy_parameters(const std::vector<ag::VarPtr>& dst,
                     const std::vector<ag::VarPtr>& src) {
  CALIBRE_CHECK(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    CALIBRE_CHECK(dst[i]->value.same_shape(src[i]->value));
    dst[i]->value = src[i]->value;
  }
}

}  // namespace calibre::nn
