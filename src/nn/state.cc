#include "nn/state.h"

#include <cmath>
#include <cstring>

#include "comm/serde.h"
#include "common/check.h"

namespace calibre::nn {
namespace {

constexpr std::uint32_t kMagic = 0xCA11B4E5;       // legacy/default f32 layout
constexpr std::uint32_t kCodecMagic = 0xCA11C0DE;  // codec-block layout

}  // namespace

ModelState ModelState::from_parameters(const std::vector<ag::VarPtr>& params) {
  std::size_t total = 0;
  for (const ag::VarPtr& p : params) {
    total += static_cast<std::size_t>(p->value.size());
  }
  std::vector<float> values;
  values.reserve(total);
  for (const ag::VarPtr& p : params) {
    const auto& storage = p->value.storage();
    values.insert(values.end(), storage.begin(), storage.end());
  }
  return ModelState(std::move(values));
}

void ModelState::apply_to(const std::vector<ag::VarPtr>& params) const {
  std::size_t offset = 0;
  for (const ag::VarPtr& p : params) {
    const std::size_t count = static_cast<std::size_t>(p->value.size());
    CALIBRE_CHECK_LE(offset + count, values_.size(), "ModelState too small");
    std::copy(values_.begin() + static_cast<std::ptrdiff_t>(offset),
              values_.begin() + static_cast<std::ptrdiff_t>(offset + count),
              p->value.storage().begin());
    offset += count;
  }
  CALIBRE_CHECK_EQ(offset, values_.size(),
                   "ModelState / parameter-list size mismatch");
}

ModelState ModelState::zeros_like(const std::vector<ag::VarPtr>& params) {
  std::size_t total = 0;
  for (const ag::VarPtr& p : params) {
    total += static_cast<std::size_t>(p->value.size());
  }
  return ModelState(std::vector<float>(total, 0.0f));
}

void ModelState::add_scaled(const ModelState& other, float alpha) {
  CALIBRE_CHECK(values_.size() == other.values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += alpha * other.values_[i];
  }
}

void ModelState::scale(float alpha) {
  for (float& value : values_) value *= alpha;
}

void ModelState::ema_merge(const ModelState& other, float m) {
  CALIBRE_CHECK(values_.size() == other.values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] = m * values_[i] + (1.0f - m) * other.values_[i];
  }
}

float ModelState::l2_distance(const ModelState& other) const {
  CALIBRE_CHECK(values_.size() == other.values_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double d = static_cast<double>(values_[i]) - other.values_[i];
    total += d * d;
  }
  return static_cast<float>(std::sqrt(total));
}

float ModelState::norm() const {
  double total = 0.0;
  for (float value : values_) total += static_cast<double>(value) * value;
  return static_cast<float>(std::sqrt(total));
}

std::vector<std::uint8_t> ModelState::to_bytes() const {
  // Byte-for-byte the historical layout (u32 magic | u64 count | f32s) —
  // checkpoints and default-codec runs must stay bitwise stable.
  comm::Writer writer(sizeof(kMagic) + sizeof(std::uint64_t) +
                      values_.size() * sizeof(float));
  writer.write_u32(kMagic);
  writer.write_f32_vector(values_);
  return writer.take();
}

std::vector<std::uint8_t> ModelState::to_bytes(comm::Codec codec,
                                               const ModelState* base) const {
  if (codec == comm::Codec::kF32) return to_bytes();
  comm::Writer writer(sizeof(kCodecMagic) +
                      comm::encoded_size(codec, values_.size()));
  writer.write_u32(kCodecMagic);
  comm::encode_values(writer, values_, codec,
                      base != nullptr ? base->values().data() : nullptr,
                      base != nullptr ? base->size() : 0);
  return writer.take();
}

ModelState ModelState::from_bytes(const std::vector<std::uint8_t>& bytes,
                                  const ModelState* base) {
  comm::Reader reader(bytes);
  const std::uint32_t magic = reader.read_u32();
  std::vector<float> values;
  if (magic == kMagic) {
    values = reader.read_f32_vector();
  } else {
    CALIBRE_CHECK_MSG(magic == kCodecMagic, "ModelState::from_bytes: bad magic");
    values = comm::decode_values(
        reader, base != nullptr ? base->values().data() : nullptr,
        base != nullptr ? base->size() : 0);
  }
  CALIBRE_CHECK_MSG(reader.exhausted(),
                    "ModelState::from_bytes: payload size mismatch");
  return ModelState(std::move(values));
}

}  // namespace calibre::nn
