#include "nn/state.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace calibre::nn {
namespace {

constexpr std::uint32_t kMagic = 0xCA11B4E5;

}  // namespace

ModelState ModelState::from_parameters(const std::vector<ag::VarPtr>& params) {
  std::size_t total = 0;
  for (const ag::VarPtr& p : params) {
    total += static_cast<std::size_t>(p->value.size());
  }
  std::vector<float> values;
  values.reserve(total);
  for (const ag::VarPtr& p : params) {
    const auto& storage = p->value.storage();
    values.insert(values.end(), storage.begin(), storage.end());
  }
  return ModelState(std::move(values));
}

void ModelState::apply_to(const std::vector<ag::VarPtr>& params) const {
  std::size_t offset = 0;
  for (const ag::VarPtr& p : params) {
    const std::size_t count = static_cast<std::size_t>(p->value.size());
    CALIBRE_CHECK_MSG(offset + count <= values_.size(),
                      "ModelState too small: have " << values_.size());
    std::copy(values_.begin() + static_cast<std::ptrdiff_t>(offset),
              values_.begin() + static_cast<std::ptrdiff_t>(offset + count),
              p->value.storage().begin());
    offset += count;
  }
  CALIBRE_CHECK_MSG(offset == values_.size(),
                    "ModelState size mismatch: state " << values_.size()
                                                       << " vs params "
                                                       << offset);
}

ModelState ModelState::zeros_like(const std::vector<ag::VarPtr>& params) {
  std::size_t total = 0;
  for (const ag::VarPtr& p : params) {
    total += static_cast<std::size_t>(p->value.size());
  }
  return ModelState(std::vector<float>(total, 0.0f));
}

void ModelState::add_scaled(const ModelState& other, float alpha) {
  CALIBRE_CHECK(values_.size() == other.values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += alpha * other.values_[i];
  }
}

void ModelState::scale(float alpha) {
  for (float& value : values_) value *= alpha;
}

void ModelState::ema_merge(const ModelState& other, float m) {
  CALIBRE_CHECK(values_.size() == other.values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] = m * values_[i] + (1.0f - m) * other.values_[i];
  }
}

float ModelState::l2_distance(const ModelState& other) const {
  CALIBRE_CHECK(values_.size() == other.values_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double d = static_cast<double>(values_[i]) - other.values_[i];
    total += d * d;
  }
  return static_cast<float>(std::sqrt(total));
}

float ModelState::norm() const {
  double total = 0.0;
  for (float value : values_) total += static_cast<double>(value) * value;
  return static_cast<float>(std::sqrt(total));
}

std::vector<std::uint8_t> ModelState::to_bytes() const {
  std::vector<std::uint8_t> bytes(sizeof(std::uint32_t) +
                                  sizeof(std::uint64_t) +
                                  values_.size() * sizeof(float));
  std::size_t offset = 0;
  std::memcpy(bytes.data() + offset, &kMagic, sizeof(kMagic));
  offset += sizeof(kMagic);
  const std::uint64_t count = values_.size();
  std::memcpy(bytes.data() + offset, &count, sizeof(count));
  offset += sizeof(count);
  std::memcpy(bytes.data() + offset, values_.data(),
              values_.size() * sizeof(float));
  return bytes;
}

ModelState ModelState::from_bytes(const std::vector<std::uint8_t>& bytes) {
  CALIBRE_CHECK_MSG(
      bytes.size() >= sizeof(std::uint32_t) + sizeof(std::uint64_t),
      "ModelState::from_bytes: truncated header");
  std::size_t offset = 0;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data() + offset, sizeof(magic));
  offset += sizeof(magic);
  CALIBRE_CHECK_MSG(magic == kMagic, "ModelState::from_bytes: bad magic");
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + offset, sizeof(count));
  offset += sizeof(count);
  CALIBRE_CHECK_MSG(bytes.size() == offset + count * sizeof(float),
                    "ModelState::from_bytes: payload size mismatch");
  std::vector<float> values(count);
  std::memcpy(values.data(), bytes.data() + offset, count * sizeof(float));
  return ModelState(std::move(values));
}

}  // namespace calibre::nn
