// Loss functions shared by the SSL methods and Calibre.
//
// Supervised cross-entropy lives in autograd/ops.h (ag::cross_entropy);
// here are the self-supervised objectives.
#pragma once

#include <vector>

#include "autograd/ops.h"

namespace calibre::nn {

// NT-Xent (normalized temperature-scaled cross entropy, SimCLR eq. 1).
//
// `embeddings` is [2N, D] laid out as [view1 rows; view2 rows]: the positive
// of row i is row (i + N) mod 2N. Rows are L2-normalised internally, the
// similarity matrix is divided by `temperature`, self-similarities are masked
// out, and the loss is the mean cross entropy of each row against its
// positive.
ag::VarPtr ntxent(const ag::VarPtr& embeddings, float temperature);

// Negative cosine similarity -mean_i cos(p_i, z_i), the BYOL/SimSiam
// objective. The caller is responsible for detaching `z` (stop-gradient).
ag::VarPtr negative_cosine(const ag::VarPtr& p, const ag::VarPtr& z);

// InfoNCE with an explicit positive column and a fixed negative bank
// (MoCo eq. 1): logits = [q.k_pos, q.Neg^T] / temperature, label 0.
// `negatives` is a constant [M, D] queue; q and k_pos are [N, D].
ag::VarPtr info_nce(const ag::VarPtr& q, const ag::VarPtr& k_pos,
                    const tensor::Tensor& negatives, float temperature);

}  // namespace calibre::nn
