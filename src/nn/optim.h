// Stochastic gradient descent with momentum and weight decay — the optimizer
// the paper uses for both the federated training stage and the 10-epoch
// personalization stage (lr = 0.05 there).
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace calibre::nn {

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<ag::VarPtr> params, const SgdConfig& config);

  // Applies one update using the gradients currently stored in the params.
  void step();

  // Clears parameter gradients (call before building the next graph).
  void zero_grad();

  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }

 private:
  std::vector<ag::VarPtr> params_;
  SgdConfig config_;
  std::vector<tensor::Tensor> momentum_buffers_;
};

// In-place EMA: target = m * target + (1 - m) * online, parameter by
// parameter. Used by BYOL/MoCo momentum encoders and FedEMA merging.
void ema_update(const std::vector<ag::VarPtr>& target,
                const std::vector<ag::VarPtr>& online, float m);

// Copies parameter values from src into dst (shapes must match pairwise).
void copy_parameters(const std::vector<ag::VarPtr>& dst,
                     const std::vector<ag::VarPtr>& src);

}  // namespace calibre::nn
