// Neural-network module abstraction on top of the autograd engine.
//
// A Module owns persistent parameter leaves (ag::parameter). forward()
// builds a fresh autograd graph per call that links into those leaves, so
// calling ag::backward on any scalar derived from the output fills the
// parameters' grads, which the optimizer then consumes in place.
#pragma once

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace calibre::nn {

class Module {
 public:
  virtual ~Module() = default;

  // Builds the forward graph for a [batch, in] input.
  virtual ag::VarPtr forward(const ag::VarPtr& x) = 0;

  // Appends this module's parameter leaves to `out` in a stable order.
  virtual void collect_parameters(std::vector<ag::VarPtr>& out) const = 0;

  // All parameters, in collection order.
  std::vector<ag::VarPtr> parameters() const {
    std::vector<ag::VarPtr> out;
    collect_parameters(out);
    return out;
  }

  // Number of scalar parameters.
  std::int64_t parameter_count() const {
    std::int64_t total = 0;
    for (const ag::VarPtr& p : parameters()) total += p->value.size();
    return total;
  }

  // Clears accumulated gradients before the next forward/backward.
  void zero_grad() const {
    for (const ag::VarPtr& p : parameters()) p->zero_grad();
  }

  // Convenience: forward on a raw tensor treated as a constant input.
  ag::VarPtr forward_tensor(const tensor::Tensor& x) {
    return forward(ag::constant(x));
  }
};

// Runs `modules` in order. Does not own forward semantics beyond chaining.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::shared_ptr<Module>> modules)
      : modules_(std::move(modules)) {}

  void push_back(std::shared_ptr<Module> module) {
    modules_.push_back(std::move(module));
  }

  ag::VarPtr forward(const ag::VarPtr& x) override {
    ag::VarPtr out = x;
    for (const auto& module : modules_) out = module->forward(out);
    return out;
  }

  void collect_parameters(std::vector<ag::VarPtr>& out) const override {
    for (const auto& module : modules_) module->collect_parameters(out);
  }

  std::size_t size() const { return modules_.size(); }

 private:
  std::vector<std::shared_ptr<Module>> modules_;
};

}  // namespace calibre::nn
