// Basic differentiable layers: Linear, ReLU, Tanh, LayerNorm.
#pragma once

#include <cstdint>

#include "nn/module.h"
#include "tensor/rng.h"

namespace calibre::nn {

// Affine map y = x W + b with W: [in, out], b: [1, out].
// Initialisation follows the Kaiming-uniform convention (U[-k, k],
// k = 1/sqrt(in)) used by the reference implementation's framework.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features,
         rng::Generator& gen, bool bias = true);

  ag::VarPtr forward(const ag::VarPtr& x) override;
  void collect_parameters(std::vector<ag::VarPtr>& out) const override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  ag::VarPtr weight_;
  ag::VarPtr bias_;  // null when bias is disabled
};

// Elementwise max(x, 0).
class ReLU : public Module {
 public:
  ag::VarPtr forward(const ag::VarPtr& x) override { return ag::relu(x); }
  void collect_parameters(std::vector<ag::VarPtr>&) const override {}
};

// Elementwise tanh.
class Tanh : public Module {
 public:
  ag::VarPtr forward(const ag::VarPtr& x) override { return ag::tanh(x); }
  void collect_parameters(std::vector<ag::VarPtr>&) const override {}
};

// Per-row normalisation with learned gain/shift: the BatchNorm stand-in for
// this library (batch-size independent, so it behaves identically during
// federated local updates regardless of client batch composition).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t features, float eps = 1e-5f);

  ag::VarPtr forward(const ag::VarPtr& x) override;
  void collect_parameters(std::vector<ag::VarPtr>& out) const override;

 private:
  std::int64_t features_;
  float eps_;
  ag::VarPtr gamma_;
  ag::VarPtr beta_;
};

}  // namespace calibre::nn
