#include "nn/networks.h"

#include "common/check.h"

namespace calibre::nn {

MlpEncoder::MlpEncoder(const EncoderConfig& config, rng::Generator& gen)
    : config_(config) {
  CALIBRE_CHECK(config.input_dim > 0 && config.feature_dim > 0);
  std::int64_t in_dim = config.input_dim;
  for (const std::int64_t hidden : config.hidden_dims) {
    body_.push_back(std::make_shared<Linear>(in_dim, hidden, gen));
    if (config.layer_norm) {
      body_.push_back(std::make_shared<LayerNorm>(hidden));
    }
    body_.push_back(std::make_shared<ReLU>());
    in_dim = hidden;
  }
  body_.push_back(std::make_shared<Linear>(in_dim, config.feature_dim, gen));
}

ag::VarPtr MlpEncoder::forward(const ag::VarPtr& x) {
  return body_.forward(x);
}

void MlpEncoder::collect_parameters(std::vector<ag::VarPtr>& out) const {
  body_.collect_parameters(out);
}

ProjectionHead::ProjectionHead(std::int64_t in_dim, std::int64_t hidden_dim,
                               std::int64_t out_dim, rng::Generator& gen)
    : out_dim_(out_dim) {
  body_.push_back(std::make_shared<Linear>(in_dim, hidden_dim, gen));
  body_.push_back(std::make_shared<ReLU>());
  body_.push_back(std::make_shared<Linear>(hidden_dim, out_dim, gen));
}

ag::VarPtr ProjectionHead::forward(const ag::VarPtr& x) {
  return body_.forward(x);
}

void ProjectionHead::collect_parameters(std::vector<ag::VarPtr>& out) const {
  body_.collect_parameters(out);
}

LinearClassifier::LinearClassifier(std::int64_t feature_dim,
                                   std::int64_t num_classes,
                                   rng::Generator& gen)
    : num_classes_(num_classes), linear_(feature_dim, num_classes, gen) {}

ag::VarPtr LinearClassifier::forward(const ag::VarPtr& x) {
  return linear_.forward(x);
}

void LinearClassifier::collect_parameters(std::vector<ag::VarPtr>& out) const {
  linear_.collect_parameters(out);
}

}  // namespace calibre::nn
