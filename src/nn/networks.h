// Network architectures used throughout the reproduction.
//
// The paper uses a ResNet-18 "Encoder" plus a linear-classifier "Head". At
// CPU scale the encoder is an MLP (see DESIGN.md §2 for the substitution
// argument); the head is the same lightweight linear classifier.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace calibre::nn {

// Architecture hyperparameters for the encoder.
struct EncoderConfig {
  std::int64_t input_dim = 48;
  std::vector<std::int64_t> hidden_dims = {128, 128};
  std::int64_t feature_dim = 64;
  bool layer_norm = true;
};

// The feature backbone (paper: ResNet-18 "Encoder", output 512-d; here an
// MLP, output feature_dim). This is the global model exchanged in FL.
class MlpEncoder : public Module {
 public:
  MlpEncoder(const EncoderConfig& config, rng::Generator& gen);

  ag::VarPtr forward(const ag::VarPtr& x) override;
  void collect_parameters(std::vector<ag::VarPtr>& out) const override;

  std::int64_t feature_dim() const { return config_.feature_dim; }
  std::int64_t input_dim() const { return config_.input_dim; }
  const EncoderConfig& config() const { return config_; }

 private:
  EncoderConfig config_;
  Sequential body_;
};

// Two-layer MLP projection head used by all SSL methods (z -> h).
class ProjectionHead : public Module {
 public:
  ProjectionHead(std::int64_t in_dim, std::int64_t hidden_dim,
                 std::int64_t out_dim, rng::Generator& gen);

  ag::VarPtr forward(const ag::VarPtr& x) override;
  void collect_parameters(std::vector<ag::VarPtr>& out) const override;

  std::int64_t out_dim() const { return out_dim_; }

 private:
  std::int64_t out_dim_;
  Sequential body_;
};

// Prediction head for BYOL / SimSiam (same two-layer MLP shape).
using PredictionHead = ProjectionHead;

// The personalized model phi: a single linear layer on frozen encoder
// features ("a lightweight personalized model, specifically a linear
// classifier, would be sufficient" — paper §I).
class LinearClassifier : public Module {
 public:
  LinearClassifier(std::int64_t feature_dim, std::int64_t num_classes,
                   rng::Generator& gen);

  ag::VarPtr forward(const ag::VarPtr& x) override;
  void collect_parameters(std::vector<ag::VarPtr>& out) const override;

  std::int64_t num_classes() const { return num_classes_; }

 private:
  std::int64_t num_classes_;
  Linear linear_;
};

}  // namespace calibre::nn
