#include "nn/losses.h"

#include "common/check.h"

namespace calibre::nn {

ag::VarPtr ntxent(const ag::VarPtr& embeddings, float temperature) {
  const std::int64_t total = embeddings->value.rows();
  CALIBRE_CHECK_MSG(total >= 4 && total % 2 == 0,
                    "ntxent expects [2N, D] with N >= 2, got "
                        << embeddings->value.shape_string());
  CALIBRE_CHECK(temperature > 0.0f);
  const std::int64_t n = total / 2;

  const ag::VarPtr z = ag::l2_normalize(embeddings);
  // Fused [2N,2N] similarity: one z·zᵀ GEMM with the 1/T scale and the
  // self-similarity mask applied in the same pass (no scaled copy and no
  // materialized mask constant).
  const ag::VarPtr sim = ag::ntxent_logits(z, temperature);

  std::vector<int> positives(static_cast<std::size_t>(total));
  for (std::int64_t i = 0; i < total; ++i) {
    positives[static_cast<std::size_t>(i)] =
        static_cast<int>((i + n) % total);
  }
  return ag::cross_entropy(sim, positives);
}

ag::VarPtr negative_cosine(const ag::VarPtr& p, const ag::VarPtr& z) {
  CALIBRE_CHECK_MSG(p->value.rows() == z->value.rows() &&
                        p->value.cols() == z->value.cols(),
                    "negative_cosine shape mismatch: "
                        << p->value.shape_string() << " vs "
                        << z->value.shape_string());
  const ag::VarPtr pn = ag::l2_normalize(p);
  const ag::VarPtr zn = ag::l2_normalize(z);
  const ag::VarPtr cosines = ag::row_sum(ag::mul(pn, zn));  // [N,1]
  return ag::neg(ag::mean_all(cosines));
}

ag::VarPtr info_nce(const ag::VarPtr& q, const ag::VarPtr& k_pos,
                    const tensor::Tensor& negatives, float temperature) {
  CALIBRE_CHECK(temperature > 0.0f);
  CALIBRE_CHECK_MSG(negatives.rows() > 0, "info_nce needs a negative bank");
  CALIBRE_CHECK(q->value.cols() == negatives.cols());
  const ag::VarPtr qn = ag::l2_normalize(q);
  const ag::VarPtr kn = ag::l2_normalize(k_pos);
  const ag::VarPtr neg_bank =
      ag::constant(tensor::l2_normalize_rows(negatives));

  const ag::VarPtr l_pos = ag::row_sum(ag::mul(qn, kn));        // [N,1]
  const ag::VarPtr l_neg = ag::matmul_nt(qn, neg_bank);         // [N,M]
  ag::VarPtr logits = ag::concat_cols({l_pos, l_neg});
  logits = ag::mul_scalar(logits, 1.0f / temperature);

  const std::vector<int> labels(
      static_cast<std::size_t>(q->value.rows()), 0);
  return ag::cross_entropy(logits, labels);
}

}  // namespace calibre::nn
