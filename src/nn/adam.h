// Adam optimizer (Kingma & Ba, 2015) — an alternative to SGD for the
// personalization stage and for users adopting the library beyond the
// paper's exact recipe.
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace calibre::nn {

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style)
};

class Adam {
 public:
  Adam(std::vector<ag::VarPtr> params, const AdamConfig& config);

  // One update from the gradients currently stored in the parameters.
  void step();
  void zero_grad();

  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }
  int steps_taken() const { return steps_; }

 private:
  std::vector<ag::VarPtr> params_;
  AdamConfig config_;
  std::vector<tensor::Tensor> first_moment_;
  std::vector<tensor::Tensor> second_moment_;
  int steps_ = 0;
};

// Learning-rate schedules usable with either optimizer.
// Cosine decay from `base_lr` to `final_lr` over `total_steps`.
float cosine_lr(float base_lr, float final_lr, int step, int total_steps);
// Step decay: base_lr * gamma^(step / step_size).
float step_lr(float base_lr, float gamma, int step, int step_size);

}  // namespace calibre::nn
