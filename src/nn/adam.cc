#include "nn/adam.h"

#include <cmath>

#include "common/check.h"

namespace calibre::nn {

Adam::Adam(std::vector<ag::VarPtr> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (const ag::VarPtr& p : params_) {
    first_moment_.emplace_back(p->value.rows(), p->value.cols());
    second_moment_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++steps_;
  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(steps_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(steps_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ag::VarPtr& p = params_[i];
    if (p->grad.size() == 0) continue;
    tensor::Tensor& m = first_moment_[i];
    tensor::Tensor& v = second_moment_[i];
    float* m_data = m.data();
    float* v_data = v.data();
    const float* g = p->grad.data();
    float* w = p->value.data();
    for (std::int64_t j = 0; j < p->value.size(); ++j) {
      m_data[j] = config_.beta1 * m_data[j] + (1.0f - config_.beta1) * g[j];
      v_data[j] =
          config_.beta2 * v_data[j] + (1.0f - config_.beta2) * g[j] * g[j];
      const float m_hat = m_data[j] / bias1;
      const float v_hat = v_data[j] / bias2;
      w[j] -= config_.learning_rate *
              (m_hat / (std::sqrt(v_hat) + config_.epsilon) +
               config_.weight_decay * w[j]);
    }
  }
}

void Adam::zero_grad() {
  for (const ag::VarPtr& p : params_) p->zero_grad();
}

float cosine_lr(float base_lr, float final_lr, int step, int total_steps) {
  CALIBRE_CHECK(total_steps > 0);
  if (step >= total_steps) return final_lr;
  const float progress =
      static_cast<float>(step) / static_cast<float>(total_steps);
  return final_lr + 0.5f * (base_lr - final_lr) *
                        (1.0f + std::cos(progress * static_cast<float>(M_PI)));
}

float step_lr(float base_lr, float gamma, int step, int step_size) {
  CALIBRE_CHECK(step_size > 0);
  return base_lr * std::pow(gamma, static_cast<float>(step / step_size));
}

}  // namespace calibre::nn
