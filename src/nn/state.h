// Serializable flat parameter state.
//
// ModelState is the unit shipped between FL server and clients: a flat float
// vector holding every parameter of a module (or a subset — each algorithm
// decides which parameters it federates). It supports the vector algebra
// aggregation needs plus a compact binary wire format used by the comm layer.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "comm/codec.h"

namespace calibre::nn {

class ModelState {
 public:
  ModelState() = default;
  explicit ModelState(std::vector<float> values) : values_(std::move(values)) {}

  // Snapshots the current values of `params` into a flat state.
  static ModelState from_parameters(const std::vector<ag::VarPtr>& params);

  // Writes this state back into `params` (total sizes must match).
  void apply_to(const std::vector<ag::VarPtr>& params) const;

  // A zero state with the same dimension as `params`.
  static ModelState zeros_like(const std::vector<ag::VarPtr>& params);

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& values() { return values_; }

  // --- algebra used by aggregation ----------------------------------------
  // this += alpha * other.
  void add_scaled(const ModelState& other, float alpha);
  // this *= alpha.
  void scale(float alpha);
  // this = m * this + (1 - m) * other (EMA merge; FedEMA).
  void ema_merge(const ModelState& other, float m);
  // Euclidean distance to another state (model divergence).
  float l2_distance(const ModelState& other) const;
  float norm() const;

  // --- wire format -----------------------------------------------------------
  // Default (f32) layout: u32 magic | u64 count | count * f32 (little-endian).
  // This is the checkpoint format and the bitwise-stable default wire format.
  std::vector<std::uint8_t> to_bytes() const;
  // Codec-selected layout. kF32 produces exactly the legacy bytes above;
  // kF16/kDelta16 produce u32 codec-magic | codec block (comm/codec.h).
  // `base` is the delta16 reference (ignored by the other codecs).
  std::vector<std::uint8_t> to_bytes(comm::Codec codec,
                                     const ModelState* base = nullptr) const;
  // Accepts both layouts, dispatching on the magic. A delta16 payload needs
  // the same `base` the encoder used; corrupt input CHECK-fails cleanly with
  // counts validated before any allocation.
  static ModelState from_bytes(const std::vector<std::uint8_t>& bytes,
                               const ModelState* base = nullptr);

 private:
  std::vector<float> values_;
};

}  // namespace calibre::nn
