#include "nn/checkpoint.h"

#include <fstream>

#include "common/check.h"

namespace calibre::nn {

void save_state(const std::string& path, const ModelState& state) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  CALIBRE_CHECK_MSG(file.good(), "cannot open " << path << " for writing");
  const auto bytes = state.to_bytes();
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  CALIBRE_CHECK_MSG(file.good(), "write to " << path << " failed");
}

ModelState load_state(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  CALIBRE_CHECK_MSG(file.good(), "cannot open " << path << " for reading");
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  CALIBRE_CHECK_MSG(file.good(), "read from " << path << " failed");
  return ModelState::from_bytes(bytes);
}

}  // namespace calibre::nn
