#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace calibre::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               rng::Generator& gen, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  CALIBRE_CHECK(in_features > 0 && out_features > 0);
  const float k = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = ag::parameter(
      tensor::Tensor::rand_uniform(in_features, out_features, gen, -k, k));
  if (bias) {
    bias_ = ag::parameter(
        tensor::Tensor::rand_uniform(1, out_features, gen, -k, k));
  }
}

ag::VarPtr Linear::forward(const ag::VarPtr& x) {
  CALIBRE_CHECK_MSG(x->value.cols() == in_features_,
                    "Linear expects " << in_features_ << " features, got "
                                      << x->value.shape_string());
  return ag::affine(x, weight_, bias_);
}

void Linear::collect_parameters(std::vector<ag::VarPtr>& out) const {
  out.push_back(weight_);
  if (bias_) out.push_back(bias_);
}

LayerNorm::LayerNorm(std::int64_t features, float eps)
    : features_(features), eps_(eps) {
  CALIBRE_CHECK(features > 0);
  gamma_ = ag::parameter(tensor::Tensor::ones(1, features));
  beta_ = ag::parameter(tensor::Tensor::zeros(1, features));
}

ag::VarPtr LayerNorm::forward(const ag::VarPtr& x) {
  CALIBRE_CHECK_MSG(x->value.cols() == features_,
                    "LayerNorm expects " << features_ << " features, got "
                                         << x->value.shape_string());
  return ag::layer_norm(x, gamma_, beta_, eps_);
}

void LayerNorm::collect_parameters(std::vector<ag::VarPtr>& out) const {
  out.push_back(gamma_);
  out.push_back(beta_);
}

}  // namespace calibre::nn
