#include "ssl/mocov2.h"

#include "nn/losses.h"
#include "nn/optim.h"

namespace calibre::ssl {

MoCoV2::MoCoV2(const nn::EncoderConfig& encoder_config,
               const SslConfig& config, std::uint64_t seed)
    : SslMethod(encoder_config, config, seed) {
  key_encoder_ = std::make_unique<nn::MlpEncoder>(encoder_config, gen_);
  key_projector_ = std::make_unique<nn::ProjectionHead>(
      encoder_config.feature_dim, config.proj_hidden, config.proj_dim, gen_);
  nn::copy_parameters(key_encoder_->parameters(), encoder_->parameters());
  nn::copy_parameters(key_projector_->parameters(), projector_->parameters());
  freeze(*key_encoder_);
  freeze(*key_projector_);
  // Seed the queue with random directions so InfoNCE is defined from the
  // first step; real keys displace them within a few iterations.
  queue_ = tensor::l2_normalize_rows(
      tensor::Tensor::randn(config.moco_queue_size, config.proj_dim, gen_));
}

SslForward MoCoV2::forward(const tensor::Tensor& view1,
                           const tensor::Tensor& view2) {
  SslForward out;
  encode_views(view1, view2, out);
  // Keys from the frozen momentum branch.
  const ag::VarPtr k1 = key_projector_->forward(
      key_encoder_->forward(ag::constant(view1)));
  const ag::VarPtr k2 = key_projector_->forward(
      key_encoder_->forward(ag::constant(view2)));
  const ag::VarPtr loss1 =
      nn::info_nce(out.h1, ag::detach(k2), queue_, config_.temperature);
  const ag::VarPtr loss2 =
      nn::info_nce(out.h2, ag::detach(k1), queue_, config_.temperature);
  out.loss = ag::mul_scalar(ag::add(loss1, loss2), 0.5f);
  pending_keys_ = tensor::l2_normalize_rows(
      tensor::concat_rows({k1->value, k2->value}));
  return out;
}

void MoCoV2::after_step() {
  nn::ema_update(key_encoder_->parameters(), encoder_->parameters(),
                 config_.ema_momentum);
  nn::ema_update(key_projector_->parameters(), projector_->parameters(),
                 config_.ema_momentum);
  // Ring-buffer enqueue of this step's keys.
  for (std::int64_t r = 0; r < pending_keys_.rows(); ++r) {
    for (std::int64_t c = 0; c < queue_.cols(); ++c) {
      queue_(queue_cursor_, c) = pending_keys_(r, c);
    }
    queue_cursor_ = (queue_cursor_ + 1) % queue_.rows();
  }
  pending_keys_ = tensor::Tensor();
}

}  // namespace calibre::ssl
