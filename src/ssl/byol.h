// BYOL (Grill et al., NeurIPS 2020): an online network (encoder + projector +
// predictor) regresses the projection of an EMA target network; the loss is
// the symmetric negative cosine similarity. No negative pairs.
#pragma once

#include "ssl/method.h"

namespace calibre::ssl {

class Byol : public SslMethod {
 public:
  Byol(const nn::EncoderConfig& encoder_config, const SslConfig& config,
       std::uint64_t seed);

  std::string name() const override { return "BYOL"; }
  Kind kind() const override { return Kind::kByol; }

  SslForward forward(const tensor::Tensor& view1,
                     const tensor::Tensor& view2) override;

  // EMA update of the target network toward the online network.
  void after_step() override;

  // Online encoder + projector + predictor.
  std::vector<ag::VarPtr> trainable_parameters() const override;

  nn::ProjectionHead& predictor() { return *predictor_; }

 private:
  std::unique_ptr<nn::ProjectionHead> predictor_;
  std::unique_ptr<nn::MlpEncoder> target_encoder_;
  std::unique_ptr<nn::ProjectionHead> target_projector_;
};

}  // namespace calibre::ssl
