#include "ssl/byol.h"

#include "nn/losses.h"
#include "nn/optim.h"

namespace calibre::ssl {

Byol::Byol(const nn::EncoderConfig& encoder_config, const SslConfig& config,
           std::uint64_t seed)
    : SslMethod(encoder_config, config, seed) {
  predictor_ = std::make_unique<nn::ProjectionHead>(
      config.proj_dim, config.proj_hidden, config.proj_dim, gen_);
  target_encoder_ = std::make_unique<nn::MlpEncoder>(encoder_config, gen_);
  target_projector_ = std::make_unique<nn::ProjectionHead>(
      encoder_config.feature_dim, config.proj_hidden, config.proj_dim, gen_);
  // Target starts as a copy of the online network and is frozen: it is only
  // ever moved by EMA, never by gradients.
  nn::copy_parameters(target_encoder_->parameters(), encoder_->parameters());
  nn::copy_parameters(target_projector_->parameters(),
                      projector_->parameters());
  freeze(*target_encoder_);
  freeze(*target_projector_);
}

SslForward Byol::forward(const tensor::Tensor& view1,
                         const tensor::Tensor& view2) {
  SslForward out;
  encode_views(view1, view2, out);
  const ag::VarPtr p1 = predictor_->forward(out.h1);
  const ag::VarPtr p2 = predictor_->forward(out.h2);
  // Target branch (no gradients flow: target is frozen).
  const ag::VarPtr t1 =
      target_projector_->forward(target_encoder_->forward(ag::constant(view1)));
  const ag::VarPtr t2 =
      target_projector_->forward(target_encoder_->forward(ag::constant(view2)));
  const ag::VarPtr loss1 = nn::negative_cosine(p1, ag::detach(t2));
  const ag::VarPtr loss2 = nn::negative_cosine(p2, ag::detach(t1));
  out.loss = ag::mul_scalar(ag::add(loss1, loss2), 0.5f);
  return out;
}

void Byol::after_step() {
  nn::ema_update(target_encoder_->parameters(), encoder_->parameters(),
                 config_.ema_momentum);
  nn::ema_update(target_projector_->parameters(), projector_->parameters(),
                 config_.ema_momentum);
}

std::vector<ag::VarPtr> Byol::trainable_parameters() const {
  std::vector<ag::VarPtr> params = SslMethod::trainable_parameters();
  predictor_->collect_parameters(params);
  return params;
}

}  // namespace calibre::ssl
