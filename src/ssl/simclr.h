// SimCLR (Chen et al., ICML 2020): NT-Xent over the projections of the two
// augmented views. The basis of Calibre (SimCLR), the paper's best variant.
#pragma once

#include "ssl/method.h"

namespace calibre::ssl {

class SimClr : public SslMethod {
 public:
  SimClr(const nn::EncoderConfig& encoder_config, const SslConfig& config,
         std::uint64_t seed)
      : SslMethod(encoder_config, config, seed) {}

  std::string name() const override { return "SimCLR"; }
  Kind kind() const override { return Kind::kSimClr; }

  SslForward forward(const tensor::Tensor& view1,
                     const tensor::Tensor& view2) override;
};

}  // namespace calibre::ssl
