#include "ssl/swav.h"

#include <cmath>

#include "common/check.h"

namespace calibre::ssl {

tensor::Tensor sinkhorn(const tensor::Tensor& scores, float epsilon,
                        int iterations) {
  CALIBRE_CHECK(epsilon > 0.0f && iterations >= 1);
  const std::int64_t n = scores.rows();
  const std::int64_t p = scores.cols();
  // Stabilise: subtract the global max before exponentiating.
  const float global_max = scores.max();
  tensor::Tensor q(n, p);
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < p; ++c) {
      q(r, c) = std::exp((scores(r, c) - global_max) / epsilon);
    }
  }
  for (int iter = 0; iter < iterations; ++iter) {
    // Columns to mass 1/P.
    for (std::int64_t c = 0; c < p; ++c) {
      double total = 0.0;
      for (std::int64_t r = 0; r < n; ++r) total += q(r, c);
      if (total <= 0.0) continue;
      const float scale = static_cast<float>(1.0 / (total * p));
      for (std::int64_t r = 0; r < n; ++r) q(r, c) *= scale;
    }
    // Rows to mass 1/N.
    for (std::int64_t r = 0; r < n; ++r) {
      double total = 0.0;
      for (std::int64_t c = 0; c < p; ++c) total += q(r, c);
      if (total <= 0.0) continue;
      const float scale = static_cast<float>(1.0 / (total * n));
      for (std::int64_t c = 0; c < p; ++c) q(r, c) *= scale;
    }
  }
  // Final targets: rows sum to 1.
  for (std::int64_t r = 0; r < n; ++r) {
    double total = 0.0;
    for (std::int64_t c = 0; c < p; ++c) total += q(r, c);
    if (total <= 0.0) continue;
    for (std::int64_t c = 0; c < p; ++c) {
      q(r, c) = static_cast<float>(q(r, c) / total);
    }
  }
  return q;
}

Swav::Swav(const nn::EncoderConfig& encoder_config, const SslConfig& config,
           std::uint64_t seed)
    : SslMethod(encoder_config, config, seed) {
  prototypes_ = ag::parameter(tensor::l2_normalize_rows(
      tensor::Tensor::randn(config.num_prototypes, config.proj_dim, gen_)));
}

SslForward Swav::forward(const tensor::Tensor& view1,
                         const tensor::Tensor& view2) {
  SslForward out;
  encode_views(view1, view2, out);
  const ag::VarPtr zn1 = ag::l2_normalize(out.h1);
  const ag::VarPtr zn2 = ag::l2_normalize(out.h2);
  const ag::VarPtr proto_n = ag::l2_normalize(prototypes_);
  const ag::VarPtr scores1 = ag::matmul_nt(zn1, proto_n);  // [N, P]
  const ag::VarPtr scores2 = ag::matmul_nt(zn2, proto_n);

  // Targets from the opposite view, no gradient through the assignment.
  const tensor::Tensor q1 =
      sinkhorn(scores1->value, config_.sinkhorn_epsilon,
               config_.sinkhorn_iters);
  const tensor::Tensor q2 =
      sinkhorn(scores2->value, config_.sinkhorn_epsilon,
               config_.sinkhorn_iters);

  const float inv_temp = 1.0f / config_.swav_temperature;
  const ag::VarPtr loss1 =
      ag::cross_entropy_soft(ag::mul_scalar(scores1, inv_temp), q2);
  const ag::VarPtr loss2 =
      ag::cross_entropy_soft(ag::mul_scalar(scores2, inv_temp), q1);
  out.loss = ag::mul_scalar(ag::add(loss1, loss2), 0.5f);
  return out;
}

void Swav::after_step() {
  prototypes_->value = tensor::l2_normalize_rows(prototypes_->value);
}

std::vector<ag::VarPtr> Swav::trainable_parameters() const {
  std::vector<ag::VarPtr> params = SslMethod::trainable_parameters();
  params.push_back(prototypes_);
  return params;
}

}  // namespace calibre::ssl
