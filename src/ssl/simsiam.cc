#include "ssl/simsiam.h"

#include "nn/losses.h"

namespace calibre::ssl {

SimSiam::SimSiam(const nn::EncoderConfig& encoder_config,
                 const SslConfig& config, std::uint64_t seed)
    : SslMethod(encoder_config, config, seed) {
  predictor_ = std::make_unique<nn::ProjectionHead>(
      config.proj_dim, config.proj_hidden, config.proj_dim, gen_);
}

SslForward SimSiam::forward(const tensor::Tensor& view1,
                            const tensor::Tensor& view2) {
  SslForward out;
  encode_views(view1, view2, out);
  const ag::VarPtr p1 = predictor_->forward(out.h1);
  const ag::VarPtr p2 = predictor_->forward(out.h2);
  const ag::VarPtr loss1 = nn::negative_cosine(p1, ag::detach(out.h2));
  const ag::VarPtr loss2 = nn::negative_cosine(p2, ag::detach(out.h1));
  out.loss = ag::mul_scalar(ag::add(loss1, loss2), 0.5f);
  return out;
}

std::vector<ag::VarPtr> SimSiam::trainable_parameters() const {
  std::vector<ag::VarPtr> params = SslMethod::trainable_parameters();
  predictor_->collect_parameters(params);
  return params;
}

}  // namespace calibre::ssl
