// SimSiam (Chen & He, CVPR 2021): like BYOL but with no momentum target —
// the stop-gradient on the opposite branch is the whole trick.
#pragma once

#include "ssl/method.h"

namespace calibre::ssl {

class SimSiam : public SslMethod {
 public:
  SimSiam(const nn::EncoderConfig& encoder_config, const SslConfig& config,
          std::uint64_t seed);

  std::string name() const override { return "SimSiam"; }
  Kind kind() const override { return Kind::kSimSiam; }

  SslForward forward(const tensor::Tensor& view1,
                     const tensor::Tensor& view2) override;

  std::vector<ag::VarPtr> trainable_parameters() const override;

 private:
  std::unique_ptr<nn::ProjectionHead> predictor_;
};

}  // namespace calibre::ssl
