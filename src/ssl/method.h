// Common interface for self-supervised learning methods.
//
// Every method owns an encoder (the federated global model) plus its own
// auxiliary networks (projection/prediction heads, momentum targets, queues,
// prototypes). forward() builds the SSL loss graph for a pair of augmented
// views and also exposes the intermediate encodings/projections, which
// Calibre's prototype regularizers consume (paper Algorithm 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/networks.h"
#include "nn/state.h"

namespace calibre::ssl {

enum class Kind { kSimClr, kByol, kSimSiam, kMoCoV2, kSwav, kSmog };

// Human-readable method name ("SimCLR", ...).
std::string kind_name(Kind kind);

struct SslConfig {
  std::int64_t proj_hidden = 96;
  std::int64_t proj_dim = 32;
  float temperature = 0.5f;       // NT-Xent / InfoNCE temperature
  float ema_momentum = 0.99f;     // BYOL / MoCo / SMoG target momentum
  int moco_queue_size = 512;
  int num_prototypes = 30;        // SwAV / SMoG prototype count
  float swav_temperature = 0.1f;
  float sinkhorn_epsilon = 0.25f;
  int sinkhorn_iters = 3;
};

// Outputs of one SSL forward pass over a two-view batch.
struct SslForward {
  ag::VarPtr loss;  // scalar l_s
  ag::VarPtr z1;    // encoder features, view 1  [N, feature_dim]
  ag::VarPtr z2;    // encoder features, view 2  [N, feature_dim]
  ag::VarPtr h1;    // projections, view 1       [N, proj_dim]
  ag::VarPtr h2;    // projections, view 2       [N, proj_dim]
};

class SslMethod {
 public:
  SslMethod(const nn::EncoderConfig& encoder_config, const SslConfig& config,
            std::uint64_t seed);
  virtual ~SslMethod() = default;

  SslMethod(const SslMethod&) = delete;
  SslMethod& operator=(const SslMethod&) = delete;

  virtual std::string name() const = 0;
  virtual Kind kind() const = 0;

  // Builds the loss graph for one two-view batch.
  virtual SslForward forward(const tensor::Tensor& view1,
                             const tensor::Tensor& view2) = 0;

  // Hook invoked after every optimizer step (EMA targets, queues, prototype
  // re-normalisation). Default: nothing.
  virtual void after_step() {}

  // Parameters the optimizer updates. Default: encoder + projector.
  virtual std::vector<ag::VarPtr> trainable_parameters() const;

  // Parameters exchanged with the FL server. Default: encoder + projector
  // (the paper federates the "Encoder"; the projection head must travel with
  // it for SSL training to continue across rounds).
  virtual std::vector<ag::VarPtr> shared_parameters() const;

  nn::MlpEncoder& encoder() { return *encoder_; }
  const nn::MlpEncoder& encoder() const { return *encoder_; }
  nn::ProjectionHead& projector() { return *projector_; }

  const SslConfig& config() const { return config_; }

  // Encoder features for a raw (un-augmented) batch, as plain values.
  tensor::Tensor encode(const tensor::Tensor& batch);

 protected:
  // Standard two-view encode/project shared by implementations.
  void encode_views(const tensor::Tensor& view1, const tensor::Tensor& view2,
                    SslForward& out);

  SslConfig config_;
  rng::Generator gen_;
  std::unique_ptr<nn::MlpEncoder> encoder_;
  std::unique_ptr<nn::ProjectionHead> projector_;
};

// Marks every parameter of `module` as non-differentiable. Used for
// momentum/target networks that are updated by EMA, never by gradients.
void freeze(const nn::Module& module);

// Creates the requested method.
std::unique_ptr<SslMethod> make_method(Kind kind,
                                       const nn::EncoderConfig& encoder_config,
                                       const SslConfig& config,
                                       std::uint64_t seed);

}  // namespace calibre::ssl
