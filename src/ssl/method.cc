#include "ssl/method.h"

#include "common/check.h"
#include "ssl/byol.h"
#include "ssl/mocov2.h"
#include "ssl/simclr.h"
#include "ssl/simsiam.h"
#include "ssl/smog.h"
#include "ssl/swav.h"

namespace calibre::ssl {

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kSimClr:
      return "SimCLR";
    case Kind::kByol:
      return "BYOL";
    case Kind::kSimSiam:
      return "SimSiam";
    case Kind::kMoCoV2:
      return "MoCoV2";
    case Kind::kSwav:
      return "SwAV";
    case Kind::kSmog:
      return "SMoG";
  }
  return "?";
}

SslMethod::SslMethod(const nn::EncoderConfig& encoder_config,
                     const SslConfig& config, std::uint64_t seed)
    : config_(config), gen_(seed) {
  encoder_ = std::make_unique<nn::MlpEncoder>(encoder_config, gen_);
  projector_ = std::make_unique<nn::ProjectionHead>(
      encoder_config.feature_dim, config.proj_hidden, config.proj_dim, gen_);
}

std::vector<ag::VarPtr> SslMethod::trainable_parameters() const {
  std::vector<ag::VarPtr> params;
  encoder_->collect_parameters(params);
  projector_->collect_parameters(params);
  return params;
}

std::vector<ag::VarPtr> SslMethod::shared_parameters() const {
  return trainable_parameters();
}

tensor::Tensor SslMethod::encode(const tensor::Tensor& batch) {
  // Inference-only forward: callers read ->value, never backward through it,
  // so skip the tape (no parents, no closures, activations freed eagerly).
  const ag::NoGradGuard no_grad;
  return encoder_->forward(ag::constant(batch))->value;
}

void SslMethod::encode_views(const tensor::Tensor& view1,
                             const tensor::Tensor& view2, SslForward& out) {
  CALIBRE_CHECK(view1.rows() == view2.rows());
  out.z1 = encoder_->forward(ag::constant(view1));
  out.z2 = encoder_->forward(ag::constant(view2));
  out.h1 = projector_->forward(out.z1);
  out.h2 = projector_->forward(out.z2);
}

void freeze(const nn::Module& module) {
  for (const ag::VarPtr& p : module.parameters()) {
    p->requires_grad = false;
  }
}

std::unique_ptr<SslMethod> make_method(Kind kind,
                                       const nn::EncoderConfig& encoder_config,
                                       const SslConfig& config,
                                       std::uint64_t seed) {
  switch (kind) {
    case Kind::kSimClr:
      return std::make_unique<SimClr>(encoder_config, config, seed);
    case Kind::kByol:
      return std::make_unique<Byol>(encoder_config, config, seed);
    case Kind::kSimSiam:
      return std::make_unique<SimSiam>(encoder_config, config, seed);
    case Kind::kMoCoV2:
      return std::make_unique<MoCoV2>(encoder_config, config, seed);
    case Kind::kSwav:
      return std::make_unique<Swav>(encoder_config, config, seed);
    case Kind::kSmog:
      return std::make_unique<Smog>(encoder_config, config, seed);
  }
  CALIBRE_CHECK_MSG(false, "unknown SSL kind");
  return nullptr;
}

}  // namespace calibre::ssl
