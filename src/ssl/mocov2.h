// MoCo v2 (He et al. / Chen et al.): InfoNCE against a queue of negatives
// produced by an EMA momentum encoder.
#pragma once

#include "ssl/method.h"

namespace calibre::ssl {

class MoCoV2 : public SslMethod {
 public:
  MoCoV2(const nn::EncoderConfig& encoder_config, const SslConfig& config,
         std::uint64_t seed);

  std::string name() const override { return "MoCoV2"; }
  Kind kind() const override { return Kind::kMoCoV2; }

  SslForward forward(const tensor::Tensor& view1,
                     const tensor::Tensor& view2) override;

  // EMA update of the key network; commits this step's keys to the queue.
  void after_step() override;

  const tensor::Tensor& queue() const { return queue_; }

 private:
  std::unique_ptr<nn::MlpEncoder> key_encoder_;
  std::unique_ptr<nn::ProjectionHead> key_projector_;
  tensor::Tensor queue_;          // [queue_size, proj_dim], L2-normalised rows
  std::int64_t queue_cursor_ = 0;
  tensor::Tensor pending_keys_;   // keys produced by the last forward()
};

}  // namespace calibre::ssl
