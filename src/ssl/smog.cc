#include "ssl/smog.h"

#include "cluster/kmeans.h"
#include "nn/optim.h"

namespace calibre::ssl {

Smog::Smog(const nn::EncoderConfig& encoder_config, const SslConfig& config,
           std::uint64_t seed)
    : SslMethod(encoder_config, config, seed) {
  momentum_encoder_ = std::make_unique<nn::MlpEncoder>(encoder_config, gen_);
  momentum_projector_ = std::make_unique<nn::ProjectionHead>(
      encoder_config.feature_dim, config.proj_hidden, config.proj_dim, gen_);
  nn::copy_parameters(momentum_encoder_->parameters(), encoder_->parameters());
  nn::copy_parameters(momentum_projector_->parameters(),
                      projector_->parameters());
  freeze(*momentum_encoder_);
  freeze(*momentum_projector_);
  groups_ = tensor::l2_normalize_rows(
      tensor::Tensor::randn(config.num_prototypes, config.proj_dim, gen_));
}

SslForward Smog::forward(const tensor::Tensor& view1,
                         const tensor::Tensor& view2) {
  SslForward out;
  encode_views(view1, view2, out);
  // Momentum branch encodes view2 and picks the group for each instance.
  const tensor::Tensor k = tensor::l2_normalize_rows(
      momentum_projector_
          ->forward(momentum_encoder_->forward(ag::constant(view2)))
          ->value);
  pending_assignments_ = cluster::assign_to_centroids(k, groups_);
  pending_features_ = k;

  // Online branch: both views predict the group of their instance.
  const ag::VarPtr groups = ag::constant(groups_);
  const float inv_temp = 1.0f / config_.temperature;
  const ag::VarPtr logits1 = ag::mul_scalar(
      ag::matmul_nt(ag::l2_normalize(out.h1), groups), inv_temp);
  const ag::VarPtr logits2 = ag::mul_scalar(
      ag::matmul_nt(ag::l2_normalize(out.h2), groups), inv_temp);
  const ag::VarPtr loss1 = ag::cross_entropy(logits1, pending_assignments_);
  const ag::VarPtr loss2 = ag::cross_entropy(logits2, pending_assignments_);
  out.loss = ag::mul_scalar(ag::add(loss1, loss2), 0.5f);
  return out;
}

void Smog::after_step() {
  nn::ema_update(momentum_encoder_->parameters(), encoder_->parameters(),
                 config_.ema_momentum);
  nn::ema_update(momentum_projector_->parameters(), projector_->parameters(),
                 config_.ema_momentum);
  if (pending_features_.rows() == 0) return;
  // Synchronous group update: move each assigned group toward the mean of
  // its assigned momentum features, then re-normalise.
  const tensor::Tensor means = cluster::cluster_means(
      pending_features_, pending_assignments_,
      static_cast<int>(groups_.rows()));
  std::vector<int> counts(static_cast<std::size_t>(groups_.rows()), 0);
  for (const int a : pending_assignments_) {
    ++counts[static_cast<std::size_t>(a)];
  }
  for (std::int64_t g = 0; g < groups_.rows(); ++g) {
    if (counts[static_cast<std::size_t>(g)] == 0) continue;
    for (std::int64_t c = 0; c < groups_.cols(); ++c) {
      groups_(g, c) = config_.ema_momentum * groups_(g, c) +
                      (1.0f - config_.ema_momentum) * means(g, c);
    }
  }
  groups_ = tensor::l2_normalize_rows(groups_);
  pending_features_ = tensor::Tensor();
  pending_assignments_.clear();
}

}  // namespace calibre::ssl
