#include "ssl/simclr.h"

#include "nn/losses.h"

namespace calibre::ssl {

SslForward SimClr::forward(const tensor::Tensor& view1,
                           const tensor::Tensor& view2) {
  SslForward out;
  encode_views(view1, view2, out);
  out.loss = nn::ntxent(ag::concat_rows({out.h1, out.h2}),
                        config_.temperature);
  return out;
}

}  // namespace calibre::ssl
