// SMoG (Pang et al., ECCV 2022) — synchronous momentum grouping.
//
// Group centers live outside the gradient path and are moved by momentum
// toward the features a frozen EMA branch assigns to them; the online branch
// is trained with cross entropy to predict its sample's group. This is the
// instance-group-contrast structure of the original paper at MLP scale
// (the original's second instance-level term is carried by the temperature
// cross-entropy against the momentum assignment; see DESIGN.md §2).
#pragma once

#include "ssl/method.h"

namespace calibre::ssl {

class Smog : public SslMethod {
 public:
  Smog(const nn::EncoderConfig& encoder_config, const SslConfig& config,
       std::uint64_t seed);

  std::string name() const override { return "SMoG"; }
  Kind kind() const override { return Kind::kSmog; }

  SslForward forward(const tensor::Tensor& view1,
                     const tensor::Tensor& view2) override;

  // EMA update of the momentum branch and the group centers.
  void after_step() override;

  const tensor::Tensor& groups() const { return groups_; }

 private:
  std::unique_ptr<nn::MlpEncoder> momentum_encoder_;
  std::unique_ptr<nn::ProjectionHead> momentum_projector_;
  tensor::Tensor groups_;  // [num_prototypes, proj_dim], unit rows
  tensor::Tensor pending_features_;
  std::vector<int> pending_assignments_;
};

}  // namespace calibre::ssl
