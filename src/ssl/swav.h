// SwAV (Caron et al., NeurIPS 2020): online clustering — each view's
// projections are assigned to trainable prototypes via the Sinkhorn-Knopp
// balanced transport, and each view predicts the *other* view's assignment.
#pragma once

#include "ssl/method.h"

namespace calibre::ssl {

class Swav : public SslMethod {
 public:
  Swav(const nn::EncoderConfig& encoder_config, const SslConfig& config,
       std::uint64_t seed);

  std::string name() const override { return "SwAV"; }
  Kind kind() const override { return Kind::kSwav; }

  SslForward forward(const tensor::Tensor& view1,
                     const tensor::Tensor& view2) override;

  // Re-normalises prototype rows to the unit sphere.
  void after_step() override;

  // Encoder + projector + prototypes.
  std::vector<ag::VarPtr> trainable_parameters() const override;

  const ag::VarPtr& prototypes() const { return prototypes_; }

 private:
  ag::VarPtr prototypes_;  // [num_prototypes, proj_dim]
};

// Sinkhorn-Knopp balanced assignment (SwAV Alg. 2): given similarity scores
// [N, P], returns soft assignments whose rows sum to 1 and whose column
// masses are balanced. Pure tensor function; exposed for testing.
tensor::Tensor sinkhorn(const tensor::Tensor& scores, float epsilon,
                        int iterations);

}  // namespace calibre::ssl
