// Stochastic augmentations producing SSL views.
//
// Stand-ins for SimCLR's crop / color-jitter / blur pipeline in feature
// space: per-feature scale jitter (color jitter), additive Gaussian noise
// (blur), and random feature masking (crop). Two independent draws of
// `augment` over the same batch give the dual views (I_o, I_e) consumed by
// every SSL method and by Calibre's prototype regularizers.
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace calibre::data {

struct AugmentConfig {
  float noise_std = 0.10f;      // additive Gaussian noise
  float mask_fraction = 0.25f;  // fraction of features zeroed per sample
  float scale_jitter = 0.20f;   // per-feature scale in U[1-j, 1+j]
};

// One stochastic view of `batch` ([N, D] -> [N, D]).
tensor::Tensor augment(const tensor::Tensor& batch,
                       const AugmentConfig& config, rng::Generator& gen);

// Both views at once (independent randomness per view).
struct TwoViews {
  tensor::Tensor view1;
  tensor::Tensor view2;
};
TwoViews augment_pair(const tensor::Tensor& batch, const AugmentConfig& config,
                      rng::Generator& gen);

}  // namespace calibre::data
