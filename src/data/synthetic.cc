#include "data/synthetic.h"

#include <cmath>
#include <memory>

#include "common/check.h"

namespace calibre::data {
namespace {

using tensor::Tensor;

// Fixed random-Fourier rendering mapping latent identities (class latent +
// nuisance latent) to observations: x_j = cos(w_j . u + b_j). The cosine
// nonlinearity makes class information non-linearly encoded in the raw
// input, so linear probes on raw pixels or random features are weak and the
// quality of the learned encoder decides personalization accuracy.
struct Renderer {
  Tensor w1;  // [latent_total, input]
  Tensor b1;  // [1, input]

  Tensor render(const Tensor& latents) const {
    Tensor projected = tensor::add(tensor::matmul(latents, w1), b1);
    for (auto& value : projected.storage()) value = std::cos(value);
    return projected;
  }
};

Renderer make_renderer(int latent_total, std::int64_t input_dim,
                       float frequency, rng::Generator& gen) {
  Renderer renderer;
  renderer.w1 =
      Tensor::randn(latent_total, input_dim, gen,
                    frequency / std::sqrt(static_cast<float>(latent_total)));
  renderer.b1 = Tensor::rand_uniform(1, input_dim, gen, 0.0f,
                                     2.0f * static_cast<float>(M_PI));
  return renderer;
}

// Class means: random directions scaled to `separation`.
Tensor make_class_means(int num_classes, int latent_dim, float separation,
                        rng::Generator& gen) {
  Tensor means = Tensor::randn(num_classes, latent_dim, gen);
  for (std::int64_t k = 0; k < means.rows(); ++k) {
    double norm_sq = 0.0;
    for (std::int64_t d = 0; d < means.cols(); ++d) {
      norm_sq += static_cast<double>(means(k, d)) * means(k, d);
    }
    const float scale =
        separation / std::max(1e-6f, static_cast<float>(std::sqrt(norm_sq)));
    for (std::int64_t d = 0; d < means.cols(); ++d) means(k, d) *= scale;
  }
  return means;
}

Dataset make_split(int samples, bool labeled, const Tensor& class_means,
                   const Renderer& renderer, const SyntheticConfig& config,
                   rng::Generator& gen) {
  Dataset split;
  split.num_classes = config.num_classes;
  if (samples == 0) {
    split.x = Tensor(0, config.input_dim);
    return split;
  }
  const int latent_total = config.latent_dim + config.nuisance_dim;
  Tensor latents(samples, latent_total);
  split.labels.resize(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const int k = static_cast<int>(
        gen.uniform_index(static_cast<std::uint64_t>(config.num_classes)));
    split.labels[static_cast<std::size_t>(i)] = labeled ? k : -1;
    for (int d = 0; d < config.latent_dim; ++d) {
      latents(i, d) = static_cast<float>(
          class_means(k, d) + gen.normal() * config.within_class_stddev);
    }
    for (int d = 0; d < config.nuisance_dim; ++d) {
      latents(i, config.latent_dim + d) =
          static_cast<float>(gen.normal() * config.nuisance_stddev);
    }
  }
  split.x = renderer.render(latents);
  for (auto& value : split.x.storage()) {
    value += static_cast<float>(gen.normal() * config.observation_noise);
  }
  // Keep only the class part of the latent: the oracle resamples nuisance.
  split.latents = tensor::slice_cols(latents, 0, config.latent_dim);
  return split;
}

}  // namespace

tensor::Tensor ViewOracle::render_view(const tensor::Tensor& class_latents,
                                       rng::Generator& gen) const {
  CALIBRE_CHECK_MSG(valid(), "ViewOracle not initialised");
  CALIBRE_CHECK(class_latents.cols() == config_.latent_dim);
  const std::int64_t n = class_latents.rows();
  const int latent_total = config_.latent_dim + config_.nuisance_dim;
  Tensor full(n, latent_total);
  for (std::int64_t i = 0; i < n; ++i) {
    for (int d = 0; d < config_.latent_dim; ++d) {
      full(i, d) = class_latents(i, d) +
                   static_cast<float>(gen.normal() *
                                      config_.view_latent_jitter);
    }
    for (int d = 0; d < config_.nuisance_dim; ++d) {
      full(i, config_.latent_dim + d) =
          static_cast<float>(gen.normal() * config_.nuisance_stddev);
    }
  }
  Tensor view = tensor::add(tensor::matmul(full, w_), b_);
  for (auto& value : view.storage()) {
    value = std::cos(value) +
            static_cast<float>(gen.normal() * config_.observation_noise);
  }
  return view;
}

SyntheticDataset make_synthetic(const SyntheticConfig& config) {
  CALIBRE_CHECK(config.num_classes > 0 && config.latent_dim > 0);
  rng::Generator gen(config.seed);
  const Tensor class_means = make_class_means(
      config.num_classes, config.latent_dim, config.class_separation, gen);
  const Renderer renderer =
      make_renderer(config.latent_dim + config.nuisance_dim, config.input_dim,
                    config.render_frequency, gen);

  SyntheticDataset out;
  out.config = config;
  out.oracle = ViewOracle(renderer.w1, renderer.b1, config);
  const auto shared_oracle = std::make_shared<const ViewOracle>(out.oracle);
  out.train = make_split(config.train_samples, /*labeled=*/true, class_means,
                         renderer, config, gen);
  out.test = make_split(config.test_samples, /*labeled=*/true, class_means,
                        renderer, config, gen);
  out.unlabeled = make_split(config.unlabeled_samples, /*labeled=*/false,
                             class_means, renderer, config, gen);
  out.train.oracle = shared_oracle;
  out.test.oracle = shared_oracle;
  out.unlabeled.oracle = shared_oracle;
  return out;
}

SyntheticConfig cifar10_like() {
  SyntheticConfig config;
  config.num_classes = 10;
  config.input_dim = 48;
  config.latent_dim = 16;
  config.train_samples = 12000;
  config.test_samples = 4000;
  config.class_separation = 5.0f;
  config.nuisance_stddev = 2.5f;
  config.render_frequency = 1.0f;
  config.view_latent_jitter = 0.5f;
  config.seed = 20241010;
  return config;
}

SyntheticConfig cifar100_like() {
  SyntheticConfig config;
  config.num_classes = 100;
  config.input_dim = 64;
  config.latent_dim = 24;
  config.train_samples = 20000;
  config.test_samples = 8000;
  // 100 classes need wider spacing to stay separable at this scale.
  config.class_separation = 7.0f;
  config.nuisance_stddev = 2.5f;
  config.render_frequency = 1.0f;
  config.view_latent_jitter = 0.5f;
  config.seed = 20241100;
  return config;
}

SyntheticConfig stl10_like() {
  SyntheticConfig config;
  config.num_classes = 10;
  config.input_dim = 48;
  config.latent_dim = 16;
  // STL-10: only 5,000 labeled training samples but 100,000 unlabeled ones.
  // Scaled: a small labeled split plus a large SSL-only pool.
  config.train_samples = 3000;
  config.test_samples = 4000;
  config.unlabeled_samples = 12000;
  config.class_separation = 5.0f;
  config.nuisance_stddev = 2.5f;
  config.render_frequency = 1.0f;
  config.view_latent_jitter = 0.5f;
  config.seed = 20241020;
  return config;
}

SyntheticConfig preset_by_name(const std::string& name) {
  if (name == "cifar10") return cifar10_like();
  if (name == "cifar100") return cifar100_like();
  if (name == "stl10") return stl10_like();
  CALIBRE_CHECK_MSG(false, "unknown dataset preset: " << name);
  return {};
}

}  // namespace calibre::data
