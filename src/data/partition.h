// Non-IID client partitioners (paper §V "Non-i.i.d. settings").
//
// * Quantity-based label non-IID, "(S, #samples)": each client holds samples
//   from exactly S classes and the same total sample count.
// * Distribution-based label non-IID, "(alpha, #samples)": each client's
//   class mix is drawn from Dirichlet(alpha); alpha = 0.3 in the paper.
//
// Each client also receives a private *test* shard whose class distribution
// matches its train shard ("the input x' used to predict y' is the sample of
// the test set that has a consistent class distribution with the training
// set" — paper §IV-A).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"

namespace calibre::data {

// Index shards into a shared train/test Dataset pair, one entry per client.
struct Partition {
  std::vector<std::vector<int>> train_indices;
  std::vector<std::vector<int>> test_indices;

  int num_clients() const { return static_cast<int>(train_indices.size()); }
};

struct PartitionConfig {
  int num_clients = 100;
  int samples_per_client = 100;       // train samples per client
  int test_samples_per_client = 60;   // test samples per client
};

// IID baseline partition (uniform class mix per client).
Partition partition_iid(const Dataset& train, const Dataset& test,
                        const PartitionConfig& config, rng::Generator& gen);

// Quantity-based label non-IID: `classes_per_client` classes per client.
Partition partition_quantity(const Dataset& train, const Dataset& test,
                             const PartitionConfig& config,
                             int classes_per_client, rng::Generator& gen);

// Distribution-based label non-IID: Dirichlet(`alpha`) class proportions.
Partition partition_dirichlet(const Dataset& train, const Dataset& test,
                              const PartitionConfig& config, double alpha,
                              rng::Generator& gen);

// Per-client class proportions actually realised by a partition (rows sum
// to 1); used by tests and reporting.
std::vector<std::vector<double>> class_proportions(const Dataset& dataset,
                                                   const Partition& partition,
                                                   bool train_side);

}  // namespace calibre::data
