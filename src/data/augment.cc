#include "data/augment.h"

#include "common/check.h"

namespace calibre::data {

tensor::Tensor augment(const tensor::Tensor& batch,
                       const AugmentConfig& config, rng::Generator& gen) {
  CALIBRE_CHECK(config.mask_fraction >= 0.0f && config.mask_fraction < 1.0f);
  tensor::Tensor out = batch;
  const std::int64_t dims = batch.cols();
  const int mask_count =
      static_cast<int>(static_cast<float>(dims) * config.mask_fraction);
  for (std::int64_t r = 0; r < out.rows(); ++r) {
    for (std::int64_t c = 0; c < dims; ++c) {
      float value = out(r, c);
      if (config.scale_jitter > 0.0f) {
        value *= static_cast<float>(
            gen.uniform(1.0 - config.scale_jitter, 1.0 + config.scale_jitter));
      }
      if (config.noise_std > 0.0f) {
        value += static_cast<float>(gen.normal() * config.noise_std);
      }
      out(r, c) = value;
    }
    if (mask_count > 0) {
      const std::vector<int> masked = gen.sample_without_replacement(
          static_cast<int>(dims), mask_count);
      for (const int c : masked) out(r, c) = 0.0f;
    }
  }
  return out;
}

TwoViews augment_pair(const tensor::Tensor& batch, const AugmentConfig& config,
                      rng::Generator& gen) {
  TwoViews views;
  views.view1 = augment(batch, config, gen);
  views.view2 = augment(batch, config, gen);
  return views;
}

}  // namespace calibre::data
