#include "data/partition.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace calibre::data {
namespace {

// Per-class index pools with wrap-around: drawing more samples than the pool
// holds reshuffles and reuses it. This keeps partitioners valid for any
// (num_clients, samples_per_client) combination; reuse across clients is the
// documented substitute for the paper's larger raw datasets.
class ClassPools {
 public:
  ClassPools(const Dataset& dataset, rng::Generator& gen)
      : pools_(dataset.indices_by_class()), cursors_(pools_.size(), 0),
        gen_(&gen) {
    for (auto& pool : pools_) {
      CALIBRE_CHECK_MSG(!pool.empty(), "dataset missing samples for a class");
      gen.shuffle(pool);
    }
  }

  int draw(int klass) {
    auto& pool = pools_[static_cast<std::size_t>(klass)];
    auto& cursor = cursors_[static_cast<std::size_t>(klass)];
    if (cursor >= pool.size()) {
      gen_->shuffle(pool);
      cursor = 0;
    }
    return pool[cursor++];
  }

 private:
  std::vector<std::vector<int>> pools_;
  std::vector<std::size_t> cursors_;
  rng::Generator* gen_;
};

// Converts fractional class proportions into integer counts summing to n.
std::vector<int> proportions_to_counts(const std::vector<double>& proportions,
                                       int n) {
  std::vector<int> counts(proportions.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int assigned = 0;
  for (std::size_t k = 0; k < proportions.size(); ++k) {
    const double exact = proportions[k] * n;
    counts[k] = static_cast<int>(std::floor(exact));
    assigned += counts[k];
    remainders.emplace_back(exact - counts[k], k);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int i = 0; assigned < n; ++i, ++assigned) {
    ++counts[remainders[static_cast<std::size_t>(i) % remainders.size()]
                 .second];
  }
  return counts;
}

// Builds one client's shards from its per-class train counts: the test shard
// mirrors the train class proportions at test_samples_per_client scale.
void fill_client(const std::vector<int>& train_counts,
                 const PartitionConfig& config, ClassPools& train_pools,
                 ClassPools& test_pools, Partition& partition) {
  std::vector<int> train_shard;
  int total = 0;
  for (const int count : train_counts) total += count;
  CALIBRE_CHECK(total > 0);
  std::vector<double> proportions(train_counts.size(), 0.0);
  for (std::size_t k = 0; k < train_counts.size(); ++k) {
    proportions[k] = static_cast<double>(train_counts[k]) / total;
    for (int i = 0; i < train_counts[k]; ++i) {
      train_shard.push_back(train_pools.draw(static_cast<int>(k)));
    }
  }
  const std::vector<int> test_counts =
      proportions_to_counts(proportions, config.test_samples_per_client);
  std::vector<int> test_shard;
  for (std::size_t k = 0; k < test_counts.size(); ++k) {
    for (int i = 0; i < test_counts[k]; ++i) {
      test_shard.push_back(test_pools.draw(static_cast<int>(k)));
    }
  }
  partition.train_indices.push_back(std::move(train_shard));
  partition.test_indices.push_back(std::move(test_shard));
}

void check_inputs(const Dataset& train, const Dataset& test,
                  const PartitionConfig& config) {
  CALIBRE_CHECK(config.num_clients > 0);
  CALIBRE_CHECK(config.samples_per_client > 0);
  CALIBRE_CHECK(config.test_samples_per_client > 0);
  CALIBRE_CHECK(train.num_classes == test.num_classes);
  CALIBRE_CHECK(train.num_classes > 0);
}

}  // namespace

Partition partition_iid(const Dataset& train, const Dataset& test,
                        const PartitionConfig& config, rng::Generator& gen) {
  check_inputs(train, test, config);
  ClassPools train_pools(train, gen);
  ClassPools test_pools(test, gen);
  Partition partition;
  const std::vector<double> uniform(
      static_cast<std::size_t>(train.num_classes),
      1.0 / train.num_classes);
  for (int c = 0; c < config.num_clients; ++c) {
    fill_client(proportions_to_counts(uniform, config.samples_per_client),
                config, train_pools, test_pools, partition);
  }
  return partition;
}

Partition partition_quantity(const Dataset& train, const Dataset& test,
                             const PartitionConfig& config,
                             int classes_per_client, rng::Generator& gen) {
  check_inputs(train, test, config);
  CALIBRE_CHECK_MSG(
      classes_per_client > 0 && classes_per_client <= train.num_classes,
      "classes_per_client=" << classes_per_client);
  ClassPools train_pools(train, gen);
  ClassPools test_pools(test, gen);
  Partition partition;

  // Deal classes from reshuffled decks so every class is assigned to roughly
  // the same number of clients (the paper assigns S fixed labels per client).
  std::vector<int> deck;
  auto refill = [&] {
    std::vector<int> fresh(static_cast<std::size_t>(train.num_classes));
    for (int k = 0; k < train.num_classes; ++k) {
      fresh[static_cast<std::size_t>(k)] = k;
    }
    gen.shuffle(fresh);
    deck.insert(deck.end(), fresh.begin(), fresh.end());
  };

  for (int c = 0; c < config.num_clients; ++c) {
    std::vector<int> chosen;
    while (static_cast<int>(chosen.size()) < classes_per_client) {
      if (deck.empty()) refill();
      const int klass = deck.back();
      deck.pop_back();
      if (std::find(chosen.begin(), chosen.end(), klass) == chosen.end()) {
        chosen.push_back(klass);
      }
    }
    std::vector<double> proportions(
        static_cast<std::size_t>(train.num_classes), 0.0);
    for (const int klass : chosen) {
      proportions[static_cast<std::size_t>(klass)] =
          1.0 / classes_per_client;
    }
    fill_client(proportions_to_counts(proportions, config.samples_per_client),
                config, train_pools, test_pools, partition);
  }
  return partition;
}

Partition partition_dirichlet(const Dataset& train, const Dataset& test,
                              const PartitionConfig& config, double alpha,
                              rng::Generator& gen) {
  check_inputs(train, test, config);
  CALIBRE_CHECK(alpha > 0.0);
  ClassPools train_pools(train, gen);
  ClassPools test_pools(test, gen);
  Partition partition;
  for (int c = 0; c < config.num_clients; ++c) {
    const std::vector<double> proportions =
        gen.dirichlet(alpha, train.num_classes);
    fill_client(proportions_to_counts(proportions, config.samples_per_client),
                config, train_pools, test_pools, partition);
  }
  return partition;
}

std::vector<std::vector<double>> class_proportions(const Dataset& dataset,
                                                   const Partition& partition,
                                                   bool train_side) {
  const auto& shards =
      train_side ? partition.train_indices : partition.test_indices;
  std::vector<std::vector<double>> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) {
    std::vector<double> proportions(
        static_cast<std::size_t>(dataset.num_classes), 0.0);
    for (const int index : shard) {
      const int label = dataset.labels[static_cast<std::size_t>(index)];
      if (label >= 0) proportions[static_cast<std::size_t>(label)] += 1.0;
    }
    const double total = static_cast<double>(shard.size());
    if (total > 0) {
      for (auto& p : proportions) p /= total;
    }
    out.push_back(std::move(proportions));
  }
  return out;
}

}  // namespace calibre::data
