#include "data/dataset.h"

#include "common/check.h"

namespace calibre::data {

Dataset Dataset::subset(const std::vector<int>& indices) const {
  Dataset out;
  out.x = tensor::take_rows(x, indices);
  if (latents.rows() > 0) {
    out.latents = tensor::take_rows(latents, indices);
  }
  out.oracle = oracle;
  out.labels.reserve(indices.size());
  for (const int index : indices) {
    CALIBRE_CHECK(index >= 0 &&
                  index < static_cast<int>(labels.size()));
    out.labels.push_back(labels[static_cast<std::size_t>(index)]);
  }
  out.num_classes = num_classes;
  return out;
}

std::vector<int> Dataset::labeled_indices() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Dataset::class_histogram() const {
  std::vector<int> histogram(static_cast<std::size_t>(num_classes), 0);
  for (const int label : labels) {
    if (label >= 0) {
      CALIBRE_CHECK(label < num_classes);
      ++histogram[static_cast<std::size_t>(label)];
    }
  }
  return histogram;
}

std::vector<std::vector<int>> Dataset::indices_by_class() const {
  std::vector<std::vector<int>> by_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int label = labels[i];
    if (label >= 0) {
      CALIBRE_CHECK(label < num_classes);
      by_class[static_cast<std::size_t>(label)].push_back(
          static_cast<int>(i));
    }
  }
  return by_class;
}

std::vector<std::vector<int>> make_batches(std::int64_t n, int batch_size,
                                           rng::Generator& gen,
                                           int min_batch) {
  CALIBRE_CHECK(batch_size > 0);
  std::vector<int> order(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] =
      static_cast<int>(i);
  gen.shuffle(order);
  std::vector<std::vector<int>> batches;
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min<std::int64_t>(n, begin + batch_size);
    if (end - begin < min_batch) break;
    batches.emplace_back(order.begin() + begin, order.begin() + end);
  }
  return batches;
}

}  // namespace calibre::data
