// Synthetic stand-ins for CIFAR-10, CIFAR-100 and STL-10.
//
// Generative model (per DESIGN.md §2): every class k has a latent mean mu_k
// drawn on a hypersphere of radius `class_separation`; every *instance* has a
// latent identity u = mu_k + sigma * eps; the observed sample is a fixed
// random two-layer tanh "rendering" of u plus observation noise. SSL methods
// see stochastic augmented views of samples (see augment.h) and can learn the
// latent structure from instance discrimination alone; supervised baselines
// see the same label skew a CIFAR partition would produce. The STL-10 variant
// adds a large *unlabeled* pool that only SSL-based methods can exploit —
// reproducing the paper's STL-10 headline condition.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace calibre::data {

struct SyntheticConfig {
  int num_classes = 10;
  std::int64_t input_dim = 48;
  int latent_dim = 16;
  int train_samples = 12000;
  int test_samples = 4000;
  int unlabeled_samples = 0;       // STL-10-style SSL-only pool
  float class_separation = 4.0f;   // radius of class means in latent space
  float within_class_stddev = 1.0f;
  float observation_noise = 0.05f;
  // Per-instance nuisance latent dimensions appended to the class latent:
  // they carry no label information but dominate raw-input variance, so raw
  // pixels are NOT linearly separable and representation learning matters
  // (mirrors color/pose/background nuisances in natural images).
  int nuisance_dim = 8;
  float nuisance_stddev = 3.0f;
  // Random-Fourier rendering frequency: higher = more nonlinear observation
  // map (class info less linearly decodable from raw inputs).
  float render_frequency = 1.0f;
  // Class-latent jitter applied when generating augmented views: controls
  // how much the augmentation graph of same-class instances overlaps (crops
  // of two images of the same class looking alike). Larger values let SSL
  // recover class-level structure; zero reduces SSL to pure instance
  // discrimination.
  float view_latent_jitter = 0.7f;
  std::uint64_t seed = 1234;
};

// Generates stochastic augmented views of samples from their (hidden) class
// latents: view = render(class_latent, fresh nuisance) + observation noise.
// This is the synthetic analogue of crop/color-jitter pipelines — the
// augmentation changes nuisance factors while preserving semantics. SSL
// methods consume views from this oracle during training.
class ViewOracle {
 public:
  ViewOracle() = default;
  ViewOracle(tensor::Tensor w, tensor::Tensor b, const SyntheticConfig& config)
      : w_(std::move(w)), b_(std::move(b)), config_(config) {}

  // One stochastic view per row of `class_latents` ([N, latent_dim]).
  tensor::Tensor render_view(const tensor::Tensor& class_latents,
                             rng::Generator& gen) const;

  bool valid() const { return w_.rows() > 0; }
  std::int64_t latent_dim() const { return config_.latent_dim; }

 private:
  tensor::Tensor w_;  // [latent_dim + nuisance_dim, input_dim]
  tensor::Tensor b_;  // [1, input_dim]
  SyntheticConfig config_;
};

struct SyntheticDataset {
  Dataset train;
  Dataset test;
  Dataset unlabeled;  // empty unless unlabeled_samples > 0
  ViewOracle oracle;
  SyntheticConfig config;
};

// Generates train/test/unlabeled splits from the same class structure.
SyntheticDataset make_synthetic(const SyntheticConfig& config);

// Preset configurations mirroring the paper's three datasets.
SyntheticConfig cifar10_like();   // 10 classes, fully labeled
SyntheticConfig cifar100_like();  // 100 classes, fully labeled
SyntheticConfig stl10_like();     // 10 classes, small labeled + big unlabeled

// Resolves a preset by name ("cifar10" | "cifar100" | "stl10").
SyntheticConfig preset_by_name(const std::string& name);

}  // namespace calibre::data
