// In-memory dataset representation.
//
// A Dataset is a dense [N, input_dim] feature matrix plus integer labels
// (label -1 marks unlabeled samples, used by the STL-10-like pool). Client
// shards are expressed as index lists into a shared Dataset, so partitioning
// never copies sample data.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace calibre::data {

class ViewOracle;  // defined in data/synthetic.h

struct Dataset {
  tensor::Tensor x;         // [N, input_dim]
  std::vector<int> labels;  // size N; -1 = unlabeled
  // Hidden class latents [N, latent_dim] (synthetic datasets only; empty
  // otherwise). Never exposed to algorithms directly — the ViewOracle uses
  // them to generate semantically aligned augmented views, the stand-in for
  // crop/color-jitter pipelines on natural images.
  tensor::Tensor latents;
  // View generator shared by all splits of a synthetic dataset (null for
  // datasets without one). When set together with `latents`, training code
  // prefers oracle views over generic pixel-space augmentation.
  std::shared_ptr<const ViewOracle> oracle;
  int num_classes = 0;

  std::int64_t size() const { return x.rows(); }
  std::int64_t input_dim() const { return x.cols(); }

  // Materialises the subset selected by `indices` (repetition allowed).
  Dataset subset(const std::vector<int>& indices) const;

  // Indices of labeled samples.
  std::vector<int> labeled_indices() const;

  // Per-class sample counts over labeled samples (size num_classes).
  std::vector<int> class_histogram() const;

  // Indices grouped by class; unlabeled samples are skipped.
  std::vector<std::vector<int>> indices_by_class() const;
};

// Shuffled mini-batch index lists covering [0, n). The final partial batch is
// kept when it has at least `min_batch` elements (losses like NT-Xent need a
// minimum batch to be meaningful).
std::vector<std::vector<int>> make_batches(std::int64_t n, int batch_size,
                                           rng::Generator& gen,
                                           int min_batch = 1);

}  // namespace calibre::data
