// Encoder + Head pairing used by the supervised FL baselines.
//
// Mirrors the paper's model split: the "Encoder" (feature backbone, the
// federated global model) and the "Head" (linear classifier). Algorithms
// pick which of the two they federate.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "flapi/config.h"
#include "nn/networks.h"
#include "nn/state.h"

namespace calibre::fl {

struct EncoderHeadModel {
  std::unique_ptr<nn::MlpEncoder> encoder;
  std::unique_ptr<nn::LinearClassifier> head;

  ag::VarPtr logits(const ag::VarPtr& x) {
    return head->forward(encoder->forward(x));
  }

  std::vector<ag::VarPtr> all_parameters() const {
    std::vector<ag::VarPtr> params;
    encoder->collect_parameters(params);
    head->collect_parameters(params);
    return params;
  }
  std::vector<ag::VarPtr> encoder_parameters() const {
    return encoder->parameters();
  }
  std::vector<ag::VarPtr> head_parameters() const {
    return head->parameters();
  }
};

// Builds a fresh model; `seed` controls initialisation.
EncoderHeadModel make_encoder_head(const FlConfig& config, std::uint64_t seed);

// One stochastic training view of the selected batch rows: oracle views
// when the dataset carries latents + a ViewOracle (synthetic datasets),
// generic pixel-space augmentation otherwise.
tensor::Tensor training_view(const data::Dataset& dataset,
                             const std::vector<int>& batch,
                             const data::AugmentConfig& augment,
                             rng::Generator& gen,
                             bool allow_oracle = false);

// One supervised local-training pass (cross entropy over augmented batches).
// `params` selects which parameters the optimizer updates (freezing is
// expressed by passing a subset). Returns the mean training loss.
float train_supervised(EncoderHeadModel& model,
                       const std::vector<ag::VarPtr>& params,
                       const data::Dataset& dataset, const FlConfig& config,
                       int epochs, rng::Generator& gen);

// Top-1 accuracy of `model` on `dataset`.
double evaluate_accuracy(EncoderHeadModel& model, const data::Dataset& dataset);

// Personalization-style fine-tuning: trains `params` (e.g. just the head)
// with plain cross entropy on un-augmented local data using the probe
// schedule, then returns accuracy on `test`.
double finetune_and_eval(EncoderHeadModel& model,
                         const std::vector<ag::VarPtr>& params,
                         const data::Dataset& train, const data::Dataset& test,
                         const ProbeConfig& probe, std::uint64_t seed);

}  // namespace calibre::fl
