// Experiment configuration shared by all FL algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "data/augment.h"
#include "nn/networks.h"
#include "nn/optim.h"

namespace calibre::fl {

// Personalization stage settings (paper §V: 10 epochs, SGD lr = 0.05,
// batch size 32, linear classifier on frozen encoder features).
struct ProbeConfig {
  // kLinear: the paper's linear classifier trained for `epochs`.
  // kPrototype: training-free nearest-class-prototype head (extension).
  enum class Head { kLinear, kPrototype };
  Head head = Head::kLinear;
  int epochs = 10;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  int batch_size = 32;
};

// One heterogeneous device class: clients are assigned round-robin
// (client_id % num_classes) and inherit the class's fault profile. Maps
// onto comm::FaultConfig; see the availability-schedule semantics there.
struct DeviceClass {
  std::string name;           // label for history/bench output
  float fault_rate = 0.0f;    // P(dispatch fails)
  int fault_latency_ms = 0;   // per-dispatch delay in [0, fault_latency_ms]
  float duty_cycle = 1.0f;    // fraction of each period the device is online
  int period_rounds = 24;     // diurnal period (rounds); used when duty < 1
};

struct FlConfig {
  nn::EncoderConfig encoder;
  int num_classes = 10;

  // Federated training stage.
  int rounds = 30;
  int clients_per_round = 10;
  int local_epochs = 3;
  int batch_size = 32;
  nn::SgdConfig supervised_opt{/*lr=*/0.05f, /*momentum=*/0.9f,
                               /*weight_decay=*/1e-4f};
  nn::SgdConfig ssl_opt{/*lr=*/0.10f, /*momentum=*/0.9f,
                        /*weight_decay=*/1e-4f};

  data::AugmentConfig augment;
  // Whether supervised local training may use the dataset's ViewOracle for
  // augmentation. Default off: supervised FL baselines use generic (weak)
  // augmentation, while SSL methods rely on the strong semantic-preserving
  // view pipeline — mirroring practice, where SimCLR-style pipelines are far
  // stronger than the crop/flip used in supervised FL.
  bool supervised_oracle_views = false;
  ProbeConfig probe;

  // Probability that a sampled client fails to deliver its update in a
  // round (straggler / dropout simulation). The server aggregates whatever
  // arrives; at least one client per round is guaranteed.
  float client_dropout_rate = 0.0f;

  // --- Fault tolerance -------------------------------------------------------
  // Wall-clock budget per round, measured from the broadcast. When it
  // expires the server aggregates whatever arrived (partial aggregation);
  // stragglers are counted as timeouts and their eventual replies are
  // discarded by round tag. 0 = wait for every reply (no deadline).
  int round_deadline_ms = 0;
  // Minimum successful updates per round: the deadline only fires once this
  // many updates arrived (clamped to the number of sampled clients). Keeps
  // a late-but-quorate round meaningful instead of aggregating nothing.
  int min_participants = 1;
  // Bounded retry: a client whose update fails (kTrainError) is re-sent the
  // request up to this many times within the same round.
  int max_client_retries = 0;
  // Fault injection (comm::FaultConfig): probability that a dispatched
  // client update fails, and per-dispatch artificial latency in
  // [0, fault_latency_ms]. Seeded from `seed`; 0/0 disables injection.
  float fault_rate = 0.0f;
  int fault_latency_ms = 0;
  // Heterogeneous device classes (empty = uniform fault_rate /
  // fault_latency_ms above). Client c belongs to class
  // device_classes[c % device_classes.size()].
  std::vector<DeviceClass> device_classes;

  // --- Asynchronous federation ----------------------------------------------
  // FedBuff-style buffered asynchronous aggregation. Instead of a per-round
  // barrier, the server keeps `clients_per_round` requests in flight at all
  // times, folds replies as they arrive (in dispatch order, so runs are
  // bit-identical across thread counts), weights each update by the
  // staleness of the global version it trained against,
  //   w(s) = 1 / (1 + s)^staleness_alpha,
  // and commits a new global version every `async_buffer_size` folds. The
  // run ends after `rounds` commits. Sync-only knobs (round_deadline_ms,
  // client_dropout_rate) are rejected in async mode.
  bool async_mode = false;
  int async_buffer_size = 8;
  float staleness_alpha = 0.5f;

  // Wire codec for model payloads (broadcasts and updates). kF32 keeps runs
  // bitwise identical to pre-codec builds; kF16 halves model bytes on the
  // wire; kDelta16 additionally encodes client updates as fp16 deltas
  // against the round's broadcast snapshot; kTopK16 ships only the
  // `topk_rate` fraction of largest-magnitude delta coordinates with
  // client-side error feedback (the dropped remainder carries into the next
  // update, see fl/update_codec.h); kInt8A quantizes 256-element blocks to
  // affine int8. kAuto picks, per update, the cheapest of those meeting
  // `codec_error_budget`. See comm/codec.h.
  comm::Codec wire_codec = comm::Codec::kF32;

  // Fraction of update coordinates kTopK16 ships (k = max(1,
  // round(rate * model_size))). In (0, 1].
  float topk_rate = 0.0625f;

  // Relative L2 reconstruction-error budget for wire_codec = kAuto: each
  // update is encoded with the cheapest codec whose exact
  // ||decode(encode(u)) - u|| / ||u|| is within the budget (f32 — error
  // zero — is the last resort, so the budget always holds). In (0, 1].
  float codec_error_budget = 0.01f;

  // Aggregation fold shards. 1 (the default) decodes + folds replies inline
  // on the server thread, exactly as before. N > 1 routes released ranks to
  // N shard aggregators (rank % N) decoded + folded by parallel workers and
  // merged in shard order at commit — bit-identical to the flat fold (the
  // native folds accumulate in exact fixed-point; see fl/fixed_accum.h) for
  // algorithms with a mergeable aggregator, with automatic fallback to the
  // flat fold otherwise. Must not exceed clients_per_round, and in async
  // mode must divide async_buffer_size so every commit window loads the
  // shards evenly.
  int agg_shards = 1;

  // Cap on clients evaluated in the personalization stage (0 = all). With
  // 100k virtual clients the training stage is cheap per round but a full
  // personalization sweep is O(population); the cap evaluates a seeded
  // without-replacement sample of that size instead, applied independently
  // to the participating and novel sets.
  int personalize_cap = 0;

  std::uint64_t seed = 42;
  // Worker threads for simulated client devices (0 = library default).
  int threads = 0;
  // Total participating clients; algorithms that need the population size
  // (e.g. SCAFFOLD's control-variate update) read it here. The experiment
  // driver sets it to match the FedDataset.
  int num_train_clients = 100;
};

// Fails fast (throws common::CheckError) on configurations that the round
// loop used to accept and silently reinterpret — most notably
// min_participants > clients_per_round, which was clamped down instead of
// rejected. run_federated() calls this before any work starts; the CLI
// calls it at flag-parse time so bad invocations exit with a clear message
// rather than a truncated run.
void validate(const FlConfig& config);

}  // namespace calibre::fl
