// The pluggable FL algorithm interface.
//
// The Runner drives: initialize() -> rounds of {local_update on sampled
// clients, aggregate} -> personalize() on every client (participating and
// novel). All model movement between runner and algorithm is by value
// (ModelState), matching the serialization boundary of the comm layer.
//
// Thread safety: local_update and personalize are called concurrently for
// *distinct* clients; implementations guard any cross-client shared state
// (e.g. persistent per-client heads) with their own mutex.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "flapi/config.h"
#include "flapi/fixed_accum.h"
#include "nn/state.h"

namespace calibre::fl {

// What a client sends back after a local update.
struct ClientUpdate {
  nn::ModelState state;
  // Aggregation weight before normalisation (usually the sample count).
  float weight = 1.0f;
  // Algorithm-specific side channel (divergence rates, control-variate
  // norms, ...), serialized with the update.
  std::map<std::string, float> scalars;
};

// Wire helpers for ClientUpdate (used by the comm layer and tests).
//
// kF32 (the default) writes the legacy layout — f32 vector | weight |
// scalar map — bitwise identical to pre-codec builds. The other codecs
// prefix a codec magic and encode the state through comm/codec.h; `base` is
// the delta16/topk16 reference (the round's broadcast snapshot as decoded by
// the client), ignored by the other codecs, and `topk` is the kTopK16
// coordinate budget (see comm::encode_values). deserialize_update accepts
// both layouts by peeking the leading u32: a legacy payload starts with the
// low half of a u64 element count, which would have to exceed 3.3e9 elements
// to collide with the magic — far past what the count validation admits.
std::vector<std::uint8_t> serialize_update(
    const ClientUpdate& update, comm::Codec codec = comm::Codec::kF32,
    const nn::ModelState* base = nullptr, std::size_t topk = 0);
ClientUpdate deserialize_update(const std::vector<std::uint8_t>& bytes,
                                const nn::ModelState* base = nullptr);

// The concrete codec a serialized update was encoded with (kF32 for the
// legacy layout). Cheap — reads at most the magic + tag, no decoding — so
// the fold path can attribute wire bytes per codec without touching the
// payload.
comm::Codec peek_update_codec(const std::vector<std::uint8_t>& bytes);

// Bytes the same update would occupy in the legacy f32 layout. The
// denominator of the compression ratios in RoundStats and the traffic
// report.
std::size_t update_wire_size_f32(const ClientUpdate& update);

// Everything a client device knows during one local update.
struct ClientContext {
  int client_id = 0;
  int round = 0;
  const data::Dataset* train = nullptr;     // labeled local shard
  const tensor::Tensor* ssl_pool = nullptr; // local SSL pool (labeled +
                                            // unlabeled share): class latents
                                            // when `oracle` is set, raw
                                            // inputs otherwise
  const data::ViewOracle* oracle = nullptr; // view generator (may be null)
  std::uint64_t seed = 0;                   // per-(client, round) stream
};

// Everything a client knows during personalization/evaluation.
struct PersonalizationContext {
  int client_id = 0;
  const data::Dataset* train = nullptr;
  const data::Dataset* test = nullptr;
  std::uint64_t seed = 0;
};

// --- streaming aggregation ---------------------------------------------------
//
// The runner folds client updates into the next global state as they arrive
// (in selection-rank order, enforced by a reorder buffer) instead of
// buffering all K of them and calling a batch aggregate. A native streaming
// fold keeps server memory O(model) regardless of how many clients
// participate; the batch adapter below preserves the legacy behaviour for
// algorithms whose aggregation is not incremental.
//
// Equivalence contract: an algorithm's batch aggregate() and the aggregator
// returned by make_aggregator() must produce bit-identical states for the
// same update sequence. The weighted-average family guarantees this by
// implementing aggregate() *on top of* its streaming fold.
//
// Hierarchical folds: a mergeable aggregator additionally supports
// merge(), which combines a shard-local partial fold (over a DISJOINT
// subset of the round's updates) into this one as if its updates had been
// folded here. The native folds implement merge exactly — their
// accumulators are fixed-point integers (fl/fixed_accum.h), so integer
// associativity makes every fold schedule (flat, N shards, multi-level
// edge-aggregator trees) bit-identical by construction. That is what lets
// the runner decode + fold replies on parallel shard workers and still
// hash-match the flat single-threaded fold.
class StreamingAggregator {
 public:
  virtual ~StreamingAggregator() = default;

  StreamingAggregator(const StreamingAggregator&) = delete;
  StreamingAggregator& operator=(const StreamingAggregator&) = delete;

  // Folds the next update. The caller guarantees rank order over the
  // updates that arrive (absent ranks are simply skipped).
  virtual void fold(ClientUpdate update) = 0;

  // Produces the next global state from everything folded so far. Called at
  // most once, after at least one fold().
  virtual nn::ModelState finish() = 0;

  // Combines `other` — a shard-local partial fold over a disjoint update
  // subset, created by make_aggregator() with the same (global, round) —
  // into this aggregator. Only legal before finish(); `other` is consumed
  // (left empty, never finished). An empty `other` is the merge identity,
  // and merging into an empty aggregator adopts `other`'s state. The
  // default CHECK-fails: the batch adapter cannot interleave two buffered
  // rank subsequences back into global rank order, so only native folds
  // (mergeable() == true) implement this.
  virtual void merge(StreamingAggregator&& other);

  // True when merge() is implemented — the runner only engages the sharded
  // parallel fold path for mergeable aggregators and falls back to the flat
  // single-threaded fold otherwise.
  virtual bool mergeable() const { return false; }

  // Decoded updates held inside the aggregator: 0 for native streaming
  // folds, one per fold() for the batch adapter. The runner CHECKs this
  // against its decoded-update bound when bounded_memory() is true.
  virtual std::size_t buffered_updates() const { return 0; }

  // True when memory stays O(model) for any participant count.
  virtual bool bounded_memory() const { return true; }

  int folded() const { return folded_; }

 protected:
  StreamingAggregator() = default;
  int folded_ = 0;
};

// Native streaming fold for the weighted-average family:
//   acc[j] += quantize(w_i * x_i[j])   (exact fixed-point, O(model))
//   finish: out[j] = float(acc[j] / sum_i quantize(w_i))
// `weight_of` maps an update to its unnormalised aggregation weight (> 0);
// the default reads ClientUpdate::weight. Normalisation happens once at
// finish(), which is what makes a weighted mean foldable without knowing
// the participant set (or total weight) up front. The accumulator is a
// fixed-point integer sum (fl/fixed_accum.h), so merge() — shard partials
// added element-wise — is exactly associative and commutative: sharded and
// flat folds are bit-identical for any shard count.
class WeightedStreamingAggregator : public StreamingAggregator {
 public:
  using WeightFn = std::function<double(const ClientUpdate&)>;
  explicit WeightedStreamingAggregator(WeightFn weight_of = nullptr);

  void fold(ClientUpdate update) override;
  nn::ModelState finish() override;
  void merge(StreamingAggregator&& other) override;
  bool mergeable() const override { return true; }

 private:
  WeightFn weight_of_;
  std::vector<fixedpoint::Acc> acc_;
  fixedpoint::Acc total_weight_ = 0;
};

class Algorithm;

// Legacy-shaped adapter: buffers every update and delegates to the
// algorithm's batch aggregate() at finish(). Memory O(participants) — the
// safe default for algorithms whose aggregation the runner knows nothing
// about.
class BatchAggregatorAdapter : public StreamingAggregator {
 public:
  BatchAggregatorAdapter(Algorithm& algorithm, nn::ModelState global,
                         int round);

  void fold(ClientUpdate update) override;
  nn::ModelState finish() override;
  std::size_t buffered_updates() const override { return updates_.size(); }
  bool bounded_memory() const override { return false; }

 private:
  Algorithm& algorithm_;
  nn::ModelState global_;
  int round_;
  std::vector<ClientUpdate> updates_;
};

class Algorithm {
 public:
  explicit Algorithm(const FlConfig& config) : config_(config) {}
  virtual ~Algorithm() = default;

  Algorithm(const Algorithm&) = delete;
  Algorithm& operator=(const Algorithm&) = delete;

  virtual std::string name() const = 0;

  // Initial global state broadcast in round 0.
  virtual nn::ModelState initialize() = 0;

  // One local update starting from `global`; returns the client's update.
  virtual ClientUpdate local_update(const nn::ModelState& global,
                                    const ClientContext& ctx) = 0;

  // Combines updates into the next global state. Default: weighted FedAvg.
  // Retained as the batch entry point for tests and tools; the runner
  // aggregates through make_aggregator() instead.
  virtual nn::ModelState aggregate(const nn::ModelState& global,
                                   const std::vector<ClientUpdate>& updates,
                                   int round);

  // Streaming aggregation entry point used by the round loop. The default
  // wraps this algorithm's batch aggregate() (correct for any override, at
  // O(participants) memory); algorithms whose aggregation folds
  // incrementally override it with an O(model) native aggregator. An
  // override of aggregate() and an override of make_aggregator() must stay
  // bit-identical — see the contract above.
  virtual std::unique_ptr<StreamingAggregator> make_aggregator(
      const nn::ModelState& global, int round);

  // Personalization + evaluation for one client; returns test accuracy.
  virtual double personalize(const nn::ModelState& global,
                             const PersonalizationContext& ctx) = 0;

  const FlConfig& config() const { return config_; }

 protected:
  FlConfig config_;
};

// Weighted average of updates (weights normalised internally). Implemented
// as a WeightedStreamingAggregator fold over `updates`, so batch and
// streaming results are bit-identical by construction.
nn::ModelState fedavg_aggregate(const std::vector<ClientUpdate>& updates);

}  // namespace calibre::fl
