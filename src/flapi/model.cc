#include "flapi/model.h"

#include "common/check.h"
#include "data/synthetic.h"

namespace calibre::fl {

tensor::Tensor training_view(const data::Dataset& dataset,
                             const std::vector<int>& batch,
                             const data::AugmentConfig& augment,
                             rng::Generator& gen, bool allow_oracle) {
  if (allow_oracle && dataset.oracle && dataset.oracle->valid() &&
      dataset.latents.rows() > 0) {
    return dataset.oracle->render_view(
        tensor::take_rows(dataset.latents, batch), gen);
  }
  return data::augment(tensor::take_rows(dataset.x, batch), augment, gen);
}

EncoderHeadModel make_encoder_head(const FlConfig& config,
                                   std::uint64_t seed) {
  rng::Generator gen(seed);
  EncoderHeadModel model;
  model.encoder = std::make_unique<nn::MlpEncoder>(config.encoder, gen);
  model.head = std::make_unique<nn::LinearClassifier>(
      config.encoder.feature_dim, config.num_classes, gen);
  return model;
}

float train_supervised(EncoderHeadModel& model,
                       const std::vector<ag::VarPtr>& params,
                       const data::Dataset& dataset, const FlConfig& config,
                       int epochs, rng::Generator& gen) {
  CALIBRE_CHECK(dataset.size() > 0);
  nn::Sgd optimizer(params, config.supervised_opt);
  double total_loss = 0.0;
  int steps = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto batches =
        data::make_batches(dataset.size(), config.batch_size, gen,
                           /*min_batch=*/2);
    for (const auto& batch : batches) {
      std::vector<int> y;
      y.reserve(batch.size());
      for (const int index : batch) {
        y.push_back(dataset.labels[static_cast<std::size_t>(index)]);
      }
      const tensor::Tensor view = training_view(
          dataset, batch, config.augment, gen, config.supervised_oracle_views);
      optimizer.zero_grad();
      const ag::VarPtr loss =
          ag::cross_entropy(model.logits(ag::constant(view)), y);
      ag::backward(loss);
      optimizer.step();
      total_loss += loss->value(0, 0);
      ++steps;
    }
  }
  return steps == 0 ? 0.0f : static_cast<float>(total_loss / steps);
}

double finetune_and_eval(EncoderHeadModel& model,
                         const std::vector<ag::VarPtr>& params,
                         const data::Dataset& train, const data::Dataset& test,
                         const ProbeConfig& probe, std::uint64_t seed) {
  CALIBRE_CHECK(train.size() > 0);
  rng::Generator gen(seed);
  nn::Sgd optimizer(params, nn::SgdConfig{probe.learning_rate, probe.momentum,
                                          /*weight_decay=*/0.0f});
  for (int epoch = 0; epoch < probe.epochs; ++epoch) {
    const auto batches =
        data::make_batches(train.size(), probe.batch_size, gen);
    for (const auto& batch : batches) {
      std::vector<int> y;
      y.reserve(batch.size());
      for (const int index : batch) {
        y.push_back(train.labels[static_cast<std::size_t>(index)]);
      }
      optimizer.zero_grad();
      const ag::VarPtr logits = model.logits(
          ag::constant(tensor::take_rows(train.x, batch)));
      ag::backward(ag::cross_entropy(logits, y));
      optimizer.step();
    }
  }
  return evaluate_accuracy(model, test);
}

double evaluate_accuracy(EncoderHeadModel& model,
                         const data::Dataset& dataset) {
  if (dataset.size() == 0) return 0.0;
  // Evaluation forward: values only, no tape.
  const ag::NoGradGuard no_grad;
  const ag::VarPtr logits = model.logits(ag::constant(dataset.x));
  std::int64_t correct = 0;
  for (std::int64_t r = 0; r < dataset.size(); ++r) {
    if (static_cast<int>(logits->value.argmax_row(r)) ==
        dataset.labels[static_cast<std::size_t>(r)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace calibre::fl
