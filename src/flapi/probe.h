// Linear-probe personalization: the paper's personalization stage. The
// encoder is frozen; a fresh linear classifier is trained for `epochs` on the
// client's extracted features and evaluated on its local test set.
#pragma once

#include "data/dataset.h"
#include "flapi/config.h"

namespace calibre::fl {

// Trains a linear classifier on (train_features, train_labels) and returns
// top-1 accuracy on (test_features, test_labels).
double linear_probe_accuracy(const tensor::Tensor& train_features,
                             const std::vector<int>& train_labels,
                             const tensor::Tensor& test_features,
                             const std::vector<int>& test_labels,
                             int num_classes, const ProbeConfig& config,
                             std::uint64_t seed);

// ProtoNet-style personalization (an extension in the spirit of the paper's
// prototype theme and its p(y=k|x) = softmax(-d(z, v_k)) formulation):
// class prototypes are the mean train feature per class; test samples are
// classified by the nearest prototype. Parameter-free and training-free —
// the cheapest possible personalized head. Classes absent from the client's
// train set are never predicted.
double prototype_probe_accuracy(const tensor::Tensor& train_features,
                                const std::vector<int>& train_labels,
                                const tensor::Tensor& test_features,
                                const std::vector<int>& test_labels,
                                int num_classes);

}  // namespace calibre::fl
