#include "flapi/config.h"

#include "common/check.h"

namespace calibre::fl {

void validate(const FlConfig& config) {
  // rounds == 0 is the personalization-only / scripted-algorithm mode.
  CALIBRE_CHECK_MSG(config.rounds >= 0, "rounds must be >= 0");
  CALIBRE_CHECK_MSG(config.clients_per_round > 0,
                    "clients_per_round must be > 0");
  CALIBRE_CHECK_MSG(config.min_participants >= 1,
                    "min_participants must be >= 1, got "
                        << config.min_participants);
  // Previously this was clamped down silently, so a typo like
  // --min-participants 50 with --clients-per-round 10 ran with a quorum of
  // 10 and no warning. A quorum above the sample size is unsatisfiable by
  // construction: reject it. (Dropout shrinking a round below the quorum at
  // runtime is a different, legitimate situation and is still clamped.)
  CALIBRE_CHECK_MSG(
      config.min_participants <= config.clients_per_round,
      "min_participants (" << config.min_participants
                           << ") exceeds clients_per_round ("
                           << config.clients_per_round
                           << "): the quorum can never be met");
  CALIBRE_CHECK_MSG(
      config.client_dropout_rate >= 0.0f && config.client_dropout_rate < 1.0f,
      "client_dropout_rate must be in [0, 1)");
  CALIBRE_CHECK_MSG(config.round_deadline_ms >= 0,
                    "round_deadline_ms must be >= 0");
  CALIBRE_CHECK_MSG(config.max_client_retries >= 0,
                    "max_client_retries must be >= 0");
  CALIBRE_CHECK_MSG(config.fault_rate >= 0.0f && config.fault_rate <= 1.0f,
                    "fault_rate must be in [0, 1]");
  CALIBRE_CHECK_MSG(config.fault_latency_ms >= 0,
                    "fault_latency_ms must be >= 0");
  for (const DeviceClass& device : config.device_classes) {
    CALIBRE_CHECK_MSG(
        device.fault_rate >= 0.0f && device.fault_rate <= 1.0f,
        "device class '" << device.name << "': fault_rate must be in [0, 1]");
    CALIBRE_CHECK_MSG(device.fault_latency_ms >= 0,
                      "device class '" << device.name
                                       << "': fault_latency_ms must be >= 0");
    CALIBRE_CHECK_MSG(device.duty_cycle > 0.0f && device.duty_cycle <= 1.0f,
                      "device class '" << device.name
                                       << "': duty_cycle must be in (0, 1]");
    CALIBRE_CHECK_MSG(device.duty_cycle >= 1.0f || device.period_rounds > 0,
                      "device class '" << device.name
                                       << "': duty_cycle < 1 needs "
                                          "period_rounds > 0");
  }
  // codec_from_name already rejects unknown --wire-codec names at the CLI,
  // but programmatic configs can hold any byte; reject values outside the
  // enum (and print the valid set) before a corrupt-tag CHECK deep in a
  // round does it cryptically.
  switch (config.wire_codec) {
    case comm::Codec::kAuto:
    case comm::Codec::kF32:
    case comm::Codec::kF16:
    case comm::Codec::kDelta16:
    case comm::Codec::kTopK16:
    case comm::Codec::kInt8A:
      break;
    default:
      CALIBRE_CHECK_MSG(false,
                        "wire_codec value "
                            << static_cast<int>(config.wire_codec)
                            << " is not a codec (expected auto | f32 | f16 | "
                               "delta16 | topk16 | int8a)");
  }
  CALIBRE_CHECK_MSG(config.topk_rate > 0.0f && config.topk_rate <= 1.0f,
                    "topk_rate must be in (0, 1], got " << config.topk_rate);
  CALIBRE_CHECK_MSG(
      config.codec_error_budget > 0.0f && config.codec_error_budget <= 1.0f,
      "codec_error_budget must be in (0, 1], got "
          << config.codec_error_budget);
  CALIBRE_CHECK_MSG(config.agg_shards >= 1, "agg_shards must be >= 1, got "
                                                << config.agg_shards);
  // More shards than sampled clients would leave shards permanently empty:
  // the shard map is rank % agg_shards over at most clients_per_round ranks.
  CALIBRE_CHECK_MSG(
      config.agg_shards <= config.clients_per_round,
      "agg_shards (" << config.agg_shards << ") exceeds clients_per_round ("
                     << config.clients_per_round
                     << "): shards beyond the sample size can never fold");
  if (config.async_mode) {
    CALIBRE_CHECK_MSG(config.async_buffer_size >= 1,
                      "async_buffer_size must be >= 1, got "
                          << config.async_buffer_size);
    // A commit window folds exactly async_buffer_size updates with ranks
    // 0..buffer-1; requiring divisibility keeps every shard's load equal in
    // every window instead of systematically starving the high shards.
    CALIBRE_CHECK_MSG(
        config.async_buffer_size % config.agg_shards == 0,
        "async_buffer_size (" << config.async_buffer_size
                              << ") must be divisible by agg_shards ("
                              << config.agg_shards
                              << ") so commit windows load shards evenly");
    CALIBRE_CHECK_MSG(config.staleness_alpha >= 0.0f,
                      "staleness_alpha must be >= 0, got "
                          << config.staleness_alpha);
    // Async has no per-round barrier, so a per-round wall-clock deadline and
    // pre-dispatch dropout have no meaning there; reject rather than ignore.
    CALIBRE_CHECK_MSG(config.round_deadline_ms == 0,
                      "round_deadline_ms is a sync-only knob; async mode "
                      "paces itself by buffer commits");
    CALIBRE_CHECK_MSG(config.client_dropout_rate == 0.0f,
                      "client_dropout_rate is a sync-only knob; model device "
                      "churn with --device-classes duty cycles instead");
  }
}

}  // namespace calibre::fl
