#include "flapi/probe.h"

#include "common/check.h"
#include "nn/networks.h"
#include "nn/optim.h"

namespace calibre::fl {

double linear_probe_accuracy(const tensor::Tensor& train_features,
                             const std::vector<int>& train_labels,
                             const tensor::Tensor& test_features,
                             const std::vector<int>& test_labels,
                             int num_classes, const ProbeConfig& config,
                             std::uint64_t seed) {
  CALIBRE_CHECK(train_features.rows() ==
                static_cast<std::int64_t>(train_labels.size()));
  CALIBRE_CHECK(test_features.rows() ==
                static_cast<std::int64_t>(test_labels.size()));
  CALIBRE_CHECK(train_features.rows() > 0 && test_features.rows() > 0);

  rng::Generator gen(seed);
  nn::LinearClassifier head(train_features.cols(), num_classes, gen);
  nn::Sgd optimizer(head.parameters(),
                    nn::SgdConfig{config.learning_rate, config.momentum,
                                  /*weight_decay=*/0.0f});
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto batches =
        data::make_batches(train_features.rows(), config.batch_size, gen);
    for (const auto& batch : batches) {
      std::vector<int> labels;
      labels.reserve(batch.size());
      for (const int index : batch) {
        labels.push_back(train_labels[static_cast<std::size_t>(index)]);
      }
      optimizer.zero_grad();
      const ag::VarPtr logits = head.forward(
          ag::constant(tensor::take_rows(train_features, batch)));
      ag::backward(ag::cross_entropy(logits, labels));
      optimizer.step();
    }
  }

  // Evaluation forward: values only, no tape.
  const ag::NoGradGuard no_grad;
  const ag::VarPtr logits = head.forward(ag::constant(test_features));
  std::int64_t correct = 0;
  for (std::int64_t r = 0; r < test_features.rows(); ++r) {
    if (static_cast<int>(logits->value.argmax_row(r)) ==
        test_labels[static_cast<std::size_t>(r)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(test_features.rows());
}

double prototype_probe_accuracy(const tensor::Tensor& train_features,
                                const std::vector<int>& train_labels,
                                const tensor::Tensor& test_features,
                                const std::vector<int>& test_labels,
                                int num_classes) {
  CALIBRE_CHECK(train_features.rows() ==
                static_cast<std::int64_t>(train_labels.size()));
  CALIBRE_CHECK(test_features.rows() ==
                static_cast<std::int64_t>(test_labels.size()));
  CALIBRE_CHECK(train_features.rows() > 0 && test_features.rows() > 0);
  // Per-class prototypes over the client's train features.
  tensor::Tensor prototypes(num_classes, train_features.cols());
  std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
  for (std::int64_t i = 0; i < train_features.rows(); ++i) {
    const int label = train_labels[static_cast<std::size_t>(i)];
    CALIBRE_CHECK(label >= 0 && label < num_classes);
    ++counts[static_cast<std::size_t>(label)];
    for (std::int64_t d = 0; d < train_features.cols(); ++d) {
      prototypes(label, d) += train_features(i, d);
    }
  }
  for (int k = 0; k < num_classes; ++k) {
    if (counts[static_cast<std::size_t>(k)] > 0) {
      for (std::int64_t d = 0; d < prototypes.cols(); ++d) {
        prototypes(k, d) /=
            static_cast<float>(counts[static_cast<std::size_t>(k)]);
      }
    }
  }
  // Nearest prototype among the classes the client has seen.
  const tensor::Tensor dists =
      tensor::pairwise_sq_dists(test_features, prototypes);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < test_features.rows(); ++i) {
    int best = -1;
    float best_dist = 0.0f;
    for (int k = 0; k < num_classes; ++k) {
      if (counts[static_cast<std::size_t>(k)] == 0) continue;
      if (best < 0 || dists(i, k) < best_dist) {
        best = k;
        best_dist = dists(i, k);
      }
    }
    if (best == test_labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(test_features.rows());
}

}  // namespace calibre::fl
