#include "flapi/algorithm.h"

#include <cstring>

#include "comm/codec.h"
#include "comm/serde.h"
#include "common/check.h"

namespace calibre::fl {

namespace {

constexpr std::uint32_t kUpdateCodecMagic = 0xCA11C0DF;

std::size_t scalar_map_wire_size(const std::map<std::string, float>& scalars) {
  std::size_t size = sizeof(std::uint32_t);
  for (const auto& [key, value] : scalars) {
    size += sizeof(std::uint32_t) + key.size() + sizeof(value);
  }
  return size;
}

}  // namespace

std::vector<std::uint8_t> serialize_update(const ClientUpdate& update,
                                           comm::Codec codec,
                                           const nn::ModelState* base,
                                           std::size_t topk) {
  const std::size_t tail =
      sizeof(update.weight) + scalar_map_wire_size(update.scalars);
  if (codec == comm::Codec::kF32) {
    // Legacy layout, bitwise identical to pre-codec builds.
    comm::Writer writer(sizeof(std::uint64_t) +
                        update.state.size() * sizeof(float) + tail);
    writer.write_f32_vector(update.state.values());
    writer.write_f32(update.weight);
    writer.write_scalar_map(update.scalars);
    return writer.take();
  }
  comm::Writer writer(
      sizeof(kUpdateCodecMagic) +
      comm::encoded_size(codec, update.state.size(), topk) + tail);
  writer.write_u32(kUpdateCodecMagic);
  comm::encode_values(writer, update.state.values(), codec,
                      base != nullptr ? base->values().data() : nullptr,
                      base != nullptr ? base->size() : 0, topk);
  writer.write_f32(update.weight);
  writer.write_scalar_map(update.scalars);
  return writer.take();
}

comm::Codec peek_update_codec(const std::vector<std::uint8_t>& bytes) {
  std::uint32_t head = 0;
  if (bytes.size() >= sizeof(head)) {
    std::memcpy(&head, bytes.data(), sizeof(head));
  }
  if (head != kUpdateCodecMagic) return comm::Codec::kF32;  // legacy layout
  CALIBRE_CHECK_LT(sizeof(head), bytes.size(), "update ends at codec magic");
  return static_cast<comm::Codec>(bytes[sizeof(head)]);
}

std::size_t update_wire_size_f32(const ClientUpdate& update) {
  return sizeof(std::uint64_t) + update.state.size() * sizeof(float) +
         sizeof(update.weight) + scalar_map_wire_size(update.scalars);
}

ClientUpdate deserialize_update(const std::vector<std::uint8_t>& bytes,
                                const nn::ModelState* base) {
  comm::Reader reader(bytes);
  ClientUpdate update;
  // Peek the layout: codec payloads lead with the magic, legacy payloads
  // with the low u32 of the f32 vector's element count (see algorithm.h on
  // why these cannot collide for any payload the count validation admits).
  std::uint32_t head = 0;
  if (bytes.size() >= sizeof(head)) {
    std::memcpy(&head, bytes.data(), sizeof(head));
  }
  if (head == kUpdateCodecMagic) {
    reader.read_u32();
    update.state = nn::ModelState(comm::decode_values(
        reader, base != nullptr ? base->values().data() : nullptr,
        base != nullptr ? base->size() : 0));
  } else {
    update.state = nn::ModelState(reader.read_f32_vector());
  }
  update.weight = reader.read_f32();
  update.scalars = reader.read_scalar_map();
  CALIBRE_CHECK_MSG(reader.exhausted(), "trailing bytes in ClientUpdate");
  return update;
}

// --- streaming aggregation ---------------------------------------------------

void StreamingAggregator::merge(StreamingAggregator&& /*other*/) {
  CALIBRE_CHECK_MSG(false,
                    "this aggregator is not mergeable (mergeable() is false): "
                    "shard-parallel folding needs a native fold whose partial "
                    "state composes — the batch adapter cannot interleave two "
                    "buffered rank subsequences");
}

WeightedStreamingAggregator::WeightedStreamingAggregator(WeightFn weight_of)
    : weight_of_(std::move(weight_of)) {}

void WeightedStreamingAggregator::fold(ClientUpdate update) {
  const double w = weight_of_
                       ? weight_of_(update)
                       : static_cast<double>(update.weight);
  CALIBRE_CHECK_MSG(w > 0.0, "non-positive aggregation weight");
  CALIBRE_CHECK_LT(folded_, fixedpoint::kMaxFolds,
                   "too many folds for one accumulator");
  const std::vector<float>& values = update.state.values();
  if (acc_.empty()) {
    CALIBRE_CHECK_MSG(!values.empty(), "empty update state");
    acc_.assign(values.size(), 0);
  }
  CALIBRE_CHECK_EQ(acc_.size(), values.size(),
                   "update dimension changed mid-round");
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc_[i] += fixedpoint::quantize(w * static_cast<double>(values[i]));
  }
  total_weight_ += fixedpoint::quantize(w);
  ++folded_;
}

nn::ModelState WeightedStreamingAggregator::finish() {
  CALIBRE_CHECK_MSG(folded_ > 0, "finish() before any update was folded");
  const double total = fixedpoint::to_double(total_weight_);
  std::vector<float> out(acc_.size());
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    out[i] = static_cast<float>(fixedpoint::to_double(acc_[i]) / total);
  }
  return nn::ModelState(std::move(out));
}

void WeightedStreamingAggregator::merge(StreamingAggregator&& other) {
  auto* rhs = dynamic_cast<WeightedStreamingAggregator*>(&other);
  CALIBRE_CHECK_MSG(rhs != nullptr && rhs != this,
                    "merge() needs a distinct WeightedStreamingAggregator");
  if (rhs->folded_ == 0) return;  // merging the identity is a no-op
  CALIBRE_CHECK_LE(folded_ + rhs->folded_, fixedpoint::kMaxFolds,
                   "merged fold count exceeds the accumulator bound");
  if (folded_ == 0) {
    acc_ = std::move(rhs->acc_);
  } else {
    CALIBRE_CHECK_EQ(acc_.size(), rhs->acc_.size(),
                     "shard accumulators disagree on update dimension");
    for (std::size_t i = 0; i < acc_.size(); ++i) acc_[i] += rhs->acc_[i];
  }
  total_weight_ += rhs->total_weight_;
  folded_ += rhs->folded_;
  rhs->acc_.clear();
  rhs->total_weight_ = 0;
  rhs->folded_ = 0;
}

BatchAggregatorAdapter::BatchAggregatorAdapter(Algorithm& algorithm,
                                               nn::ModelState global,
                                               int round)
    : algorithm_(algorithm), global_(std::move(global)), round_(round) {}

void BatchAggregatorAdapter::fold(ClientUpdate update) {
  updates_.push_back(std::move(update));
  ++folded_;
}

nn::ModelState BatchAggregatorAdapter::finish() {
  CALIBRE_CHECK_MSG(folded_ > 0, "finish() before any update was folded");
  return algorithm_.aggregate(global_, updates_, round_);
}

std::unique_ptr<StreamingAggregator> Algorithm::make_aggregator(
    const nn::ModelState& global, int round) {
  return std::make_unique<BatchAggregatorAdapter>(*this, global, round);
}

nn::ModelState Algorithm::aggregate(const nn::ModelState& /*global*/,
                                    const std::vector<ClientUpdate>& updates,
                                    int /*round*/) {
  return fedavg_aggregate(updates);
}

nn::ModelState fedavg_aggregate(const std::vector<ClientUpdate>& updates) {
  CALIBRE_CHECK(!updates.empty());
  WeightedStreamingAggregator fold;
  for (const ClientUpdate& update : updates) fold.fold(update);
  return fold.finish();
}

}  // namespace calibre::fl
