// Exact, order-independent accumulation for mergeable streaming folds.
//
// A StreamingAggregator that wants to support hierarchical merge() must
// produce the SAME bits whether its updates were folded flat on one thread
// or split across N shard aggregators and combined — for any N and any
// split. Floating-point addition is not associative, so a double
// accumulator cannot deliver that: (a + b) + c and a + (b + c) differ in
// the last ulp often enough to break final-state hash checks.
//
// The fix is to make the accumulator an integer. Each term is quantized
// ONCE to a fixed-point grid (resolution 2^-64) and summed in 128-bit
// integers; integer addition is exactly associative and commutative, so
// every fold schedule — flat, sharded, two-level edge trees — lands on
// identical bits by construction. Accuracy is not sacrificed: the
// quantization step keeps the full double mantissa of each term (the
// scaled value is rounded to nearest once, exactly like the final rounding
// of a double multiply), and the summation afterwards is EXACT, which is
// strictly tighter than the rounding a running double accumulator performs
// on every fold.
//
// Domain: |term| <= kMaxAbsTerm (2^42 ~ 4.4e12) and at most kMaxFolds
// (2^20) folded terms per accumulator, CHECK-enforced. Under those bounds
// the scaled sum stays below 2^126 and the int128 cannot overflow.
// Resolution 2^-64 ~ 5.4e-20 is invisible after the float cast at
// finish() for any aggregate whose magnitude exceeds ~1e-12 — far below
// every weight/parameter scale the algorithms produce.
#pragma once

#include <cmath>

#include "common/check.h"

namespace calibre::fl::fixedpoint {

// 128-bit signed accumulator (GCC/Clang builtin; the repo targets both).
using Acc = __int128;

inline constexpr double kScale = 0x1p64;      // grid: 1 ulp = 2^-64
inline constexpr double kInvScale = 0x1p-64;
inline constexpr double kMaxAbsTerm = 0x1p42; // |term| bound, CHECKed
inline constexpr int kMaxFolds = 1 << 20;     // folds-per-accumulator bound

// Quantizes one term to the grid: round-to-nearest-even of v * 2^64,
// computed in double (keeps v's full mantissa; the conversion to int128 is
// exact because the rounded value is integral). CHECK-fails on terms
// outside the overflow-safe domain instead of silently wrapping.
inline Acc quantize(double v) {
  const double scaled = v * kScale;
  CALIBRE_CHECK_MSG(scaled <= kMaxAbsTerm * kScale &&
                        scaled >= -kMaxAbsTerm * kScale,
                    "fixed-point fold term magnitude exceeds 2^42");
  return static_cast<Acc>(std::rint(scaled));
}

// Exact-to-double readback (one rounding, at the end).
inline double to_double(Acc a) { return static_cast<double>(a) * kInvScale; }

}  // namespace calibre::fl::fixedpoint
