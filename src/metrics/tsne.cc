#include "metrics/tsne.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace calibre::metrics {
namespace {

// Binary-searches the Gaussian bandwidth of row i so that the conditional
// distribution p_{j|i} has the requested perplexity; writes p_{j|i} into row.
void fit_row_perplexity(const std::vector<double>& sq_dists, std::int64_t i,
                        double perplexity, std::vector<double>& row) {
  const std::int64_t n = static_cast<std::int64_t>(row.size());
  const double target_entropy = std::log(perplexity);
  double beta = 1.0;
  double beta_lo = 0.0;
  double beta_hi = std::numeric_limits<double>::max();
  for (int attempt = 0; attempt < 50; ++attempt) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      row[static_cast<std::size_t>(j)] =
          j == i ? 0.0
                 : std::exp(-beta *
                            sq_dists[static_cast<std::size_t>(j)]);
      sum += row[static_cast<std::size_t>(j)];
    }
    if (sum <= 0.0) {
      beta /= 2.0;
      continue;
    }
    // Entropy of the row distribution.
    double entropy = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      const double p = row[static_cast<std::size_t>(j)] / sum;
      if (p > 1e-12) entropy -= p * std::log(p);
    }
    for (std::int64_t j = 0; j < n; ++j) {
      row[static_cast<std::size_t>(j)] /= sum;
    }
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-4) return;
    if (diff > 0) {  // too flat: increase beta
      beta_lo = beta;
      beta = beta_hi == std::numeric_limits<double>::max() ? beta * 2.0
                                                           : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2.0;
    }
  }
}

}  // namespace

TsneResult tsne(const tensor::Tensor& points, const TsneConfig& config,
                rng::Generator& gen) {
  const std::int64_t n = points.rows();
  CALIBRE_CHECK_MSG(n >= 5, "t-SNE needs at least 5 points");
  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);

  // --- symmetric joint probabilities P -------------------------------------
  const tensor::Tensor sq = tensor::pairwise_sq_dists(points, points);
  std::vector<double> p(static_cast<std::size_t>(n * n), 0.0);
  {
    std::vector<double> dist_row(static_cast<std::size_t>(n));
    std::vector<double> p_row(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        dist_row[static_cast<std::size_t>(j)] = sq(i, j);
      }
      fit_row_perplexity(dist_row, i, perplexity, p_row);
      for (std::int64_t j = 0; j < n; ++j) {
        p[static_cast<std::size_t>(i * n + j)] =
            p_row[static_cast<std::size_t>(j)];
      }
    }
  }
  // Symmetrise and normalise.
  double p_total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double value = (p[static_cast<std::size_t>(i * n + j)] +
                            p[static_cast<std::size_t>(j * n + i)]) /
                           2.0;
      p[static_cast<std::size_t>(i * n + j)] = value;
      p[static_cast<std::size_t>(j * n + i)] = value;
      p_total += 2.0 * value;
    }
  }
  for (auto& value : p) value = std::max(value / p_total, 1e-12);

  // --- gradient descent on the embedding --------------------------------------
  const double learning_rate =
      config.learning_rate > 0.0
          ? config.learning_rate
          : std::max(2.0, static_cast<double>(n) /
                              (4.0 * config.early_exaggeration));
  const int dims = config.output_dims;
  tensor::Tensor y = tensor::Tensor::randn(n, dims, gen, 1e-2f);
  tensor::Tensor velocity(n, dims);
  std::vector<double> q(static_cast<std::size_t>(n * n), 0.0);

  double kl = 0.0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    // Student-t affinities Q from one GEMM-based pairwise distance matrix.
    const tensor::Tensor y_sq = tensor::pairwise_sq_dists(y, y);
    double q_total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* sq_row = y_sq.data() + i * n;
      for (std::int64_t j = i + 1; j < n; ++j) {
        const double affinity = 1.0 / (1.0 + static_cast<double>(sq_row[j]));
        q[static_cast<std::size_t>(i * n + j)] = affinity;
        q[static_cast<std::size_t>(j * n + i)] = affinity;
        q_total += 2.0 * affinity;
      }
    }

    kl = 0.0;
    tensor::Tensor grad(n, dims);
    const float* yd = y.data();
    float* gd = grad.data();
    for (std::int64_t i = 0; i < n; ++i) {
      const float* yi = yd + i * dims;
      float* gi = gd + i * dims;
      for (std::int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const float* yj = yd + j * dims;
        const double affinity = q[static_cast<std::size_t>(i * n + j)];
        const double q_ij = std::max(affinity / q_total, 1e-12);
        const double p_ij =
            exaggeration * p[static_cast<std::size_t>(i * n + j)];
        kl += p[static_cast<std::size_t>(i * n + j)] *
              std::log(p[static_cast<std::size_t>(i * n + j)] / q_ij);
        const double coefficient = 4.0 * (p_ij - q_ij) * affinity;
        for (int d = 0; d < dims; ++d) {
          gi[d] += static_cast<float>(
              coefficient * (static_cast<double>(yi[d]) - yj[d]));
        }
      }
    }
    // Momentum gradient descent.
    for (std::int64_t i = 0; i < n; ++i) {
      for (int d = 0; d < dims; ++d) {
        velocity(i, d) = static_cast<float>(config.momentum * velocity(i, d) -
                                            learning_rate * grad(i, d));
        y(i, d) += velocity(i, d);
      }
    }
  }

  TsneResult result;
  result.embedding = std::move(y);
  result.final_kl = kl;
  return result;
}

}  // namespace calibre::metrics
