// Accuracy statistics: the paper evaluates every method by the MEAN of
// per-client test accuracies (overall performance) and their VARIANCE /
// standard deviation (model fairness, §III-A).
#pragma once

#include <string>
#include <vector>

namespace calibre::metrics {

struct AccuracyStats {
  double mean = 0.0;
  double variance = 0.0;  // population variance
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  int count = 0;
};

AccuracyStats compute_stats(const std::vector<double>& values);

// "mean ± std" with accuracies rendered as percentages, e.g. "89.16 ± 10.58".
std::string format_mean_std(const AccuracyStats& stats);

}  // namespace calibre::metrics
