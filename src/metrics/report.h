// Experiment reporting: fixed-width result tables (one per paper table /
// figure) and CSV export of 2-D embeddings for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "comm/router.h"
#include "metrics/stats.h"
#include "tensor/tensor.h"

namespace calibre::metrics {

// One method's result in one experimental setting.
struct ResultRow {
  std::string method;
  AccuracyStats stats;
  // Optional reference values from the paper (percent); negative = absent.
  double paper_mean = -1.0;
  double paper_std = -1.0;
  std::string note;
};

// Prints a titled table: method | mean±std | variance | paper mean±std.
void print_result_table(std::ostream& os, const std::string& title,
                        const std::vector<ResultRow>& rows);

// Writes "x,y,label,client" rows for an embedding (labels/clients optional:
// pass empty vectors to omit).
void write_embedding_csv(const std::string& path,
                         const tensor::Tensor& embedding,
                         const std::vector<int>& labels,
                         const std::vector<int>& clients);

// Representation-quality summary used in place of visual t-SNE inspection.
struct RepresentationQuality {
  std::string method;
  double silhouette = 0.0;   // class separation in feature space
  double purity = 0.0;       // KMeans cluster purity vs labels
  double nmi = 0.0;          // KMeans NMI vs labels
  double tsne_kl = 0.0;      // final t-SNE KL (embedding faithfulness)
};

void print_quality_table(std::ostream& os, const std::string& title,
                         const std::vector<RepresentationQuality>& rows);

// Per-round wire traffic (a lightweight mirror of fl::RoundStats' traffic
// fields; metrics stays independent of the fl layer).
struct RoundTraffic {
  int round = 0;
  std::uint64_t bytes_broadcast = 0;   // server -> clients, logical
  std::uint64_t bytes_collected = 0;   // clients -> server, logical
  std::uint64_t serializations = 0;    // unique broadcast buffers this round
  // Update compression: encoded bytes of the round's folded updates vs the
  // same updates in the f32 layout (0/0 when unknown — the ratio column
  // prints blank), and a label for the codec(s) those updates used (e.g.
  // "topk16", or "topk16*4+f32" under the adaptive chooser).
  std::uint64_t update_bytes_wire = 0;
  std::uint64_t update_bytes_f32 = 0;
  std::string codec;
};

// Prints run totals — messages, logical vs physical bytes with the dedup
// saving, serializations by direction — and, when `rounds` is non-empty, a
// per-round breakdown table.
void print_traffic_report(std::ostream& os, const comm::TrafficStats& totals,
                          const std::vector<RoundTraffic>& rounds);

}  // namespace calibre::metrics
