#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace calibre::metrics {

AccuracyStats compute_stats(const std::vector<double>& values) {
  AccuracyStats stats;
  stats.count = static_cast<int>(values.size());
  if (values.empty()) return stats;
  double total = 0.0;
  stats.min = values.front();
  stats.max = values.front();
  for (const double value : values) {
    total += value;
    stats.min = std::min(stats.min, value);
    stats.max = std::max(stats.max, value);
  }
  stats.mean = total / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double value : values) {
    const double d = value - stats.mean;
    sq += d * d;
  }
  stats.variance = sq / static_cast<double>(values.size());
  stats.stddev = std::sqrt(stats.variance);
  return stats;
}

std::string format_mean_std(const AccuracyStats& stats) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%5.2f ± %5.2f",
                stats.mean * 100.0, stats.stddev * 100.0);
  return buffer;
}

}  // namespace calibre::metrics
