#include "metrics/fairness.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "metrics/stats.h"

namespace calibre::metrics {

FairnessReport compute_fairness(const std::vector<double>& accuracies) {
  CALIBRE_CHECK_MSG(!accuracies.empty(), "compute_fairness on empty input");
  FairnessReport report;
  const AccuracyStats stats = compute_stats(accuracies);
  report.variance = stats.variance;
  report.stddev = stats.stddev;
  report.range = stats.max - stats.min;

  const std::size_t n = accuracies.size();
  double total = 0.0;
  double total_sq = 0.0;
  for (const double a : accuracies) {
    total += a;
    total_sq += a * a;
  }
  report.jain_index =
      total_sq > 0.0 ? (total * total) / (static_cast<double>(n) * total_sq)
                     : 1.0;

  // Gini over sorted accuracies: sum_i (2i - n - 1) x_i / (n * sum x).
  std::vector<double> sorted = accuracies;
  std::sort(sorted.begin(), sorted.end());
  if (total > 0.0) {
    double weighted = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      weighted += (2.0 * static_cast<double>(i + 1) -
                   static_cast<double>(n) - 1.0) *
                  sorted[i];
    }
    report.gini = weighted / (static_cast<double>(n) * total);
  }

  const std::size_t decile = std::max<std::size_t>(1, n / 10);
  double worst = 0.0;
  double best = 0.0;
  for (std::size_t i = 0; i < decile; ++i) {
    worst += sorted[i];
    best += sorted[n - 1 - i];
  }
  report.worst_decile_mean = worst / static_cast<double>(decile);
  report.best_decile_mean = best / static_cast<double>(decile);
  return report;
}

}  // namespace calibre::metrics
