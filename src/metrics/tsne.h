// Exact (O(N^2)) t-SNE, used to regenerate the paper's qualitative figures
// (Figs. 1, 2, 5, 6, 7, 8): 2-D embeddings of encoder representations.
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace calibre::metrics {

struct TsneConfig {
  int output_dims = 2;
  double perplexity = 20.0;
  int iterations = 350;
  // <= 0 selects an automatic rate of max(2, N / (4 * early_exaggeration)),
  // which stays stable for the small point counts typical here.
  double learning_rate = 0.0;
  double momentum = 0.8;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 80;
};

struct TsneResult {
  tensor::Tensor embedding;  // [N, output_dims]
  double final_kl = 0.0;     // KL(P || Q) after the last iteration
};

// Embeds `points` ([N, D], N >= 5) into `output_dims` dimensions.
TsneResult tsne(const tensor::Tensor& points, const TsneConfig& config,
                rng::Generator& gen);

}  // namespace calibre::metrics
