#include "metrics/report.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>

#include "common/check.h"

namespace calibre::metrics {

void print_result_table(std::ostream& os, const std::string& title,
                        const std::vector<ResultRow>& rows) {
  os << "\n== " << title << " ==\n";
  os << std::left << std::setw(26) << "method" << std::setw(18)
     << "acc mean±std(%)" << std::setw(12) << "variance" << std::setw(18)
     << "paper mean±std" << "note\n";
  os << std::string(86, '-') << "\n";
  for (const ResultRow& row : rows) {
    char variance[32];
    std::snprintf(variance, sizeof(variance), "%.4f", row.stats.variance);
    std::string paper = "—";
    if (row.paper_mean >= 0.0) {
      char buffer[48];
      if (row.paper_std >= 0.0) {
        std::snprintf(buffer, sizeof(buffer), "%5.2f ± %5.2f", row.paper_mean,
                      row.paper_std);
      } else {
        std::snprintf(buffer, sizeof(buffer), "%5.2f", row.paper_mean);
      }
      paper = buffer;
    }
    os << std::left << std::setw(26) << row.method << std::setw(18)
       << format_mean_std(row.stats) << std::setw(12) << variance
       << std::setw(18) << paper << row.note << "\n";
  }
  os.flush();
}

void write_embedding_csv(const std::string& path,
                         const tensor::Tensor& embedding,
                         const std::vector<int>& labels,
                         const std::vector<int>& clients) {
  std::ofstream file(path);
  CALIBRE_CHECK_MSG(file.good(), "cannot open " << path);
  file << "x,y";
  if (!labels.empty()) file << ",label";
  if (!clients.empty()) file << ",client";
  file << "\n";
  for (std::int64_t r = 0; r < embedding.rows(); ++r) {
    file << embedding(r, 0) << "," << (embedding.cols() > 1 ? embedding(r, 1)
                                                            : 0.0f);
    if (!labels.empty()) file << "," << labels[static_cast<std::size_t>(r)];
    if (!clients.empty()) file << "," << clients[static_cast<std::size_t>(r)];
    file << "\n";
  }
}

void print_traffic_report(std::ostream& os, const comm::TrafficStats& totals,
                          const std::vector<RoundTraffic>& rounds) {
  const auto mb = [](std::uint64_t bytes) {
    return static_cast<double>(bytes) / 1e6;
  };
  const double saved =
      totals.logical_bytes == 0
          ? 0.0
          : 100.0 *
                static_cast<double>(totals.logical_bytes -
                                    totals.physical_bytes) /
                static_cast<double>(totals.logical_bytes);
  os << "traffic: " << totals.messages << " messages, " << std::fixed
     << std::setprecision(2) << mb(totals.logical_bytes) << " MB logical ("
     << mb(totals.broadcast_bytes) << " MB broadcast, "
     << mb(totals.collected_bytes) << " MB collected), "
     << mb(totals.physical_bytes) << " MB physical (" << std::setprecision(1)
     << saved << "% deduplicated), " << totals.broadcast_serializations
     << " broadcast + " << totals.collect_serializations
     << " collect serializations\n";
  if (rounds.empty()) {
    os.flush();
    return;
  }
  os << std::left << std::setw(7) << "round" << std::right << std::setw(14)
     << "bcast KB" << std::setw(14) << "collect KB" << std::setw(14)
     << "serializes" << std::setw(9) << "ratio" << "  " << std::left
     << "codec\n";
  os << std::string(75, '-') << "\n";
  for (const RoundTraffic& row : rounds) {
    os << std::left << std::setw(7) << row.round << std::right << std::fixed
       << std::setprecision(1) << std::setw(14)
       << static_cast<double>(row.bytes_broadcast) / 1e3 << std::setw(14)
       << static_cast<double>(row.bytes_collected) / 1e3 << std::setw(14)
       << row.serializations;
    // Compression ratio of the round's folded updates: encoded wire bytes
    // over their f32-layout bytes (< 1 means the codec saved traffic).
    if (row.update_bytes_f32 > 0) {
      os << std::setw(9) << std::setprecision(3)
         << static_cast<double>(row.update_bytes_wire) /
                static_cast<double>(row.update_bytes_f32)
         << std::setprecision(1);
    } else {
      os << std::setw(9) << "";
    }
    os << "  " << std::left << row.codec << "\n";
  }
  os.flush();
}

void print_quality_table(std::ostream& os, const std::string& title,
                         const std::vector<RepresentationQuality>& rows) {
  os << "\n== " << title << " ==\n";
  os << std::left << std::setw(26) << "method" << std::setw(14)
     << "silhouette" << std::setw(10) << "purity" << std::setw(10) << "nmi"
     << "tsne-kl\n";
  os << std::string(66, '-') << "\n";
  for (const RepresentationQuality& row : rows) {
    os << std::left << std::setw(26) << row.method << std::setw(14)
       << std::fixed << std::setprecision(4) << row.silhouette << std::setw(10)
       << row.purity << std::setw(10) << row.nmi << row.tsne_kl << "\n";
  }
  os.flush();
}

}  // namespace calibre::metrics
