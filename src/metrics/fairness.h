// Fairness metrics beyond plain variance (paper §III-A defines fairness as
// low accuracy variance; the fairness-in-FL literature uses several
// complementary views, all computed here over per-client accuracies).
#pragma once

#include <vector>

namespace calibre::metrics {

struct FairnessReport {
  double variance = 0.0;        // the paper's fairness metric
  double stddev = 0.0;
  double jain_index = 0.0;      // (sum x)^2 / (n * sum x^2), 1 = perfectly fair
  double gini = 0.0;            // 0 = perfectly fair, 1 = maximally unfair
  double worst_decile_mean = 0.0;  // mean accuracy of the worst 10% clients
  double best_decile_mean = 0.0;   // mean accuracy of the best 10% clients
  double range = 0.0;           // max - min
};

// Computes all fairness statistics over per-client accuracies. Requires a
// non-empty input; accuracies are expected in [0, 1].
FairnessReport compute_fairness(const std::vector<double>& accuracies);

}  // namespace calibre::metrics
