// A small dense float tensor.
//
// The library is 2-D centric: almost every object is a [rows, cols] matrix
// (a batch of feature vectors, a weight matrix, a similarity matrix). Tensor
// stores row-major contiguous floats and provides exactly the operations the
// autograd layer needs. Shapes are checked eagerly with CALIBRE_CHECK.
//
// Broadcasting: binary elementwise ops support full 2-D broadcasting, i.e.
// each dimension must either match or be 1 on one side ([N,D] op [1,D],
// [N,D] op [N,1], [N,D] op [1,1], and the symmetric cases).
//
// Storage: element data lives in a std::vector backed by the per-thread
// buffer pool (tensor/pool.h) — construction acquires a recycled buffer,
// destruction returns it to the calling thread's free lists. Callers that
// need a plain std::vector<float> (serde, checkpoints) use to_vector().
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/pool.h"
#include "tensor/rng.h"

namespace calibre::tensor {

// Pooled storage behind every Tensor. Still a std::vector instantiation, so
// iteration/indexing/data() work as before; only contexts requiring the
// exact type std::vector<float> need the to_vector() adapter.
using FloatStore = std::vector<float, pool::PoolAllocator>;

class Tensor {
 public:
  // Empty 0x0 tensor.
  Tensor() = default;

  // Zero-initialised tensor of the given shape.
  Tensor(std::int64_t rows, std::int64_t cols);

  // Tensor wrapping the given row-major data (data.size() == rows*cols).
  Tensor(std::int64_t rows, std::int64_t cols, std::vector<float> data);

  // --- factories -----------------------------------------------------------
  // Tensor with UNSPECIFIED contents — for op outputs that overwrite every
  // element before the tensor escapes. Never hand one to a caller without
  // filling it.
  static Tensor uninit(std::int64_t rows, std::int64_t cols);
  static Tensor zeros(std::int64_t rows, std::int64_t cols);
  static Tensor ones(std::int64_t rows, std::int64_t cols);
  static Tensor full(std::int64_t rows, std::int64_t cols, float value);
  static Tensor eye(std::int64_t n);
  // 1xN row vector from values.
  static Tensor row(std::initializer_list<float> values);
  static Tensor row(const std::vector<float>& values);
  // N(0, stddev^2) entries.
  static Tensor randn(std::int64_t rows, std::int64_t cols,
                      rng::Generator& gen, float stddev = 1.0f);
  // U[lo, hi) entries.
  static Tensor rand_uniform(std::int64_t rows, std::int64_t cols,
                             rng::Generator& gen, float lo, float hi);

  // --- shape / element access ----------------------------------------------
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& operator()(std::int64_t r, std::int64_t c);
  float operator()(std::int64_t r, std::int64_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  FloatStore& storage() { return data_; }
  const FloatStore& storage() const { return data_; }
  // Copy of the elements as a plain std::vector<float> (serde/checkpoints).
  std::vector<float> to_vector() const {
    return std::vector<float>(data_.begin(), data_.end());
  }

  // --- in-place helpers (used by the optimizer / gradient buffers and the
  // autograd backward accumulation path) ------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }
  // this += other (same shape).
  void add_(const Tensor& other);
  // this += alpha * other (same shape).
  void axpy_(float alpha, const Tensor& other);
  // this *= alpha.
  void scale_(float alpha);
  // this *= alpha (alias of scale_ matching the mul_scalar op name).
  void mul_scalar_(float alpha) { scale_(alpha); }
  // this *= other elementwise (same shape).
  void mul_(const Tensor& other);
  // this /= other elementwise (same shape).
  void div_(const Tensor& other);
  // this = max(this, 0) elementwise.
  void relu_();

  // --- reductions ----------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  // Squared Frobenius norm.
  float squared_norm() const;
  // Index of the max element in row r.
  std::int64_t argmax_row(std::int64_t r) const;

  // Copy of row r as a 1xC tensor.
  Tensor row_copy(std::int64_t r) const;

  std::string shape_string() const;

 private:
  struct UninitTag {};
  Tensor(std::int64_t rows, std::int64_t cols, UninitTag);

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  FloatStore data_;
};

// --- elementwise binary ops with 2-D broadcasting ---------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// Reduces `grad` (shaped like the broadcast output) back to `shape` of the
// operand by summing over broadcast dimensions. Core of broadcast backward.
Tensor reduce_to_shape(const Tensor& grad, std::int64_t rows,
                       std::int64_t cols);
// Move-aware variant: when no reduction is needed the storage passes through
// without a copy (used by backward closures that are done with `grad`).
Tensor reduce_to_shape(Tensor&& grad, std::int64_t rows, std::int64_t cols);

// --- scalar ops --------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// --- unary elementwise -------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor relu_mask(const Tensor& a);  // 1 where a > 0 else 0
Tensor tanh(const Tensor& a);
Tensor square(const Tensor& a);

// --- linear algebra ----------------------------------------------------------
// All products run on the blocked, thread-parallel kernels in
// tensor/kernels.h. The _nt/_tn variants fuse the transpose into the GEMM
// loop nest, so no transposed copy of the operand is ever materialized.
Tensor matmul(const Tensor& a, const Tensor& b);
// a [N,K] x b [M,K] -> [N,M]: A·Bᵀ without materializing Bᵀ.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
// a [K,N] x b [K,M] -> [N,M]: Aᵀ·B without materializing Aᵀ.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);

// --- reductions to tensors ---------------------------------------------------
Tensor row_sum(const Tensor& a);  // [N,D] -> [N,1]
Tensor col_sum(const Tensor& a);  // [N,D] -> [1,D]
Tensor sum_all(const Tensor& a);  // [N,D] -> [1,1]
Tensor row_max(const Tensor& a);  // [N,D] -> [N,1]

// --- structural ops -----------------------------------------------------------
// Stacks tensors with equal cols vertically.
Tensor concat_rows(const std::vector<Tensor>& parts);
// Stacks tensors with equal rows horizontally.
Tensor concat_cols(const std::vector<Tensor>& parts);
// Rows [begin, end).
Tensor slice_rows(const Tensor& a, std::int64_t begin, std::int64_t end);
// Cols [begin, end).
Tensor slice_cols(const Tensor& a, std::int64_t begin, std::int64_t end);
// Rows selected by index (with repetition allowed).
Tensor take_rows(const Tensor& a, const std::vector<int>& indices);
// out[r, 0] = a[r, idx[r]].
Tensor gather_cols(const Tensor& a, const std::vector<int>& idx);

// --- numerical helpers --------------------------------------------------------
// Row-wise softmax (numerically stable).
Tensor softmax_rows(const Tensor& a);
// Row-wise log-softmax (numerically stable).
Tensor log_softmax_rows(const Tensor& a);
// Row-wise L2 normalisation: each row divided by max(||row||, eps).
Tensor l2_normalize_rows(const Tensor& a, float eps = 1e-8f);
// Squared Euclidean distances: [N,D] x [K,D] -> [N,K].
Tensor pairwise_sq_dists(const Tensor& a, const Tensor& b);

// True when shapes match and all entries are within atol.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace calibre::tensor
