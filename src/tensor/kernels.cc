#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/thread_pool.h"

// The vector type below is TU-internal and every use is inlined into the
// target_clones dispatch functions, so the ABI warning about passing
// 64-byte vectors without AVX-512 enabled is noise here.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace calibre::tensor::kernels {
namespace {

// 16-float SIMD lane group. GCC legalizes it per target: one ZMM on
// AVX-512, two YMM on AVX2, four XMM on baseline SSE2 — so one microkernel
// body serves every clone. aligned(4) permits unaligned loads/stores;
// may_alias keeps float* <-> vf* casts defined.
typedef float vf __attribute__((vector_size(64), aligned(4), may_alias));

constexpr std::int64_t kVecWidth = 16;  // floats per vf

// Output register tile: 8 rows x 32 columns = 16 vf accumulators. On
// AVX-512 that is 16 ZMM registers of C held across the whole K sweep, the
// sweet spot measured on this microkernel (4x over streaming C through
// memory every k step). kColTile is two vf lanes so the B strip load is
// amortised over 8 rows.
constexpr std::int64_t kRowTile = 8;
constexpr std::int64_t kColTile = 32;

// Rows per parallel_for chunk, kept a multiple of kRowTile so threads never
// split a microkernel tile (which keeps results independent of thread
// count).
constexpr std::int64_t kRowGrain = 32;

common::ThreadPool& kernel_pool() {
  static common::ThreadPool pool(common::ThreadPool::default_parallelism());
  return pool;
}

// Partitions [0, n) output rows across the kernel pool when the kernel is
// big enough to amortise dispatch; runs inline otherwise.
template <typename Fn>
void for_each_row_chunk(std::int64_t n, std::int64_t flops, const Fn& fn) {
  const std::int64_t threshold = parallel_flop_threshold();
  if (threshold <= 0 || flops < threshold) {
    fn(0, n);
    return;
  }
  kernel_pool().parallel_for(0, n, kRowGrain,
                             [&fn](std::int64_t begin, std::int64_t end) {
                               fn(begin, end);
                             });
}

inline vf splat(float x) { return vf{} + x; }
inline const vf* vload(const float* p) { return reinterpret_cast<const vf*>(p); }
inline vf* vstore(float* p) { return reinterpret_cast<vf*>(p); }

// The plain product and the fused-transpose product A^T*B share one loop
// nest; they differ only in how the A scalar for (row i, step kk) is
// addressed: stride-1 along a row, or stride-n down a column.
struct NoTransA {
  std::int64_t k;  // row length of A
  std::int64_t index(std::int64_t i, std::int64_t kk) const {
    return i * k + kk;
  }
};
struct TransA {
  std::int64_t n;  // row length of A (A is [k, n], read as columns)
  std::int64_t index(std::int64_t i, std::int64_t kk) const {
    return kk * n + i;
  }
};

// One register tile: RT output rows x (JV * 16) output columns, sweeping
// the full K extent with the C tile held in vf accumulators and written
// back once. `bs` points at the tile's first B column (row stride ldb).
template <int RT, int JV, typename AIndex>
inline void microtile(std::int64_t i, std::int64_t k, const float* a,
                      AIndex ai, const float* bs, std::int64_t ldb, float* c,
                      std::int64_t ldc, std::int64_t j0) {
  vf acc[RT][JV] = {};
  for (std::int64_t kk = 0; kk < k; ++kk) {
    vf bv[JV];
    for (int v = 0; v < JV; ++v) {
      bv[v] = *vload(bs + kk * ldb + kVecWidth * v);
    }
    for (int r = 0; r < RT; ++r) {
      const vf av = splat(a[ai.index(i + r, kk)]);
      for (int v = 0; v < JV; ++v) acc[r][v] += av * bv[v];
    }
  }
  for (int r = 0; r < RT; ++r) {
    for (int v = 0; v < JV; ++v) {
      *vstore(c + (i + r) * ldc + j0 + kVecWidth * v) += acc[r][v];
    }
  }
}

// Macro kernel: rows [i0, i1) x columns [cj, cj + jw) of C, reading B
// columns [bj, bj + jw) with row stride ldb. Full 32-wide tiles, then a
// 16-wide strip, then a scalar streaming tail for the last jw % 16 columns.
template <typename AIndex>
inline void gemm_block(std::int64_t i0, std::int64_t i1, std::int64_t k,
                       const float* a, AIndex ai, const float* b,
                       std::int64_t ldb, std::int64_t bj, float* c,
                       std::int64_t ldc, std::int64_t cj, std::int64_t jw) {
  std::int64_t j = 0;
  for (; j + kColTile <= jw; j += kColTile) {
    const float* bs = b + bj + j;
    std::int64_t i = i0;
    for (; i + kRowTile <= i1; i += kRowTile) {
      microtile<kRowTile, 2>(i, k, a, ai, bs, ldb, c, ldc, cj + j);
    }
    for (; i < i1; ++i) microtile<1, 2>(i, k, a, ai, bs, ldb, c, ldc, cj + j);
  }
  for (; j + kVecWidth <= jw; j += kVecWidth) {
    const float* bs = b + bj + j;
    std::int64_t i = i0;
    for (; i + kRowTile <= i1; i += kRowTile) {
      microtile<kRowTile, 1>(i, k, a, ai, bs, ldb, c, ldc, cj + j);
    }
    for (; i < i1; ++i) microtile<1, 1>(i, k, a, ai, bs, ldb, c, ldc, cj + j);
  }
  if (j < jw) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * ldc + cj;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = a[ai.index(i, kk)];
        const float* brow = b + kk * ldb + bj;
        for (std::int64_t jj = j; jj < jw; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

// Per-chunk entry points. target_clones compiles each body (with the
// templates above flattened in) for AVX-512, AVX2 and baseline x86-64; the
// loader picks the widest clone the CPU supports, so the binary stays
// portable while the hot loops use the full vector width of the machine.
// ThreadSanitizer cannot coexist with the ifunc resolvers target_clones
// emits (they run during relocation, before the TSan runtime initializes,
// and crash at startup), so sanitized builds compile the default ISA only —
// they are correctness artifacts, not perf artifacts.
#if defined(__SANITIZE_THREAD__)
#define CALIBRE_KERNEL_CLONES __attribute__((flatten))
#else
#define CALIBRE_KERNEL_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", \
                               "default"), flatten))
#endif

CALIBRE_KERNEL_CLONES
void gemm_chunk_nn(std::int64_t i0, std::int64_t i1, std::int64_t k,
                   std::int64_t m, const float* a, const float* b, float* c) {
  gemm_block(i0, i1, k, a, NoTransA{k}, b, m, 0, c, m, 0, m);
}

CALIBRE_KERNEL_CLONES
void gemm_chunk_tn(std::int64_t i0, std::int64_t i1, std::int64_t n,
                   std::int64_t k, std::int64_t m, const float* a,
                   const float* b, float* c) {
  gemm_block(i0, i1, k, a, TransA{n}, b, m, 0, c, m, 0, m);
}

// A*B^T: both operands contract along contiguous rows, so the kernel packs
// a kColTile-wide panel of B^T at a time (k x 32 floats, L1/L2 resident)
// and reuses the plain microkernel on the packed panel. Packing is O(k*m)
// against O(rows*k*m) compute — amortised across the chunk's rows.
CALIBRE_KERNEL_CLONES
void gemm_chunk_nt(std::int64_t i0, std::int64_t i1, std::int64_t k,
                   std::int64_t m, const float* a, const float* b, float* c) {
  const std::int64_t panel = std::min(kColTile, m);
  std::vector<float> packed(static_cast<std::size_t>(k * panel));
  for (std::int64_t j0 = 0; j0 < m; j0 += kColTile) {
    const std::int64_t jw = std::min(kColTile, m - j0);
    for (std::int64_t jj = 0; jj < jw; ++jj) {
      const float* brow = b + (j0 + jj) * k;
      for (std::int64_t kk = 0; kk < k; ++kk) packed[kk * jw + jj] = brow[kk];
    }
    gemm_block(i0, i1, k, a, NoTransA{k}, packed.data(), jw, 0, c, m, j0, jw);
  }
}

CALIBRE_KERNEL_CLONES
void row_sq_norms_impl(std::int64_t n, std::int64_t k, const float* a,
                       float* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = a + i * k;
    std::int64_t j = 0;
    if (k >= kVecWidth) {
      vf acc = {};
      for (; j + kVecWidth <= k; j += kVecWidth) {
        const vf v = *vload(row + j);
        acc += v * v;
      }
      float total = 0.0f;
      for (std::int64_t lane = 0; lane < kVecWidth; ++lane) total += acc[lane];
      out[i] += total;
    }
    float tail = 0.0f;
    for (; j < k; ++j) tail += row[j] * row[j];
    out[i] += tail;
  }
}

}  // namespace

namespace {

// Runtime override of the parallelism threshold (0 = none; see the setter).
// The bench harness uses it to time the same kernels serial vs parallel in
// one process, which the env-var path (read once into a static) cannot do.
std::atomic<std::int64_t>& threshold_override() {
  static std::atomic<std::int64_t> value{0};
  return value;
}

}  // namespace

void set_parallel_threshold_override(std::int64_t flops) {
  threshold_override().store(flops, std::memory_order_relaxed);
}

std::int64_t parallel_flop_threshold() {
  const std::int64_t forced =
      threshold_override().load(std::memory_order_relaxed);
  if (forced < 0) return -1;  // <= 0 disables parallelism (see caller)
  if (forced > 0) return forced;
  // ~2 MFLOP: a 128x128x64 product. Below this, thread dispatch costs more
  // than the arithmetic saved; per-client batches in the FL loop sit well
  // under it and stay serial.
  static const std::int64_t threshold = []() -> std::int64_t {
    const int env_value = env::get_int("CALIBRE_KERNEL_PAR_FLOPS", 0);
    if (env_value != 0) return env_value;
    return std::int64_t{1} << 21;
  }();
  return threshold;
}

void gemm(std::int64_t n, std::int64_t k, std::int64_t m, const float* a,
          const float* b, float* c) {
  for_each_row_chunk(n, 2 * n * k * m,
                     [&](std::int64_t begin, std::int64_t end) {
                       gemm_chunk_nn(begin, end, k, m, a, b, c);
                     });
}

void gemm_tn(std::int64_t n, std::int64_t k, std::int64_t m, const float* a,
             const float* b, float* c) {
  for_each_row_chunk(n, 2 * n * k * m,
                     [&](std::int64_t begin, std::int64_t end) {
                       gemm_chunk_tn(begin, end, n, k, m, a, b, c);
                     });
}

void gemm_nt(std::int64_t n, std::int64_t k, std::int64_t m, const float* a,
             const float* b, float* c) {
  for_each_row_chunk(n, 2 * n * k * m,
                     [&](std::int64_t begin, std::int64_t end) {
                       gemm_chunk_nt(begin, end, k, m, a, b, c);
                     });
}

void row_sq_norms(std::int64_t n, std::int64_t k, const float* a, float* out) {
  row_sq_norms_impl(n, k, a, out);
}

}  // namespace calibre::tensor::kernels

// --- Tensor-level wrappers (declared in tensor.h) ------------------------------

namespace calibre::tensor {

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CALIBRE_CHECK_EQ(a.cols(), b.cols(),
                   "matmul_nt " << a.shape_string() << " x "
                                << b.shape_string() << "^T");
  Tensor out(a.rows(), b.rows());
  kernels::gemm_nt(a.rows(), a.cols(), b.rows(), a.data(), b.data(),
                   out.data());
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CALIBRE_CHECK_EQ(a.rows(), b.rows(),
                   "matmul_tn " << a.shape_string() << "^T x "
                                << b.shape_string());
  Tensor out(a.cols(), b.cols());
  kernels::gemm_tn(a.cols(), a.rows(), b.cols(), a.data(), b.data(),
                   out.data());
  return out;
}

Tensor pairwise_sq_dists(const Tensor& a, const Tensor& b) {
  CALIBRE_CHECK_EQ(a.cols(), b.cols(), "pairwise_sq_dists dim mismatch");
  const std::int64_t n = a.rows();
  const std::int64_t m = b.rows();
  const std::int64_t k = a.cols();
  // ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y — one GEMM instead of an O(n*m*k)
  // scalar loop. Float cancellation can leave tiny negatives where the true
  // distance is ~0; clamp, since callers treat the result as a distance.
  std::vector<float> a_sq(static_cast<std::size_t>(n), 0.0f);
  std::vector<float> b_sq(static_cast<std::size_t>(m), 0.0f);
  kernels::row_sq_norms(n, k, a.data(), a_sq.data());
  kernels::row_sq_norms(m, k, b.data(), b_sq.data());
  Tensor out(n, m);
  kernels::gemm_nt(n, k, m, a.data(), b.data(), out.data());
  float* od = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = od + i * m;
    const float ai = a_sq[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < m; ++j) {
      row[j] = std::max(ai + b_sq[static_cast<std::size_t>(j)] - 2.0f * row[j],
                        0.0f);
    }
  }
  return out;
}

}  // namespace calibre::tensor
