#include "tensor/pool.h"

#include <array>
#include <atomic>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/env.h"

namespace calibre::tensor::pool {
namespace {

constexpr std::size_t kAlignment = 64;  // covers every SIMD width we emit

// Bucket caps: free lists never hold more than kMaxPerBucket buffers, and a
// thread never parks more than kMaxCachedBytes in total. Beyond either cap a
// released buffer is freed instead (Stats::drops).
constexpr std::size_t kMaxPerBucket = 64;
constexpr std::uint64_t kMaxCachedBytes = std::uint64_t{1} << 28;  // 256 MiB

// Bucket index of a request: smallest power-of-two class >= n, floored at
// kMinBucketFloats. Index 0 holds kMinBucketFloats-float buffers.
std::size_t bucket_index(std::size_t n) {
  std::size_t capacity = kMinBucketFloats;
  std::size_t index = 0;
  while (capacity < n) {
    capacity <<= 1;
    ++index;
  }
  return index;
}

std::size_t bucket_floats(std::size_t index) {
  return kMinBucketFloats << index;
}

constexpr std::size_t kNumBuckets = 24;  // 8 .. 8*2^23 = 64Mi floats

float* raw_alloc(std::size_t floats) {
  return static_cast<float*>(
      ::operator new(floats * sizeof(float), std::align_val_t{kAlignment}));
}

void raw_free(float* p) noexcept {
  ::operator delete(p, std::align_val_t{kAlignment});
}

struct ThreadCache {
  std::array<std::vector<float*>, kNumBuckets> free_lists;
  Stats stats;

  ~ThreadCache() {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      for (float* p : free_lists[b]) raw_free(p);
      free_lists[b].clear();
    }
  }
};

// The cache is reached through a raw thread_local pointer that the owning
// wrapper nulls in its destructor, so releases that happen during thread
// teardown (after the cache is gone) degrade to plain frees instead of
// touching a destroyed object. acquire() constructs on first use.
thread_local ThreadCache* tls_cache = nullptr;

struct CacheOwner {
  ThreadCache cache;
  CacheOwner() { tls_cache = &cache; }
  ~CacheOwner() { tls_cache = nullptr; }
};

ThreadCache& cache_for_thread() {
  static thread_local CacheOwner owner;
  return owner.cache;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{
      env::get_flag("CALIBRE_TENSOR_POOL", /*fallback=*/true)};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

Stats thread_stats() { return cache_for_thread().stats; }

void reset_thread_stats() {
  Stats& stats = cache_for_thread().stats;
  stats.hits = stats.misses = stats.miss_bytes = stats.releases =
      stats.drops = 0;
}

std::int64_t outstanding() { return cache_for_thread().stats.outstanding; }

void reset() {
  ThreadCache& cache = cache_for_thread();
  CALIBRE_CHECK_MSG(cache.stats.outstanding == 0,
                    "tensor pool reset() with "
                        << cache.stats.outstanding
                        << " buffers still checked out on this thread — "
                           "destroy all tensors/graphs before resetting");
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    for (float* p : cache.free_lists[b]) raw_free(p);
    cache.free_lists[b].clear();
  }
  cache.stats.cached_bytes = 0;
}

float* acquire(std::size_t n) {
  if (n > kMaxBucketFloats) return raw_alloc(n);  // bypass: not pool traffic
  ThreadCache& cache = cache_for_thread();
  const std::size_t index = bucket_index(n);
  ++cache.stats.outstanding;
  if (enabled()) {
    std::vector<float*>& list = cache.free_lists[index];
    if (!list.empty()) {
      float* p = list.back();
      list.pop_back();
      cache.stats.cached_bytes -= bucket_floats(index) * sizeof(float);
      ++cache.stats.hits;
      return p;
    }
    ++cache.stats.misses;
    cache.stats.miss_bytes += bucket_floats(index) * sizeof(float);
    // Allocate the full bucket capacity so this buffer can later serve any
    // request of the same class.
    return raw_alloc(bucket_floats(index));
  }
  ++cache.stats.misses;
  cache.stats.miss_bytes += bucket_floats(index) * sizeof(float);
  // Disabled: restore the seed's storage behavior — every buffer is a fresh
  // zeroed allocation (std::vector<float> value-init), the baseline the
  // train_step bench measures and a deterministic safety net for debugging
  // suspected stale-read bugs.
  float* p = raw_alloc(bucket_floats(index));
  std::memset(p, 0, n * sizeof(float));
  return p;
}

void release(float* p, std::size_t n) noexcept {
  if (p == nullptr) return;
  if (n > kMaxBucketFloats) {
    raw_free(p);
    return;
  }
  ThreadCache* cache = tls_cache;  // null during thread/static teardown
  if (cache != nullptr) --cache->stats.outstanding;
  const std::size_t index = bucket_index(n);
  const std::uint64_t bytes = bucket_floats(index) * sizeof(float);
  if (cache == nullptr || !enabled() ||
      cache->free_lists[index].size() >= kMaxPerBucket ||
      cache->stats.cached_bytes + bytes > kMaxCachedBytes) {
    if (cache != nullptr) ++cache->stats.drops;
    raw_free(p);
    return;
  }
  cache->free_lists[index].push_back(p);
  cache->stats.cached_bytes += bytes;
  ++cache->stats.releases;
}

}  // namespace calibre::tensor::pool
