// Deterministic random number generation.
//
// All randomness in the library flows through rng::Generator so that every
// experiment is reproducible bit-for-bit from its seed. The generator is
// xoshiro256** seeded via SplitMix64, which gives high-quality streams from
// arbitrary 64-bit seeds and lets us derive independent sub-streams (one per
// client, one per dataset, ...) with Generator::fork().
#pragma once

#include <cstdint>
#include <vector>

namespace calibre::rng {

class Generator {
 public:
  // Seeds the four xoshiro256** state words from `seed` via SplitMix64.
  explicit Generator(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Standard normal via Box–Muller (cached second value).
  double normal();

  // Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  // Fisher–Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<int> sample_without_replacement(int n, int k);

  // Samples from a categorical distribution given (unnormalised) weights.
  int categorical(const std::vector<double>& weights);

  // Samples a Dirichlet vector with concentration `alpha` for each of `k`
  // components (via Gamma(alpha, 1) draws, Marsaglia–Tsang).
  std::vector<double> dirichlet(double alpha, int k);

  // Derives an independent generator; deterministic given this generator's
  // current state. Useful for giving each client its own stream.
  Generator fork();

 private:
  double gamma(double shape);

  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace calibre::rng
