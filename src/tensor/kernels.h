// Tensor kernel layer: cache-blocked, vectorization-friendly SGEMM (plus
// fused-transpose variants) and a GEMM-based pairwise squared distance,
// with optional row-partitioned multithreading.
//
// Every tensor primitive on a training hot path funnels through this file:
// encoder forward/backward (matmul + its backward products), NT-Xent's B×B
// similarity matrix, and the KMeans / prototype / divergence / t-SNE
// distance computations. The kernels operate on raw row-major contiguous
// storage; the Tensor-level wrappers (tensor::matmul, tensor::matmul_nt,
// tensor::matmul_tn, tensor::pairwise_sq_dists) validate shapes and
// allocate outputs.
//
// Blocking scheme (see DESIGN.md "Kernel layer"):
//  * gemm / gemm_tn: the output is walked in register tiles of
//    kRowTile x kColTile (8 x 32); for each tile the full K dimension is
//    swept with the C tile held in SIMD accumulator registers and written
//    back exactly once, while B streams 32 contiguous floats per step and A
//    contributes one broadcast scalar per row. The microkernel is written
//    with GCC vector extensions and compiled via target_clones for
//    AVX-512 / AVX2 / baseline x86-64 — the loader picks the widest clone
//    the CPU supports, so the binary stays portable.
//  * gemm_nt: both operands contract along contiguous rows, so the kernel
//    packs one kColTile-wide panel of B^T at a time (k x 32 floats,
//    cache-resident; O(k*m) packing against O(n*k*m) compute) and reuses
//    the plain microkernel on the packed panel.
//  * pairwise_sq_dists: the ||a||^2 + ||b||^2 - 2 a.b^T decomposition; the
//    cross term is a gemm_nt, the norms are single vectorized passes, and
//    the combine clamps tiny negative float residue to zero.
//
// Parallelism: kernels whose flop count exceeds parallel_flop_threshold()
// are row-partitioned over a process-wide ThreadPool via parallel_for.
// Partitioning is by output row, so results are bitwise identical for any
// thread count. Small per-client batches stay on the calling thread and pay
// no dispatch overhead.
//
// Determinism: every run on the same machine produces identical results
// (the clone choice and the accumulation order are fixed per CPU). Across
// machines with different vector widths the accumulation order — and hence
// float rounding — may differ, like any vectorized BLAS.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace calibre::tensor::kernels {

// Flop count (2*n*k*m) above which a GEMM is partitioned across the kernel
// thread pool. Overridable through the CALIBRE_KERNEL_PAR_FLOPS environment
// variable; values <= 0 disable kernel parallelism entirely.
std::int64_t parallel_flop_threshold();

// Runtime override of the threshold (takes precedence over the env var):
// 0 restores the default, negative forces serial execution, positive sets
// the threshold directly. Used by the bench harness to time the same kernel
// serial and parallel within one process.
void set_parallel_threshold_override(std::int64_t flops);

// Raw row-major kernels. Output `c` accumulates: callers must pass
// zero-initialised (or partial-result) storage. All pointers reference
// dense row-major buffers; `c` must not alias `a` or `b`.

// c[n,m] += a[n,k] * b[k,m]
void gemm(std::int64_t n, std::int64_t k, std::int64_t m, const float* a,
          const float* b, float* c);

// c[n,m] += a[n,k] * b[m,k]^T  (fused transpose: b stays row-major [m,k])
void gemm_nt(std::int64_t n, std::int64_t k, std::int64_t m, const float* a,
             const float* b, float* c);

// c[n,m] += a[k,n]^T * b[k,m]  (fused transpose: a stays row-major [k,n])
void gemm_tn(std::int64_t n, std::int64_t k, std::int64_t m, const float* a,
             const float* b, float* c);

// out[i] += sum_j a[i,j]^2 for each of the n rows of a[n,k].
void row_sq_norms(std::int64_t n, std::int64_t k, const float* a, float* out);

// --- naive references --------------------------------------------------------
// The seed's scalar implementations, kept verbatim as the golden reference
// for the kernel-parity tests and as the baseline the bench suite reports
// speedups against. Not for production call sites.
Tensor matmul_naive(const Tensor& a, const Tensor& b);
Tensor pairwise_sq_dists_naive(const Tensor& a, const Tensor& b);

}  // namespace calibre::tensor::kernels
