#include "tensor/rng.h"

#include <cmath>

#include "common/check.h"

namespace calibre::rng {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Generator::Generator(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Generator::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Generator::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Generator::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Generator::uniform_index(std::uint64_t n) {
  CALIBRE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Generator::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Generator::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<int> Generator::sample_without_replacement(int n, int k) {
  CALIBRE_CHECK_MSG(k >= 0 && k <= n, "k=" << k << " n=" << n);
  std::vector<int> indices(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) indices[static_cast<std::size_t>(i)] = i;
  // Partial Fisher–Yates: only the first k positions need shuffling.
  for (int i = 0; i < k; ++i) {
    const int j =
        i + static_cast<int>(uniform_index(static_cast<std::uint64_t>(n - i)));
    std::swap(indices[static_cast<std::size_t>(i)],
              indices[static_cast<std::size_t>(j)]);
  }
  indices.resize(static_cast<std::size_t>(k));
  return indices;
}

int Generator::categorical(const std::vector<double>& weights) {
  CALIBRE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CALIBRE_CHECK_MSG(w >= 0.0, "negative categorical weight");
    total += w;
  }
  CALIBRE_CHECK_MSG(total > 0.0, "categorical weights sum to zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

double Generator::gamma(double shape) {
  CALIBRE_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Generator::dirichlet(double alpha, int k) {
  CALIBRE_CHECK(k > 0);
  std::vector<double> draw(static_cast<std::size_t>(k));
  double total = 0.0;
  for (auto& value : draw) {
    value = gamma(alpha);
    total += value;
  }
  if (total <= 0.0) {
    // Degenerate draw (possible for tiny alpha): fall back to one-hot.
    const auto hot = uniform_index(static_cast<std::uint64_t>(k));
    for (std::size_t i = 0; i < draw.size(); ++i) {
      draw[i] = (i == hot) ? 1.0 : 0.0;
    }
    return draw;
  }
  for (auto& value : draw) value /= total;
  return draw;
}

Generator Generator::fork() { return Generator(next_u64()); }

}  // namespace calibre::rng
