// Pooled tensor storage: a per-thread, size-bucketed free-list cache of the
// float buffers backing every Tensor.
//
// Motivation (see DESIGN.md "Tensor storage pool"): after the kernel layer
// made the GEMMs fast, a training step became dominated by allocation churn —
// every autograd op allocates a fresh output tensor plus backward gradients,
// so one SimCLR local step performs hundreds of heap allocations and keeps
// re-touching cold memory. The pool recycles those buffers: step t+1's
// forward/backward graph runs almost entirely in step t's (cache-warm)
// storage.
//
// Design:
//  * Storage unit: raw 64-byte-aligned float buffers sized to power-of-two
//    "bucket classes" (min kMinBucketFloats). A request of n floats is served
//    by a buffer of capacity round_up_pow2(n), so any cached buffer of the
//    matching class can satisfy any request of that class.
//  * Ownership: strictly per-thread. Each thread owns an independent
//    ThreadCache; acquisition and release touch only thread-local state (no
//    locks, no atomics on the hot path). A buffer released on a different
//    thread than it was acquired on simply migrates to the releasing
//    thread's cache — safe because buffers are plain operator-new memory.
//  * Lifetime: Tensor storage is std::vector<float, PoolAllocator>, so
//    acquisition happens in the Tensor constructor and recycling in the
//    destructor, with zero API change for callers. Vector moves steal the
//    buffer as before (the allocator is stateless). Element construction is
//    default-init (a no-op for float): buffers come back with unspecified
//    contents and every constructor that promises zeros fills explicitly,
//    which is what makes recycling bitwise-deterministic.
//  * reset() releases a thread's cached buffers back to the OS. It is
//    CALIBRE_CHECK-rejected while any pooled buffer is still checked out on
//    the calling thread (a live tensor/graph): recycling between optimizer
//    steps is automatic via the free lists and needs no reset; reset exists
//    to bound memory between workloads (e.g. a Runner worker between
//    clients), never mid-graph.
//  * Kill-switch: CALIBRE_TENSOR_POOL=0 (env, read once) or set_enabled()
//    disables caching and restores the seed's storage behavior: every
//    acquisition is a fresh ZEROED allocation (std::vector value-init) and
//    every release goes straight to operator delete. That is both the
//    baseline the train_step bench measures against and a deterministic
//    debugging mode — a buffer an op fails to overwrite reads as zeros, not
//    recycled garbage. Numerics are bitwise identical either way (every op
//    fully writes its output before it escapes).
//  * Caps: per-bucket and per-thread cached-byte limits bound the cache;
//    beyond them released buffers are freed (counted in Stats::drops).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace calibre::tensor::pool {

// Smallest bucket, in floats. Requests below this round up to it.
inline constexpr std::size_t kMinBucketFloats = 8;

// Largest pooled request, in floats (256 MiB). Bigger buffers bypass the
// cache entirely (plain new/delete) and are not counted as pool traffic.
inline constexpr std::size_t kMaxBucketFloats = std::size_t{1} << 26;

// Per-thread allocation counters. `misses` is the number of real heap
// allocations — the "allocations" the train_step bench reports per step.
struct Stats {
  std::uint64_t hits = 0;        // servings from the free lists
  std::uint64_t misses = 0;      // servings from operator new
  std::uint64_t miss_bytes = 0;  // bytes of those operator-new servings
  std::uint64_t releases = 0;    // buffers parked back into the free lists
  std::uint64_t drops = 0;       // buffers freed because a cap was exceeded
  std::uint64_t cached_bytes = 0;  // bytes currently parked on this thread
  std::int64_t outstanding = 0;    // buffers checked out on this thread
};

// Process-wide switch (initialised from CALIBRE_TENSOR_POOL, default on).
bool enabled();
void set_enabled(bool on);

// Counters of the calling thread's cache.
Stats thread_stats();
// Zeroes the calling thread's hit/miss/release/drop counters
// (cached_bytes/outstanding describe live state and are preserved).
void reset_thread_stats();

// Buffers checked out on the calling thread (acquired minus released here;
// can go negative on a thread that releases buffers acquired elsewhere).
std::int64_t outstanding();

// Releases every buffer cached by the calling thread back to the OS.
// CALIBRE_CHECK-fails when outstanding() != 0 — i.e. while any tensor or
// autograd graph built on this thread is still alive.
void reset();

// Raw buffer interface (the allocator below is the only production caller).
// acquire returns at least round_up_pow2(n) floats of 64-byte-aligned
// storage with unspecified contents; release must receive the same n.
float* acquire(std::size_t n);
void release(float* p, std::size_t n) noexcept;

// std::vector allocator backed by the thread-local pool. Element
// construction is default-init (no-op for float), so vector(n)/resize(n)
// do NOT zero — Tensor fills explicitly where zeros are promised.
struct PoolAllocator {
  using value_type = float;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::true_type;

  // Containers rebind their allocator to the element type; this allocator
  // only ever serves float (FloatStore), so every rebind is the identity.
  template <typename U>
  struct rebind {
    static_assert(std::is_same_v<U, float>,
                  "PoolAllocator only allocates float storage");
    using other = PoolAllocator;
  };

  PoolAllocator() = default;

  float* allocate(std::size_t n) { return acquire(n); }
  void deallocate(float* p, std::size_t n) noexcept { release(p, n); }

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(static_cast<Args&&>(args)...);
  }
  template <typename U>
  void construct(U* p) {
    ::new (static_cast<void*>(p)) U;  // default-init: no-op for float
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
  friend bool operator!=(const PoolAllocator&, const PoolAllocator&) {
    return false;
  }
};

}  // namespace calibre::tensor::pool
