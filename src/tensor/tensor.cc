#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "tensor/kernels.h"

namespace calibre::tensor {

// The pool allocator default-initialises elements (no memset), so the
// uninit path is a pure buffer acquisition; the public shape constructor
// fills explicitly to keep its zero-init contract.
Tensor::Tensor(std::int64_t rows, std::int64_t cols, UninitTag)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols)) {
  CALIBRE_CHECK(rows >= 0 && cols >= 0);
}

Tensor::Tensor(std::int64_t rows, std::int64_t cols)
    : Tensor(rows, cols, UninitTag{}) {
  fill(0.0f);
}

Tensor::Tensor(std::int64_t rows, std::int64_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
  CALIBRE_CHECK_MSG(
      static_cast<std::int64_t>(data_.size()) == rows * cols,
      "data size " << data_.size() << " != " << rows << "x" << cols);
}

Tensor Tensor::uninit(std::int64_t rows, std::int64_t cols) {
  return Tensor(rows, cols, UninitTag{});
}

Tensor Tensor::zeros(std::int64_t rows, std::int64_t cols) {
  return Tensor(rows, cols);
}

Tensor Tensor::ones(std::int64_t rows, std::int64_t cols) {
  return full(rows, cols, 1.0f);
}

Tensor Tensor::full(std::int64_t rows, std::int64_t cols, float value) {
  Tensor t = uninit(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::eye(std::int64_t n) {
  Tensor t(n, n);
  for (std::int64_t i = 0; i < n; ++i) t(i, i) = 1.0f;
  return t;
}

Tensor Tensor::row(std::initializer_list<float> values) {
  return Tensor(1, static_cast<std::int64_t>(values.size()),
                std::vector<float>(values));
}

Tensor Tensor::row(const std::vector<float>& values) {
  return Tensor(1, static_cast<std::int64_t>(values.size()), values);
}

Tensor Tensor::randn(std::int64_t rows, std::int64_t cols,
                     rng::Generator& gen, float stddev) {
  Tensor t = uninit(rows, cols);
  for (auto& value : t.storage()) {
    value = static_cast<float>(gen.normal() * stddev);
  }
  return t;
}

Tensor Tensor::rand_uniform(std::int64_t rows, std::int64_t cols,
                            rng::Generator& gen, float lo, float hi) {
  Tensor t = uninit(rows, cols);
  for (auto& value : t.storage()) {
    value = static_cast<float>(gen.uniform(lo, hi));
  }
  return t;
}

float& Tensor::operator()(std::int64_t r, std::int64_t c) {
  CALIBRE_CHECK_MSG(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                    "index (" << r << "," << c << ") in " << shape_string());
  return data_[static_cast<std::size_t>(r * cols_ + c)];
}

float Tensor::operator()(std::int64_t r, std::int64_t c) const {
  CALIBRE_CHECK_MSG(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                    "index (" << r << "," << c << ") in " << shape_string());
  return data_[static_cast<std::size_t>(r * cols_ + c)];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) {
  CALIBRE_CHECK_MSG(same_shape(other), shape_string() << " += "
                                                      << other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::axpy_(float alpha, const Tensor& other) {
  CALIBRE_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::scale_(float alpha) {
  for (auto& value : data_) value *= alpha;
}

void Tensor::mul_(const Tensor& other) {
  CALIBRE_CHECK_MSG(same_shape(other), shape_string() << " *= "
                                                      << other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Tensor::div_(const Tensor& other) {
  CALIBRE_CHECK_MSG(same_shape(other), shape_string() << " /= "
                                                      << other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] /= other.data_[i];
}

void Tensor::relu_() {
  for (auto& value : data_) value = value > 0.0f ? value : 0.0f;
}

float Tensor::sum() const {
  double total = 0.0;
  for (float value : data_) total += value;
  return static_cast<float>(total);
}

float Tensor::mean() const {
  CALIBRE_CHECK(size() > 0);
  return sum() / static_cast<float>(size());
}

float Tensor::min() const {
  CALIBRE_CHECK(size() > 0);
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  CALIBRE_CHECK(size() > 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::squared_norm() const {
  double total = 0.0;
  for (float value : data_) total += static_cast<double>(value) * value;
  return static_cast<float>(total);
}

std::int64_t Tensor::argmax_row(std::int64_t r) const {
  CALIBRE_CHECK(r >= 0 && r < rows_ && cols_ > 0);
  const float* begin = data() + r * cols_;
  return std::max_element(begin, begin + cols_) - begin;
}

Tensor Tensor::row_copy(std::int64_t r) const {
  CALIBRE_CHECK(r >= 0 && r < rows_);
  Tensor out = uninit(1, cols_);
  std::copy(data() + r * cols_, data() + (r + 1) * cols_, out.data());
  return out;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "[" << rows_ << "," << cols_ << "]";
  return os.str();
}

namespace {

// Computes the broadcast output shape of a binary op, checking compatibility.
void broadcast_shape(const Tensor& a, const Tensor& b, std::int64_t& rows,
                     std::int64_t& cols) {
  auto merge = [](std::int64_t x, std::int64_t y, const char* which) {
    if (x == y) return x;
    if (x == 1) return y;
    if (y == 1) return x;
    CALIBRE_CHECK_MSG(false, "broadcast mismatch in " << which << ": " << x
                                                      << " vs " << y);
    return std::int64_t{0};
  };
  rows = merge(a.rows(), b.rows(), "rows");
  cols = merge(a.cols(), b.cols(), "cols");
}

template <typename Fn>
Tensor broadcast_binary(const Tensor& a, const Tensor& b, Fn fn) {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  broadcast_shape(a, b, rows, cols);
  Tensor out = Tensor::uninit(rows, cols);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  // Same-shape fast path: one branch-free pass over raw contiguous storage.
  if (a.same_shape(b)) {
    const std::int64_t size = out.size();
    for (std::int64_t i = 0; i < size; ++i) od[i] = fn(ad[i], bd[i]);
    return out;
  }
  // The two layer-norm / row-statistic patterns get branch-free contiguous
  // inner loops: [N,D] op [N,1] broadcasts one scalar per row, and
  // [N,D] op [1,D] reuses one row-vector for every row.
  if (a.rows() == rows && a.cols() == cols && b.rows() == rows &&
      b.cols() == 1) {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* arow = ad + r * cols;
      const float bv = bd[r];
      float* orow = od + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) orow[c] = fn(arow[c], bv);
    }
    return out;
  }
  if (a.rows() == rows && a.cols() == cols && b.rows() == 1 &&
      b.cols() == cols) {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* arow = ad + r * cols;
      float* orow = od + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) orow[c] = fn(arow[c], bd[c]);
    }
    return out;
  }
  // General broadcast: express each operand as (row stride, col stride) over
  // its raw storage — a broadcast dimension has stride 0 — so the inner loop
  // indexes pointers directly instead of the bounds-checked operator().
  const std::int64_t a_rs = a.rows() == 1 ? 0 : a.cols();
  const std::int64_t a_cs = a.cols() == 1 ? 0 : 1;
  const std::int64_t b_rs = b.rows() == 1 ? 0 : b.cols();
  const std::int64_t b_cs = b.cols() == 1 ? 0 : 1;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* arow = ad + r * a_rs;
    const float* brow = bd + r * b_rs;
    float* orow = od + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      orow[c] = fn(arow[c * a_cs], brow[c * b_cs]);
    }
  }
  return out;
}

template <typename Fn>
Tensor unary(const Tensor& a, Fn fn) {
  Tensor out = Tensor::uninit(a.rows(), a.cols());
  const float* src = a.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < a.size(); ++i) dst[i] = fn(src[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x * y; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x / y; });
}

Tensor reduce_to_shape(const Tensor& grad, std::int64_t rows,
                       std::int64_t cols) {
  CALIBRE_CHECK_MSG(
      (rows == grad.rows() || rows == 1) && (cols == grad.cols() || cols == 1),
      "cannot reduce " << grad.shape_string() << " to [" << rows << "," << cols
                       << "]");
  if (rows == grad.rows() && cols == grad.cols()) return grad;
  Tensor out = Tensor::uninit(rows, cols);
  const float* gd = grad.data();
  float* od = out.data();
  // The target row/col is either identity or 0; the three reduced cases each
  // get a contiguous raw-storage loop. The row-reduction seeds the output
  // with the first input row so the (uninitialised) output is fully written.
  if (rows == 1 && cols == 1) {
    od[0] = grad.sum();
  } else if (grad.rows() == 0) {  // empty input: reduction sums to zero
    out.fill(0.0f);
  } else if (rows == 1) {  // sum rows down into a [1,C] vector
    std::copy(gd, gd + grad.cols(), od);
    for (std::int64_t r = 1; r < grad.rows(); ++r) {
      const float* grow = gd + r * grad.cols();
      for (std::int64_t c = 0; c < grad.cols(); ++c) od[c] += grow[c];
    }
  } else {  // cols == 1: sum each row into a [R,1] vector
    for (std::int64_t r = 0; r < grad.rows(); ++r) {
      const float* grow = gd + r * grad.cols();
      float total = 0.0f;
      for (std::int64_t c = 0; c < grad.cols(); ++c) total += grow[c];
      od[r] = total;
    }
  }
  return out;
}

Tensor reduce_to_shape(Tensor&& grad, std::int64_t rows, std::int64_t cols) {
  if (rows == grad.rows() && cols == grad.cols()) return std::move(grad);
  return reduce_to_shape(static_cast<const Tensor&>(grad), rows, cols);
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}

Tensor neg(const Tensor& a) {
  return unary(a, [](float x) { return -x; });
}

Tensor exp(const Tensor& a) {
  return unary(a, [](float x) { return std::exp(x); });
}

Tensor log(const Tensor& a) {
  return unary(a, [](float x) { return std::log(x); });
}

Tensor sqrt(const Tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}

Tensor relu(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor relu_mask(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor tanh(const Tensor& a) {
  return unary(a, [](float x) { return std::tanh(x); });
}

Tensor square(const Tensor& a) {
  return unary(a, [](float x) { return x * x; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CALIBRE_CHECK_EQ(a.cols(), b.rows(),
                   "matmul " << a.shape_string() << " x " << b.shape_string());
  Tensor out(a.rows(), b.cols());
  kernels::gemm(a.rows(), a.cols(), b.cols(), a.data(), b.data(), out.data());
  return out;
}

Tensor transpose(const Tensor& a) {
  Tensor out = Tensor::uninit(a.cols(), a.rows());
  const std::int64_t rows = a.rows();
  const std::int64_t cols = a.cols();
  const float* ad = a.data();
  float* od = out.data();
  // 32x32 tiles: both the read rows and the written columns of a tile stay
  // in L1, instead of striding through the whole output per input row.
  constexpr std::int64_t kTile = 32;
  for (std::int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::int64_t r1 = std::min(r0 + kTile, rows);
    for (std::int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::int64_t c1 = std::min(c0 + kTile, cols);
      for (std::int64_t r = r0; r < r1; ++r) {
        const float* arow = ad + r * cols;
        for (std::int64_t c = c0; c < c1; ++c) {
          od[c * rows + r] = arow[c];
        }
      }
    }
  }
  return out;
}

Tensor row_sum(const Tensor& a) {
  Tensor out = Tensor::uninit(a.rows(), 1);
  const float* ad = a.data();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* row = ad + r * a.cols();
    double total = 0.0;
    for (std::int64_t c = 0; c < a.cols(); ++c) total += row[c];
    out.data()[r] = static_cast<float>(total);
  }
  return out;
}

Tensor col_sum(const Tensor& a) {
  if (a.rows() == 0) return Tensor(1, a.cols());
  Tensor out = Tensor::uninit(1, a.cols());
  float* od = out.data();
  const float* ad = a.data();
  std::copy(ad, ad + a.cols(), od);
  for (std::int64_t r = 1; r < a.rows(); ++r) {
    const float* row = ad + r * a.cols();
    for (std::int64_t c = 0; c < a.cols(); ++c) od[c] += row[c];
  }
  return out;
}

Tensor sum_all(const Tensor& a) {
  Tensor out = Tensor::uninit(1, 1);
  out(0, 0) = a.sum();
  return out;
}

Tensor row_max(const Tensor& a) {
  CALIBRE_CHECK(a.cols() > 0);
  Tensor out = Tensor::uninit(a.rows(), 1);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    float best = a(r, 0);
    for (std::int64_t c = 1; c < a.cols(); ++c) best = std::max(best, a(r, c));
    out(r, 0) = best;
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  CALIBRE_CHECK(!parts.empty());
  const std::int64_t cols = parts.front().cols();
  std::int64_t rows = 0;
  for (const Tensor& part : parts) {
    CALIBRE_CHECK_EQ(part.cols(), cols, "concat_rows col mismatch");
    rows += part.rows();
  }
  Tensor out = Tensor::uninit(rows, cols);
  std::int64_t offset = 0;
  for (const Tensor& part : parts) {
    std::copy(part.data(), part.data() + part.size(),
              out.data() + offset * cols);
    offset += part.rows();
  }
  return out;
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  CALIBRE_CHECK(!parts.empty());
  const std::int64_t rows = parts.front().rows();
  std::int64_t cols = 0;
  for (const Tensor& part : parts) {
    CALIBRE_CHECK_EQ(part.rows(), rows, "concat_cols row mismatch");
    cols += part.cols();
  }
  Tensor out = Tensor::uninit(rows, cols);
  std::int64_t offset = 0;
  for (const Tensor& part : parts) {
    for (std::int64_t r = 0; r < rows; ++r) {
      std::copy(part.data() + r * part.cols(),
                part.data() + (r + 1) * part.cols(),
                out.data() + r * cols + offset);
    }
    offset += part.cols();
  }
  return out;
}

Tensor slice_rows(const Tensor& a, std::int64_t begin, std::int64_t end) {
  CALIBRE_CHECK_MSG(begin >= 0 && begin <= end && end <= a.rows(),
                    "slice_rows [" << begin << "," << end << ") of "
                                   << a.shape_string());
  Tensor out = Tensor::uninit(end - begin, a.cols());
  std::copy(a.data() + begin * a.cols(), a.data() + end * a.cols(),
            out.data());
  return out;
}

Tensor slice_cols(const Tensor& a, std::int64_t begin, std::int64_t end) {
  CALIBRE_CHECK_MSG(begin >= 0 && begin <= end && end <= a.cols(),
                    "slice_cols [" << begin << "," << end << ") of "
                                   << a.shape_string());
  Tensor out = Tensor::uninit(a.rows(), end - begin);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    std::copy(a.data() + r * a.cols() + begin, a.data() + r * a.cols() + end,
              out.data() + r * out.cols());
  }
  return out;
}

Tensor take_rows(const Tensor& a, const std::vector<int>& indices) {
  Tensor out = Tensor::uninit(static_cast<std::int64_t>(indices.size()), a.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t r = indices[i];
    CALIBRE_CHECK_MSG(r >= 0 && r < a.rows(), "take_rows index " << r);
    std::copy(a.data() + r * a.cols(), a.data() + (r + 1) * a.cols(),
              out.data() + static_cast<std::int64_t>(i) * a.cols());
  }
  return out;
}

Tensor gather_cols(const Tensor& a, const std::vector<int>& idx) {
  CALIBRE_CHECK_MSG(static_cast<std::int64_t>(idx.size()) == a.rows(),
                    "gather_cols needs one index per row");
  Tensor out = Tensor::uninit(a.rows(), 1);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const int c = idx[static_cast<std::size_t>(r)];
    CALIBRE_CHECK_MSG(c >= 0 && c < a.cols(), "gather_cols index " << c);
    out(r, 0) = a(r, c);
  }
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  Tensor out = Tensor::uninit(a.rows(), a.cols());
  const std::int64_t cols = a.cols();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* row = a.data() + r * cols;
    float* orow = out.data() + r * cols;
    float best = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < cols; ++c) best = std::max(best, row[c]);
    double total = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float e = std::exp(row[c] - best);
      orow[c] = e;
      total += e;
    }
    const float inv = static_cast<float>(1.0 / total);
    for (std::int64_t c = 0; c < cols; ++c) orow[c] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& a) {
  Tensor out = Tensor::uninit(a.rows(), a.cols());
  const std::int64_t cols = a.cols();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* row = a.data() + r * cols;
    float* orow = out.data() + r * cols;
    float best = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < cols; ++c) best = std::max(best, row[c]);
    double total = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) total += std::exp(row[c] - best);
    const float lse = best + static_cast<float>(std::log(total));
    for (std::int64_t c = 0; c < cols; ++c) orow[c] = row[c] - lse;
  }
  return out;
}

Tensor l2_normalize_rows(const Tensor& a, float eps) {
  Tensor out = Tensor::uninit(a.rows(), a.cols());
  const std::int64_t cols = a.cols();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* row = a.data() + r * cols;
    float* orow = out.data() + r * cols;
    double sq = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      sq += static_cast<double>(row[c]) * row[c];
    }
    const float inv =
        1.0f / std::max(static_cast<float>(std::sqrt(sq)), eps);
    for (std::int64_t c = 0; c < cols; ++c) orow[c] = row[c] * inv;
  }
  return out;
}

// pairwise_sq_dists lives in tensor/kernels.cc (GEMM-based decomposition).

bool allclose(const Tensor& a, const Tensor& b, float atol) {
  if (!a.same_shape(b)) return false;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > atol) return false;
  }
  return true;
}

}  // namespace calibre::tensor
