// Scalar reference kernels, preserved verbatim from the pre-kernel-layer
// tree. They exist for two reasons: the golden parity tests in
// tests/test_tensor.cc check the blocked kernels against them, and
// bench_micro reports the blocked kernels' speedup over them in
// BENCH_kernels.json. This file deliberately builds with the tree's default
// flags (no -O3 override) so the baseline matches what the original build
// actually shipped.
#include "tensor/kernels.h"

#include "common/check.h"

namespace calibre::tensor::kernels {

Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  CALIBRE_CHECK_MSG(a.cols() == b.rows(), "matmul " << a.shape_string() << " x "
                                                    << b.shape_string());
  const std::int64_t n = a.rows();
  const std::int64_t k = a.cols();
  const std::int64_t m = b.cols();
  Tensor out(n, m);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = ad[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = bd + kk * m;
      float* orow = od + i * m;
      for (std::int64_t j = 0; j < m; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

Tensor pairwise_sq_dists_naive(const Tensor& a, const Tensor& b) {
  CALIBRE_CHECK_MSG(a.cols() == b.cols(), "pairwise_sq_dists dim mismatch");
  Tensor out(a.rows(), b.rows());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.rows(); ++j) {
      double total = 0.0;
      for (std::int64_t c = 0; c < a.cols(); ++c) {
        const double d = static_cast<double>(a(i, c)) - b(j, c);
        total += d * d;
      }
      out(i, j) = static_cast<float>(total);
    }
  }
  return out;
}

}  // namespace calibre::tensor::kernels
