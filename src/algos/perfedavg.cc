#include "algos/perfedavg.h"

#include "algos/flat.h"

namespace calibre::algos {
namespace {

// One cross-entropy backward pass over an augmented batch; returns the flat
// gradient at the model's current parameters.
std::vector<float> batch_gradient(fl::EncoderHeadModel& model,
                                  const std::vector<ag::VarPtr>& params,
                                  const data::Dataset& dataset,
                                  const std::vector<int>& batch,
                                  const fl::FlConfig& config,
                                  rng::Generator& gen) {
  std::vector<int> y;
  y.reserve(batch.size());
  for (const int index : batch) {
    y.push_back(dataset.labels[static_cast<std::size_t>(index)]);
  }
  const tensor::Tensor view =
      fl::training_view(dataset, batch, config.augment, gen,
                        config.supervised_oracle_views);
  for (const ag::VarPtr& p : params) p->zero_grad();
  ag::backward(ag::cross_entropy(model.logits(ag::constant(view)), y));
  return flat_grads(params);
}

}  // namespace

nn::ModelState PerFedAvg::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.all_parameters());
}

fl::ClientUpdate PerFedAvg::local_update(const nn::ModelState& global,
                                         const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  const std::vector<ag::VarPtr> params = model.all_parameters();
  global.apply_to(params);
  rng::Generator gen(ctx.seed);
  const float lr = config_.supervised_opt.learning_rate;

  for (int epoch = 0; epoch < config_.local_epochs; ++epoch) {
    const auto batches = data::make_batches(ctx.train->size(),
                                            config_.batch_size, gen,
                                            /*min_batch=*/2);
    for (std::size_t b = 0; b + 1 < batches.size(); b += 2) {
      // theta: the pre-adaptation parameters.
      std::vector<float> theta =
          nn::ModelState::from_parameters(params).values();
      // Inner step on batch b.
      const std::vector<float> inner_grad =
          batch_gradient(model, params, *ctx.train, batches[b], config_, gen);
      std::vector<float> adapted = theta;
      axpy_flat(adapted, inner_grad, -lr);
      nn::ModelState(adapted).apply_to(params);
      // Outer gradient evaluated at the adapted point, on batch b+1.
      const std::vector<float> outer_grad = batch_gradient(
          model, params, *ctx.train, batches[b + 1], config_, gen);
      // FO-MAML: apply the outer gradient to theta.
      axpy_flat(theta, outer_grad, -lr);
      nn::ModelState(theta).apply_to(params);
    }
  }

  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(params);
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double PerFedAvg::personalize(const nn::ModelState& global,
                              const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  // Local adaptation of the meta-model (full model, probe schedule).
  return fl::finetune_and_eval(model, model.all_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
