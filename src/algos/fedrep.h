// FedRep (Collins et al., ICML 2021): a single global representation
// (Encoder) plus many local heads. Each local update first fits the local
// head on the frozen shared representation, then updates the representation
// with the head frozen; only the representation is federated.
#pragma once

#include "algos/client_store.h"
#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class FedRep : public fl::Algorithm {
 public:
  explicit FedRep(const fl::FlConfig& config) : fl::Algorithm(config) {}

  std::string name() const override { return "FedRep"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  ClientStore<nn::ModelState> heads_;
};

}  // namespace calibre::algos
