// Purely local training ("Script-Convergent" / "Script-Fair" in the paper):
// every client trains its own model from scratch on its local dataset, with
// no federation at all. Script-Fair stops after 10 epochs; Script-Convergent
// trains to (approximate) convergence. Run with config.rounds == 0.
#pragma once

#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class LocalOnly : public fl::Algorithm {
 public:
  // `epochs`: local training budget (10 for Fair; large for Convergent).
  LocalOnly(const fl::FlConfig& config, int epochs, std::string label)
      : fl::Algorithm(config), epochs_(epochs), label_(std::move(label)) {}

  std::string name() const override { return label_; }

  nn::ModelState initialize() override { return nn::ModelState(); }

  fl::ClientUpdate local_update(const nn::ModelState&,
                                const fl::ClientContext&) override;

  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  int epochs_;
  std::string label_;
};

}  // namespace calibre::algos
