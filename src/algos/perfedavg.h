// Per-FedAvg (Fallah et al., NeurIPS 2020), first-order variant: the global
// model is meta-trained so that one local adaptation step lands well.
// Each meta-iteration takes an inner SGD step on one batch and applies the
// gradient evaluated at the adapted point (on the next batch) to the
// original parameters (FO-MAML). Personalization = local adaptation.
#pragma once

#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class PerFedAvg : public fl::Algorithm {
 public:
  explicit PerFedAvg(const fl::FlConfig& config) : fl::Algorithm(config) {}

  std::string name() const override { return "PerFedAvg"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;
};

}  // namespace calibre::algos
