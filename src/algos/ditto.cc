#include "algos/ditto.h"

#include "algos/flat.h"

namespace calibre::algos {

nn::ModelState Ditto::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.all_parameters());
}

void Ditto::train_personal(std::vector<float>& v,
                           const std::vector<float>& anchor,
                           const data::Dataset& dataset, int epochs,
                           rng::Generator& gen) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  const std::vector<ag::VarPtr> params = model.all_parameters();
  const float lr = config_.supervised_opt.learning_rate;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto batches = data::make_batches(dataset.size(),
                                            config_.batch_size, gen,
                                            /*min_batch=*/2);
    for (const auto& batch : batches) {
      std::vector<int> y;
      y.reserve(batch.size());
      for (const int index : batch) {
        y.push_back(dataset.labels[static_cast<std::size_t>(index)]);
      }
      const tensor::Tensor view =
          fl::training_view(dataset, batch, config_.augment, gen,
                            config_.supervised_oracle_views);
      nn::ModelState(v).apply_to(params);
      for (const ag::VarPtr& p : params) p->zero_grad();
      ag::backward(ag::cross_entropy(model.logits(ag::constant(view)), y));
      std::vector<float> grad = flat_grads(params);
      // Prox term gradient: lambda * (v - anchor).
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] += lambda_ * (v[i] - anchor[i]);
      }
      axpy_flat(v, grad, -lr);
    }
  }
}

fl::ClientUpdate Ditto::local_update(const nn::ModelState& global,
                                     const fl::ClientContext& ctx) {
  rng::Generator gen(ctx.seed);
  // FedAvg side: the shared model.
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  fl::train_supervised(model, model.all_parameters(), *ctx.train, config_,
                       config_.local_epochs, gen);

  // Personal side: v with prox toward the received global.
  std::vector<float> v;
  if (!personal_models_.visit(ctx.client_id,
                              [&](const std::vector<float>& s) { v = s; })) {
    v = global.values();
  }
  train_personal(v, global.values(), *ctx.train, config_.local_epochs, gen);
  personal_models_.put(ctx.client_id, std::move(v));

  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(model.all_parameters());
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double Ditto::personalize(const nn::ModelState& global,
                          const fl::PersonalizationContext& ctx) {
  rng::Generator gen(ctx.seed);
  std::vector<float> v;
  if (!personal_models_.visit(ctx.client_id,
                              [&](const std::vector<float>& s) { v = s; })) {
    // Novel client: train a personal model from the global within the
    // personalization budget.
    v = global.values();
    train_personal(v, global.values(), *ctx.train, config_.probe.epochs, gen);
  }
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  nn::ModelState(v).apply_to(model.all_parameters());
  return fl::evaluate_accuracy(model, *ctx.test);
}

}  // namespace calibre::algos
