// FedEMA (Zhuang et al., ICLR 2022): divergence-aware federated
// self-supervised learning on BYOL. Each client merges the incoming global
// model into its persistent local model with an EMA whose coefficient mu
// scales with the global/local divergence: mu = min(lambda * ||w_g - w_l|| /
// ||w_g||, 1). Personalization probes the client's own merged encoder when
// one exists (the global encoder for novel clients).
#pragma once

#include "algos/client_store.h"
#include "core/pfl_ssl.h"

namespace calibre::algos {

class FedEma : public core::PflSsl {
 public:
  explicit FedEma(const fl::FlConfig& config, float lambda = 1.0f)
      : core::PflSsl(config, ssl::Kind::kByol), lambda_(lambda) {}

  std::string name() const override { return "FedEMA"; }

  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  float lambda_;
  ClientStore<nn::ModelState> local_models_;
};

}  // namespace calibre::algos
