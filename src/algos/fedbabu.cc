#include "algos/fedbabu.h"

namespace calibre::algos {

FedBabu::FedBabu(const fl::FlConfig& config) : fl::Algorithm(config) {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  fixed_head_ = nn::ModelState::from_parameters(model.head_parameters());
}

nn::ModelState FedBabu::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.encoder_parameters());
}

fl::ClientUpdate FedBabu::local_update(const nn::ModelState& global,
                                       const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.encoder_parameters());
  fixed_head_.apply_to(model.head_parameters());
  rng::Generator gen(ctx.seed);
  // Body-only updates through the frozen random head.
  fl::train_supervised(model, model.encoder_parameters(), *ctx.train, config_,
                       config_.local_epochs, gen);
  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(model.encoder_parameters());
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double FedBabu::personalize(const nn::ModelState& global,
                            const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.encoder_parameters());
  fixed_head_.apply_to(model.head_parameters());
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
