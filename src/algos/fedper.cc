#include "algos/fedper.h"

namespace calibre::algos {

nn::ModelState FedPer::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.encoder_parameters());
}

fl::ClientUpdate FedPer::local_update(const nn::ModelState& global,
                                      const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.encoder_parameters());
  heads_.visit(ctx.client_id, [&](const nn::ModelState& head) {
    head.apply_to(model.head_parameters());
  });
  rng::Generator gen(ctx.seed);
  fl::train_supervised(model, model.all_parameters(), *ctx.train, config_,
                       config_.local_epochs, gen);
  heads_.put(ctx.client_id,
             nn::ModelState::from_parameters(model.head_parameters()));
  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(model.encoder_parameters());
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double FedPer::personalize(const nn::ModelState& global,
                           const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.encoder_parameters());
  heads_.visit(ctx.client_id, [&](const nn::ModelState& head) {
    head.apply_to(model.head_parameters());
  });
  // Participating clients refine their persistent head; novel clients train
  // a fresh one — both on frozen encoder features, matching the framework's
  // personalization stage.
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
