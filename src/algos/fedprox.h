// FedProx (Li et al., MLSys 2020): FedAvg with a proximal term
// (mu/2)||w - w_global||^2 added to every local objective, limiting client
// drift under heterogeneity. Evaluated with head fine-tuning like FedAvg-FT
// so it slots into the same personalization protocol.
#pragma once

#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class FedProx : public fl::Algorithm {
 public:
  FedProx(const fl::FlConfig& config, float mu = 0.1f)
      : fl::Algorithm(config), mu_(mu) {}

  std::string name() const override { return "FedProx"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  float mu_;
};

}  // namespace calibre::algos
