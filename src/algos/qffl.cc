#include "algos/qffl.h"

#include <cmath>

#include "common/check.h"

namespace calibre::algos {

nn::ModelState QFfl::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.all_parameters());
}

fl::ClientUpdate QFfl::local_update(const nn::ModelState& global,
                                    const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  rng::Generator gen(ctx.seed);
  const float mean_loss =
      fl::train_supervised(model, model.all_parameters(), *ctx.train, config_,
                           config_.local_epochs, gen);
  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(model.all_parameters());
  update.weight = static_cast<float>(ctx.train->size());
  update.scalars["loss"] = mean_loss;
  return update;
}

nn::ModelState QFfl::aggregate(const nn::ModelState& global,
                               const std::vector<fl::ClientUpdate>& updates,
                               int round) {
  CALIBRE_CHECK(!updates.empty());
  const auto fold = make_aggregator(global, round);
  for (const fl::ClientUpdate& update : updates) fold->fold(update);
  return fold->finish();
}

std::unique_ptr<fl::StreamingAggregator> QFfl::make_aggregator(
    const nn::ModelState& /*global*/, int /*round*/) {
  // w_c ∝ n_c * (L_c + eps)^q : high-loss (struggling) clients dominate.
  // Mergeability (and thus eligibility for the sharded fold path) comes
  // free: WeightedStreamingAggregator accumulates in exact fixed point, so
  // shard partials carrying this weight fn merge bit-identically.
  const double q = static_cast<double>(q_);
  return std::make_unique<fl::WeightedStreamingAggregator>(
      [q](const fl::ClientUpdate& update) {
        const auto it = update.scalars.find("loss");
        const double loss = it == update.scalars.end()
                                ? 1.0
                                : static_cast<double>(it->second);
        return static_cast<double>(update.weight) *
               std::pow(std::max(loss, 1e-4), q);
      });
}

double QFfl::personalize(const nn::ModelState& global,
                         const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
