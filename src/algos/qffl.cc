#include "algos/qffl.h"

#include <cmath>

#include "common/check.h"

namespace calibre::algos {

nn::ModelState QFfl::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.all_parameters());
}

fl::ClientUpdate QFfl::local_update(const nn::ModelState& global,
                                    const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  rng::Generator gen(ctx.seed);
  const float mean_loss =
      fl::train_supervised(model, model.all_parameters(), *ctx.train, config_,
                           config_.local_epochs, gen);
  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(model.all_parameters());
  update.weight = static_cast<float>(ctx.train->size());
  update.scalars["loss"] = mean_loss;
  return update;
}

nn::ModelState QFfl::aggregate(const nn::ModelState& /*global*/,
                               const std::vector<fl::ClientUpdate>& updates,
                               int /*round*/) {
  CALIBRE_CHECK(!updates.empty());
  // w_c ∝ n_c * (L_c + eps)^q : high-loss (struggling) clients dominate.
  double total = 0.0;
  std::vector<double> weights(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const auto it = updates[i].scalars.find("loss");
    const double loss = it == updates[i].scalars.end()
                            ? 1.0
                            : static_cast<double>(it->second);
    weights[i] = static_cast<double>(updates[i].weight) *
                 std::pow(std::max(loss, 1e-4), static_cast<double>(q_));
    total += weights[i];
  }
  CALIBRE_CHECK(total > 0.0);
  nn::ModelState result(
      std::vector<float>(updates.front().state.size(), 0.0f));
  for (std::size_t i = 0; i < updates.size(); ++i) {
    result.add_scaled(updates[i].state,
                      static_cast<float>(weights[i] / total));
  }
  return result;
}

double QFfl::personalize(const nn::ModelState& global,
                         const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
