#include "algos/local_only.h"

#include "common/check.h"

namespace calibre::algos {

fl::ClientUpdate LocalOnly::local_update(const nn::ModelState&,
                                         const fl::ClientContext&) {
  CALIBRE_CHECK_MSG(false,
                    "LocalOnly has no training stage; run with rounds = 0");
  return {};
}

double LocalOnly::personalize(const nn::ModelState& /*global*/,
                              const fl::PersonalizationContext& ctx) {
  // A fresh model per client, trained only on the client's local shard.
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, ctx.seed);
  rng::Generator gen(ctx.seed ^ 0x10CA1);
  fl::train_supervised(model, model.all_parameters(), *ctx.train, config_,
                       epochs_, gen);
  return fl::evaluate_accuracy(model, *ctx.test);
}

}  // namespace calibre::algos
