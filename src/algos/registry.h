// Name-based algorithm factory used by benches, examples and tests.
//
// Names: "FedAvg", "FedAvg-FT", "SCAFFOLD", "SCAFFOLD-FT", "LG-FedAvg",
// "FedPer", "FedRep", "FedBABU", "PerFedAvg", "APFL", "Ditto", "FedEMA",
// "Script-Fair", "Script-Convergent", "pFL-<SSL>" and "Calibre (<SSL>)" with
// <SSL> in {SimCLR, BYOL, SimSiam, MoCoV2, SwAV, SMoG}.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/calibre.h"
#include "flapi/algorithm.h"

namespace calibre::algos {

// Creates the algorithm registered under `name`; throws CheckError for
// unknown names. Script-* algorithms expect config.rounds == 0 at run time
// (the factory does not modify the config).
std::unique_ptr<fl::Algorithm> make_algorithm(const std::string& name,
                                              const fl::FlConfig& config);

// Calibre with explicit ablation switches (paper Table I rows).
std::unique_ptr<fl::Algorithm> make_calibre(
    ssl::Kind kind, const fl::FlConfig& config,
    const core::CalibreConfig& calibre_config);

// All registered algorithm names.
std::vector<std::string> registered_algorithms();

}  // namespace calibre::algos
