#include "algos/scaffold.h"

#include "common/check.h"

namespace calibre::algos {
namespace {

// grads of `params` += delta (flat layout matching ModelState order).
void add_flat_to_grads(const std::vector<ag::VarPtr>& params,
                       const std::vector<float>& delta) {
  std::size_t offset = 0;
  for (const ag::VarPtr& p : params) {
    const std::size_t count = static_cast<std::size_t>(p->value.size());
    CALIBRE_CHECK(offset + count <= delta.size());
    for (std::size_t i = 0; i < count; ++i) {
      p->grad.storage()[i] += delta[offset + i];
    }
    offset += count;
  }
  CALIBRE_CHECK(offset == delta.size());
}

std::vector<float> split_front(const std::vector<float>& values,
                               std::size_t count) {
  return {values.begin(), values.begin() + static_cast<std::ptrdiff_t>(count)};
}

std::vector<float> split_back(const std::vector<float>& values,
                              std::size_t count) {
  return {values.begin() + static_cast<std::ptrdiff_t>(count), values.end()};
}

}  // namespace

Scaffold::Scaffold(const fl::FlConfig& config, bool finetune_head)
    : fl::Algorithm(config), finetune_head_(finetune_head) {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  model_dim_ =
      nn::ModelState::from_parameters(model.all_parameters()).size();
  server_control_.assign(model_dim_, 0.0f);
}

nn::ModelState Scaffold::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  std::vector<float> packed =
      nn::ModelState::from_parameters(model.all_parameters()).values();
  packed.insert(packed.end(), server_control_.begin(), server_control_.end());
  return nn::ModelState(std::move(packed));
}

fl::ClientUpdate Scaffold::local_update(const nn::ModelState& global,
                                        const fl::ClientContext& ctx) {
  CALIBRE_CHECK(global.size() == 2 * model_dim_);
  const std::vector<float> x = split_front(global.values(), model_dim_);
  const std::vector<float> c = split_back(global.values(), model_dim_);
  std::vector<float> ci =
      client_controls_.get(ctx.client_id)
          .value_or(std::vector<float>(model_dim_, 0.0f));

  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  const std::vector<ag::VarPtr> params = model.all_parameters();
  nn::ModelState(x).apply_to(params);

  // Correction term (c - c_i) added to every SGD step's gradient.
  std::vector<float> correction(model_dim_);
  for (std::size_t i = 0; i < model_dim_; ++i) correction[i] = c[i] - ci[i];

  // SCAFFOLD assumes plain (momentum-free) local SGD.
  const float lr = config_.supervised_opt.learning_rate;
  nn::Sgd optimizer(params, nn::SgdConfig{lr, 0.0f, 0.0f});
  rng::Generator gen(ctx.seed);
  int steps = 0;
  for (int epoch = 0; epoch < config_.local_epochs; ++epoch) {
    const auto batches = data::make_batches(ctx.train->size(),
                                            config_.batch_size, gen,
                                            /*min_batch=*/2);
    for (const auto& batch : batches) {
      std::vector<int> y;
      y.reserve(batch.size());
      for (const int index : batch) {
        y.push_back(ctx.train->labels[static_cast<std::size_t>(index)]);
      }
      const tensor::Tensor view =
          fl::training_view(*ctx.train, batch, config_.augment, gen,
                            config_.supervised_oracle_views);
      optimizer.zero_grad();
      ag::backward(
          ag::cross_entropy(model.logits(ag::constant(view)), y));
      add_flat_to_grads(params, correction);
      optimizer.step();
      ++steps;
    }
  }
  CALIBRE_CHECK(steps > 0);

  // Option II control update: c_i+ = c_i - c + (x - y_i) / (K * lr).
  const std::vector<float> y_flat =
      nn::ModelState::from_parameters(params).values();
  std::vector<float> ci_new(model_dim_);
  std::vector<float> delta_c(model_dim_);
  const float inv_klr = 1.0f / (static_cast<float>(steps) * lr);
  for (std::size_t i = 0; i < model_dim_; ++i) {
    ci_new[i] = ci[i] - c[i] + (x[i] - y_flat[i]) * inv_klr;
    delta_c[i] = ci_new[i] - ci[i];
  }
  client_controls_.put(ctx.client_id, std::move(ci_new));

  fl::ClientUpdate update;
  std::vector<float> packed = y_flat;
  packed.insert(packed.end(), delta_c.begin(), delta_c.end());
  update.state = nn::ModelState(std::move(packed));
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

nn::ModelState Scaffold::aggregate(const nn::ModelState& global,
                                   const std::vector<fl::ClientUpdate>& updates,
                                   int /*round*/) {
  CALIBRE_CHECK(!updates.empty());
  CALIBRE_CHECK(global.size() == 2 * model_dim_);
  // Weighted average of the client models.
  double total_weight = 0.0;
  for (const auto& update : updates) total_weight += update.weight;
  std::vector<float> new_x(model_dim_, 0.0f);
  std::vector<double> mean_delta_c(model_dim_, 0.0);
  for (const auto& update : updates) {
    CALIBRE_CHECK(update.state.size() == 2 * model_dim_);
    const float w = static_cast<float>(update.weight / total_weight);
    const std::vector<float>& values = update.state.values();
    for (std::size_t i = 0; i < model_dim_; ++i) {
      new_x[i] += w * values[i];
      mean_delta_c[i] += values[model_dim_ + i] /
                         static_cast<double>(updates.size());
    }
  }
  // c <- c + (|S| / N) * mean(delta_c_i).
  const float participation =
      static_cast<float>(updates.size()) /
      static_cast<float>(std::max(1, config_.num_train_clients));
  for (std::size_t i = 0; i < model_dim_; ++i) {
    server_control_[i] +=
        participation * static_cast<float>(mean_delta_c[i]);
  }
  std::vector<float> packed = std::move(new_x);
  packed.insert(packed.end(), server_control_.begin(), server_control_.end());
  return nn::ModelState(std::move(packed));
}

double Scaffold::personalize(const nn::ModelState& global,
                             const fl::PersonalizationContext& ctx) {
  CALIBRE_CHECK(global.size() == 2 * model_dim_);
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  nn::ModelState(split_front(global.values(), model_dim_))
      .apply_to(model.all_parameters());
  if (!finetune_head_) {
    return fl::evaluate_accuracy(model, *ctx.test);
  }
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
