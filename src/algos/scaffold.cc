#include "algos/scaffold.h"

#include "common/check.h"

namespace calibre::algos {
namespace {

// grads of `params` += delta (flat layout matching ModelState order).
void add_flat_to_grads(const std::vector<ag::VarPtr>& params,
                       const std::vector<float>& delta) {
  std::size_t offset = 0;
  for (const ag::VarPtr& p : params) {
    const std::size_t count = static_cast<std::size_t>(p->value.size());
    CALIBRE_CHECK(offset + count <= delta.size());
    for (std::size_t i = 0; i < count; ++i) {
      p->grad.storage()[i] += delta[offset + i];
    }
    offset += count;
  }
  CALIBRE_CHECK(offset == delta.size());
}

std::vector<float> split_front(const std::vector<float>& values,
                               std::size_t count) {
  return {values.begin(), values.begin() + static_cast<std::ptrdiff_t>(count)};
}

std::vector<float> split_back(const std::vector<float>& values,
                              std::size_t count) {
  return {values.begin() + static_cast<std::ptrdiff_t>(count), values.end()};
}

// Streams [model | delta_c] updates: the model half is a weighted mean (fold
// w_i * x_i, normalise at finish), the control half an unweighted mean.
// finish() advances the server control variate in place — called once, on
// the merged root only. Both halves accumulate in exact fixed-point
// (flapi/fixed_accum.h), so merge() of shard-local partials is bit-identical
// to the flat fold for any shard split.
class ScaffoldAggregator : public fl::StreamingAggregator {
 public:
  ScaffoldAggregator(std::size_t model_dim, std::vector<float>& server_control,
                     int num_train_clients)
      : model_dim_(model_dim),
        server_control_(server_control),
        num_train_clients_(num_train_clients) {}

  void fold(fl::ClientUpdate update) override {
    CALIBRE_CHECK(update.state.size() == 2 * model_dim_);
    const double w = static_cast<double>(update.weight);
    CALIBRE_CHECK_MSG(w > 0.0, "non-positive aggregation weight");
    CALIBRE_CHECK_LT(folded_, fl::fixedpoint::kMaxFolds,
                     "too many folds for one accumulator");
    if (acc_x_.empty()) {
      acc_x_.assign(model_dim_, 0);
      acc_delta_c_.assign(model_dim_, 0);
    }
    const std::vector<float>& values = update.state.values();
    for (std::size_t i = 0; i < model_dim_; ++i) {
      acc_x_[i] +=
          fl::fixedpoint::quantize(w * static_cast<double>(values[i]));
      acc_delta_c_[i] += fl::fixedpoint::quantize(
          static_cast<double>(values[model_dim_ + i]));
    }
    total_weight_ += fl::fixedpoint::quantize(w);
    ++folded_;
  }

  nn::ModelState finish() override {
    CALIBRE_CHECK_MSG(folded_ > 0, "finish() before any update was folded");
    // c <- c + (|S| / N) * mean(delta_c_i).
    const float participation =
        static_cast<float>(folded_) /
        static_cast<float>(std::max(1, num_train_clients_));
    const double total = fl::fixedpoint::to_double(total_weight_);
    std::vector<float> packed(2 * model_dim_);
    for (std::size_t i = 0; i < model_dim_; ++i) {
      packed[i] =
          static_cast<float>(fl::fixedpoint::to_double(acc_x_[i]) / total);
      server_control_[i] +=
          participation *
          static_cast<float>(fl::fixedpoint::to_double(acc_delta_c_[i]) /
                             static_cast<double>(folded_));
      packed[model_dim_ + i] = server_control_[i];
    }
    return nn::ModelState(std::move(packed));
  }

  void merge(fl::StreamingAggregator&& other) override {
    auto* rhs = dynamic_cast<ScaffoldAggregator*>(&other);
    CALIBRE_CHECK_MSG(rhs != nullptr && rhs != this,
                      "merge() needs a distinct ScaffoldAggregator");
    CALIBRE_CHECK_MSG(rhs->model_dim_ == model_dim_ &&
                          &rhs->server_control_ == &server_control_,
                      "shard aggregators belong to different SCAFFOLD servers");
    if (rhs->folded_ == 0) return;
    CALIBRE_CHECK_LE(folded_ + rhs->folded_, fl::fixedpoint::kMaxFolds,
                     "merged fold count exceeds the accumulator bound");
    if (folded_ == 0) {
      acc_x_ = std::move(rhs->acc_x_);
      acc_delta_c_ = std::move(rhs->acc_delta_c_);
    } else {
      for (std::size_t i = 0; i < model_dim_; ++i) {
        acc_x_[i] += rhs->acc_x_[i];
        acc_delta_c_[i] += rhs->acc_delta_c_[i];
      }
    }
    total_weight_ += rhs->total_weight_;
    folded_ += rhs->folded_;
    rhs->acc_x_.clear();
    rhs->acc_delta_c_.clear();
    rhs->total_weight_ = 0;
    rhs->folded_ = 0;
  }

  bool mergeable() const override { return true; }

 private:
  std::size_t model_dim_;
  std::vector<float>& server_control_;
  int num_train_clients_;
  std::vector<fl::fixedpoint::Acc> acc_x_;
  std::vector<fl::fixedpoint::Acc> acc_delta_c_;
  fl::fixedpoint::Acc total_weight_ = 0;
};

}  // namespace

Scaffold::Scaffold(const fl::FlConfig& config, bool finetune_head)
    : fl::Algorithm(config), finetune_head_(finetune_head) {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  model_dim_ =
      nn::ModelState::from_parameters(model.all_parameters()).size();
  server_control_.assign(model_dim_, 0.0f);
}

nn::ModelState Scaffold::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  std::vector<float> packed =
      nn::ModelState::from_parameters(model.all_parameters()).values();
  packed.insert(packed.end(), server_control_.begin(), server_control_.end());
  return nn::ModelState(std::move(packed));
}

fl::ClientUpdate Scaffold::local_update(const nn::ModelState& global,
                                        const fl::ClientContext& ctx) {
  CALIBRE_CHECK(global.size() == 2 * model_dim_);
  const std::vector<float> x = split_front(global.values(), model_dim_);
  const std::vector<float> c = split_back(global.values(), model_dim_);
  std::vector<float> ci;
  if (!client_controls_.visit(ctx.client_id,
                              [&](const std::vector<float>& s) { ci = s; })) {
    ci.assign(model_dim_, 0.0f);
  }

  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  const std::vector<ag::VarPtr> params = model.all_parameters();
  nn::ModelState(x).apply_to(params);

  // Correction term (c - c_i) added to every SGD step's gradient.
  std::vector<float> correction(model_dim_);
  for (std::size_t i = 0; i < model_dim_; ++i) correction[i] = c[i] - ci[i];

  // SCAFFOLD assumes plain (momentum-free) local SGD.
  const float lr = config_.supervised_opt.learning_rate;
  nn::Sgd optimizer(params, nn::SgdConfig{lr, 0.0f, 0.0f});
  rng::Generator gen(ctx.seed);
  int steps = 0;
  for (int epoch = 0; epoch < config_.local_epochs; ++epoch) {
    const auto batches = data::make_batches(ctx.train->size(),
                                            config_.batch_size, gen,
                                            /*min_batch=*/2);
    for (const auto& batch : batches) {
      std::vector<int> y;
      y.reserve(batch.size());
      for (const int index : batch) {
        y.push_back(ctx.train->labels[static_cast<std::size_t>(index)]);
      }
      const tensor::Tensor view =
          fl::training_view(*ctx.train, batch, config_.augment, gen,
                            config_.supervised_oracle_views);
      optimizer.zero_grad();
      ag::backward(
          ag::cross_entropy(model.logits(ag::constant(view)), y));
      add_flat_to_grads(params, correction);
      optimizer.step();
      ++steps;
    }
  }
  CALIBRE_CHECK(steps > 0);

  // Option II control update: c_i+ = c_i - c + (x - y_i) / (K * lr).
  const std::vector<float> y_flat =
      nn::ModelState::from_parameters(params).values();
  std::vector<float> ci_new(model_dim_);
  std::vector<float> delta_c(model_dim_);
  const float inv_klr = 1.0f / (static_cast<float>(steps) * lr);
  for (std::size_t i = 0; i < model_dim_; ++i) {
    ci_new[i] = ci[i] - c[i] + (x[i] - y_flat[i]) * inv_klr;
    delta_c[i] = ci_new[i] - ci[i];
  }
  client_controls_.put(ctx.client_id, std::move(ci_new));

  fl::ClientUpdate update;
  std::vector<float> packed = y_flat;
  packed.insert(packed.end(), delta_c.begin(), delta_c.end());
  update.state = nn::ModelState(std::move(packed));
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

nn::ModelState Scaffold::aggregate(const nn::ModelState& global,
                                   const std::vector<fl::ClientUpdate>& updates,
                                   int round) {
  CALIBRE_CHECK(!updates.empty());
  const auto fold = make_aggregator(global, round);
  for (const fl::ClientUpdate& update : updates) fold->fold(update);
  return fold->finish();
}

std::unique_ptr<fl::StreamingAggregator> Scaffold::make_aggregator(
    const nn::ModelState& global, int /*round*/) {
  CALIBRE_CHECK(global.size() == 2 * model_dim_);
  return std::make_unique<ScaffoldAggregator>(model_dim_, server_control_,
                                              config_.num_train_clients);
}

double Scaffold::personalize(const nn::ModelState& global,
                             const fl::PersonalizationContext& ctx) {
  CALIBRE_CHECK(global.size() == 2 * model_dim_);
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  nn::ModelState(split_front(global.values(), model_dim_))
      .apply_to(model.all_parameters());
  if (!finetune_head_) {
    return fl::evaluate_accuracy(model, *ctx.test);
  }
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
