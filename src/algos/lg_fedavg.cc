#include "algos/lg_fedavg.h"

namespace calibre::algos {

nn::ModelState LgFedAvg::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.head_parameters());
}

fl::ClientUpdate LgFedAvg::local_update(const nn::ModelState& global,
                                        const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.head_parameters());
  encoders_.visit(ctx.client_id, [&](const nn::ModelState& encoder) {
    encoder.apply_to(model.encoder_parameters());
  });
  rng::Generator gen(ctx.seed);
  fl::train_supervised(model, model.all_parameters(), *ctx.train, config_,
                       config_.local_epochs, gen);
  encoders_.put(ctx.client_id,
                nn::ModelState::from_parameters(model.encoder_parameters()));
  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(model.head_parameters());
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double LgFedAvg::personalize(const nn::ModelState& global,
                             const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.head_parameters());
  const bool has_encoder =
      encoders_.visit(ctx.client_id, [&](const nn::ModelState& encoder) {
        encoder.apply_to(model.encoder_parameters());
      });
  if (has_encoder) {
    return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                                 *ctx.test, config_.probe, ctx.seed);
  }
  // Novel client: no trained local representation exists, so the whole model
  // must be personalized from scratch within the 10-epoch budget.
  return fl::finetune_and_eval(model, model.all_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

tensor::Tensor LgFedAvg::client_features(int client_id,
                                         const tensor::Tensor& x) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  encoders_.visit(client_id, [&](const nn::ModelState& encoder) {
    encoder.apply_to(model.encoder_parameters());
  });
  // Feature extraction: values only, no tape.
  const ag::NoGradGuard no_grad;
  return model.encoder->forward(ag::constant(x))->value;
}

}  // namespace calibre::algos
