#include "algos/fedrep.h"

namespace calibre::algos {

nn::ModelState FedRep::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.encoder_parameters());
}

fl::ClientUpdate FedRep::local_update(const nn::ModelState& global,
                                      const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.encoder_parameters());
  heads_.visit(ctx.client_id, [&](const nn::ModelState& head) {
    head.apply_to(model.head_parameters());
  });
  rng::Generator gen(ctx.seed);
  // Head epochs with the representation frozen...
  fl::train_supervised(model, model.head_parameters(), *ctx.train, config_,
                       config_.local_epochs, gen);
  // ...then representation epochs with the head frozen.
  fl::train_supervised(model, model.encoder_parameters(), *ctx.train, config_,
                       config_.local_epochs, gen);
  heads_.put(ctx.client_id,
             nn::ModelState::from_parameters(model.head_parameters()));
  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(model.encoder_parameters());
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double FedRep::personalize(const nn::ModelState& global,
                           const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.encoder_parameters());
  heads_.visit(ctx.client_id, [&](const nn::ModelState& head) {
    head.apply_to(model.head_parameters());
  });
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
