// APFL (Deng et al., 2020): adaptive personalized federated learning. Each
// client keeps a private model v alongside the shared global model w and is
// evaluated on the mixture alpha*v + (1-alpha)*w. During local updates w
// takes a standard SGD step while v descends the loss of the mixture.
#pragma once

#include "algos/client_store.h"
#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class Apfl : public fl::Algorithm {
 public:
  // `alpha`: the personal/global mixing weight (paper default 0.5 fixed; the
  // adaptive-alpha variant converges to similar mixes at this scale).
  Apfl(const fl::FlConfig& config, float alpha = 0.5f)
      : fl::Algorithm(config), alpha_(alpha) {}

  std::string name() const override { return "APFL"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  // Runs the v-side updates for `epochs` over the client's data.
  void train_personal(std::vector<float>& v, const std::vector<float>& w,
                      const data::Dataset& dataset, int epochs,
                      rng::Generator& gen);

  float alpha_;
  ClientStore<std::vector<float>> personal_models_;
};

}  // namespace calibre::algos
