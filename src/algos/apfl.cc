#include "algos/apfl.h"

#include "algos/flat.h"

namespace calibre::algos {

nn::ModelState Apfl::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.all_parameters());
}

void Apfl::train_personal(std::vector<float>& v, const std::vector<float>& w,
                          const data::Dataset& dataset, int epochs,
                          rng::Generator& gen) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  const std::vector<ag::VarPtr> params = model.all_parameters();
  const float lr = config_.supervised_opt.learning_rate;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto batches = data::make_batches(dataset.size(),
                                            config_.batch_size, gen,
                                            /*min_batch=*/2);
    for (const auto& batch : batches) {
      std::vector<int> y;
      y.reserve(batch.size());
      for (const int index : batch) {
        y.push_back(dataset.labels[static_cast<std::size_t>(index)]);
      }
      const tensor::Tensor view =
          fl::training_view(dataset, batch, config_.augment, gen,
                            config_.supervised_oracle_views);
      // Gradient of the mixed model's loss, applied to v scaled by alpha.
      nn::ModelState(mix_flat(v, w, alpha_)).apply_to(params);
      for (const ag::VarPtr& p : params) p->zero_grad();
      ag::backward(ag::cross_entropy(model.logits(ag::constant(view)), y));
      axpy_flat(v, flat_grads(params), -lr * alpha_);
    }
  }
}

fl::ClientUpdate Apfl::local_update(const nn::ModelState& global,
                                    const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  rng::Generator gen(ctx.seed);

  // Standard local steps on the shared model w.
  fl::train_supervised(model, model.all_parameters(), *ctx.train, config_,
                       config_.local_epochs, gen);
  const std::vector<float> w =
      nn::ModelState::from_parameters(model.all_parameters()).values();

  // Personal model v descends the mixture loss.
  std::vector<float> v;
  if (!personal_models_.visit(ctx.client_id,
                              [&](const std::vector<float>& s) { v = s; })) {
    v = global.values();
  }
  train_personal(v, w, *ctx.train, config_.local_epochs, gen);
  personal_models_.put(ctx.client_id, std::move(v));

  fl::ClientUpdate update;
  update.state = nn::ModelState(w);
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double Apfl::personalize(const nn::ModelState& global,
                         const fl::PersonalizationContext& ctx) {
  rng::Generator gen(ctx.seed);
  std::vector<float> v;
  if (!personal_models_.visit(ctx.client_id,
                              [&](const std::vector<float>& s) { v = s; })) {
    // Novel client: personalize v from the global model within the
    // 10-epoch budget.
    v = global.values();
    train_personal(v, global.values(), *ctx.train, config_.probe.epochs, gen);
  }
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  nn::ModelState(mix_flat(v, global.values(), alpha_))
      .apply_to(model.all_parameters());
  return fl::evaluate_accuracy(model, *ctx.test);
}

}  // namespace calibre::algos
