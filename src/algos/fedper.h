// FedPer (Arivazhagan et al., 2019): federate the base layers (Encoder);
// keep the personalization layers (Head) private to each client across
// rounds. Both parts train jointly during local updates.
#pragma once

#include "algos/client_store.h"
#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class FedPer : public fl::Algorithm {
 public:
  explicit FedPer(const fl::FlConfig& config) : fl::Algorithm(config) {}

  std::string name() const override { return "FedPer"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  ClientStore<nn::ModelState> heads_;
};

}  // namespace calibre::algos
