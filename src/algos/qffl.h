// q-FedAvg / q-FFL (Li et al., ICLR 2020 — "Fair Resource Allocation in
// Federated Learning", the paper's reference [2] for model fairness).
//
// Clients with higher local loss receive more aggregation weight:
// w_c ∝ n_c * L_c^q. q = 0 reduces to FedAvg; larger q trades mean accuracy
// for a more uniform accuracy distribution. Included because it is *the*
// fairness-first baseline family the paper positions Calibre against.
#pragma once

#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class QFfl : public fl::Algorithm {
 public:
  QFfl(const fl::FlConfig& config, float q = 1.0f)
      : fl::Algorithm(config), q_(q) {}

  std::string name() const override { return "q-FedAvg"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  nn::ModelState aggregate(const nn::ModelState& global,
                           const std::vector<fl::ClientUpdate>& updates,
                           int round) override;
  // Native O(model) fold: w_c ∝ n_c * (L_c + eps)^q is separable per update,
  // so the q-weighted mean streams. aggregate() delegates to this fold.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState& global, int round) override;
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  float q_;
};

}  // namespace calibre::algos
