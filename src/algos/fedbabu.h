// FedBABU (Oh et al., ICLR 2022): the head is frozen at its (shared) random
// initialisation for the whole federated stage — only the body (Encoder) is
// trained and aggregated. Personalization then fine-tunes the head.
#pragma once

#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class FedBabu : public fl::Algorithm {
 public:
  explicit FedBabu(const fl::FlConfig& config);

  std::string name() const override { return "FedBABU"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  // The shared, never-trained random head every client uses while training
  // the body.
  nn::ModelState fixed_head_;
};

}  // namespace calibre::algos
