// SCAFFOLD (Karimireddy et al., ICML 2020): stochastic controlled averaging.
// Server and clients maintain control variates; every local SGD step is
// corrected by (c - c_i), removing client drift under non-IID data. The
// server state broadcast to clients is the concatenation [model | c], so the
// control variate travels over the same wire as the model.
//
// SCAFFOLD-FT additionally fine-tunes the head during personalization.
#pragma once

#include "algos/client_store.h"
#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class Scaffold : public fl::Algorithm {
 public:
  Scaffold(const fl::FlConfig& config, bool finetune_head);

  std::string name() const override {
    return finetune_head_ ? "SCAFFOLD-FT" : "SCAFFOLD";
  }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  nn::ModelState aggregate(const nn::ModelState& global,
                           const std::vector<fl::ClientUpdate>& updates,
                           int round) override;
  // Native O(model) fold over [model | delta_c] updates: weighted model sum
  // plus unweighted control-delta sum, both resolved at finish() (which also
  // advances the server control variate once). aggregate() delegates here.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState& global, int round) override;
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  bool finetune_head_;
  std::size_t model_dim_ = 0;
  std::vector<float> server_control_;         // c
  ClientStore<std::vector<float>> client_controls_;  // c_i
};

}  // namespace calibre::algos
