// Thread-safe per-client persistent state (local heads, personal models,
// control variates). local_update/personalize run concurrently for distinct
// clients, so the store serialises access.
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>

namespace calibre::algos {

template <typename T>
class ClientStore {
 public:
  std::optional<T> get(int client_id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(client_id);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  void put(int client_id, T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    map_[client_id] = std::move(value);
  }

  bool contains(int client_id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.count(client_id) > 0;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<int, T> map_;
};

}  // namespace calibre::algos
