// Thread-safe per-client persistent state (local heads, personal models,
// control variates). local_update/personalize run concurrently for distinct
// clients, so the store serialises access — but across *shards*, not one
// global mutex: with 100k lazily-materialized virtual clients the store is
// on the hot path of every handler invocation, and a single lock would
// serialise the whole worker pool. Client ids hash onto a fixed power-of-two
// shard count; each shard owns an independent mutex + map.
//
// Reads come in two flavours:
//  * get(id)        — copies the stored value out (legacy; fine for small
//                     state, wasteful for full model states).
//  * visit(id, fn)  — borrow-without-copy: runs `fn(const T&)` under the
//                     shard lock and returns whether the id was present.
//                     `fn` must not call back into the same store (the shard
//                     mutex is not recursive) and must not retain the
//                     reference past the call.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace calibre::algos {

template <typename T>
class ClientStore {
 public:
  std::optional<T> get(int client_id) const {
    const Shard& shard = shard_for(client_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(client_id);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  // Runs `fn(const T&)` under the shard lock without copying the value.
  // Returns false (and does not invoke `fn`) when the id is absent.
  template <typename Fn>
  bool visit(int client_id, Fn&& fn) const {
    const Shard& shard = shard_for(client_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(client_id);
    if (it == shard.map.end()) return false;
    fn(static_cast<const T&>(it->second));
    return true;
  }

  // Mutable counterpart of visit(): runs `fn(T&)` in place under the shard
  // lock. Returns false when the id is absent.
  template <typename Fn>
  bool mutate(int client_id, Fn&& fn) {
    Shard& shard = shard_for(client_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(client_id);
    if (it == shard.map.end()) return false;
    fn(it->second);
    return true;
  }

  void put(int client_id, T value) {
    Shard& shard = shard_for(client_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map[client_id] = std::move(value);
  }

  bool contains(int client_id) const {
    const Shard& shard = shard_for(client_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.map.count(client_id) > 0;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

 private:
  // 16 shards: enough to keep the worker pool (≤ hardware threads) from
  // contending, small enough that size() stays cheap.
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<int, T> map;
  };

  Shard& shard_for(int client_id) {
    return shards_[static_cast<std::size_t>(client_id) & (kShards - 1)];
  }
  const Shard& shard_for(int client_id) const {
    return shards_[static_cast<std::size_t>(client_id) & (kShards - 1)];
  }

  Shard shards_[kShards];
};

}  // namespace calibre::algos
