#include "algos/fedavg.h"

namespace calibre::algos {

nn::ModelState FedAvg::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.all_parameters());
}

fl::ClientUpdate FedAvg::local_update(const nn::ModelState& global,
                                      const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  rng::Generator gen(ctx.seed);
  fl::train_supervised(model, model.all_parameters(), *ctx.train, config_,
                       config_.local_epochs, gen);
  fl::ClientUpdate update;
  update.state = nn::ModelState::from_parameters(model.all_parameters());
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double FedAvg::personalize(const nn::ModelState& global,
                           const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  if (!finetune_head_) {
    return fl::evaluate_accuracy(model, *ctx.test);
  }
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
