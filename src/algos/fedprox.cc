#include "algos/fedprox.h"

#include "algos/flat.h"

namespace calibre::algos {

nn::ModelState FedProx::initialize() {
  const fl::EncoderHeadModel model =
      fl::make_encoder_head(config_, config_.seed);
  return nn::ModelState::from_parameters(model.all_parameters());
}

fl::ClientUpdate FedProx::local_update(const nn::ModelState& global,
                                       const fl::ClientContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  const std::vector<ag::VarPtr> params = model.all_parameters();
  global.apply_to(params);
  const std::vector<float>& anchor = global.values();

  rng::Generator gen(ctx.seed);
  const float lr = config_.supervised_opt.learning_rate;
  std::vector<float> w = global.values();
  for (int epoch = 0; epoch < config_.local_epochs; ++epoch) {
    const auto batches = data::make_batches(ctx.train->size(),
                                            config_.batch_size, gen,
                                            /*min_batch=*/2);
    for (const auto& batch : batches) {
      std::vector<int> y;
      y.reserve(batch.size());
      for (const int index : batch) {
        y.push_back(ctx.train->labels[static_cast<std::size_t>(index)]);
      }
      const tensor::Tensor view =
          fl::training_view(*ctx.train, batch, config_.augment, gen,
                            config_.supervised_oracle_views);
      nn::ModelState(w).apply_to(params);
      for (const ag::VarPtr& p : params) p->zero_grad();
      ag::backward(ag::cross_entropy(model.logits(ag::constant(view)), y));
      std::vector<float> grad = flat_grads(params);
      // Proximal gradient: mu * (w - w_global).
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] += mu_ * (w[i] - anchor[i]);
      }
      axpy_flat(w, grad, -lr);
    }
  }

  fl::ClientUpdate update;
  update.state = nn::ModelState(std::move(w));
  update.weight = static_cast<float>(ctx.train->size());
  return update;
}

double FedProx::personalize(const nn::ModelState& global,
                            const fl::PersonalizationContext& ctx) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config_, config_.seed);
  global.apply_to(model.all_parameters());
  return fl::finetune_and_eval(model, model.head_parameters(), *ctx.train,
                               *ctx.test, config_.probe, ctx.seed);
}

}  // namespace calibre::algos
