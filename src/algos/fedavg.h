// FedAvg (McMahan et al., AISTATS 2017) and FedAvg-FT.
//
// FedAvg federates the full model (encoder + head); each client evaluates
// the global model directly. FedAvg-FT additionally fine-tunes the Head on
// the local dataset before evaluating (paper §V "Benchmark approaches").
#pragma once

#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class FedAvg : public fl::Algorithm {
 public:
  FedAvg(const fl::FlConfig& config, bool finetune_head)
      : fl::Algorithm(config), finetune_head_(finetune_head) {}

  std::string name() const override {
    return finetune_head_ ? "FedAvg-FT" : "FedAvg";
  }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  bool finetune_head_;
};

}  // namespace calibre::algos
