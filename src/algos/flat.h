// Flat-vector views over parameter lists, shared by the baselines that do
// their own update arithmetic (SCAFFOLD, APFL, Ditto, PerFedAvg).
#pragma once

#include <vector>

#include "autograd/variable.h"
#include "common/check.h"

namespace calibre::algos {

inline std::vector<float> flat_grads(const std::vector<ag::VarPtr>& params) {
  std::vector<float> out;
  for (const ag::VarPtr& p : params) {
    CALIBRE_CHECK_MSG(p->grad.size() == p->value.size(),
                      "parameter has no gradient");
    out.insert(out.end(), p->grad.storage().begin(), p->grad.storage().end());
  }
  return out;
}

// values[i] += alpha * delta[i], pairwise over the flat layout.
inline void axpy_flat(std::vector<float>& values,
                      const std::vector<float>& delta, float alpha) {
  CALIBRE_CHECK(values.size() == delta.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] += alpha * delta[i];
  }
}

// out = a * x + (1 - a) * y.
inline std::vector<float> mix_flat(const std::vector<float>& x,
                                   const std::vector<float>& y, float a) {
  CALIBRE_CHECK(x.size() == y.size());
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = a * x[i] + (1.0f - a) * y[i];
  }
  return out;
}

}  // namespace calibre::algos
