// Ditto (Li et al., ICML 2021): fairness and robustness through
// personalization. The global model is trained with plain FedAvg; each
// client additionally maintains a personal model v trained on
//   f_c(v) + (lambda/2) ||v - w_global||^2,
// and is evaluated on v.
#pragma once

#include "algos/client_store.h"
#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class Ditto : public fl::Algorithm {
 public:
  Ditto(const fl::FlConfig& config, float lambda = 0.5f)
      : fl::Algorithm(config), lambda_(lambda) {}

  std::string name() const override { return "Ditto"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

 private:
  // Prox-regularised personal training of v toward `anchor`.
  void train_personal(std::vector<float>& v, const std::vector<float>& anchor,
                      const data::Dataset& dataset, int epochs,
                      rng::Generator& gen);

  float lambda_;
  ClientStore<std::vector<float>> personal_models_;
};

}  // namespace calibre::algos
